//! Cross-crate property tests for program normalization: on real corpus
//! pages and real synthesized programs, `normalize` must preserve
//! evaluation exactly, never grow the AST, and be idempotent.

use proptest::prelude::*;
use webqa_corpus::{generate_pages, TASKS};
use webqa_dsl::{normalize, QueryContext};
use webqa_synth::{synthesize, Example, SynthConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn normalize_preserves_synthesized_program_semantics(seed in 0u64..50, t in 0usize..25) {
        let task = &TASKS[t];
        let pages = generate_pages(task.domain, 3, seed);
        let ctx = QueryContext::new(task.question, task.keywords.to_vec());
        let examples: Vec<Example> = pages
            .iter()
            .take(2)
            .map(|p| Example::new(p.tree(), p.gold(task.id).to_vec()))
            .collect();
        let mut cfg = SynthConfig::fast();
        cfg.max_guards_per_branch = 64;
        cfg.max_programs = 25;
        let out = synthesize(&cfg, &ctx, &examples);
        // Evaluate original vs normalized on a page synthesis never saw.
        let held_out = pages[2].tree();
        for p in out.programs.iter().take(10) {
            let n = normalize(p);
            prop_assert_eq!(
                p.eval(&ctx, &held_out),
                n.eval(&ctx, &held_out),
                "normalization changed behaviour of {}", p
            );
            for ex in &examples {
                prop_assert_eq!(p.eval(&ctx, &ex.page), n.eval(&ctx, &ex.page));
            }
            prop_assert!(n.size() <= p.size(), "normalize grew {}", p);
            prop_assert_eq!(normalize(&n), n.clone(), "not idempotent on {}", p);
            // Normalized programs stay inside the text format.
            let reparsed: webqa_dsl::Program =
                n.to_string().parse().expect("normalized form parses");
            prop_assert_eq!(reparsed, n);
        }
    }
}
