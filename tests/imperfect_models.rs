//! Key Idea #2 of the paper (Section 2), exercised end to end: when a
//! neural module is imperfect, **no** DSL program reproduces the labels
//! exactly, and the synthesizer must return the best-achievable-F₁
//! programs instead of failing — this is precisely the scenario the
//! paper uses to motivate optimal synthesis over exact synthesis
//! ("suppose the pre-trained network for entity extraction is unable to
//! recognize computer science conference names as organizations").

use webqa_dsl::{EntityRecognizer, PageTree, Program, QaModel, QueryContext};
use webqa_synth::{synthesize, Example, SynthConfig};

/// The motivating example's service sections: the desired output is the
/// conference-with-role strings, which requires recognizing "PLDI '21" as
/// an organization.
fn service_examples() -> Vec<(PageTree, Vec<String>)> {
    vec![
        (
            PageTree::parse(
                "<h1>Jane Doe</h1><h2>Students</h2><ul><li>Robert Smith</li></ul>\
                 <h2>Professional Service</h2>\
                 <ul><li>PLDI '21 (PC), CAV '20 (PC)</li><li>reading group</li></ul>",
            ),
            vec!["PLDI '21 (PC)".to_string(), "CAV '20 (PC)".to_string()],
        ),
        (
            PageTree::parse(
                "<h1>John Doe</h1><h2>News</h2><p>Welcome Sarah Brown.</p>\
                 <h2>Service</h2>\
                 <ul><li>OOPSLA '20 (PC), POPL '20 (SRC)</li><li>hiking club</li></ul>",
            ),
            vec!["OOPSLA '20 (PC)".to_string(), "POPL '20 (SRC)".to_string()],
        ),
    ]
}

fn question() -> &'static str {
    "Which program committees has this researcher served on?"
}

const KEYWORDS: [&str; 3] = ["PC", "Program Committee", "Service"];

fn run(ctx: &QueryContext) -> (f64, Vec<Program>) {
    let examples: Vec<Example> = service_examples()
        .into_iter()
        .map(|(p, g)| Example::new(p, g))
        .collect();
    let mut cfg = SynthConfig::fast();
    cfg.max_programs = 200;
    let out = synthesize(&cfg, ctx, &examples);
    (out.f1, out.programs)
}

#[test]
fn perfect_ner_allows_exact_extraction() {
    // With the gap closed (conference names recognized as ORG), some
    // program matches the labels exactly.
    let ctx = QueryContext::with_models(
        question(),
        KEYWORDS,
        QaModel::pretrained(),
        EntityRecognizer::with_conference_orgs(),
    );
    let (f1, programs) = run(&ctx);
    assert!(f1 > 0.99, "expected exact extraction, got F1 {f1}");
    assert!(!programs.is_empty());
}

#[test]
fn imperfect_ner_degrades_gracefully_to_optimal_f1() {
    // The paper's default: conference names are NOT organizations. The
    // strings can still be recovered by split+filter on keywords, so the
    // optimum may remain high — but whatever it is, it must be (a) the
    // true optimum (all returned programs reproduce it) and (b) no better
    // than the perfect-model optimum.
    let perfect = QueryContext::with_models(
        question(),
        KEYWORDS,
        QaModel::pretrained(),
        EntityRecognizer::with_conference_orgs(),
    );
    let (f1_perfect, _) = run(&perfect);

    let imperfect = QueryContext::with_models(
        question(),
        KEYWORDS,
        QaModel::pretrained(),
        EntityRecognizer::pretrained(),
    );
    let (f1_imperfect, programs) = run(&imperfect);

    assert!(
        f1_imperfect > 0.0,
        "synthesis must not fail outright (Key Idea #2)"
    );
    assert!(
        f1_imperfect <= f1_perfect + 1e-9,
        "imperfect models cannot beat perfect ones: {f1_imperfect} > {f1_perfect}"
    );
    assert!(!programs.is_empty(), "optimal set must be non-empty");

    // Consistency: every returned program reproduces the reported optimum
    // under the *imperfect* models.
    let examples: Vec<Example> = service_examples()
        .into_iter()
        .map(|(p, g)| Example::new(p, g))
        .collect();
    for p in programs.iter().take(10) {
        let f1 = webqa_synth::program_counts(&imperfect, &examples, p).f1();
        assert!(
            (f1 - f1_imperfect).abs() < 1e-6,
            "{p} scores {f1} ≠ {f1_imperfect}"
        );
    }
}

#[test]
fn entity_programs_change_meaning_across_models() {
    // The same program evaluates differently under the two recognizers:
    // with the gap open, `hasEntity(ORG)` extraction on a service line
    // returns nothing conference-related.
    let program: Program =
        "sat(descendants(root, leaf), true) -> substr(split(content, ','), entity(ORG), 1)"
            .parse()
            .expect("valid");
    let page =
        PageTree::parse("<h1>R</h1><h2>Service</h2><ul><li>PLDI '21 (PC), CAV '20 (PC)</li></ul>");
    let perfect = QueryContext::with_models(
        question(),
        KEYWORDS,
        QaModel::pretrained(),
        EntityRecognizer::with_conference_orgs(),
    );
    let imperfect = QueryContext::with_models(
        question(),
        KEYWORDS,
        QaModel::pretrained(),
        EntityRecognizer::pretrained(),
    );
    let with_gap_closed = program.eval(&perfect, &page);
    let with_gap_open = program.eval(&imperfect, &page);
    assert!(
        with_gap_closed.iter().any(|s| s.contains("PLDI")),
        "perfect NER finds the conference: {with_gap_closed:?}"
    );
    assert!(
        !with_gap_open.iter().any(|s| s.contains("PLDI")),
        "imperfect NER must miss it: {with_gap_open:?}"
    );
}
