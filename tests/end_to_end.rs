//! Cross-crate integration tests: the full pipeline on generated corpus
//! tasks, including the comparisons the evaluation section relies on.

use webqa::{score_answers, Config, Engine, Modality, Selection, WebQa};
use webqa_baselines::{BertQa, EntExtract, Hyb};
use webqa_corpus::{task_by_id, Corpus, Task};

fn corpus() -> Corpus {
    Corpus::generate(10, 2024)
}

/// Interns one task's split into a fresh engine, returning the engine,
/// the engine task, and the test gold.
fn engine_task(
    corpus: &Corpus,
    task: &Task,
    config: Config,
) -> (Engine, webqa::Task, Vec<Vec<String>>) {
    let data = corpus.dataset(task, 5);
    let mut engine = Engine::new(config);
    let mut gold = Vec::new();
    let spec = webqa::Task::from_split(
        task.question,
        task.keywords.iter().copied(),
        engine.store_mut(),
        data.train.into_iter().map(|p| (p.page, p.gold)),
        data.test.into_iter().map(|p| {
            gold.push(p.gold);
            p.page
        }),
    );
    (engine, spec, gold)
}

fn run_task(task_id: &str, config: Config) -> (webqa::Score, Option<webqa::Program>) {
    let corpus = corpus();
    let task = task_by_id(task_id).expect("task exists");
    let (engine, spec, gold) = engine_task(&corpus, task, config);
    let result = engine.run(&spec).expect("ids from this store");
    (
        score_answers(&result.answers, &gold).expect("aligned"),
        result.program,
    )
}

#[test]
fn one_task_per_domain_reaches_usable_f1() {
    for (task_id, min_f1) in [
        ("fac_t1", 0.5),
        ("conf_t4", 0.6),
        ("class_t3", 0.5),
        ("clinic_t4", 0.6),
    ] {
        let (score, program) = run_task(task_id, Config::default());
        assert!(program.is_some(), "{task_id}: no program");
        assert!(
            score.f1 >= min_f1,
            "{task_id}: F1 {:.2} below floor {min_f1}",
            score.f1
        );
    }
}

#[test]
fn selected_program_round_trips_through_parser() {
    let (_, program) = run_task("clinic_t1", Config::default());
    let p = program.expect("program");
    let reparsed: webqa::Program = p.to_string().parse().expect("canonical form parses");
    assert_eq!(p, reparsed);
}

#[test]
fn webqa_outperforms_flat_qa_on_multi_span_task() {
    let corpus = corpus();
    let task = task_by_id("fac_t5").unwrap();
    let data = corpus.dataset(task, 5);
    let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();

    let system = WebQa::new(Config::default());
    let labeled: Vec<_> = data
        .train
        .iter()
        .map(|p| (p.page.clone(), p.gold.clone()))
        .collect();
    let unlabeled: Vec<_> = data.test.iter().map(|p| p.page.clone()).collect();
    let ours = system.run(task.question, task.keywords, &labeled, &unlabeled);
    let ours_score = score_answers(&ours.answers, &gold).expect("aligned");

    let bert = BertQa::new();
    let bert_answers: Vec<Vec<String>> = data
        .test
        .iter()
        .map(|p| bert.answer_page(task.question, &p.html))
        .collect();
    let bert_score = score_answers(&bert_answers, &gold).expect("aligned");

    assert!(
        ours_score.f1 > bert_score.f1,
        "WebQA {:.2} must beat BERTQA {:.2} on a multi-span task",
        ours_score.f1,
        bert_score.f1
    );
    // The structural reason (paper §8.1): single-span answers cap recall.
    assert!(
        bert_score.recall < 0.5,
        "BERTQA recall should collapse, got {bert_score:?}"
    );
}

#[test]
fn hyb_struggles_on_heterogeneous_pages() {
    let corpus = corpus();
    let task = task_by_id("fac_t1").unwrap();
    let data = corpus.dataset(task, 5);
    let hyb_train: Vec<(String, Vec<String>)> = data
        .train
        .iter()
        .map(|p| (p.html.clone(), p.gold.clone()))
        .collect();
    match Hyb::train(&hyb_train) {
        Err(_) => {} // outright failure is the common case
        Ok(w) => {
            let answers: Vec<Vec<String>> = data.test.iter().map(|p| w.extract(&p.html)).collect();
            let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();
            let s = score_answers(&answers, &gold).expect("aligned");
            assert!(
                s.f1 < 0.5,
                "HYB should not solve heterogeneous faculty pages: {s:?}"
            );
        }
    }
}

#[test]
fn ent_extract_recall_without_precision() {
    let corpus = corpus();
    let task = task_by_id("fac_t1").unwrap();
    let data = corpus.dataset(task, 5);
    let ee = EntExtract::new();
    let answers: Vec<Vec<String>> = data
        .test
        .iter()
        .map(|p| ee.extract(task.question, &p.html))
        .collect();
    let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();
    let s = score_answers(&answers, &gold).expect("aligned");
    // Zero-shot list extraction finds *some* list; it is rarely the right
    // one on faculty pages (students vs alumni vs news vs pubs).
    assert!(s.f1 < 0.7, "EntExtract unexpectedly strong: {s:?}");
}

#[test]
fn modality_ablations_do_not_beat_full_system_on_average() {
    let tasks = ["fac_t1", "clinic_t4"];
    let avg = |modality: Modality| -> f64 {
        let mut total = 0.0;
        for t in tasks {
            let cfg = Config {
                modality,
                ..Config::default()
            };
            total += run_task(t, cfg).0.f1;
        }
        total / tasks.len() as f64
    };
    let both = avg(Modality::Both);
    let nl = avg(Modality::QuestionOnly);
    let kw = avg(Modality::KeywordsOnly);
    assert!(
        both + 1e-9 >= nl.min(kw),
        "full system below both ablations: {both} vs {nl}/{kw}"
    );
}

#[test]
fn selection_strategies_are_all_functional() {
    for strategy in [
        Selection::Transductive,
        Selection::Random,
        Selection::Shortest,
    ] {
        let cfg = Config {
            strategy,
            ..Config::default()
        };
        let (score, program) = run_task("clinic_t5", cfg);
        assert!(program.is_some());
        assert!(score.f1 > 0.0, "{strategy:?} produced a useless program");
    }
}

#[test]
fn fewer_examples_never_crash_and_often_degrade() {
    let corpus = corpus();
    let task = task_by_id("conf_t2").unwrap();
    let data = corpus.dataset(task, 5);
    let unlabeled: Vec<_> = data.test.iter().map(|p| p.page.clone()).collect();
    let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();
    let system = WebQa::new(Config::default());
    let mut scores = Vec::new();
    for n in 1..=5 {
        let labeled: Vec<_> = data.train[..n]
            .iter()
            .map(|p| (p.page.clone(), p.gold.clone()))
            .collect();
        let result = system.run(task.question, task.keywords, &labeled, &unlabeled);
        scores.push(score_answers(&result.answers, &gold).expect("aligned").f1);
    }
    assert_eq!(scores.len(), 5);
    assert!(
        scores[4] + 0.25 >= scores[0],
        "five examples should not be much worse than one: {scores:?}"
    );
}

/// Real-page ingestion smoke: `webqa-cli import` over the checked-in
/// sample pages (`tests/fixtures/pages/`) interns every page through the
/// normal `PageStore` path in strict mode — the pages are sloppy
/// (unclosed `<li>`/`<p>`, unquoted attributes) but undamaged — and
/// `--program` pipes each interned page straight into evaluation.
#[test]
fn import_then_run_on_checked_in_sample_pages() {
    let dir = format!("{}/tests/fixtures/pages", env!("CARGO_MANIFEST_DIR"));

    // Plain import: per-page digest + diagnostics, then a summary.
    let out = webqa_cli::dispatch(&["import", &dir]).expect("sample pages are strict-clean");
    assert!(
        out.contains("prof_chen.html: digest ") && out.contains("lab_people.html: digest "),
        "{out}"
    );
    // The sloppiness is visible in the diagnostics, not fatal.
    assert!(out.contains("implicit-closes="), "{out}");
    assert!(out.contains("pages (2 distinct) from"), "{out}");

    // import → run: evaluate an extraction program over every imported
    // page. Leaf contents of the faculty page include the student roster.
    let out = webqa_cli::dispatch(&[
        "import",
        &dir,
        "--program",
        "sat(descendants(root, leaf), true) -> content",
        "--question",
        "Who are the current PhD students?",
        "--keywords",
        "Students,PhD",
    ])
    .expect("import pipes into evaluation");
    for answer in ["Jane Doe", "Bob Smith", "María García", "Wei Chen"] {
        assert!(out.contains(answer), "missing {answer:?} in:\n{out}");
    }
}
