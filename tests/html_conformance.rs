//! The html5lib-style conformance harness for `webqa_html`.
//!
//! `tests/fixtures/html5/*.dat` is a declarative torture-test corpus of
//! real-world markup damage — misnested and unclosed tags, raw-text
//! elements, exotic and malformed entities, attribute edge cases,
//! encoding oddities, and nesting limits. Each case carries the input
//! markup, the expected DOM (as a byte-exact tree dump), the expected
//! lenient-recovery diagnostics, and — when the strict parser must
//! reject — the exact error message. Every parser fix lands with its
//! fixture, so no recovery path regresses silently.
//!
//! Fixture format (sections in order; `#diag` / `#strict-error` optional):
//!
//! ```text
//! #case implicit-li-close
//! #data
//! <ul><li>a<li>b</ul>
//! #tree
//! | <ul>
//! |   <li>
//! |     "a"
//! |   <li>
//! |     "b"
//! #diag
//! implicit-closes=1
//! ```
//!
//! * `#data` lines are the verbatim input, joined with `\n`.
//!   `#data-escaped` is the alternative for bytes a text file cannot
//!   carry verbatim (`\r`, `\0`, a BOM): its lines support `\n` `\r`
//!   `\t` `\0` `\\` and `\u{XXXX}` escapes.
//! * `#tree` is the expected lenient-parse DOM dump (see `dump`), and —
//!   unless `#strict-error` is present — the strict parse must produce
//!   the *identical* dump.
//! * `#diag` pins the [`webqa_html::ParseDiagnostics`] counters
//!   (`ParseDiagnostics::summary()` format; omitted = all-zero).
//! * `#strict-error` pins `try_parse_html`'s error `Display` exactly.
//!
//! To add a case: append `#case` + `#data` to the right category file,
//! run `WEBQA_BLESS=1 cargo test --test html_conformance`, and review
//! the generated `#tree`/`#diag`/`#strict-error` sections in the diff —
//! blessing records current behaviour, the review decides it is *right*.
//! Every case is additionally held to the serialization fixpoint:
//! `parse(serialize(parse(data)))` must re-dump byte-identically.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

/// Serializes fixture-directory reads against bless-mode rewrites, so
/// `WEBQA_BLESS=1` stays safe under cargo's parallel test threads.
static CORPUS_IO: Mutex<()> = Mutex::new(());

use webqa_html::{
    parse_html, parse_html_report, serialize, try_parse_html, Document, NodeData, NodeId, PageTree,
    ParseDiagnostics,
};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/html5")
}

/// One conformance case, as parsed from a `.dat` file.
struct Case {
    /// Short name for failure reports (`file.dat::name`).
    id: String,
    /// The input markup.
    data: String,
    /// Raw `#data` section lines plus whether they were escaped — kept
    /// verbatim so bless mode can rewrite expectations without touching
    /// inputs.
    data_lines: Vec<String>,
    data_escaped: bool,
    /// Expected lenient-parse tree dump.
    tree: String,
    /// Expected lenient diagnostics.
    diag: ParseDiagnostics,
    /// Expected strict-parse error message, when strict must reject.
    strict_error: Option<String>,
}

/// `\n` `\r` `\t` `\0` `\\` and `\u{XXXX}` escapes for `#data-escaped`.
fn unescape(line: &str) -> String {
    let mut out = String::new();
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let rest: String = chars.clone().collect();
                let hex = rest
                    .strip_prefix('{')
                    .and_then(|r| r.split_once('}'))
                    .expect("\\u{...} escape");
                let code = u32::from_str_radix(hex.0, 16).expect("hex code point");
                out.push(char::from_u32(code).expect("valid code point"));
                for _ in 0..hex.0.len() + 2 {
                    chars.next();
                }
            }
            other => panic!("unknown escape \\{other:?} in {line:?}"),
        }
    }
    out
}

/// Parses a `#diag` line in [`ParseDiagnostics::summary`] format.
fn parse_diag(line: &str) -> ParseDiagnostics {
    let mut d = ParseDiagnostics::default();
    for part in line.split_whitespace() {
        let (key, value) = part
            .split_once('=')
            .unwrap_or_else(|| panic!("bad #diag entry {part:?}"));
        let value: usize = value
            .parse()
            .unwrap_or_else(|_| panic!("bad #diag count {part:?}"));
        match key {
            "unknown-entities" => d.unknown_entities = value,
            "stray-end-tags" => d.stray_end_tags = value,
            "unclosed-tags" => d.unclosed_tags = value,
            "implicit-closes" => d.implicit_closes = value,
            other => panic!("unknown #diag counter {other:?}"),
        }
    }
    d
}

/// Parses one `.dat` file into its cases.
fn parse_dat(file_name: &str, content: &str) -> Vec<Case> {
    let mut cases: Vec<Case> = Vec::new();
    let mut section: Option<&str> = None;
    for line in content.lines() {
        match line {
            l if l.starts_with("#case ") => {
                cases.push(Case {
                    id: format!("{file_name}::{}", l.trim_start_matches("#case ").trim()),
                    data: String::new(),
                    data_lines: Vec::new(),
                    data_escaped: false,
                    tree: String::new(),
                    diag: ParseDiagnostics::default(),
                    strict_error: None,
                });
                section = None;
            }
            "#data" | "#data-escaped" | "#tree" | "#diag" | "#strict-error" => {
                assert!(!cases.is_empty(), "{file_name}: section before first #case");
                section = Some(match line {
                    "#data" => "data",
                    "#data-escaped" => {
                        cases.last_mut().expect("nonempty").data_escaped = true;
                        "data"
                    }
                    other => other.trim_start_matches('#'),
                });
            }
            _ => {
                let Some(case) = cases.last_mut() else {
                    assert!(
                        line.trim().is_empty(),
                        "{file_name}: content before first #case: {line:?}"
                    );
                    continue;
                };
                match section {
                    Some("data") => case.data_lines.push(line.to_string()),
                    // Tree dump lines always start with "| "; a blank line
                    // is the separator before the next case.
                    Some("tree") if !line.is_empty() => {
                        if !case.tree.is_empty() {
                            case.tree.push('\n');
                        }
                        case.tree.push_str(line);
                    }
                    Some("diag") if !line.trim().is_empty() => {
                        case.diag = parse_diag(line);
                    }
                    Some("strict-error") if !line.trim().is_empty() => {
                        case.strict_error = Some(line.to_string());
                    }
                    // Blank separator lines between cases / trailing.
                    _ => assert!(
                        line.trim().is_empty(),
                        "{file_name}: stray content {line:?}"
                    ),
                }
            }
        }
    }
    for case in &mut cases {
        // Trailing blank lines are case separators, not input — but an
        // all-blank section (the empty-input case) keeps one line.
        while case.data_lines.len() > 1 && case.data_lines.last().is_some_and(String::is_empty) {
            case.data_lines.pop();
        }
        let lines: Vec<String> = if case.data_escaped {
            case.data_lines.iter().map(|l| unescape(l)).collect()
        } else {
            case.data_lines.clone()
        };
        case.data = lines.join("\n");
    }
    cases
}

/// Loads every case of every `.dat` file, as `(file name, cases)`.
fn load_corpus() -> Vec<(String, Vec<Case>)> {
    let dir = fixture_dir();
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fixture dir {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "dat"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let name = path
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .to_string();
            let content = fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
            let cases = parse_dat(&name, &content);
            (name, cases)
        })
        .collect()
}

/// Dumps a DOM in the corpus' line format: one node per line, `| ` prefix,
/// two-space indent per depth, elements as `<tag attr="v">`, text via
/// Rust's string escaping.
fn dump(doc: &Document) -> String {
    fn rec(doc: &Document, id: NodeId, depth: usize, out: &mut String) {
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = write!(out, "| {}", "  ".repeat(depth));
        match &doc.node(id).data {
            NodeData::Document => unreachable!("root is not dumped"),
            NodeData::Text(t) => {
                let _ = write!(out, "{t:?}");
            }
            NodeData::Element { tag, attrs } => {
                let _ = write!(out, "<{tag}");
                for a in attrs {
                    let _ = write!(out, " {}={:?}", a.name, a.value);
                }
                out.push('>');
            }
        }
        for &child in &doc.node(id).children {
            rec(doc, child, depth + 1, out);
        }
    }
    let mut out = String::new();
    for &child in &doc.node(doc.root()).children {
        rec(doc, child, 0, &mut out);
    }
    out
}

/// Re-renders a `.dat` file with expectations regenerated from the
/// implementation (bless mode). Inputs are kept verbatim.
fn bless_file(cases: &[Case]) -> String {
    let mut out = String::new();
    for (i, case) in cases.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let name = case.id.split("::").nth(1).expect("file::name id");
        let _ = writeln!(out, "#case {name}");
        let _ = writeln!(
            out,
            "{}",
            if case.data_escaped {
                "#data-escaped"
            } else {
                "#data"
            }
        );
        for line in &case.data_lines {
            let _ = writeln!(out, "{line}");
        }
        let (doc, diag) = parse_html_report(&case.data);
        let _ = writeln!(out, "#tree");
        let tree = dump(&doc);
        if !tree.is_empty() {
            let _ = writeln!(out, "{tree}");
        }
        if !diag.is_clean() {
            let _ = writeln!(out, "#diag");
            let _ = writeln!(out, "{}", diag.summary());
        }
        if let Err(e) = try_parse_html(&case.data) {
            let _ = writeln!(out, "#strict-error");
            let _ = writeln!(out, "{e}");
        }
    }
    out
}

/// When `WEBQA_BLESS=1`, rewrites every fixture from current behaviour
/// and returns true (checks should then be skipped — the diff is the
/// review artifact).
fn bless_if_requested(corpus: &[(String, Vec<Case>)]) -> bool {
    if std::env::var("WEBQA_BLESS").ok().as_deref() != Some("1") {
        return false;
    }
    for (file, cases) in corpus {
        fs::write(fixture_dir().join(file), bless_file(cases)).expect("writable fixture");
    }
    true
}

/// Runs `check` over every case, reporting all failures at once — one
/// line per failing fixture.
fn check_corpus(check: impl Fn(&Case) -> Option<String>) {
    let guard = CORPUS_IO.lock().unwrap_or_else(|e| e.into_inner());
    let corpus = load_corpus();
    let blessed = bless_if_requested(&corpus);
    drop(guard);
    if blessed {
        return;
    }
    let failures: Vec<String> = corpus
        .iter()
        .flat_map(|(_, cases)| cases.iter())
        .filter_map(|case| check(case).map(|what| format!("{}: {what}", case.id)))
        .collect();
    assert!(
        failures.is_empty(),
        "{} conformance failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// First differing line of two dumps, for compact failure messages.
fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("line {}: expected {e:?}, got {a:?}", i + 1);
        }
    }
    format!(
        "expected {} line(s), got {}",
        expected.lines().count(),
        actual.lines().count()
    )
}

#[test]
fn corpus_is_present_and_large_enough() {
    let _guard = CORPUS_IO.lock().unwrap_or_else(|e| e.into_inner());
    let corpus = load_corpus();
    let categories = corpus.len();
    let cases: usize = corpus.iter().map(|(_, c)| c.len()).sum();
    assert!(
        categories >= 6,
        "conformance corpus has {categories} category files; need >= 6"
    );
    assert!(
        cases >= 60,
        "conformance corpus has {cases} cases; need >= 60"
    );
    for (file, cases) in &corpus {
        assert!(!cases.is_empty(), "{file}: no cases");
        for case in cases {
            assert!(
                !case.data_lines.is_empty(),
                "{}: empty #data section",
                case.id
            );
        }
    }
}

#[test]
fn lenient_trees_match_fixtures_byte_for_byte() {
    check_corpus(|case| {
        let actual = dump(&parse_html(&case.data));
        (actual != case.tree).then(|| first_diff(&case.tree, &actual))
    });
}

#[test]
fn lenient_diagnostics_match_fixtures() {
    check_corpus(|case| {
        let (_, diag) = parse_html_report(&case.data);
        (diag != case.diag).then(|| {
            format!(
                "diagnostics: expected [{}], got [{}]",
                case.diag.summary(),
                diag.summary()
            )
        })
    });
}

#[test]
fn strict_mode_matches_fixtures() {
    check_corpus(
        |case| match (try_parse_html(&case.data), &case.strict_error) {
            (Ok(doc), None) => {
                let actual = dump(&doc);
                (actual != case.tree)
                    .then(|| format!("strict tree diverges: {}", first_diff(&case.tree, &actual)))
            }
            (Err(e), Some(expected)) => {
                let actual = e.to_string();
                (&actual != expected)
                    .then(|| format!("strict error: expected {expected:?}, got {actual:?}"))
            }
            (Ok(_), Some(expected)) => {
                Some(format!("strict parse succeeded; expected {expected:?}"))
            }
            (Err(e), None) => Some(format!("strict parse failed unexpectedly: {e}")),
        },
    );
}

#[test]
fn every_case_reaches_serialization_fixpoint() {
    check_corpus(|case| {
        let doc = parse_html(&case.data);
        let emitted = serialize(&doc);
        let reparsed = parse_html(&emitted);
        let redump = dump(&reparsed);
        if redump != case.tree {
            return Some(format!(
                "serialize∘parse drifts: {}",
                first_diff(&case.tree, &redump)
            ));
        }
        let twice = serialize(&reparsed);
        (twice != emitted).then(|| "second serialization differs from first".to_string())
    });
}

#[test]
fn page_trees_build_total_and_agree_with_strict_expectation() {
    // The synthesis pipeline consumes PageTrees: every corpus case must
    // build one leniently, and PageTree::try_parse must reject exactly
    // when the fixture says strict parsing rejects.
    check_corpus(|case| {
        let _ = PageTree::parse(&case.data); // total: must not panic
        match (PageTree::try_parse(&case.data), &case.strict_error) {
            (Ok(_), None) | (Err(_), Some(_)) => None,
            (Ok(_), Some(e)) => Some(format!("PageTree::try_parse succeeded; expected {e:?}")),
            (Err(e), None) => Some(format!("PageTree::try_parse failed unexpectedly: {e}")),
        }
    });
}
