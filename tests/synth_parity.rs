//! Semantics-parity harness for the synthesis hot path.
//!
//! The optimized synthesizer (interned-id scoring kernels, task-level
//! filter-mask tables, arena-indexed locator memoization, step-wise
//! extractor enumeration with shared production caches, branch-parallel
//! solving) must be *observationally identical* to the definitional slow
//! path selected by [`SynthConfig::reference`]: same optimal F₁, same
//! `Counts`, same program list, in the same order, on every task.
//!
//! This file is the contract that lets future hot-path changes land
//! safely: break the semantics anywhere — a kernel that scores one token
//! differently, a mask that misclassifies one node, a memo that returns a
//! stale synthesis — and a corpus task here diverges.

use proptest::prelude::*;
use webqa_corpus::{generate_pages, TASKS};
use webqa_dsl::QueryContext;
use webqa_metrics::Counts;
use webqa_synth::{synthesize, Example, SynthConfig, SynthesisOutcome};

/// Training examples for one corpus task: `n` generated pages of the
/// task's domain with the task's gold labels.
fn task_examples(task: &webqa_corpus::Task, n: usize, seed: u64) -> (QueryContext, Vec<Example>) {
    let pages = generate_pages(task.domain, n, seed);
    let ctx = QueryContext::new(task.question, task.keywords.to_vec());
    let examples = pages
        .iter()
        .map(|p| Example::new(p.tree(), p.gold(task.id).to_vec()))
        .collect();
    (ctx, examples)
}

fn assert_outcomes_identical(task_id: &str, fast: &SynthesisOutcome, slow: &SynthesisOutcome) {
    assert_eq!(fast.f1, slow.f1, "{task_id}: optimal F1 diverged");
    assert_eq!(fast.counts, slow.counts, "{task_id}: counts diverged");
    assert_eq!(
        fast.total_optimal, slow.total_optimal,
        "{task_id}: total optimal-program count diverged"
    );
    assert_eq!(
        fast.programs.len(),
        slow.programs.len(),
        "{task_id}: program count diverged"
    );
    for (i, (a, b)) in fast.programs.iter().zip(&slow.programs).enumerate() {
        assert_eq!(a, b, "{task_id}: program #{i} diverged:\n  {a}\n  {b}");
    }
}

/// The headline contract: every corpus task, optimized ≡ reference.
#[test]
fn optimized_synthesis_matches_reference_on_every_corpus_task() {
    // Two labeled pages keep the definitional slow path affordable while
    // still exercising multi-example partitions, negatives (footnote 5),
    // memoization, and every kernel.
    let mut cfg_fast = SynthConfig::fast();
    cfg_fast.max_blocks = 2;
    let cfg_slow = cfg_fast.clone().with_reference_kernels();
    for task in &TASKS {
        let (ctx, examples) = task_examples(task, 2, 2024);
        let fast = synthesize(&cfg_fast, &ctx, &examples);
        let slow = synthesize(&cfg_slow, &ctx, &examples);
        assert_outcomes_identical(task.id, &fast, &slow);
        // The search statistics must agree too: the two paths make the
        // same decisions, they just pay different costs per decision.
        assert_eq!(fast.stats, slow.stats, "{}: stats diverged", task.id);
    }
}

/// Branch-parallel solving composes with both kernel modes and cannot
/// change the observable outcome.
#[test]
fn parallel_jobs_match_reference_too() {
    let mut cfg = SynthConfig::fast();
    cfg.max_blocks = 2;
    let parallel = cfg.clone().with_jobs(4);
    let reference = cfg.clone().with_reference_kernels();
    for task in [&TASKS[0], &TASKS[7], &TASKS[13], &TASKS[19]] {
        let (ctx, examples) = task_examples(task, 3, 7);
        let fast = synthesize(&parallel, &ctx, &examples);
        let slow = synthesize(&reference, &ctx, &examples);
        assert_outcomes_identical(task.id, &fast, &slow);
    }
}

/// The ablation configurations (NoPrune / NoDecomp / NoLazy) ride the
/// same kernels; parity must hold under them as well.
#[test]
fn ablation_configs_preserve_parity() {
    let base = {
        let mut c = SynthConfig::fast();
        c.max_blocks = 2;
        c.max_guards_per_branch = 128;
        c.max_programs = 200;
        c
    };
    let variants: Vec<(&str, SynthConfig)> = vec![
        ("noprune", base.clone().without_pruning()),
        ("nodecomp", base.clone().without_decomposition()),
        ("nolazy", base.clone().without_lazy_guards()),
    ];
    let task = &TASKS[2];
    let (ctx, examples) = task_examples(task, 2, 5);
    for (name, cfg) in variants {
        let fast = synthesize(&cfg, &ctx, &examples);
        let slow = synthesize(&cfg.clone().with_reference_kernels(), &ctx, &examples);
        assert_outcomes_identical(name, &fast, &slow);
        assert_eq!(fast.stats, slow.stats, "{name}: stats diverged");
    }
}

/// Reference mode really is the slow path of the same search — its
/// outcome carries the same counters, and `SynthConfig::reference()`
/// differs from `fast()` only by the kernel flag.
#[test]
fn reference_config_is_fast_config_with_slow_kernels() {
    let mut r = SynthConfig::reference();
    assert!(r.reference_kernels);
    r.reference_kernels = false;
    assert_eq!(r, SynthConfig::fast());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Optimized ≡ reference on *random* generator pages and tasks — the
    /// corpus sweep above pins the shipped tasks; this hunts for inputs
    /// nobody hand-picked.
    #[test]
    fn optimized_matches_reference_on_random_inputs(
        seed in 0u64..10_000,
        t in 0usize..25,
        n in 1usize..3,
    ) {
        let task = &TASKS[t];
        let (ctx, examples) = task_examples(task, n, seed);
        let mut cfg = SynthConfig::fast();
        cfg.max_guards_per_branch = 96; // keep the reference path quick
        cfg.max_programs = 100;
        let fast = synthesize(&cfg, &ctx, &examples);
        let slow = synthesize(&cfg.clone().with_reference_kernels(), &ctx, &examples);
        prop_assert_eq!(fast.f1, slow.f1);
        prop_assert_eq!(fast.counts, slow.counts);
        prop_assert_eq!(fast.total_optimal, slow.total_optimal);
        prop_assert_eq!(&fast.programs, &slow.programs);
        prop_assert_eq!(fast.stats, slow.stats);
    }

    /// The fast ceiling kernel agrees with the definitional one on random
    /// locator-free node subsets of generated pages (the parity sweep
    /// exercises it through full synthesis; this isolates the kernel).
    #[test]
    fn ceiling_kernels_agree_on_random_pages(seed in 0u64..10_000, t in 0usize..25) {
        let task = &TASKS[t];
        let page = generate_pages(task.domain, 1, seed).remove(0);
        let ex = Example::new(page.tree(), page.gold(task.id).to_vec());
        let len = ex.page.len();
        // A deterministic pseudo-random subset keyed by the seed.
        let nodes: Vec<webqa_dsl::PageNodeId> = (0..len)
            .filter(|i| (seed.wrapping_mul(0x9E37_79B9).wrapping_add(*i as u64)) % 3 != 0)
            .map(webqa_dsl::PageNodeId)
            .collect();
        let fast: Counts = ex.ceiling_counts(&nodes);
        let slow: Counts = ex.ceiling_counts_reference(&nodes);
        prop_assert_eq!(fast, slow);
    }
}
