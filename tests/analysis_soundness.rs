//! Soundness harness for the abstract interpreter (`webqa_dsl::analysis`).
//!
//! Every analyzer verdict is a *proof* quantified over all pages, so
//! each one is checked against the definitional evaluator on pages the
//! analyzer never sees: corpus-generated pages across random domains
//! and seeds. The programs under test are real synthesized programs
//! plus mutants crafted to trip each verdict family; deterministic
//! companions below pin that every family actually fires.

use proptest::prelude::*;
use webqa_corpus::{generate_pages, TASKS};
use webqa_dsl::{
    Analyzer, Extractor, Guard, Locator, NlpPred, PageTree, Program, QueryContext, Truth,
};
use webqa_synth::{synthesize, Example, SynthConfig};

/// Definitionally confirms every verdict of `analyze(program)` on the
/// given pages; returns the first refuted proof as an error message.
fn confirm(ctx: &QueryContext, program: &Program, pages: &[PageTree]) -> Result<(), String> {
    let analyzer = Analyzer::new(ctx);
    let report = analyzer.analyze(program);
    let canon = analyzer.canonicalize(program);
    for page in pages {
        let fires: Vec<bool> = program
            .branches
            .iter()
            .map(|b| b.guard.eval(ctx, page).0)
            .collect();
        for (i, (b, ba)) in program.branches.iter().zip(&report.branches).enumerate() {
            match ba.guard {
                Truth::False if fires[i] => {
                    return Err(format!(
                        "branch {i} guard proven false yet fired: {program}"
                    ));
                }
                Truth::True if !fires[i] => {
                    return Err(format!(
                        "branch {i} guard proven true yet did not fire: {program}"
                    ));
                }
                _ => {}
            }
            if let Some(j) = ba.subsumed_by {
                if fires[i] && !fires[j] {
                    return Err(format!(
                        "branch {i} proven subsumed by {j}, but fired without it: {program}"
                    ));
                }
            }
            if ba.extractor_empty {
                let (_, nodes) = b.guard.eval(ctx, page);
                let out = b.extractor.eval(ctx, page, &nodes);
                if !out.is_empty() {
                    return Err(format!(
                        "branch {i} extractor proven empty yet produced {out:?}: {program}"
                    ));
                }
            }
        }
        if report.always_empty && !program.eval(ctx, page).is_empty() {
            return Err(format!(
                "program proven always-empty yet answered: {program}"
            ));
        }
        // Equivalence-up-to-normalization: the canonicalized program
        // (dead branches dropped, spellings normalized) is behaviorally
        // identical — that is what sharing a canonical key promises.
        if canon.eval(ctx, page) != program.eval(ctx, page) {
            return Err(format!("canonicalize changed behaviour of {program}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Verdicts on real synthesized programs — and on mutants with a
    /// duplicated branch (subsumption bait), under both the task's own
    /// context and a stripped context that renders keyword/question
    /// predicates unsatisfiable (false-guard and always-empty bait) —
    /// are all confirmed by evaluation on every generated page.
    #[test]
    fn verdicts_hold_definitionally_on_random_pages(seed in 0u64..50, t in 0usize..25) {
        let task = &TASKS[t];
        let corpus = generate_pages(task.domain, 3, seed);
        let ctx = QueryContext::new(task.question, task.keywords.to_vec());
        let examples: Vec<Example> = corpus
            .iter()
            .take(2)
            .map(|p| Example::new(p.tree(), p.gold(task.id).to_vec()))
            .collect();
        let mut cfg = SynthConfig::fast();
        cfg.max_guards_per_branch = 64;
        cfg.max_programs = 10;
        let out = synthesize(&cfg, &ctx, &examples);
        let pages: Vec<PageTree> = corpus.iter().map(|p| p.tree()).collect();
        let bare = QueryContext::new("", Vec::<String>::new());
        for p in out.programs.iter().take(5) {
            let mut duped = p.clone();
            if let Some(b) = p.branches.first() {
                duped.branches.push(b.clone());
            }
            for ctx_under in [&ctx, &bare] {
                prop_assert_eq!(confirm(ctx_under, p, &pages), Ok(()));
                prop_assert_eq!(confirm(ctx_under, &duped, &pages), Ok(()));
            }
        }
    }
}

fn sample_pages() -> Vec<PageTree> {
    vec![
        PageTree::parse("<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>"),
        PageTree::parse("<h1>B</h1><p>Nothing of note here.</p>"),
    ]
}

/// Family 1: a keyword guard under a keywordless context is provably
/// false — and indeed never fires.
#[test]
fn false_guard_verdict_fires_and_is_sound() {
    let ctx = QueryContext::new("", Vec::<String>::new());
    let p: Program = "sat(root, kw(0.60)) -> content; sat(root, true) -> content"
        .parse()
        .expect("program parses");
    let report = Analyzer::new(&ctx).analyze(&p);
    assert!(
        report
            .verdicts()
            .iter()
            .any(|v| v == "branch 0: guard is provably false"),
        "{report}"
    );
    assert_eq!(confirm(&ctx, &p, &sample_pages()), Ok(()));
}

/// Family 2: a branch whose guard implies an earlier guard can never
/// fire — and indeed never fires without the earlier one.
#[test]
fn subsumption_verdict_fires_and_is_sound() {
    let ctx = QueryContext::new("Who are the students?", ["Students"]);
    let p: Program = "sat(root, true) -> content; sat(root, kw(0.60)) -> content"
        .parse()
        .expect("program parses");
    let report = Analyzer::new(&ctx).analyze(&p);
    assert!(
        report
            .verdicts()
            .iter()
            .any(|v| v == "branch 1: guard is subsumed by branch 0's guard"),
        "{report}"
    );
    assert_eq!(confirm(&ctx, &p, &sample_pages()), Ok(()));
}

/// Family 3: a `Substring` over a negation extracts no spans, so the
/// extractor — and here the whole single-branch program — provably
/// returns nothing.
#[test]
fn empty_extractor_verdict_fires_and_is_sound() {
    let ctx = QueryContext::new("Who are the students?", ["Students"]);
    let p = Program::single(
        Guard::Sat(Locator::Root, NlpPred::True),
        Extractor::Substring(
            Box::new(Extractor::Content),
            NlpPred::Not(Box::new(NlpPred::True)),
            1,
        ),
    );
    let report = Analyzer::new(&ctx).analyze(&p);
    assert!(
        report
            .verdicts()
            .iter()
            .any(|v| v == "branch 0: extractor provably returns no strings"),
        "{report}"
    );
    assert!(report.always_empty, "{report}");
    assert_eq!(confirm(&ctx, &p, &sample_pages()), Ok(()));
}

/// Family 4: when every branch is dead the whole program is proven to
/// return `∅` on every page.
#[test]
fn always_empty_verdict_fires_and_is_sound() {
    let ctx = QueryContext::new("", Vec::<String>::new());
    let p: Program = "sat(root, kw(0.60)) -> content"
        .parse()
        .expect("program parses");
    let report = Analyzer::new(&ctx).analyze(&p);
    assert!(
        report
            .verdicts()
            .iter()
            .any(|v| v == "program provably returns the empty set on every page"),
        "{report}"
    );
    assert_eq!(confirm(&ctx, &p, &sample_pages()), Ok(()));
}

/// Family 5: the canonical key equates a program with its
/// dead-branch-padded variant, separates genuinely different programs,
/// and is a fixpoint of canonicalization.
#[test]
fn canonical_key_identifies_equivalent_programs() {
    let ctx = QueryContext::new("Who are the students?", ["Students"]);
    let analyzer = Analyzer::new(&ctx);
    let a: Program = "sat(root, kw(0.60)) -> content"
        .parse()
        .expect("program parses");
    let b: Program = "sat(root, kw(0.60)) -> content; sat(root, kw(0.60)) -> content"
        .parse()
        .expect("program parses");
    assert_eq!(analyzer.canonical_key(&a), analyzer.canonical_key(&b));
    let c: Program = "sat(root, true) -> content"
        .parse()
        .expect("program parses");
    assert_ne!(analyzer.canonical_key(&a), analyzer.canonical_key(&c));
    assert_eq!(
        analyzer.canonical_key(&analyzer.canonicalize(&b)),
        analyzer.canonical_key(&b)
    );
}
