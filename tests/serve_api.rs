//! The serving-layer concurrency & determinism harness.
//!
//! `webqa_server` keeps one engine — and its cross-request caches —
//! alive across requests and clients. That is only admissible if
//! serving is observationally invisible: **every** response must be
//! byte-identical to what a cold, single-threaded, never-cached
//! `webqa::Engine` computes for the same task, no matter how requests
//! interleave, repeat, or hit the caches. This harness pins exactly
//! that, the way `tests/synth_parity.rs` pinned the PR 4 hot-path
//! rewrite one level down:
//!
//! * N ≥ 4 concurrent clients hammer one server with shuffled,
//!   duplicated task streams; every response line is compared byte for
//!   byte against an envelope rendered from the cold reference engine
//!   (same `render_run_result` code path, so a single differing bit in
//!   programs, `Counts`, F₁, or answers fails the test);
//! * a warm repeat shows `FeatureStore` hits and result-LRU hits in the
//!   served cache-stats — the caches demonstrably *work* and
//!   demonstrably *don't show* in the payloads;
//! * protocol robustness: malformed frames, oversized requests, unknown
//!   handles, and mid-request disconnects each produce a typed error
//!   (or a clean drop) without poisoning the shared engine — the next
//!   request always succeeds.

use std::sync::atomic::{AtomicU64, Ordering};

use webqa::{CacheConfig, Config, Engine, SynthConfig, Task};
use webqa_corpus::{task_by_id, Corpus};
use webqa_server::{render_run_result, Client, Listening, ServeOptions, Server};

/// The engine config both the server and the cold reference use (the
/// reference additionally disables the caches — cold means *never*
/// cached).
fn engine_config() -> Config {
    Config {
        synth: SynthConfig::fast(),
        ..Config::default()
    }
}

/// One task of the workload: the wire-level `run` request fields, plus
/// everything needed to replay it on a local engine.
#[derive(Clone)]
struct Spec {
    question: String,
    keywords: Vec<String>,
    labeled: Vec<(String, Vec<String>)>,
    targets: Vec<String>,
}

impl Spec {
    /// The JSON `run` request for this spec, with inline HTML pages (the
    /// server interns them content-addressed, so repeats are dedup'd).
    fn request(&self, id: u64) -> String {
        let mut m = serde_json::Map::new();
        m.insert("id".to_string(), serde_json::json!(id));
        m.insert("op".to_string(), serde_json::json!("run"));
        m.insert(
            "question".to_string(),
            serde_json::json!(self.question.clone()),
        );
        m.insert(
            "keywords".to_string(),
            serde_json::json!(self.keywords.clone()),
        );
        let labeled: Vec<serde_json::Value> = self
            .labeled
            .iter()
            .map(|(html, gold)| {
                let mut e = serde_json::Map::new();
                e.insert("html".to_string(), serde_json::json!(html.clone()));
                e.insert("gold".to_string(), serde_json::json!(gold.clone()));
                serde_json::Value::Object(e)
            })
            .collect();
        m.insert("labeled".to_string(), serde_json::Value::Array(labeled));
        let targets: Vec<serde_json::Value> = self
            .targets
            .iter()
            .map(|html| {
                let mut e = serde_json::Map::new();
                e.insert("html".to_string(), serde_json::json!(html.clone()));
                serde_json::Value::Object(e)
            })
            .collect();
        m.insert("targets".to_string(), serde_json::Value::Array(targets));
        serde_json::to_string(&serde_json::Value::Object(m)).expect("serializable")
    }

    /// Runs this spec on a cold, never-cached, single-threaded engine
    /// and renders the `ok` body through the server's own code path.
    fn cold_body(&self) -> String {
        let mut engine = Engine::new(Config {
            cache: CacheConfig::disabled(),
            ..engine_config()
        });
        let mut task = Task::new(self.question.clone(), self.keywords.clone());
        for (html, gold) in &self.labeled {
            let id = engine.store_mut().insert_html(html).expect("clean HTML");
            task.labeled.push((id, gold.clone()));
        }
        for html in &self.targets {
            let id = engine.store_mut().insert_html(html).expect("clean HTML");
            task.unlabeled.push(id);
        }
        let result = engine.run(&task).expect("ids resolve");
        serde_json::to_string(&render_run_result(&result)).expect("serializable")
    }
}

/// The workload: hand-written mini-tasks (including pairs sharing their
/// labeled pages under one question, so feature-table reuse triggers
/// even when the result LRU absorbs exact repeats) plus corpus tasks.
fn workload() -> Vec<Spec> {
    let a = "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>".to_string();
    let b = "<h1>B</h1><h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>".to_string();
    let c = "<h1>C</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>".to_string();
    let d = "<h1>D</h1><h2>Students</h2><ul><li>Elena Petrov</li></ul>".to_string();
    let students = |targets: Vec<String>| Spec {
        question: "Who are the current PhD students?".to_string(),
        keywords: vec!["Students".to_string(), "PhD".to_string()],
        labeled: vec![
            (
                a.clone(),
                vec!["Jane Doe".to_string(), "Bob Smith".to_string()],
            ),
            (b.clone(), vec!["Mary Anderson".to_string()]),
        ],
        targets,
    };
    let mut specs = vec![
        // Same question + labeled pages, different target sets: distinct
        // result-cache keys sharing their feature tables.
        students(vec![c.clone()]),
        students(vec![c.clone(), d.clone()]),
        students(vec![d.clone()]),
    ];

    // Two corpus tasks over a tiny generated corpus.
    let corpus = Corpus::generate(4, 2024);
    for id in ["fac_t1", "clinic_t1"] {
        let task = task_by_id(id).expect("catalogue task");
        let data = corpus.dataset(task, 2);
        specs.push(Spec {
            question: task.question.to_string(),
            keywords: task.keywords.iter().map(|k| k.to_string()).collect(),
            labeled: data.train.into_iter().map(|p| (p.html, p.gold)).collect(),
            targets: data.test.into_iter().map(|p| p.html).collect(),
        });
    }
    specs
}

fn spawn_server(opts: ServeOptions) -> Listening {
    Server::new(opts)
        .listen(Some("127.0.0.1:0"), None)
        .expect("bind loopback")
}

/// The headline test: 4 concurrent clients, shuffled duplicated
/// streams, every response byte-identical to the cold reference; warm
/// cache-stats show the memoization actually engaged.
#[test]
fn concurrent_duplicated_streams_are_byte_identical_to_a_cold_engine() {
    let specs = workload();
    let expected: Vec<String> = specs.iter().map(Spec::cold_body).collect();

    let listening = spawn_server(ServeOptions {
        engine: engine_config(),
        max_frame_bytes: 1 << 20,
        ..ServeOptions::default()
    });
    let addr = listening.tcp_addr().expect("tcp endpoint");

    const CLIENTS: usize = 4;
    const REPEATS: usize = 3;
    let next_id = AtomicU64::new(1);
    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let (specs, expected, next_id) = (&specs, &expected, &next_id);
            scope.spawn(move || {
                let mut client = Client::connect_tcp(addr).expect("connect");
                // A client-specific shuffle of the duplicated stream:
                // stride through `REPEATS` copies at a client-dependent
                // offset and step. The stride is forced coprime to the
                // stream length, so every client sees every task
                // `REPEATS` times in a different order and duplicates
                // interleave across clients — for any workload size.
                let n = specs.len();
                fn gcd(a: usize, b: usize) -> usize {
                    if b == 0 {
                        a
                    } else {
                        gcd(b, a % b)
                    }
                }
                let mut stride = client_idx + 1;
                while gcd(stride, n) != 1 {
                    stride += 1;
                }
                let mut seen = vec![0usize; n];
                for k in 0..n * REPEATS {
                    let i = (client_idx + k * stride) % n;
                    seen[i] += 1;
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    let response = client
                        .request_line(&specs[i].request(id))
                        .expect("response");
                    let want = format!("{{\"id\":{id},\"ok\":{}}}", expected[i]);
                    assert_eq!(
                        response, want,
                        "client {client_idx} request {k} (task {i}) diverged from the cold engine"
                    );
                }
                assert!(
                    seen.iter().all(|&c| c == REPEATS),
                    "client {client_idx} did not see every task {REPEATS}×: {seen:?}"
                );
            });
        }
    });

    // The caches must have engaged: with 4 clients × 3 repeats of 5
    // tasks, repeats hit the result LRU, and the same-pages/different-
    // targets specs hit the feature store even on result misses.
    let mut client = Client::connect_tcp(addr).expect("connect");
    let stats = client
        .request(&serde_json::from_str(r#"{"op":"stats"}"#).unwrap())
        .expect("stats");
    let cache = &stats["ok"]["cache"];
    assert!(
        cache["result_hits"].as_u64().unwrap() > 0,
        "duplicated streams must hit the result LRU: {stats:?}"
    );
    assert!(
        cache["feature_hits"].as_u64().unwrap() > 0,
        "shared labeled pages must hit the FeatureStore: {stats:?}"
    );
    listening.shutdown();
}

/// A warm repeat over one connection: first query misses, the repeat is
/// served from cache — and the two payloads are byte-identical.
#[test]
fn warm_repeat_is_a_cache_hit_with_an_identical_payload() {
    let specs = workload();
    let listening = spawn_server(ServeOptions {
        engine: engine_config(),
        max_frame_bytes: 1 << 20,
        ..ServeOptions::default()
    });
    let addr = listening.tcp_addr().expect("tcp endpoint");
    let mut client = Client::connect_tcp(addr).expect("connect");

    let first = client.request_line(&specs[0].request(1)).expect("cold run");
    let stats0 = client
        .request(&serde_json::from_str(r#"{"op":"stats"}"#).unwrap())
        .expect("stats");
    assert_eq!(stats0["ok"]["cache"]["result_hits"].as_u64(), Some(0));

    let second = client.request_line(&specs[0].request(1)).expect("warm run");
    assert_eq!(second, first, "cache hit changed the payload");

    // A same-pages/different-targets query exercises the FeatureStore
    // without being an exact repeat.
    let _ = client.request_line(&specs[1].request(2)).expect("variant");
    let stats1 = client
        .request(&serde_json::from_str(r#"{"op":"stats"}"#).unwrap())
        .expect("stats");
    let cache = &stats1["ok"]["cache"];
    assert_eq!(cache["result_hits"].as_u64(), Some(1), "{stats1:?}");
    assert!(
        cache["feature_hits"].as_u64().unwrap() >= 2,
        "the variant query must reuse both labeled tables: {stats1:?}"
    );
    listening.shutdown();
}

/// Malformed frames are typed errors and never poison the engine.
#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let listening = spawn_server(ServeOptions::default());
    let addr = listening.tcp_addr().expect("tcp endpoint");
    let mut client = Client::connect_tcp(addr).expect("connect");

    let bad = client.request_line("{not json at all").expect("response");
    assert_eq!(
        bad,
        r#"{"id":null,"err":{"kind":"bad-frame","message":"frame is not valid JSON"}}"#
    );
    let bad = client.request_line("[1,2,3]").expect("response");
    assert!(bad.contains(r#""kind":"bad-frame""#), "{bad}");
    let bad = client
        .request_line(r#"{"id":9,"op":"launch-missiles"}"#)
        .expect("response");
    assert_eq!(
        bad,
        r#"{"id":9,"err":{"kind":"unknown-op","message":"unknown op \"launch-missiles\" (expected ping|intern|run|run_batch|check|stats)"}}"#
    );
    let bad = client
        .request_line(r#"{"op":"run","question":7}"#)
        .expect("response");
    assert!(bad.contains(r#""kind":"bad-request""#), "{bad}");
    let bad = client
        .request_line(r#"{"op":"run","question":"Q","labeled":[{"page":12345,"gold":[]}]}"#)
        .expect("response");
    assert!(bad.contains(r#""kind":"unknown-page""#), "{bad}");

    // Same connection, same engine: still fully functional.
    let pong = client
        .request_line(r#"{"id":1,"op":"ping"}"#)
        .expect("ping");
    assert_eq!(pong, r#"{"id":1,"ok":{"pong":true}}"#);
    listening.shutdown();
}

/// Oversized frames are refused with a typed error (streamed — the
/// server never buffers the oversized payload) and the connection is
/// closed; the server keeps serving new connections.
#[test]
fn oversized_frames_are_refused_and_only_that_connection_closes() {
    let listening = spawn_server(ServeOptions {
        engine: Config::default(),
        max_frame_bytes: 256,
        ..ServeOptions::default()
    });
    let addr = listening.tcp_addr().expect("tcp endpoint");
    let mut client = Client::connect_tcp(addr).expect("connect");

    let huge = format!(r#"{{"op":"intern","html":"{}"}}"#, "x".repeat(4096));
    let resp = client.request_line(&huge).expect("error response");
    assert!(resp.contains(r#""kind":"oversized""#), "{resp}");
    // The connection is then closed.
    assert!(client.request_line(r#"{"op":"ping"}"#).is_err());

    // A fresh connection is unaffected.
    let mut fresh = Client::connect_tcp(addr).expect("connect");
    let pong = fresh.request_line(r#"{"op":"ping"}"#).expect("ping");
    assert!(pong.contains("pong"), "{pong}");
    listening.shutdown();
}

/// A client disconnecting mid-frame is a clean drop: the partial bytes
/// are never executed and the next request (from a new connection)
/// succeeds.
#[test]
fn mid_request_disconnects_drop_cleanly() {
    let listening = spawn_server(ServeOptions::default());
    let addr = listening.tcp_addr().expect("tcp endpoint");

    {
        let mut half = Client::connect_tcp(addr).expect("connect");
        half.send_raw(br#"{"op":"intern","html":"<h1>never completed"#)
            .expect("partial write");
        // Drop without ever sending the newline.
    }
    // And a half-line *with* other complete frames before it.
    {
        let mut half = Client::connect_tcp(addr).expect("connect");
        half.send_raw(b"{\"op\":\"ping\"}\n{\"op\":\"intern\",\"html\":\"<p>trunc")
            .expect("write");
        let pong = half.read_response_line().expect("first frame answered");
        assert!(pong.contains("pong"), "{pong}");
    }

    let mut client = Client::connect_tcp(addr).expect("connect");
    let resp = client
        .request_line(r#"{"id":7,"op":"intern","html":"<h1>ok</h1>"}"#)
        .expect("response");
    assert!(resp.contains(r#""ok""#), "{resp}");
    // The aborted interns never executed: this is the store's first page.
    assert!(resp.contains(r#""page":0"#), "{resp}");
    listening.shutdown();
}

/// Shutdown with an idle connection still open must return promptly and
/// close that connection (no leaked reader threads blocked forever).
#[test]
fn shutdown_closes_idle_connections_promptly() {
    let listening = spawn_server(ServeOptions::default());
    let addr = listening.tcp_addr().expect("tcp endpoint");
    let mut idle = Client::connect_tcp(addr).expect("connect");
    let pong = idle.request_line(r#"{"op":"ping"}"#).expect("ping");
    assert!(pong.contains("pong"), "{pong}");

    // The connection stays open and idle across the shutdown.
    let start = std::time::Instant::now();
    listening.shutdown();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "shutdown must not wait on idle connections"
    );
    // The idle client's stream was closed server-side.
    assert!(idle.request_line(r#"{"op":"ping"}"#).is_err());
}

/// The same protocol serves over a Unix domain socket.
#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    let path = std::env::temp_dir().join(format!("webqa_serve_api_{}.sock", std::process::id()));
    let listening = Server::new(ServeOptions::default())
        .listen(None, Some(&path))
        .expect("bind unix socket");
    let mut client = Client::connect_unix(&path).expect("connect");
    let pong = client
        .request_line(r#"{"id":5,"op":"ping"}"#)
        .expect("ping");
    assert_eq!(pong, r#"{"id":5,"ok":{"pong":true}}"#);

    let spec = &workload()[0];
    let resp = client.request_line(&spec.request(6)).expect("run");
    let want = format!("{{\"id\":6,\"ok\":{}}}", spec.cold_body());
    assert_eq!(resp, want, "unix transport diverged from the cold engine");

    listening.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
}

/// Sharding must be observationally invisible: the same shuffled
/// concurrent streams served by a 4-shard engine and a 1-shard engine
/// produce byte-identical responses, and both match the cold,
/// never-cached reference.
#[test]
fn four_shards_are_byte_identical_to_one_shard_and_cold() {
    let specs = workload();
    let expected: Vec<String> = specs.iter().map(Spec::cold_body).collect();

    // Workers pinned to the shard count so the clamp (shards ≤ worker
    // budget) keeps the 4-shard server genuinely 4-sharded even on a
    // single-core machine.
    let spawn = |shards: usize| {
        spawn_server(ServeOptions {
            engine: engine_config(),
            max_frame_bytes: 1 << 20,
            shards,
            workers: shards,
            ..ServeOptions::default()
        })
    };
    let one = spawn(1);
    let four = spawn(4);
    let addr_one = one.tcp_addr().expect("tcp endpoint");
    let addr_four = four.tcp_addr().expect("tcp endpoint");

    const CLIENTS: usize = 3;
    const REPEATS: usize = 2;
    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let (specs, expected) = (&specs, &expected);
            scope.spawn(move || {
                let mut c1 = Client::connect_tcp(addr_one).expect("connect 1-shard");
                let mut c4 = Client::connect_tcp(addr_four).expect("connect 4-shard");
                let n = specs.len();
                for k in 0..n * REPEATS {
                    // Same deterministic id on both servers, so the
                    // envelopes are comparable as whole strings.
                    let i = (client_idx + k * (client_idx + 1)) % n;
                    let id = (client_idx * 1000 + k) as u64;
                    let line = specs[i].request(id);
                    let r1 = c1.request_line(&line).expect("1-shard response");
                    let r4 = c4.request_line(&line).expect("4-shard response");
                    let want = format!("{{\"id\":{id},\"ok\":{}}}", expected[i]);
                    assert_eq!(r1, want, "1-shard diverged from cold (task {i})");
                    assert_eq!(r4, r1, "4-shard diverged from 1-shard (task {i})");
                }
            });
        }
    });
    one.shutdown();
    four.shutdown();
}

/// The per-shard stats breakdown must sum to the fleet totals reported
/// in the same response — workers, backlog, queue depth, inflight,
/// pages, and every cache counter.
#[test]
fn shard_stats_breakdown_sums_to_totals() {
    let specs = workload();
    let listening = spawn_server(ServeOptions {
        engine: engine_config(),
        max_frame_bytes: 1 << 20,
        workers: 6,
        backlog: 12,
        shards: 4,
        ..ServeOptions::default()
    });
    let addr = listening.tcp_addr().expect("tcp endpoint");
    let mut client = Client::connect_tcp(addr).expect("connect");

    // Populate several shards: distinct pages spread by digest, plus a
    // run (twice, so the caches have nonzero counters to sum).
    for i in 0..8u64 {
        let resp = client
            .request_line(&format!(
                r#"{{"op":"intern","html":"<h1>S{i}</h1><p>page body {i}</p>"}}"#
            ))
            .expect("intern");
        assert!(resp.contains(r#""ok""#), "{resp}");
    }
    for id in [1, 2] {
        let resp = client.request_line(&specs[0].request(id)).expect("run");
        assert!(resp.contains(r#""ok""#), "{resp}");
    }

    let stats = client
        .request(&serde_json::from_str(r#"{"op":"stats"}"#).unwrap())
        .expect("stats");
    let ok = &stats["ok"];
    let shards = match &ok["shards"] {
        serde_json::Value::Array(a) => a,
        other => panic!("stats must carry a shards array, got {other:?}"),
    };
    assert_eq!(shards.len(), 4, "{stats:?}");

    let sum = |key: &str| -> u64 {
        shards
            .iter()
            .map(|s| s[key].as_u64().unwrap_or_else(|| panic!("{key} in {s:?}")))
            .sum()
    };
    for key in ["workers", "backlog", "queue_depth", "inflight", "pages"] {
        assert_eq!(
            Some(sum(key)),
            ok[key].as_u64(),
            "per-shard {key} must sum to the total: {stats:?}"
        );
    }
    assert!(ok["pages"].as_u64().unwrap() >= 8, "{stats:?}");
    // Every cache counter: the totals object defines the key set.
    let totals = match &ok["cache"] {
        serde_json::Value::Object(m) => m,
        other => panic!("cache totals must be an object, got {other:?}"),
    };
    for (key, total) in totals.iter() {
        // The tier-enabled flags are booleans, not counters: the total
        // is the OR (identical config across shards → identical flags).
        if let Some(flag) = total.as_bool() {
            for s in shards {
                assert_eq!(
                    s["cache"][key.as_str()].as_bool(),
                    Some(flag),
                    "per-shard cache.{key} flag must match the total: {stats:?}"
                );
            }
            continue;
        }
        let shard_sum: u64 = shards
            .iter()
            .map(|s| s["cache"][key.as_str()].as_u64().expect("cache counter"))
            .sum();
        assert_eq!(
            Some(shard_sum),
            total.as_u64(),
            "per-shard cache.{key} must sum to the total: {stats:?}"
        );
    }
    // The persist object is present (all-zero here: no --cache-dir).
    let persist = match &ok["persist"] {
        serde_json::Value::Object(m) => m,
        other => panic!("stats must carry a persist object, got {other:?}"),
    };
    for (key, value) in persist.iter() {
        assert_eq!(value.as_u64(), Some(0), "persist.{key} without a cache dir");
    }
    listening.shutdown();
}

/// The persistence gate, at the serving layer: a daemon serves a stream
/// with a cache dir, shuts down cleanly (spilling its pages and
/// base-feature tables), and a *restarted* daemon on the same directory
/// answers **different questions over the same pages** byte-identically
/// to the cold never-cached reference — while its stats prove the warm
/// start engaged (pages and base tables loaded from disk, base-tier
/// hits on the new questions).
#[test]
fn warm_restart_is_byte_identical_and_hits_the_base_tier() {
    let specs = workload();
    let dir = std::env::temp_dir().join(format!("webqa-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let serve_opts = || ServeOptions {
        engine: engine_config(),
        max_frame_bytes: 1 << 20,
        cache_dir: Some(dir.clone()),
        ..ServeOptions::default()
    };

    // First daemon: the cross-query student stream (specs 0..3 share
    // their labeled pages), already byte-checked against the cold
    // reference. Shutdown spills the snapshot.
    {
        let listening = spawn_server(serve_opts());
        let addr = listening.tcp_addr().expect("tcp endpoint");
        let mut client = Client::connect_tcp(addr).expect("connect");
        for (i, spec) in specs.iter().take(3).enumerate() {
            let id = i as u64 + 1;
            let resp = client.request_line(&spec.request(id)).expect("run");
            assert_eq!(resp, format!("{{\"id\":{id},\"ok\":{}}}", spec.cold_body()));
        }
        listening.shutdown();
    }
    assert!(
        dir.join("snapshot-v1").is_dir(),
        "clean shutdown must leave a snapshot directory"
    );

    // A different question over the *same* pages the first daemon saw:
    // new query context, new query-tier key — only the base tier (NER
    // spans, structural masks) can carry over.
    let fresh = Spec {
        question: "Which students does the group page list?".to_string(),
        keywords: vec!["Students".to_string()],
        labeled: specs[0].labeled.clone(),
        targets: specs[2].targets.clone(),
    };

    // Second daemon, same directory: warm start.
    let listening = spawn_server(serve_opts());
    let addr = listening.tcp_addr().expect("tcp endpoint");
    let mut client = Client::connect_tcp(addr).expect("connect");
    let resp = client.request_line(&fresh.request(7)).expect("warm run");
    assert_eq!(
        resp,
        format!("{{\"id\":7,\"ok\":{}}}", fresh.cold_body()),
        "a warm restart must be observationally invisible"
    );

    let stats = client
        .request(&serde_json::from_str(r#"{"op":"stats"}"#).unwrap())
        .expect("stats");
    let persist = &stats["ok"]["persist"];
    assert!(
        persist["pages_loaded"].as_u64().unwrap_or(0) > 0,
        "restart must load pages from the snapshot: {stats:?}"
    );
    assert!(
        persist["base_loaded"].as_u64().unwrap_or(0) > 0,
        "restart must load base-feature tables: {stats:?}"
    );
    assert_eq!(
        persist["corrupt_skipped"].as_u64(),
        Some(0),
        "a clean snapshot has nothing to skip: {stats:?}"
    );
    assert!(
        stats["ok"]["cache"]["base_hits"].as_u64().unwrap_or(0) > 0,
        "the new question over known pages must hit the base tier: {stats:?}"
    );
    listening.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shard routing is a pure function of page *content*: whatever order
/// pages are interned in, on whatever server, a page's shard (the wire
/// handle mod the shard count) depends only on its bytes.
mod shard_routing {
    use super::*;
    use proptest::prelude::*;

    fn intern(client: &mut Client, html: &str) -> u64 {
        let mut m = serde_json::Map::new();
        m.insert("op".to_string(), serde_json::json!("intern"));
        m.insert("html".to_string(), serde_json::json!(html));
        let resp = client
            .request(&serde_json::Value::Object(m))
            .expect("intern");
        resp["ok"]["page"].as_u64().expect("handle")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn shard_assignment_ignores_intern_order(
            contents in proptest::collection::vec(0u32..500, 1..12),
            rotate in 0usize..12,
        ) {
            let pages: Vec<String> = contents
                .iter()
                .map(|c| format!("<h1>R{c}</h1><p>content {c}</p>"))
                .collect();
            // A second order: reversed, then rotated.
            let mut other = pages.clone();
            other.reverse();
            let k = rotate % other.len();
            other.rotate_left(k);

            // 4 workers explicitly: the shard count clamps to the
            // worker budget (PR 9), and auto-workers resolves to the
            // core count — which may be below 4 on a small machine.
            let spawn = || {
                spawn_server(ServeOptions {
                    shards: 4,
                    workers: 4,
                    ..ServeOptions::default()
                })
            };
            let (a, b) = (spawn(), spawn());
            let mut ca = Client::connect_tcp(a.tcp_addr().unwrap()).expect("connect");
            let mut cb = Client::connect_tcp(b.tcp_addr().unwrap()).expect("connect");

            let mut shard_of = std::collections::HashMap::new();
            for p in &pages {
                shard_of.insert(p.clone(), intern(&mut ca, p) % 4);
            }
            for p in &other {
                prop_assert_eq!(
                    intern(&mut cb, p) % 4,
                    shard_of[p],
                    "page placement must not depend on intern order"
                );
            }
            a.shutdown();
            b.shutdown();
        }
    }
}

/// The HTTP/1.1 facade: the response body is the line-protocol envelope
/// byte for byte, whatever the shard count — and errors map to typed
/// status codes.
mod http_facade {
    use super::*;
    use webqa_server::HttpClient;

    fn spawn_http(opts: ServeOptions) -> Listening {
        Server::new(opts)
            .listen_all(None, None, Some("127.0.0.1:0"))
            .expect("bind http loopback")
    }

    /// POST /v1/run at 1 and 4 shards: status 200, body identical to the
    /// line-protocol envelope (and hence to the cold engine), keep-alive
    /// across requests on one connection.
    #[test]
    fn run_over_http_is_byte_identical_across_shard_counts() {
        let specs = workload();
        let expected: Vec<String> = specs.iter().take(3).map(Spec::cold_body).collect();
        for shards in [1usize, 4] {
            // Workers pinned to the shard count so the clamp (shards ≤
            // worker budget) keeps this genuinely multi-shard even on a
            // single-core machine.
            let listening = spawn_http(ServeOptions {
                engine: engine_config(),
                max_frame_bytes: 1 << 20,
                shards,
                workers: shards,
                ..ServeOptions::default()
            });
            let addr = listening.http_addr().expect("http endpoint");
            let mut client = HttpClient::connect(addr).expect("connect");
            for (i, want_body) in expected.iter().enumerate() {
                let id = i as u64 + 1;
                let (status, body) = client
                    .post("/v1/run", &specs[i].request(id))
                    .expect("http run");
                assert_eq!(status, 200, "{body}");
                assert_eq!(
                    body,
                    format!("{{\"id\":{id},\"ok\":{want_body}}}"),
                    "HTTP body diverged from the line protocol at {shards} shard(s)"
                );
            }
            // Keep-alive held: ping still answers on the same connection.
            let (status, body) = client.get("/v1/ping").expect("ping");
            assert_eq!((status, body.contains("pong")), (200, true), "{body}");
            listening.shutdown();
        }
    }

    /// `check` over HTTP: POST-routed like the other request-bearing
    /// ops, and the body is the line protocol's envelope — static
    /// analysis without any engine state.
    #[test]
    fn check_routes_over_http() {
        let listening = spawn_http(ServeOptions {
            engine: Config::default(),
            ..ServeOptions::default()
        });
        let addr = listening.http_addr().expect("http endpoint");
        let mut client = HttpClient::connect(addr).expect("connect");
        let (status, body) = client
            .post(
                "/v1/check",
                r#"{"program":"sat(root, kw(0.60)) -> content","keywords":["Students"]}"#,
            )
            .expect("check");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains(r#""clean":true"#), "{body}");
        let (status, body) = client.get("/v1/check").expect("wrong method");
        assert_eq!(status, 405, "{body}");
        listening.shutdown();
    }

    /// Typed errors map onto HTTP status codes: 400 bad frame, 404
    /// unknown path / unknown page, 405 wrong method, 413 oversized,
    /// 422 damaged page, 504 expired deadline.
    #[test]
    fn error_kinds_map_to_status_codes() {
        let listening = spawn_http(ServeOptions {
            engine: engine_config(),
            max_frame_bytes: 1 << 20,
            ..ServeOptions::default()
        });
        let addr = listening.http_addr().expect("http endpoint");
        let mut client = HttpClient::connect(addr).expect("connect");

        let (status, body) = client.post("/v1/run", "{not json").expect("bad body");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains(r#""kind":"bad-frame""#), "{body}");

        let (status, body) = client.get("/v1/nope").expect("bad path");
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("unknown path"), "{body}");

        let (status, body) = client.get("/v1/run").expect("bad method");
        assert_eq!(status, 405, "{body}");

        let (status, body) = client
            .post("/v1/intern", r#"{"html":"<p>50&bogus;mg</p>"}"#)
            .expect("damaged page");
        assert_eq!(status, 422, "{body}");
        assert!(body.contains(r#""kind":"page""#), "{body}");

        let (status, body) = client
            .post(
                "/v1/run",
                r#"{"question":"Q","labeled":[{"page":99999,"gold":[]}]}"#,
            )
            .expect("unknown page");
        assert_eq!(status, 404, "{body}");
        assert!(body.contains(r#""kind":"unknown-page""#), "{body}");

        let spec = &workload()[0];
        let line = spec.request(9);
        let doomed = format!(r#"{{"deadline_ms":0,{}"#, &line[1..]);
        let (status, body) = client.post("/v1/run", &doomed).expect("expired deadline");
        assert_eq!(status, 504, "{body}");
        assert!(body.contains(r#""kind":"deadline-exceeded""#), "{body}");

        listening.shutdown();

        // Oversized bodies: their own server (tiny frame cap), 413.
        let listening = spawn_http(ServeOptions {
            engine: Config::default(),
            max_frame_bytes: 256,
            ..ServeOptions::default()
        });
        let addr = listening.http_addr().expect("http endpoint");
        let mut client = HttpClient::connect(addr).expect("connect");
        let huge = format!(r#"{{"html":"{}"}}"#, "x".repeat(4096));
        let (status, body) = client.post("/v1/intern", &huge).expect("oversized");
        assert_eq!(status, 413, "{body}");
        assert!(body.contains(r#""kind":"oversized""#), "{body}");
        listening.shutdown();
    }

    /// Writes raw bytes to the facade and reads until the server closes
    /// the connection — the whole point of these tests is to see what a
    /// framing-hostile client gets back, so no HttpClient in between.
    fn raw_http(addr: std::net::SocketAddr, request: &str) -> String {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("write");
        let mut buf = String::new();
        stream.read_to_string(&mut buf).expect("read to close");
        buf
    }

    /// The facade frames by `Content-Length` only; a request that makes
    /// the body boundary ambiguous must be refused with a closing
    /// response, never half-parsed. Otherwise the body bytes would be
    /// read as the *next* request on the keep-alive connection — the
    /// smuggled `GET /v1/ping` below must never produce a second
    /// response.
    #[test]
    fn ambiguous_framing_is_refused_and_never_smuggles() {
        let listening = spawn_http(ServeOptions {
            engine: Config::default(),
            ..ServeOptions::default()
        });
        let addr = listening.http_addr().expect("http endpoint");

        // Transfer-Encoding (chunked or otherwise): 411, connection
        // closed with the chunked body unread.
        let reply = raw_http(
            addr,
            "POST /v1/check HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
             1c\r\nGET /v1/ping HTTP/1.1\r\n\r\n\r\n0\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 411 Length Required"), "{reply}");
        assert!(reply.contains(r#""kind":"bad-frame""#), "{reply}");
        assert_eq!(
            reply.matches("HTTP/1.1 ").count(),
            1,
            "smuggled request must not be answered: {reply}"
        );

        // Duplicate Content-Length (even self-consistent): 400, closed.
        // Under last-wins parsing the zero-length reading would leave
        // the pipelined ping to be served as a second request.
        let reply = raw_http(
            addr,
            "POST /v1/check HTTP/1.1\r\nContent-Length: 26\r\nContent-Length: 0\r\n\r\n\
             GET /v1/ping HTTP/1.1\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 400 Bad Request"), "{reply}");
        assert!(reply.contains("duplicate Content-Length"), "{reply}");
        assert_eq!(
            reply.matches("HTTP/1.1 ").count(),
            1,
            "smuggled request must not be answered: {reply}"
        );

        // The refusals poisoned nothing: a clean request still works.
        let mut client = HttpClient::connect(addr).expect("connect");
        let (status, body) = client.get("/v1/ping").expect("ping");
        assert_eq!((status, body.contains("pong")), (200, true), "{body}");
        listening.shutdown();
    }
}

/// Protocol fuzz over pipelined connections: random interleavings of
/// valid ops, `run_batch`, deadline-carrying runs, malformed JSON, and
/// mid-frame disconnects. Two invariants, whatever the interleaving:
/// every frame gets exactly one response whose `id` echoes the request
/// (ids compare as multisets — pipelined responses arrive in completion
/// order, not request order), and the server never wedges (a fresh
/// connection always answers a ping afterwards).
mod protocol_fuzz {
    use super::*;
    use proptest::prelude::*;

    /// The fields of a small, fast `run` request (inline pages, so the
    /// server is self-contained per case).
    const TINY_RUN_FIELDS: &str = r#""question":"Who are the PhD students?","keywords":["Students"],"labeled":[{"html":"<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>","gold":["Jane Doe"]}],"targets":[{"html":"<h1>B</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>"}]"#;

    /// Renders frame kind `kind` with request id `id`, returning the
    /// line and the id the response must echo (`None` = JSON null, for
    /// frames too broken to carry one).
    fn frame(kind: u8, id: u64) -> (String, Option<u64>) {
        match kind {
            0 => (format!(r#"{{"id":{id},"op":"ping"}}"#), Some(id)),
            1 => (
                format!(
                    r#"{{"id":{id},"op":"intern","html":"<h1>P{}</h1><p>x</p>"}}"#,
                    id % 5
                ),
                Some(id),
            ),
            2 => (format!(r#"{{"id":{id},"op":"stats"}}"#), Some(id)),
            3 => (
                format!(r#"{{"id":{id},"op":"run",{TINY_RUN_FIELDS}}}"#),
                Some(id),
            ),
            4 => (
                format!(
                    r#"{{"id":{id},"op":"run_batch","tasks":[{{{TINY_RUN_FIELDS}}},{{{TINY_RUN_FIELDS}}}]}}"#
                ),
                Some(id),
            ),
            // An already-expired deadline: typed deadline-exceeded, id
            // still echoed, engine untouched.
            5 => (
                format!(r#"{{"id":{id},"op":"run","deadline_ms":0,{TINY_RUN_FIELDS}}}"#),
                Some(id),
            ),
            // Malformed JSON: bad-frame with a null id.
            6 => (format!("{{not json {id}"), None),
            // Well-formed but invalid request: typed error, id echoed.
            _ => (
                format!(r#"{{"id":{id},"op":"run","question":7}}"#),
                Some(id),
            ),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn pipelined_interleavings_echo_ids_and_never_wedge(
            script_a in proptest::collection::vec(0u8..8, 1..12),
            script_b in proptest::collection::vec(0u8..8, 1..12),
        ) {
            let listening = spawn_server(ServeOptions {
                engine: engine_config(),
                workers: 2,
                backlog: 4,
                ..ServeOptions::default()
            });
            let addr = listening.tcp_addr().expect("tcp endpoint");

            // A mid-frame disconnect racing the scripted connections: a
            // complete frame, then a torn-off partial one.
            {
                let mut half = Client::connect_tcp(addr).expect("connect");
                half.send_raw(b"{\"op\":\"ping\"}\n{\"op\":\"run\",\"question\":\"trunc")
                    .expect("partial write");
            }

            let next_id = AtomicU64::new(1);
            std::thread::scope(|scope| {
                for script in [&script_a, &script_b] {
                    let next_id = &next_id;
                    scope.spawn(move || {
                        let mut client = Client::connect_tcp(addr).expect("connect");
                        let mut want: Vec<Option<u64>> = Vec::new();
                        // Pipeline the whole script without reading.
                        for &kind in script {
                            let id = next_id.fetch_add(1, Ordering::Relaxed);
                            let (line, echo) = frame(kind, id);
                            client.send_line(&line).expect("send");
                            want.push(echo);
                        }
                        // Exactly one response per frame, ids matching as
                        // a multiset (completion order is not request
                        // order under pipelining).
                        let mut got: Vec<Option<u64>> = (0..script.len())
                            .map(|_| {
                                let resp = client.read_response_line().expect("response");
                                let v: serde_json::Value =
                                    serde_json::from_str(&resp).expect("valid envelope");
                                v["id"].as_u64()
                            })
                            .collect();
                        got.sort_unstable();
                        want.sort_unstable();
                        assert_eq!(got, want, "response ids must echo request ids");
                    });
                }
            });

            // The server survived the whole interleaving.
            let mut probe = Client::connect_tcp(addr).expect("connect after fuzz");
            let pong = probe.request_line(r#"{"op":"ping"}"#).expect("ping");
            prop_assert!(pong.contains("pong"), "{}", pong);
            listening.shutdown();
        }
    }
}

/// Real-page ingestion round-trip: the digests `webqa-cli import` prints
/// for the checked-in sample pages are byte-identical to the `"digest"`
/// field the server's `intern` op returns for the same bytes — over the
/// line protocol *and* the HTTP facade. One content-addressing scheme,
/// three doors.
mod ingestion_round_trip {
    use super::*;
    use webqa_server::HttpClient;

    /// The checked-in sample pages (`tests/fixtures/pages/`), sorted by
    /// file name exactly like `import` walks them.
    fn sample_pages() -> Vec<(String, String)> {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join("fixtures")
            .join("pages");
        let mut pages: Vec<(String, String)> = std::fs::read_dir(&dir)
            .expect("sample page directory")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "html"))
            .map(|p| {
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                let html = std::fs::read_to_string(&p).expect("readable page");
                (name, html)
            })
            .collect();
        pages.sort();
        assert!(pages.len() >= 2, "expected checked-in sample pages");
        pages
    }

    /// The `file: digest XXXX [..]` lines of an `import` run, as
    /// `(file, digest)` pairs.
    fn import_digests(out: &str) -> Vec<(String, String)> {
        out.lines()
            .filter_map(|l| {
                let (name, rest) = l.split_once(": digest ")?;
                let digest = rest.split_whitespace().next()?;
                Some((name.to_string(), digest.to_string()))
            })
            .collect()
    }

    #[test]
    fn import_digests_match_server_intern_over_both_transports() {
        let pages = sample_pages();

        // CLI side: import the directory through the normal PageStore
        // path (strict — the sample pages are sloppy but undamaged).
        let dir = format!("{}/tests/fixtures/pages", env!("CARGO_MANIFEST_DIR"));
        let out = webqa_cli::dispatch(&["import", &dir]).expect("sample pages import cleanly");
        let cli = import_digests(&out);
        assert_eq!(cli.len(), pages.len(), "one digest line per page:\n{out}");

        // Server side: the same bytes through `intern`, on both doors.
        let listening = Server::new(ServeOptions {
            engine: engine_config(),
            max_frame_bytes: 1 << 20,
            ..ServeOptions::default()
        })
        .listen_all(Some("127.0.0.1:0"), None, Some("127.0.0.1:0"))
        .expect("bind loopback");
        let mut line =
            Client::connect_tcp(listening.tcp_addr().expect("tcp endpoint")).expect("connect tcp");
        let mut http =
            HttpClient::connect(listening.http_addr().expect("http endpoint")).expect("connect");

        for ((name, html), (cli_name, cli_digest)) in pages.iter().zip(&cli) {
            assert_eq!(name, cli_name, "import must walk files in sorted order");
            let mut req = serde_json::Map::new();
            req.insert("op".to_string(), serde_json::json!("intern"));
            req.insert("html".to_string(), serde_json::json!(html.clone()));
            let req = serde_json::to_string(&serde_json::Value::Object(req)).unwrap();

            let resp = line.request_line(&req).expect("line-protocol intern");
            let v: serde_json::Value = serde_json::from_str(&resp).expect("valid envelope");
            assert_eq!(
                v["ok"]["digest"].as_str(),
                Some(cli_digest.as_str()),
                "{name}: line-protocol digest diverged from `import`: {resp}"
            );

            let (status, body) = http.post("/v1/intern", &req).expect("http intern");
            assert_eq!(status, 200, "{name}: {body}");
            let v: serde_json::Value = serde_json::from_str(&body).expect("valid envelope");
            assert_eq!(
                v["ok"]["digest"].as_str(),
                Some(cli_digest.as_str()),
                "{name}: HTTP digest diverged from `import`: {body}"
            );
        }
        listening.shutdown();
    }
}
