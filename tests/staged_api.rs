//! Corpus-level tests of the session-oriented engine API: one shared
//! `PageStore` across many tasks, batch-vs-sequential determinism, and
//! the staged interactive-labeling loop.

use std::sync::Arc;

use webqa::{Config, Engine, SynthConfig};
use webqa_corpus::{task_by_id, Corpus};

/// Two tasks per domain — the batch workload of the determinism test.
const TASK_IDS: [&str; 8] = [
    "fac_t1",
    "fac_t2",
    "conf_t1",
    "conf_t2",
    "class_t1",
    "class_t2",
    "clinic_t1",
    "clinic_t2",
];

fn fast_config() -> Config {
    Config {
        synth: SynthConfig::fast(),
        ..Config::default()
    }
}

/// Interns a small corpus once into a single engine and builds the eight
/// engine tasks over the shared store. Within a domain the two tasks
/// reference the *same* `PageId`s — the interning the redesign exists for.
fn engine_and_corpus_tasks() -> (Engine, Vec<webqa::Task>) {
    let corpus = Corpus::generate(5, 2024);
    let mut engine = Engine::new(fast_config());
    let tasks = TASK_IDS
        .iter()
        .map(|id| {
            let task = task_by_id(id).expect("catalogue task");
            let data = corpus.dataset(task, 2);
            webqa::Task::from_split(
                task.question,
                task.keywords.iter().copied(),
                engine.store_mut(),
                data.train.into_iter().map(|p| (p.page, p.gold)),
                data.test.into_iter().map(|p| p.page),
            )
        })
        .collect();
    (engine, tasks)
}

#[test]
fn batch_matches_sequential_on_corpus_tasks() {
    let (engine, tasks) = engine_and_corpus_tasks();

    let sequential: Vec<_> = tasks
        .iter()
        .map(|t| engine.run(t).expect("ids from this store"))
        .collect();
    let batched = engine.run_batch(&tasks, 4).expect("same ids");

    assert_eq!(batched.len(), sequential.len());
    for (id, (b, s)) in TASK_IDS.iter().zip(batched.iter().zip(&sequential)) {
        assert_eq!(b.program, s.program, "{id}: selected program diverged");
        assert_eq!(b.answers, s.answers, "{id}: answers diverged");
    }
}

#[test]
fn corpus_pages_intern_once_across_tasks() {
    let (engine, tasks) = engine_and_corpus_tasks();

    // 4 domains × 5 pages: the 8 tasks (2 per domain) re-submitted every
    // page, yet each is stored exactly once.
    assert_eq!(engine.store().len(), 20);

    // The two tasks of a domain resolve to the *same* shared trees.
    let (fac1, fac2) = (&tasks[0], &tasks[1]);
    assert_eq!(fac1.labeled[0].0, fac2.labeled[0].0);
    let t1 = engine.store().get(fac1.labeled[0].0).unwrap();
    let t2 = engine.store().get(fac2.labeled[0].0).unwrap();
    assert!(Arc::ptr_eq(t1, t2), "interning must share one allocation");
}

/// Regression: batch-level (`Engine::run_batch`) and branch-level
/// (`SynthConfig::jobs`) parallelism compose without changing output.
/// The batch runner caps the effective branch worker count so
/// `jobs × synth.jobs` cannot oversubscribe the machine — and neither
/// the cap nor any worker-count combination may leak into programs or
/// answers.
#[test]
fn batch_times_branch_parallelism_is_deterministic() {
    let (engine, tasks) = engine_and_corpus_tasks();
    let sequential: Vec<_> = tasks
        .iter()
        .map(|t| engine.run(t).expect("ids from this store"))
        .collect();

    // Deliberately oversubscribed: 4 batch workers × 8 branch workers
    // on a small CI box. The runner caps the product; results must be
    // byte-identical to the fully sequential engine.
    let oversubscribed = Engine::with_store(
        Config {
            synth: SynthConfig::fast().with_jobs(8),
            ..fast_config()
        },
        engine.store().clone(),
    );
    for jobs in [2, 4] {
        let batched = oversubscribed.run_batch(&tasks, jobs).expect("same ids");
        for (id, (b, s)) in TASK_IDS.iter().zip(batched.iter().zip(&sequential)) {
            assert_eq!(
                b.program, s.program,
                "{id}: program diverged at jobs={jobs}"
            );
            assert_eq!(
                b.answers, s.answers,
                "{id}: answers diverged at jobs={jobs}"
            );
            assert_eq!(
                b.synthesis.f1, s.synthesis.f1,
                "{id}: F1 diverged at jobs={jobs}"
            );
            assert_eq!(
                b.synthesis.counts, s.synthesis.counts,
                "{id}: counts diverged at jobs={jobs}"
            );
        }
    }
}

#[test]
fn incremental_label_via_stages_does_not_regress_train_f1() {
    let corpus = Corpus::generate(5, 2024);
    let task = task_by_id("fac_t1").unwrap();
    let data = corpus.dataset(task, 1);

    // Keep the test gold aligned with the unlabeled order so a suggested
    // index can be answered like a user would.
    let mut unlabeled_gold = Vec::new();
    let mut engine = Engine::new(fast_config());
    let spec = webqa::Task::from_split(
        task.question,
        task.keywords.iter().copied(),
        engine.store_mut(),
        data.train.into_iter().map(|p| (p.page, p.gold)),
        data.test.into_iter().map(|p| {
            unlabeled_gold.push(p.gold);
            p.page
        }),
    );

    let first = engine.prepare(&spec).unwrap().synthesize();
    let f1_before = first.train_f1();

    // One round of the Section 7 loop: suggest → label → re-synthesize.
    let mut prepared = first.refine();
    let suggested = prepared.suggest_labels(1);
    assert_eq!(suggested.len(), 1, "a target page should be suggested");
    let idx = suggested[0];
    prepared.label(idx, unlabeled_gold.remove(idx));
    assert_eq!(prepared.examples().len(), 2);

    let second = prepared.synthesize();
    assert!(
        second.train_f1() + 1e-9 >= f1_before,
        "adding a gold label regressed train F1: {} -> {}",
        f1_before,
        second.train_f1()
    );
    assert!(!second.outcome().programs.is_empty());
}
