//! Round-trip stability of the HTML substrate on *realistic* input: every
//! page the corpus generators emit must satisfy
//! `parse(serialize(parse(html))) == parse(html)` — i.e. one
//! parse→serialize pass reaches a fixed point. The DSL evaluator and all
//! baselines consume these trees, so re-serialization must not shift
//! structure or text.

use webqa_corpus::{generate_pages, Domain};
use webqa_html::{parse_html, serialize, PageTree};

const SEED: u64 = 7;
const PAGES_PER_DOMAIN: usize = 4;

#[test]
fn corpus_pages_reach_serialization_fixed_point() {
    for domain in Domain::ALL {
        for page in generate_pages(domain, PAGES_PER_DOMAIN, SEED) {
            let doc1 = parse_html(&page.html);
            let emitted = serialize(&doc1);
            let doc2 = parse_html(&emitted);
            assert_eq!(
                doc1, doc2,
                "{domain} page {} changed structure after one serialize cycle",
                page.name
            );
            // And the cycle is idempotent from then on.
            let emitted2 = serialize(&doc2);
            assert_eq!(
                emitted, emitted2,
                "{domain} page {} serialization is not stable",
                page.name
            );
        }
    }
}

#[test]
fn corpus_pages_keep_their_page_tree_across_round_trip() {
    // The synthesizer sees PageTrees, not raw DOMs: re-serialized HTML must
    // produce the identical tree (section structure, text, node kinds).
    for domain in Domain::ALL {
        for page in generate_pages(domain, PAGES_PER_DOMAIN, SEED) {
            let original = PageTree::parse(&page.html);
            let reparsed = PageTree::parse(&serialize(&parse_html(&page.html)));
            assert_eq!(
                original, reparsed,
                "{domain} page {} page-tree drifted across round-trip",
                page.name
            );
        }
    }
}

#[test]
fn corpus_pages_are_nonempty_and_parse_to_nontrivial_trees() {
    // Guards the generators themselves: an accidentally-empty page would
    // make the round-trip tests above pass vacuously.
    for domain in Domain::ALL {
        let pages = generate_pages(domain, PAGES_PER_DOMAIN, SEED);
        assert_eq!(pages.len(), PAGES_PER_DOMAIN);
        for page in &pages {
            assert!(
                !page.html.is_empty(),
                "{domain} page {} is empty",
                page.name
            );
            let tree = PageTree::parse(&page.html);
            assert!(
                tree.len() > 1,
                "{domain} page {} parses to a trivial tree",
                page.name
            );
        }
    }
}

#[test]
fn generation_is_deterministic_per_seed() {
    // The whole experiment pipeline assumes seeded reproducibility.
    for domain in [Domain::Faculty, Domain::Clinic] {
        let a = generate_pages(domain, 3, 11);
        let b = generate_pages(domain, 3, 11);
        assert!(a.iter().zip(&b).all(|(x, y)| x.html == y.html));
        let c = generate_pages(domain, 3, 12);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.html != y.html),
            "{domain}: different seeds produced identical corpora"
        );
    }
}
