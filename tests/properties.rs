//! Cross-crate property tests: invariants that hold across the whole
//! pipeline on generated corpus pages.

use proptest::prelude::*;
use webqa_corpus::{generate_pages, Domain, TASKS};
use webqa_dsl::{PageTree, Program, QueryContext};
use webqa_html::{parse_html, parse_html_report, serialize, try_parse_html};
use webqa_metrics::score_strings;
use webqa_synth::{synthesize, Example, SynthConfig};

fn domain_strategy() -> impl Strategy<Value = Domain> {
    prop_oneof![
        Just(Domain::Faculty),
        Just(Domain::Conference),
        Just(Domain::Class),
        Just(Domain::Clinic),
    ]
}

/// One fragment of torture markup, concatenated into parser inputs:
/// raw-text elements whose bodies look like markup, malformed character
/// references, bogus declarations, and sloppy nesting — the noise
/// classes the conformance corpus (`tests/fixtures/html5/`) pins case by
/// case, here recombined arbitrarily.
fn torture_fragment() -> BoxedStrategy<String> {
    let frag = |s: &str| Just(s.to_string()).boxed();
    prop_oneof![
        frag("plain text "),
        frag("&amp; a &lt; b &#65;&#x1F600; "),
        // Malformed-entity noise: unknown names, bad digits, bare `&`.
        frag("50&bogus;mg "),
        frag("&#xZZ; &#; tom & jerry "),
        frag("<p>para "),
        frag("</p>"),
        frag("<div class=x data-k=\"v>w\">"),
        frag("</div>"),
        frag("<li>item "),
        frag("<ul><li>a<li>b</ul>"),
        // Raw-text elements: bodies full of fake markup and fake
        // entities; script/style are dropped, textarea is kept.
        frag("<script>if (a < b && c) { s = \"</p>&bogus;\"; }</script>"),
        frag("<style>p::before { content: \"<div>&copy;\"; }</style>"),
        frag("<textarea>raw <b>kept</b> &amp; &bogus;</textarea>"),
        frag("<!-- comment with <p> inside -->"),
        frag("<![CDATA[ not html ]]>"),
        frag("<?php echo '<p>'; ?>"),
        // Depth noise: a few of these together cross MAX_OPEN_DEPTH, so
        // strict mode's TooDeep path gets exercised too.
        Just("<div>".repeat(60)).boxed(),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated page parses into a tree the DSL can evaluate over,
    /// with any task's query context.
    #[test]
    fn corpus_pages_are_evaluable(domain in domain_strategy(), seed in 0u64..500, t in 0usize..25) {
        let page = generate_pages(domain, 1, seed).remove(0);
        let tree = page.tree();
        let task = &TASKS[t];
        let ctx = QueryContext::new(task.question, task.keywords.to_vec());
        let program: Program =
            "sat(descendants(root, leaf), true) -> filter(split(content, ','), kw(0.50))"
                .parse()
                .expect("valid");
        let out = program.eval(&ctx, &tree);
        // Output strings come from the page: their tokens all appear in it.
        let page_text = tree.subtree_text(tree.root());
        let s = score_strings(&out, &[page_text]);
        prop_assert!((s.precision - 1.0).abs() < 1e-9 || out.is_empty());
    }

    /// Synthesis on corpus-derived examples is total, returns programs
    /// that reproduce the reported training F1, and every returned
    /// program round-trips through the text format.
    #[test]
    fn synthesis_result_is_consistent(seed in 0u64..50, t in 0usize..25) {
        let task = &TASKS[t];
        let pages = generate_pages(task.domain, 2, seed);
        let ctx = QueryContext::new(task.question, task.keywords.to_vec());
        let examples: Vec<Example> = pages
            .iter()
            .map(|p| Example::new(p.tree(), p.gold(task.id).to_vec()))
            .collect();
        let mut cfg = SynthConfig::fast();
        cfg.max_guards_per_branch = 128; // keep the property test quick
        cfg.max_programs = 50;
        let out = synthesize(&cfg, &ctx, &examples);
        prop_assert!((0.0..=1.0).contains(&out.f1));
        for p in out.programs.iter().take(5) {
            let counts = webqa_synth::program_counts(&ctx, &examples, p);
            prop_assert!(
                (counts.f1() - out.f1).abs() < 1e-6,
                "program {} scores {} but synthesis reported {}",
                p, counts.f1(), out.f1
            );
            let reparsed: Program = p.to_string().parse().expect("round-trip");
            prop_assert_eq!(p, &reparsed);
        }
    }

    /// The HTML round trip: corpus generator → HTML → page tree keeps
    /// every gold string's tokens on the page (no information is lost in
    /// parsing).
    #[test]
    fn gold_survives_parsing(domain in domain_strategy(), seed in 0u64..500) {
        let page = generate_pages(domain, 1, seed).remove(0);
        let tree = page.tree();
        let all_text = tree.subtree_text(tree.root());
        for (task_id, gold) in &page.gold {
            let s = score_strings(gold, std::slice::from_ref(&all_text));
            // every gold token appears in the page text (precision of gold
            // against the page is 1)
            prop_assert!(
                gold.is_empty() || s.precision > 0.999,
                "{task_id}: gold tokens missing from page"
            );
        }
    }

    /// Page trees produced by the builder and by parsing agree on
    /// invariants the evaluator relies on (ids dense and pre-ordered).
    #[test]
    fn page_ids_are_preorder(domain in domain_strategy(), seed in 0u64..500) {
        let page = generate_pages(domain, 1, seed).remove(0);
        let tree: PageTree = page.tree();
        let mut seen = vec![false; tree.len()];
        let mut stack = vec![tree.root()];
        let mut expected = 0usize;
        while let Some(n) = stack.pop() {
            prop_assert_eq!(n.index(), expected, "pre-order ids");
            expected += 1;
            seen[n.index()] = true;
            for &c in tree.children(n).iter().rev() {
                stack.push(c);
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    /// Torture markup — raw-text elements, malformed entities, bogus
    /// declarations, over-deep nesting — never panics the lenient
    /// parser, and `serialize ∘ parse` is a fixpoint from the first
    /// round trip on (the conformance corpus pins this case by case;
    /// this recombines the same noise classes arbitrarily).
    #[test]
    fn torture_html_parses_totally_and_serialization_reaches_a_fixpoint(
        parts in proptest::collection::vec(torture_fragment(), 1..12)
    ) {
        let input = parts.concat();
        let (doc, diag) = parse_html_report(&input);
        // The diagnostics render; `"clean"` iff every counter is zero.
        let summary = diag.summary();
        prop_assert_eq!(summary == "clean", diag.is_clean());

        let emitted = serialize(&doc);
        let reparsed = parse_html(&emitted);
        prop_assert_eq!(
            serialize(&reparsed),
            emitted.clone(),
            "serialize∘parse must be a fixpoint for {input:?}"
        );

        // Strict mode may reject (malformed entities, over-deep
        // nesting), but whenever it accepts it must build the very tree
        // lenient parsing builds.
        if let Ok(strict) = try_parse_html(&input) {
            prop_assert_eq!(
                serialize(&strict),
                serialize(&doc),
                "strict and lenient parses diverge on accepted input {input:?}"
            );
        }

        // The DSL-facing wrapper is total on the same inputs: the root
        // always exists and the whole tree walks without panicking.
        let page = PageTree::parse(&input);
        let _ = page.subtree_text(page.root());
    }
}
