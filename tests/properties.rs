//! Cross-crate property tests: invariants that hold across the whole
//! pipeline on generated corpus pages.

use proptest::prelude::*;
use webqa_corpus::{generate_pages, Domain, TASKS};
use webqa_dsl::{PageTree, Program, QueryContext};
use webqa_metrics::score_strings;
use webqa_synth::{synthesize, Example, SynthConfig};

fn domain_strategy() -> impl Strategy<Value = Domain> {
    prop_oneof![
        Just(Domain::Faculty),
        Just(Domain::Conference),
        Just(Domain::Class),
        Just(Domain::Clinic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated page parses into a tree the DSL can evaluate over,
    /// with any task's query context.
    #[test]
    fn corpus_pages_are_evaluable(domain in domain_strategy(), seed in 0u64..500, t in 0usize..25) {
        let page = generate_pages(domain, 1, seed).remove(0);
        let tree = page.tree();
        let task = &TASKS[t];
        let ctx = QueryContext::new(task.question, task.keywords.to_vec());
        let program: Program =
            "sat(descendants(root, leaf), true) -> filter(split(content, ','), kw(0.50))"
                .parse()
                .expect("valid");
        let out = program.eval(&ctx, &tree);
        // Output strings come from the page: their tokens all appear in it.
        let page_text = tree.subtree_text(tree.root());
        let s = score_strings(&out, &[page_text]);
        prop_assert!((s.precision - 1.0).abs() < 1e-9 || out.is_empty());
    }

    /// Synthesis on corpus-derived examples is total, returns programs
    /// that reproduce the reported training F1, and every returned
    /// program round-trips through the text format.
    #[test]
    fn synthesis_result_is_consistent(seed in 0u64..50, t in 0usize..25) {
        let task = &TASKS[t];
        let pages = generate_pages(task.domain, 2, seed);
        let ctx = QueryContext::new(task.question, task.keywords.to_vec());
        let examples: Vec<Example> = pages
            .iter()
            .map(|p| Example::new(p.tree(), p.gold(task.id).to_vec()))
            .collect();
        let mut cfg = SynthConfig::fast();
        cfg.max_guards_per_branch = 128; // keep the property test quick
        cfg.max_programs = 50;
        let out = synthesize(&cfg, &ctx, &examples);
        prop_assert!((0.0..=1.0).contains(&out.f1));
        for p in out.programs.iter().take(5) {
            let counts = webqa_synth::program_counts(&ctx, &examples, p);
            prop_assert!(
                (counts.f1() - out.f1).abs() < 1e-6,
                "program {} scores {} but synthesis reported {}",
                p, counts.f1(), out.f1
            );
            let reparsed: Program = p.to_string().parse().expect("round-trip");
            prop_assert_eq!(p, &reparsed);
        }
    }

    /// The HTML round trip: corpus generator → HTML → page tree keeps
    /// every gold string's tokens on the page (no information is lost in
    /// parsing).
    #[test]
    fn gold_survives_parsing(domain in domain_strategy(), seed in 0u64..500) {
        let page = generate_pages(domain, 1, seed).remove(0);
        let tree = page.tree();
        let all_text = tree.subtree_text(tree.root());
        for (task_id, gold) in &page.gold {
            let s = score_strings(gold, std::slice::from_ref(&all_text));
            // every gold token appears in the page text (precision of gold
            // against the page is 1)
            prop_assert!(
                gold.is_empty() || s.precision > 0.999,
                "{task_id}: gold tokens missing from page"
            );
        }
    }

    /// Page trees produced by the builder and by parsing agree on
    /// invariants the evaluator relies on (ids dense and pre-ordered).
    #[test]
    fn page_ids_are_preorder(domain in domain_strategy(), seed in 0u64..500) {
        let page = generate_pages(domain, 1, seed).remove(0);
        let tree: PageTree = page.tree();
        let mut seen = vec![false; tree.len()];
        let mut stack = vec![tree.root()];
        let mut expected = 0usize;
        while let Some(n) = stack.pop() {
            prop_assert_eq!(n.index(), expected, "pre-order ids");
            expected += 1;
            seen[n.index()] = true;
            for &c in tree.children(n).iter().rev() {
                stack.push(c);
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }
}
