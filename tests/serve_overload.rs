//! The overload & cancellation harness for the bounded serving layer.
//!
//! PR 6 replaced thread-per-connection execution with a fixed worker
//! pool behind a bounded admission queue, plus per-request deadlines
//! enforced cooperatively inside the synthesis enumerator. This harness
//! pins the three behaviors that make that architecture trustworthy:
//!
//! * **Shedding is prompt and typed.** With every worker busy and the
//!   backlog full, excess requests get an `overloaded` error in
//!   milliseconds — they never hang, never queue, and never disturb the
//!   admitted requests, whose responses stay byte-identical to a cold,
//!   never-cached engine.
//! * **Deadlines bound latency, queue wait included.** A request whose
//!   budget expires — mid-synthesis or while still queued — returns a
//!   typed `deadline-exceeded` promptly, far sooner than the full run
//!   would take, and leaves the engine unpoisoned.
//! * **Cancellation is isolated.** On one pipelined connection, a
//!   deadline-killed request changes nothing about its neighbors:
//!   their responses remain byte-identical to the cold reference.

use std::time::{Duration, Instant};

use webqa::{CacheConfig, Config, Engine, SynthConfig, Task};
use webqa_corpus::{task_by_id, Corpus};
use webqa_server::{render_run_result, Client, Listening, ServeOptions, Server};

/// Paper-scale synthesis: heavy enough that a corpus task occupies a
/// worker for ~a second (the "slow request"), while tiny inline pages
/// (the "probes") still answer fast.
fn engine_config() -> Config {
    Config {
        synth: SynthConfig::paper(),
        ..Config::default()
    }
}

/// One request spec: wire fields plus everything needed to replay it on
/// a cold local engine.
#[derive(Clone)]
struct Spec {
    question: String,
    keywords: Vec<String>,
    labeled: Vec<(String, Vec<String>)>,
    targets: Vec<String>,
}

impl Spec {
    fn request_fields(&self) -> String {
        let mut m = serde_json::Map::new();
        m.insert("op".to_string(), serde_json::json!("run"));
        m.insert(
            "question".to_string(),
            serde_json::json!(self.question.clone()),
        );
        m.insert(
            "keywords".to_string(),
            serde_json::json!(self.keywords.clone()),
        );
        let labeled: Vec<serde_json::Value> = self
            .labeled
            .iter()
            .map(|(html, gold)| {
                let mut e = serde_json::Map::new();
                e.insert("html".to_string(), serde_json::json!(html.clone()));
                e.insert("gold".to_string(), serde_json::json!(gold.clone()));
                serde_json::Value::Object(e)
            })
            .collect();
        m.insert("labeled".to_string(), serde_json::Value::Array(labeled));
        let targets: Vec<serde_json::Value> = self
            .targets
            .iter()
            .map(|html| {
                let mut e = serde_json::Map::new();
                e.insert("html".to_string(), serde_json::json!(html.clone()));
                serde_json::Value::Object(e)
            })
            .collect();
        m.insert("targets".to_string(), serde_json::Value::Array(targets));
        let all = serde_json::to_string(&serde_json::Value::Object(m)).expect("serializable");
        // Strip the outer braces so callers can splice in id/deadline.
        all[1..all.len() - 1].to_string()
    }

    fn request(&self, id: u64) -> String {
        format!("{{\"id\":{id},{}}}", self.request_fields())
    }

    fn request_with_deadline(&self, id: u64, deadline_ms: u64) -> String {
        format!(
            "{{\"id\":{id},\"deadline_ms\":{deadline_ms},{}}}",
            self.request_fields()
        )
    }

    /// The `ok` body a cold, never-cached, single-threaded engine
    /// computes, rendered through the server's own code path.
    fn cold_body(&self) -> String {
        let mut engine = Engine::new(Config {
            cache: CacheConfig::disabled(),
            ..engine_config()
        });
        let mut task = Task::new(self.question.clone(), self.keywords.clone());
        for (html, gold) in &self.labeled {
            let id = engine.store_mut().insert_html(html).expect("clean HTML");
            task.labeled.push((id, gold.clone()));
        }
        for html in &self.targets {
            let id = engine.store_mut().insert_html(html).expect("clean HTML");
            task.unlabeled.push(id);
        }
        let result = engine.run(&task).expect("ids resolve");
        serde_json::to_string(&render_run_result(&result)).expect("serializable")
    }
}

/// A slow request: a corpus task at paper scale (~1 s of synthesis).
/// Distinct seeds give distinct pages, so no two slow requests share a
/// result-cache entry.
fn slow_spec(seed: u64) -> Spec {
    let task = task_by_id("conf_t3").expect("catalogue task");
    let corpus = Corpus::generate(4, seed);
    let data = corpus.dataset(task, 2);
    Spec {
        question: task.question.to_string(),
        keywords: task.keywords.iter().map(|k| k.to_string()).collect(),
        labeled: data.train.into_iter().map(|p| (p.html, p.gold)).collect(),
        targets: data.test.into_iter().map(|p| p.html).collect(),
    }
}

/// A tiny probe request (single small inline page): answers in
/// milliseconds even at paper scale. `variant` varies the content so
/// distinct probes miss the result cache.
fn probe_spec(variant: u64) -> Spec {
    Spec {
        question: "Who are the PhD students?".to_string(),
        keywords: vec!["Students".to_string()],
        labeled: vec![(
            format!("<h1>A{variant}</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>"),
            vec!["Jane Doe".to_string()],
        )],
        targets: vec![format!(
            "<h1>B{variant}</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>"
        )],
    }
}

/// Interns one page through the wire, returning its handle.
fn intern(client: &mut Client, html: &str) -> u64 {
    let mut m = serde_json::Map::new();
    m.insert("op".to_string(), serde_json::json!("intern"));
    m.insert("html".to_string(), serde_json::json!(html));
    let resp = client
        .request(&serde_json::Value::Object(m))
        .expect("intern");
    resp["ok"]["page"].as_u64().expect("handle")
}

impl Spec {
    /// Interns this spec's pages up front and returns a handle-based
    /// `run` request — the high-throughput client pattern. Inline-HTML
    /// requests intern during classification, which briefly serializes
    /// against in-flight synthesis (the engine's write lock); handle
    /// requests classify lock-free, so admission control (queueing,
    /// shedding) is exercised without that coupling.
    fn wired_request(&self, client: &mut Client, id: u64) -> String {
        let labeled: Vec<serde_json::Value> = self
            .labeled
            .iter()
            .map(|(html, gold)| {
                let mut e = serde_json::Map::new();
                e.insert("page".to_string(), serde_json::json!(intern(client, html)));
                e.insert("gold".to_string(), serde_json::json!(gold.clone()));
                serde_json::Value::Object(e)
            })
            .collect();
        let targets: Vec<u64> = self.targets.iter().map(|h| intern(client, h)).collect();
        let mut m = serde_json::Map::new();
        m.insert("id".to_string(), serde_json::json!(id));
        m.insert("op".to_string(), serde_json::json!("run"));
        m.insert(
            "question".to_string(),
            serde_json::json!(self.question.clone()),
        );
        m.insert(
            "keywords".to_string(),
            serde_json::json!(self.keywords.clone()),
        );
        m.insert("labeled".to_string(), serde_json::Value::Array(labeled));
        m.insert("targets".to_string(), serde_json::json!(targets));
        serde_json::to_string(&serde_json::Value::Object(m)).expect("serializable")
    }
}

fn spawn_server(opts: ServeOptions) -> Listening {
    Server::new(opts)
        .listen(Some("127.0.0.1:0"), None)
        .expect("bind loopback")
}

fn stats(addr: std::net::SocketAddr) -> serde_json::Value {
    let mut c = Client::connect_tcp(addr).expect("connect");
    c.request(&serde_json::from_str(r#"{"op":"stats"}"#).unwrap())
        .expect("stats")
}

/// The headline test: saturate a 2-worker server, fill its backlog of
/// 2, and hammer it with probes. The probes shed promptly with typed
/// `overloaded` errors; the four admitted requests complete
/// byte-identical to the cold reference; the drained server then
/// serves a fresh request normally and shuts down cleanly.
#[test]
fn saturated_server_sheds_promptly_and_admitted_requests_stay_exact() {
    // The first two seeds feed the workers and must keep them busy for
    // seconds (corpus seeds vary: these two measure ~3 s at paper
    // scale); the last two only need to sit in the backlog, so fast
    // seeds keep the drain phase short.
    let slow: Vec<Spec> = [4u64, 7, 3, 9].into_iter().map(slow_spec).collect();
    let slow_cold: Vec<String> = slow.iter().map(Spec::cold_body).collect();
    let drain_probe = probe_spec(0);
    let drain_cold = drain_probe.cold_body();

    let listening = spawn_server(ServeOptions {
        engine: engine_config(),
        workers: 2,
        backlog: 2,
        ..ServeOptions::default()
    });
    let addr = listening.tcp_addr().expect("tcp endpoint");

    // Pre-intern every page while the server is idle, so the
    // saturation and probe phases classify lock-free (handle-based
    // requests) and admission control is what's being measured.
    let mut setup = Client::connect_tcp(addr).expect("connect");
    let slow_requests: Vec<String> = slow
        .iter()
        .enumerate()
        .map(|(i, s)| s.wired_request(&mut setup, i as u64 + 1))
        .collect();
    let probe_requests: Vec<String> = (0..6u64)
        .map(|i| probe_spec(100 + i).wired_request(&mut setup, 100 + i))
        .collect();

    // Saturate in two deterministic steps (sent without reading, so
    // nothing blocks). First occupy both workers and *watch them start*
    // via the `inflight` stat — pushing all four at once could race the
    // workers' pops and shed a slow request instead of a probe.
    let mut slow_conns: Vec<Client> = Vec::new();
    for req in &slow_requests[..2] {
        let mut c = Client::connect_tcp(addr).expect("connect");
        c.send_line(req).expect("send");
        slow_conns.push(c);
    }
    let t0 = Instant::now();
    loop {
        let s = stats(addr);
        let inflight = s["ok"]["inflight"].as_u64().unwrap();
        let depth = s["ok"]["queue_depth"].as_u64().unwrap();
        if inflight == 2 && depth == 0 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "workers never picked up the slow pair (inflight {inflight}, depth {depth})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Then fill the backlog: 2 more slow requests, both queued.
    for req in &slow_requests[2..] {
        let mut c = Client::connect_tcp(addr).expect("connect");
        c.send_line(req).expect("send");
        slow_conns.push(c);
    }
    let t0 = Instant::now();
    loop {
        let depth = stats(addr)["ok"]["queue_depth"].as_u64().unwrap();
        if depth == 2 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "backlog never filled (queue_depth {depth})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Burst 6 probes on one pipelined connection. Every one must shed:
    // both workers are seconds away from finishing their runs and the
    // backlog is full.
    let mut prober = Client::connect_tcp(addr).expect("connect");
    let burst = Instant::now();
    for req in &probe_requests {
        prober.send_line(req).expect("send probe");
    }
    for _ in 0..6 {
        let resp = prober.read_response_line().expect("shed response");
        assert!(
            resp.contains(r#""kind":"overloaded""#),
            "expected a shed, got: {resp}"
        );
    }
    assert!(
        burst.elapsed() < Duration::from_secs(2),
        "shedding must be prompt, took {:?}",
        burst.elapsed()
    );

    // Every admitted request completes byte-identical to the cold,
    // never-cached reference — overload changed nothing about them.
    for (i, mut conn) in slow_conns.into_iter().enumerate() {
        let resp = conn.read_response_line().expect("slow response");
        let want = format!("{{\"id\":{},\"ok\":{}}}", i + 1, slow_cold[i]);
        assert_eq!(resp, want, "admitted request {i} diverged under overload");
    }

    // Drained: a fresh request is served normally, and the counters
    // show exactly the 6 sheds (which also count as errors).
    let mut fresh = Client::connect_tcp(addr).expect("connect");
    let resp = fresh
        .request_line(&drain_probe.request(200))
        .expect("drained response");
    assert_eq!(resp, format!("{{\"id\":200,\"ok\":{drain_cold}}}"));
    let s = stats(addr);
    assert_eq!(s["ok"]["shed"].as_u64(), Some(6), "{s:?}");
    assert_eq!(s["ok"]["deadline_exceeded"].as_u64(), Some(0), "{s:?}");
    assert_eq!(s["ok"]["queue_depth"].as_u64(), Some(0), "{s:?}");
    assert!(s["ok"]["errors"].as_u64().unwrap() >= 6, "{s:?}");

    let t = Instant::now();
    listening.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "drained server must shut down promptly"
    );
}

/// Deadlines bound latency from *frame arrival*: one expires
/// mid-synthesis, one expires while still queued behind a busy worker —
/// both come back `deadline-exceeded`, both promptly.
#[test]
fn deadlines_cover_synthesis_and_queue_wait() {
    let listening = spawn_server(ServeOptions {
        engine: engine_config(),
        workers: 1,
        backlog: 4,
        ..ServeOptions::default()
    });
    let addr = listening.tcp_addr().expect("tcp endpoint");

    // Mid-synthesis: a ~1 s run under a 150 ms budget aborts early.
    let mut c = Client::connect_tcp(addr).expect("connect");
    let t0 = Instant::now();
    let resp = c
        .request_line(&slow_spec(7).request_with_deadline(1, 150))
        .expect("response");
    let elapsed = t0.elapsed();
    assert!(
        resp.contains(r#""kind":"deadline-exceeded""#),
        "expected a deadline trip, got: {resp}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline must abort the run well before it completes, took {elapsed:?}"
    );

    // Queue wait counts: occupy the single worker with a slow run, then
    // pipeline a *tiny* probe with a 50 ms budget behind it. The probe
    // expires in the queue and is never synthesized.
    let mut busy = Client::connect_tcp(addr).expect("connect");
    busy.send_line(&slow_spec(8).request(2)).expect("send");
    // Give the worker a moment to pick the slow job up.
    std::thread::sleep(Duration::from_millis(100));
    let mut queued = Client::connect_tcp(addr).expect("connect");
    let resp = queued
        .request_line(&probe_spec(1).request_with_deadline(3, 50))
        .expect("response");
    assert!(
        resp.contains(r#""kind":"deadline-exceeded""#),
        "a budget spent queueing must still trip: {resp}"
    );
    let resp = busy.read_response_line().expect("slow response");
    assert!(
        resp.contains(r#""ok""#),
        "the slow run itself is fine: {resp}"
    );

    let s = stats(addr);
    assert_eq!(s["ok"]["deadline_exceeded"].as_u64(), Some(2), "{s:?}");
    assert_eq!(s["ok"]["shed"].as_u64(), Some(0), "{s:?}");
    listening.shutdown();
}

/// Cancellation is isolated: on one pipelined connection, a
/// deadline-killed request leaves its neighbors byte-identical to the
/// cold reference — before it, after it, and on the same engine.
#[test]
fn pipelined_deadline_failure_leaves_neighbors_byte_identical() {
    let a = probe_spec(10);
    let c = probe_spec(11);
    let (a_cold, c_cold) = (a.cold_body(), c.cold_body());

    let listening = spawn_server(ServeOptions {
        engine: engine_config(),
        workers: 2,
        backlog: 8,
        ..ServeOptions::default()
    });
    let addr = listening.tcp_addr().expect("tcp endpoint");
    let mut client = Client::connect_tcp(addr).expect("connect");

    // Pipeline: fast A, doomed B (a slow run under an immediate
    // deadline), fast C — all in flight at once.
    client.send_line(&a.request(1)).expect("send");
    client
        .send_line(&slow_spec(9).request_with_deadline(2, 1))
        .expect("send");
    client.send_line(&c.request(3)).expect("send");

    // Responses arrive in completion order; collect all three by id.
    let mut by_id = std::collections::HashMap::new();
    for _ in 0..3 {
        let resp = client.read_response_line().expect("response");
        let v: serde_json::Value = serde_json::from_str(&resp).expect("envelope");
        by_id.insert(v["id"].as_u64().expect("numeric id"), resp);
    }
    assert!(
        by_id[&2].contains(r#""kind":"deadline-exceeded""#),
        "{}",
        by_id[&2]
    );
    assert_eq!(by_id[&1], format!("{{\"id\":1,\"ok\":{a_cold}}}"));
    assert_eq!(by_id[&3], format!("{{\"id\":3,\"ok\":{c_cold}}}"));

    // The doomed task, rerun without a deadline, is also exact: the
    // cancelled attempt cached nothing.
    let full = slow_spec(9);
    let full_cold = full.cold_body();
    let resp = client.request_line(&full.request(4)).expect("response");
    assert_eq!(resp, format!("{{\"id\":4,\"ok\":{full_cold}}}"));
    listening.shutdown();
}

/// The bounded-serving contract survives sharding: on a 4-shard server,
/// handle-based requests resolve interleaved wire handles, a batch
/// whose pages live on *different* shards comes back in input order
/// byte-identical to the cold reference, and deadlines still trip with
/// typed errors that leave the engines unpoisoned.
#[test]
fn four_shard_wire_handles_batches_and_deadlines_stay_exact() {
    let specs = [probe_spec(30), probe_spec(31), probe_spec(32)];
    let colds: Vec<String> = specs.iter().map(Spec::cold_body).collect();

    let listening = spawn_server(ServeOptions {
        engine: engine_config(),
        workers: 4,
        backlog: 8,
        shards: 4,
        ..ServeOptions::default()
    });
    let addr = listening.tcp_addr().expect("tcp endpoint");
    let mut client = Client::connect_tcp(addr).expect("connect");

    // Intern every page up front: handles are shard-interleaved
    // (handle % 4 is the owning shard). The workload must actually be
    // cross-shard for the test to mean anything.
    let mut handles: Vec<Vec<(Vec<u64>, Vec<u64>)>> = Vec::new();
    for spec in &specs {
        let labeled: Vec<u64> = spec
            .labeled
            .iter()
            .map(|(html, _)| intern(&mut client, html))
            .collect();
        let targets: Vec<u64> = spec
            .targets
            .iter()
            .map(|h| intern(&mut client, h))
            .collect();
        handles.push(vec![(labeled, targets)]);
    }
    let shards_touched: std::collections::HashSet<u64> = handles
        .iter()
        .flat_map(|v| v.iter())
        .flat_map(|(l, t)| l.iter().chain(t.iter()))
        .map(|h| h % 4)
        .collect();
    assert!(
        shards_touched.len() > 1,
        "workload must span shards, got {shards_touched:?}"
    );

    // Handle-based single runs: byte-identical to cold.
    let wired = |spec: &Spec, (labeled, targets): &(Vec<u64>, Vec<u64>), id: u64| {
        let lab: Vec<serde_json::Value> = labeled
            .iter()
            .zip(&spec.labeled)
            .map(|(&h, (_, gold))| {
                let mut e = serde_json::Map::new();
                e.insert("page".to_string(), serde_json::json!(h));
                e.insert("gold".to_string(), serde_json::json!(gold.clone()));
                serde_json::Value::Object(e)
            })
            .collect();
        let mut m = serde_json::Map::new();
        if id > 0 {
            m.insert("id".to_string(), serde_json::json!(id));
        }
        m.insert("op".to_string(), serde_json::json!("run"));
        m.insert(
            "question".to_string(),
            serde_json::json!(spec.question.clone()),
        );
        m.insert(
            "keywords".to_string(),
            serde_json::json!(spec.keywords.clone()),
        );
        m.insert("labeled".to_string(), serde_json::Value::Array(lab));
        m.insert("targets".to_string(), serde_json::json!(targets.clone()));
        serde_json::to_string(&serde_json::Value::Object(m)).expect("serializable")
    };
    for (i, spec) in specs.iter().enumerate() {
        let resp = client
            .request_line(&wired(spec, &handles[i][0], i as u64 + 1))
            .expect("run");
        let want = format!("{{\"id\":{},\"ok\":{}}}", i + 1, colds[i]);
        assert_eq!(resp, want, "sharded handle run {i} diverged from cold");
    }

    // A cross-shard batch: tasks homed on different shards execute
    // per-shard and reassemble in input order, byte-identical to cold.
    let tasks: Vec<String> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| wired(spec, &handles[i][0], 0))
        .collect();
    let resp = client
        .request_line(&format!(
            "{{\"id\":10,\"op\":\"run_batch\",\"tasks\":[{}]}}",
            tasks.join(",")
        ))
        .expect("batch response");
    let want = format!("{{\"id\":10,\"ok\":{{\"results\":[{}]}}}}", colds.join(","));
    assert_eq!(resp, want, "cross-shard batch diverged from cold");

    // An already-expired deadline on a sharded run: typed error, and the
    // task rerun afterwards is still exact (nothing was poisoned).
    let line = wired(&specs[0], &handles[0][0], 11);
    let doomed = format!("{{\"deadline_ms\":0,{}", &line[1..]);
    let resp = client.request_line(&doomed).expect("doomed response");
    assert!(
        resp.contains(r#""kind":"deadline-exceeded""#),
        "expected a deadline trip, got: {resp}"
    );
    let resp = client
        .request_line(&wired(&specs[0], &handles[0][0], 12))
        .expect("rerun");
    assert_eq!(resp, format!("{{\"id\":12,\"ok\":{}}}", colds[0]));

    let s = stats(addr);
    assert_eq!(s["ok"]["deadline_exceeded"].as_u64(), Some(1), "{s:?}");
    assert_eq!(s["ok"]["shed"].as_u64(), Some(0), "{s:?}");
    listening.shutdown();
}

/// `run_batch` over the wire matches per-task `run` responses
/// byte-for-byte and occupies one worker slot for the whole batch.
#[test]
fn run_batch_matches_per_task_runs_over_the_wire() {
    let specs = [probe_spec(20), probe_spec(21), probe_spec(22)];
    let colds: Vec<String> = specs.iter().map(Spec::cold_body).collect();

    let listening = spawn_server(ServeOptions {
        engine: engine_config(),
        workers: 2,
        backlog: 8,
        ..ServeOptions::default()
    });
    let addr = listening.tcp_addr().expect("tcp endpoint");
    let mut client = Client::connect_tcp(addr).expect("connect");

    let tasks: Vec<String> = specs
        .iter()
        .map(|s| format!("{{{}}}", s.request_fields()))
        .collect();
    let resp = client
        .request_line(&format!(
            "{{\"id\":1,\"op\":\"run_batch\",\"tasks\":[{}]}}",
            tasks.join(",")
        ))
        .expect("batch response");
    let want = format!("{{\"id\":1,\"ok\":{{\"results\":[{}]}}}}", colds.join(","));
    assert_eq!(resp, want, "batch results diverged from the cold engine");
    listening.shutdown();
}
