//! Theorem 5.1 audited on corpus pages: the engine's reported optimum
//! must equal the brute-force oracle's on every input where exhaustive
//! enumeration is feasible.

use proptest::prelude::*;
use webqa_corpus::{generate_pages, TASKS};
use webqa_dsl::QueryContext;
use webqa_synth::oracle::{enumerate_optimal, tiny_config};
use webqa_synth::{synthesize, Example};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One corpus page, tiny search space: engine optimum == oracle
    /// optimum, and every engine program re-scores at that optimum.
    #[test]
    fn engine_equals_oracle_on_corpus_pages(seed in 0u64..40, t in 0usize..25) {
        let task = &TASKS[t];
        let page = generate_pages(task.domain, 1, seed).remove(0);
        let gold = page.gold(task.id).to_vec();
        // Empty-gold pages make every empty-output program optimal — a
        // degenerate tie that says nothing; skip them.
        prop_assume!(!gold.is_empty());
        let ctx = QueryContext::new(task.question, task.keywords.to_vec());
        let examples = vec![Example::new(page.tree(), gold)];
        let cfg = tiny_config();
        let oracle = enumerate_optimal(&cfg, &ctx, &examples);
        let engine = synthesize(&cfg, &ctx, &examples);
        prop_assert!(
            (oracle.f1 - engine.f1).abs() < 1e-9,
            "task {}: engine {} vs oracle {}",
            task.id, engine.f1, oracle.f1
        );
        for p in engine.programs.iter().take(10) {
            let f1 = webqa_synth::program_counts(&ctx, &examples, p).f1();
            prop_assert!((f1 - oracle.f1).abs() < 1e-9, "{p} scores {f1}");
        }
    }

    /// Ablations search the same space: pruning and decomposition change
    /// work, never the optimum (Section 8.2 reports identical F1 across
    /// all three variants).
    #[test]
    fn ablations_preserve_the_optimum(seed in 0u64..30, t in 0usize..25) {
        let task = &TASKS[t];
        let page = generate_pages(task.domain, 1, seed).remove(0);
        let ctx = QueryContext::new(task.question, task.keywords.to_vec());
        let examples = vec![Example::new(page.tree(), page.gold(task.id).to_vec())];
        let cfg = tiny_config();
        let full = synthesize(&cfg, &ctx, &examples);
        let noprune = synthesize(&cfg.clone().without_pruning(), &ctx, &examples);
        let nodecomp = synthesize(&cfg.clone().without_decomposition(), &ctx, &examples);
        let nolazy = synthesize(&cfg.clone().without_lazy_guards(), &ctx, &examples);
        prop_assert!((full.f1 - noprune.f1).abs() < 1e-9, "NoPrune changed the optimum");
        prop_assert!((full.f1 - nodecomp.f1).abs() < 1e-9, "NoDecomp changed the optimum");
        prop_assert!((full.f1 - nolazy.f1).abs() < 1e-9, "NoLazy changed the optimum");
    }
}
