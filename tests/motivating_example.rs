//! The paper's Section 2 motivating scenario, end to end: two labeled
//! faculty pages in the style of Figure 2, synthesis of an optimal
//! program, and generalization to the structurally different page of
//! Figure 3.

use webqa::{Config, WebQa};
use webqa_dsl::PageTree;

/// Figure 2, top page (Jane Doe).
const PAGE_JANE: &str = r#"
<h1>Jane Doe</h1>
<p>university janedoe at university.edu +00 123-456-7890</p>
<h2>Recent Publications</h2>
<p>Synthesizing programs from examples. Jane Doe. PLDI 2018.</p>
<h2>Students</h2>
<b>PhD students</b>
<ul><li>Robert Smith</li><li>Mary Anderson</li></ul>
<h2>Activities</h2>
<b>Professional Services</b>
<ul>
  <li>Current: PLDI '21 (PC)</li>
  <li>Past: CAV '20 (PC), PLDI '20 (SRC), POPL '20 (PC), CAV '19 (PC), OOPSLA '19 (Workshop Chair), PLDI '19 (PC), POPL '19 (PC), PLDI '18 (SRC), CAV '18 (AEC)</li>
</ul>
"#;

/// Figure 2, bottom page (John Doe) — different structure, same info.
const PAGE_JOHN: &str = r#"
<h1>John Doe</h1>
<p>Professor, Some University, Department of Computer Science. johndoe@somewhere.edu (123) 456-7890</p>
<h2>Research Interests</h2>
<p>My research interests are in programming languages.</p>
<h2>Recent News</h2>
<p>Welcome incoming students Sarah Brown.</p>
<p>Two papers accepted to PLDI 2019.</p>
<h2>Service</h2>
<p>OOPSLA '20 (PC), POPL '20 (SRC), PLDI '20 (PC), CAV '19 (PC), ASPLOS '19 (Workshop Chair), PLDI '19 (PC), ICSE '19 (PC), PLDI '18 (SRC), CAV '18 (AEC).</p>
"#;

/// Figure 3 (Robert Doe) — "quite different" layout; the same program
/// should still work.
const PAGE_ROBERT: &str = r#"
<h1>ROBERT DOE</h1>
<p>Professor Department of Computer Science Rome University.
Phone: +0 123 456 7890 E-mail: robertdoe@some.edu</p>
<p>Robert Doe is a professor at Rome University. His research focuses on programming languages.</p>
<h2>Teaching</h2>
<p>CS 001: Introduction to Computer Science. Spring 2020</p>
<p>CS 010: Introduction to Data Structure. Fall 2019.</p>
<h2>Professional Service</h2>
<ul>
  <li>CAV '20 (Program Committee)</li>
  <li>PLDI '20 (Program Committee)</li>
  <li>POPL '20 (Artifact Evaluation Committee)</li>
  <li>CAV '19 (Workshop Chair)</li>
  <li>OOPSLA '19 (Program Committee)</li>
  <li>PLDI '19 (Student Research Competition)</li>
</ul>
"#;

const QUESTION: &str = "Which program committees has this researcher served on?";
const KEYWORDS: [&str; 3] = ["PC", "Program Committee", "Service"];

fn jane_gold() -> Vec<String> {
    [
        "PLDI '21 (PC)",
        "CAV '20 (PC)",
        "POPL '20 (PC)",
        "CAV '19 (PC)",
        "PLDI '19 (PC)",
        "POPL '19 (PC)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn john_gold() -> Vec<String> {
    [
        "OOPSLA '20 (PC)",
        "PLDI '20 (PC)",
        "CAV '19 (PC)",
        "PLDI '19 (PC)",
        "ICSE '19 (PC)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn motivating_example_end_to_end() {
    let labeled = vec![
        (PageTree::parse(PAGE_JANE), jane_gold()),
        (PageTree::parse(PAGE_JOHN), john_gold()),
    ];
    let unlabeled = vec![PageTree::parse(PAGE_ROBERT)];

    let system = WebQa::new(Config::default());
    let result = system.run(QUESTION, &KEYWORDS, &labeled, &unlabeled);

    // Key Idea #2: there may be no perfect program (the simulated NER
    // does not tag conference names as ORG), but the optimal F1 must be
    // high — the keyword/split/filter route exists in the DSL.
    assert!(
        result.synthesis.f1 > 0.85,
        "train F1 too low: {}",
        result.synthesis.f1
    );
    // Key Idea #3: the paper reports ~85 optimal programs on this input.
    assert!(
        result.synthesis.total_optimal > 10,
        "expected many tied optimal programs, got {}",
        result.synthesis.total_optimal
    );

    // Generalization to Figure 3's layout.
    let answers = &result.answers[0];
    assert!(
        answers.iter().any(|a| a.contains("PLDI '20")),
        "should extract PLDI '20 service from Robert's page, got {answers:?}"
    );
    assert!(
        answers.iter().all(|a| !a.contains("CS 001")),
        "teaching section must not leak into the answers: {answers:?}"
    );
}

#[test]
fn eq1_eq2_program_works_on_all_three_pages() {
    // The concrete program the paper writes down (Eq. 1 + Eq. 2, with
    // Filter instead of the ORG-entity sugar since the simulated NER has
    // the conference-ORG gap).
    let program: webqa_dsl::Program =
        "sat(descendants(descendants(root, text(kw(0.85))), leaf), true) -> \
         filter(split(content, ','), kw(0.60))"
            .parse()
            .expect("parses");
    let ctx = webqa_dsl::QueryContext::new(QUESTION, KEYWORDS);

    for (html, must_contain) in [
        (PAGE_JANE, "PLDI '21 (PC)"),
        (PAGE_JOHN, "PLDI '20 (PC)"),
        (PAGE_ROBERT, "PLDI '20 (Program Committee)"),
    ] {
        let page = PageTree::parse(html);
        let out = program.eval(&ctx, &page);
        assert!(
            out.iter().any(|s| s.contains(must_contain)),
            "expected {must_contain:?} on page, got {out:?}"
        );
        assert!(
            out.iter().all(|s| !s.contains("Synthesizing")),
            "publications must not be extracted: {out:?}"
        );
    }
}

#[test]
fn figure4_tree_shape_from_figure2_html() {
    let page = PageTree::parse(PAGE_JANE);
    let outline = page.to_outline();
    // Node 0 is Jane Doe; "PhD students" is a list node under "Students";
    // "Professional Services" is a list node under "Activities".
    assert!(outline.contains("0, none: Jane Doe"));
    assert!(outline.contains("list: PhD students"));
    assert!(outline.contains("list: Professional Services"));
}
