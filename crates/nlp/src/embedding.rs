//! Hashed distributional embeddings and keyword similarity.
//!
//! Stands in for Sentence-BERT (Section 7 of the paper): the DSL's
//! `matchKeyword(z, K, t)` predicate needs a *graded semantic similarity*
//! in `[0, 1]` between a keyword and a piece of page text. We build it
//! from:
//!
//! * character-trigram hash embeddings (fastText-style), which give high
//!   similarity to inflectional variants ("Service" ≈ "Services");
//! * a synonym/canonicalization table, which supplies the "semantic" part
//!   a real sentence encoder learns from data ("PC" ≈ "program
//!   committee", "advisees" ≈ "students");
//! * max-pooling over sliding word windows, so a keyword can match inside
//!   a longer section title.
//!
//! Everything is deterministic — no model files, no RNG at query time.

const DIM: usize = 64;

/// A dense embedding vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    v: [f32; DIM],
}

impl Embedding {
    /// The zero vector (embedding of empty text).
    pub fn zero() -> Self {
        Embedding { v: [0.0; DIM] }
    }

    /// Whether this is (numerically) the zero vector.
    pub fn is_zero(&self) -> bool {
        self.v.iter().all(|x| x.abs() < 1e-12)
    }

    /// Cosine similarity in `[-1, 1]`; 0 when either side is zero.
    pub fn cosine(&self, other: &Embedding) -> f32 {
        let dot: f32 = self.v.iter().zip(&other.v).map(|(a, b)| a * b).sum();
        let na: f32 = self.v.iter().map(|a| a * a).sum::<f32>().sqrt();
        let nb: f32 = other.v.iter().map(|b| b * b).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(-1.0, 1.0)
        }
    }

    fn add(&mut self, other: &Embedding, weight: f32) {
        for (a, b) in self.v.iter_mut().zip(&other.v) {
            *a += b * weight;
        }
    }

    fn normalize(mut self) -> Self {
        let n: f32 = self.v.iter().map(|a| a * a).sum::<f32>().sqrt();
        if n > 0.0 {
            for a in self.v.iter_mut() {
                *a /= n;
            }
        }
        self
    }
}

/// 64-bit SplitMix hash — the deterministic "random projection" that maps
/// trigrams to directions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn hash_str(s: &str, salt: u64) -> u64 {
    let mut h = salt ^ 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    splitmix64(h)
}

/// A pseudo-random unit-ish vector derived from a string.
fn feature_vector(s: &str, salt: u64) -> Embedding {
    let mut e = Embedding::zero();
    let mut state = hash_str(s, salt);
    for chunk in e.v.chunks_mut(1) {
        state = splitmix64(state);
        // Map to roughly N(0,1) via sum of uniform bits; a coarse
        // triangular distribution is plenty for random projections.
        let a = (state & 0xFFFF) as f32 / 65535.0;
        let b = ((state >> 16) & 0xFFFF) as f32 / 65535.0;
        chunk[0] = a + b - 1.0;
    }
    e
}

/// Light stemmer: lowercases and strips simple plural/inflection suffixes.
pub(crate) fn stem(word: &str) -> String {
    let w = word.to_lowercase();
    if w.len() > 4 && w.ends_with("ies") {
        format!("{}y", &w[..w.len() - 3])
    } else if w.len() > 3 && w.ends_with('s') && !w.ends_with("ss") {
        // Covers plain plurals and "-es" forms alike: "services" ->
        // "service", "students" -> "student", while keeping "class".
        w[..w.len() - 1].to_string()
    } else {
        w
    }
}

/// Synonym canonicalization: maps domain abbreviations and near-synonyms
/// to a shared canonical phrase, the stand-in for learned semantics.
pub(crate) fn canonicalize(word: &str) -> &'static str {
    // Returned strings may be multi-word; they are re-tokenized by the
    // phrase embedder.
    match stem(word).as_str() {
        "pc" => "program committee",
        "committee" => "committee",
        "advisee" | "student" | "mentee" => "student",
        "advisor" | "adviser" => "advisor",
        "ta" | "assistant" => "assistant",
        "phd" | "ph.d" | "doctoral" => "phd",
        "publication" | "paper" => "publication",
        "course" | "class" | "classe" => "course",
        "teaching" | "taught" | "teache" | "teach" => "teaching",
        "service" | "activity" => "service",
        "talk" | "presentation" => "talk",
        "deadline" | "due" => "deadline",
        "submission" | "submit" => "submission",
        "instructor" | "lecturer" | "teacher" => "instructor",
        "exam" | "midterm" | "final" | "test" => "exam",
        "grade" | "grading" | "rubric" | "assessment" => "grading",
        "textbook" | "book" | "material" | "text" => "textbook",
        "doctor" | "physician" | "provider" | "dr" => "doctor",
        "insurance" | "plan" | "coverage" => "insurance",
        "treatment" | "specialty" | "specialization" => "treatment",
        "location" | "office" | "address" | "directions" | "direction" => "location",
        "alumni" | "alumnu" | "graduate" | "former" => "alumni",
        "chair" | "co-chair" | "cochair" => "chair",
        "topic" | "interest" | "area" => "topic",
        "schedule" | "time" | "lecture" | "section" => "schedule",
        "member" | "people" | "team" | "staff" => "member",
        "award" | "prize" | "honor" => "award",
        "news" | "announcement" => "news",
        "conference" | "venue" => "conference",
        "contact" | "email" | "e-mail" | "phone" => "contact",
        _ => "",
    }
}

/// Embeds a single word: trigram vectors + whole-word vector, with synonym
/// canonicalization applied first.
fn embed_word(word: &str) -> Embedding {
    let canon = canonicalize(word);
    if !canon.is_empty() && canon.contains(' ') {
        // Multi-word canonical form ("program committee"): embed as phrase.
        return embed_phrase_words(&canon.split(' ').collect::<Vec<_>>());
    }
    let surface = if canon.is_empty() {
        stem(word)
    } else {
        canon.to_string()
    };
    let mut e = Embedding::zero();
    let padded = format!("^{surface}$");
    let chars: Vec<char> = padded.chars().collect();
    if chars.len() >= 3 {
        for w in chars.windows(3) {
            let tri: String = w.iter().collect();
            e.add(&feature_vector(&tri, 0x7121), 1.0);
        }
    }
    // The whole-word direction dominates so different words with shared
    // trigrams stay distinguishable.
    e.add(&feature_vector(&surface, 0xB00F_ABCD), 2.0);
    e.normalize()
}

fn embed_phrase_words(words: &[&str]) -> Embedding {
    let mut e = Embedding::zero();
    for w in words {
        e.add(&embed_word(w), 1.0);
    }
    e.normalize()
}

/// Embeds an arbitrary text as the normalized sum of its content-word
/// embeddings.
pub fn embed(text: &str) -> Embedding {
    let words: Vec<String> = crate::text::lower_words(text);
    let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
    embed_phrase_words(&refs)
}

/// Semantic similarity between a keyword and a text, in `[0, 1]`.
///
/// Implements the scoring behind the DSL's `matchKeyword(z, k, t)`: the
/// keyword embedding is compared against every sliding window of the text
/// whose width matches the keyword's (±1 word), and the best cosine is
/// mapped to `[0, 1]`. An exact (case-insensitive, stemmed) phrase match
/// short-circuits to 1.0.
///
/// # Examples
///
/// ```
/// use webqa_nlp::keyword_similarity;
/// assert_eq!(keyword_similarity("Professional Service", "Service"), 1.0);
/// let near = keyword_similarity("Professional Services", "Service");
/// assert!(near > 0.9);
/// let far = keyword_similarity("Recent Publications", "Service");
/// assert!(far < 0.5);
/// ```
pub fn keyword_similarity(text: &str, keyword: &str) -> f32 {
    let text_words = crate::text::lower_words(text);
    let kw_words = crate::text::lower_words(keyword);
    if kw_words.is_empty() || text_words.is_empty() {
        return 0.0;
    }
    // Exact stemmed phrase containment → 1.0.
    let kw_stems: Vec<String> = kw_words.iter().map(|w| stem(w)).collect();
    let text_stems: Vec<String> = text_words.iter().map(|w| stem(w)).collect();
    if text_stems
        .windows(kw_stems.len())
        .any(|w| w == kw_stems.as_slice())
    {
        return 1.0;
    }
    let kw_emb = embed(keyword);
    if kw_emb.is_zero() {
        return 0.0;
    }
    let mut best: f32 = 0.0;
    let widths = [
        kw_words.len().saturating_sub(1).max(1),
        kw_words.len(),
        kw_words.len() + 1,
    ];
    for &w in &widths {
        if w == 0 || w > text_words.len() {
            continue;
        }
        for window in text_words.windows(w) {
            let refs: Vec<&str> = window.iter().map(|s| s.as_str()).collect();
            let e = embed_phrase_words(&refs);
            best = best.max(kw_emb.cosine(&e));
        }
    }
    // Whole-text comparison helps when the text is shorter than the keyword.
    best = best.max(kw_emb.cosine(&embed(text)));
    best.max(0.0)
}

/// Similarity of `text` against the best-matching keyword in `keywords`.
pub fn best_keyword_similarity<S: AsRef<str>>(text: &str, keywords: &[S]) -> f32 {
    keywords
        .iter()
        .map(|k| keyword_similarity(text, k.as_ref()))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_words_have_similarity_one() {
        assert_eq!(keyword_similarity("Students", "Students"), 1.0);
    }

    #[test]
    fn plural_variants_match_exactly_after_stemming() {
        assert_eq!(keyword_similarity("Students", "Student"), 1.0);
        assert_eq!(keyword_similarity("Professional Services", "Services"), 1.0);
    }

    #[test]
    fn synonyms_score_high() {
        // "PC" canonicalizes to "program committee"
        assert!(keyword_similarity("PC", "Program Committee") > 0.9);
        assert!(keyword_similarity("Advisees", "Students") > 0.9);
        assert!(keyword_similarity("Activities", "Service") > 0.9);
    }

    #[test]
    fn unrelated_words_score_low() {
        assert!(keyword_similarity("Recent Publications", "Insurance") < 0.5);
        assert!(keyword_similarity("Contact", "Students") < 0.5);
    }

    #[test]
    fn keyword_inside_longer_title() {
        assert_eq!(keyword_similarity("Current PhD Students", "PhD"), 1.0);
        assert!(keyword_similarity("Our Professional Service Activities", "Service") > 0.9);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(keyword_similarity("", "x"), 0.0);
        assert_eq!(keyword_similarity("x", ""), 0.0);
    }

    #[test]
    fn best_keyword_takes_max() {
        let kws = ["Insurance", "Students"];
        let s = best_keyword_similarity("PhD Students", &kws);
        assert_eq!(s, 1.0);
        assert!(best_keyword_similarity("totally unrelated gibberish", &kws) < 0.6);
    }

    #[test]
    fn similarity_is_deterministic() {
        let a = keyword_similarity("Professional Services", "Committee");
        let b = keyword_similarity("Professional Services", "Committee");
        assert_eq!(a, b);
    }

    #[test]
    fn cosine_bounds() {
        let e1 = embed("alpha beta");
        let e2 = embed("gamma delta");
        let c = e1.cosine(&e2);
        assert!((-1.0..=1.0).contains(&c));
        assert!((e1.cosine(&e1) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_embedding_behaviour() {
        let z = Embedding::zero();
        assert!(z.is_zero());
        assert_eq!(z.cosine(&embed("x")), 0.0);
    }

    #[test]
    fn trigram_overlap_gives_partial_similarity() {
        // "organization" vs "organizational" share most trigrams.
        let s = keyword_similarity("organizational", "organization");
        assert!(s > 0.5, "got {s}");
    }
}
