//! Shared word lists ("model vocabulary").
//!
//! A pretrained NER model carries its training vocabulary inside its
//! weights; our simulated tagger carries these lists instead. The corpus
//! generator draws from the same pools, mirroring how a real model's
//! vocabulary overlaps the evaluation distribution — while the *rules*
//! in [`EntityRecognizer`](crate::EntityRecognizer) remain deliberately
//! imperfect (Key Idea #2 of the
//! paper relies on imperfect neural primitives).

/// Common given names recognized (and generated) as person names.
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Christopher",
    "Nancy",
    "Daniel",
    "Lisa",
    "Matthew",
    "Betty",
    "Anthony",
    "Margaret",
    "Mark",
    "Sandra",
    "Donald",
    "Ashley",
    "Steven",
    "Kimberly",
    "Paul",
    "Emily",
    "Andrew",
    "Donna",
    "Joshua",
    "Michelle",
    "Kenneth",
    "Dorothy",
    "Kevin",
    "Carol",
    "Brian",
    "Amanda",
    "George",
    "Melissa",
    "Edward",
    "Deborah",
    "Ronald",
    "Stephanie",
    "Timothy",
    "Rebecca",
    "Jason",
    "Sharon",
    "Jeffrey",
    "Laura",
    "Ryan",
    "Cynthia",
    "Jacob",
    "Kathleen",
    "Gary",
    "Amy",
    "Nicholas",
    "Angela",
    "Eric",
    "Shirley",
    "Jonathan",
    "Anna",
    "Stephen",
    "Brenda",
    "Larry",
    "Pamela",
    "Justin",
    "Emma",
    "Scott",
    "Nicole",
    "Brandon",
    "Helen",
    "Benjamin",
    "Samantha",
    "Samuel",
    "Katherine",
    "Gregory",
    "Christine",
    "Frank",
    "Debra",
    "Alexander",
    "Rachel",
    "Raymond",
    "Chen",
    "Wei",
    "Xinyu",
    "Priya",
    "Ahmed",
    "Yuki",
    "Elena",
    "Marco",
    "Ingrid",
    "Omar",
    "Ana",
    "Jane",
    "Aaron",
    "Isil",
    "Osbert",
    "Grace",
    "Felix",
    "Nora",
    "Victor",
    "Iris",
];

/// Common family names.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "Green",
    "Adams",
    "Nelson",
    "Baker",
    "Hall",
    "Rivera",
    "Campbell",
    "Mitchell",
    "Carter",
    "Roberts",
    "Chen",
    "Wang",
    "Kumar",
    "Patel",
    "Kim",
    "Park",
    "Singh",
    "Gupta",
    "Tanaka",
    "Sato",
    "Müller",
    "Schmidt",
    "Rossi",
    "Ferrari",
    "Novak",
    "Kowalski",
    "Doe",
    "Durrett",
    "Bastani",
    "Dillig",
    "Lamoreaux",
    "Okafor",
    "Haddad",
    "Lindqvist",
    "Petrov",
    "Silva",
    "Costa",
    "Moreau",
    "Dubois",
    "Fischer",
];

/// Academic title prefixes.
pub const TITLES: &[&str] = &["Dr.", "Prof.", "Professor", "Mr.", "Ms.", "Mrs."];

/// Place names used for universities, clinic locations, and addresses.
pub const PLACES: &[&str] = &[
    "Austin",
    "Boston",
    "Chicago",
    "Denver",
    "Houston",
    "Seattle",
    "Portland",
    "Atlanta",
    "Phoenix",
    "Dallas",
    "Madison",
    "Berkeley",
    "Pasadena",
    "Princeton",
    "Cambridge",
    "Ithaca",
    "Ann Arbor",
    "Pittsburgh",
    "Philadelphia",
    "Baltimore",
    "Nashville",
    "Columbus",
    "Minneapolis",
    "Salt Lake City",
    "San Diego",
    "San Jose",
    "Riverside",
    "Evanston",
    "Providence",
    "New Haven",
    "Palo Alto",
    "Stanford",
    "Durham",
    "Raleigh",
    "Tucson",
    "Albany",
    "Rochester",
    "Syracuse",
    "Boulder",
    "Eugene",
];

/// University name suffixes/patterns: `"{place} University"`,
/// `"University of {place}"`, `"{place} Institute of Technology"`,
/// `"{place} College"`.
pub const ORG_SUFFIXES: &[&str] = &[
    "University",
    "Institute",
    "College",
    "Laboratory",
    "Labs",
    "Center",
    "Centre",
    "Academy",
    "Institute of Technology",
    "Polytechnic",
    "School",
];

/// Computer-science conference acronyms.
///
/// The paper's Key Idea #2 observes that a pretrained NER model may *fail*
/// to recognize these as organizations; our tagger reproduces that gap (see
/// `ner::EntityRecognizer::conservative`).
pub const CONFERENCES: &[&str] = &[
    "PLDI", "POPL", "OOPSLA", "CAV", "ICSE", "FSE", "ASPLOS", "ISCA", "SOSP", "OSDI", "NSDI",
    "ATC", "EuroSys", "CGO", "CC", "ECOOP", "ISSTA", "TACAS", "VMCAI", "LICS", "ICFP", "NeurIPS",
    "ICML", "ICLR", "ACL", "EMNLP", "NAACL", "AAAI", "IJCAI", "KDD", "SIGMOD", "VLDB", "ICDE",
    "WWW", "CHI", "UIST", "CCS", "SP", "SEC",
];

/// Roles appearing in professional-service lists.
pub const SERVICE_ROLES: &[&str] = &[
    "PC",
    "Program Committee",
    "SRC",
    "AEC",
    "ERC",
    "Workshop Chair",
    "Session Chair",
    "Publicity Chair",
    "Artifact Evaluation Committee",
    "External Review Committee",
    "Student Research Competition",
];

/// Health-insurance plan names (tagged as organizations).
pub const INSURANCES: &[&str] = &[
    "Aetna",
    "Cigna",
    "Humana",
    "UnitedHealthcare",
    "Blue Cross Blue Shield",
    "Kaiser",
    "Anthem",
    "Medicare",
    "Medicaid",
    "Tricare",
    "Oscar Health",
    "Molina Healthcare",
    "Ambetter",
    "WellCare",
    "Centene",
];

/// Medical specialties and services offered by clinics.
pub const MEDICAL_SERVICES: &[&str] = &[
    "primary care",
    "pediatrics",
    "cardiology",
    "dermatology",
    "orthopedics",
    "physical therapy",
    "immunizations",
    "annual checkups",
    "urgent care",
    "womens health",
    "behavioral health",
    "dental cleanings",
    "vision screening",
    "lab testing",
    "x-ray imaging",
    "vaccinations",
    "allergy testing",
    "sports medicine",
    "chiropractic care",
    "nutrition counseling",
];

/// Treatment names for the clinic domain.
pub const TREATMENTS: &[&str] = &[
    "acne treatment",
    "joint replacement",
    "root canal therapy",
    "cognitive behavioral therapy",
    "chemotherapy",
    "dialysis",
    "laser eye surgery",
    "physical rehabilitation",
    "migraine management",
    "diabetes management",
    "hypertension treatment",
    "asthma care",
    "arthritis treatment",
    "back pain therapy",
    "sleep apnea treatment",
    "skin cancer screening",
];

/// Month names.
pub const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Weekday names.
pub const WEEKDAYS: &[&str] = &[
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
];

/// Course subject areas for the class domain.
pub const COURSE_TOPICS: &[&str] = &[
    "Introduction to Computer Science",
    "Data Structures",
    "Algorithms",
    "Operating Systems",
    "Compilers",
    "Programming Languages",
    "Machine Learning",
    "Computer Networks",
    "Databases",
    "Software Engineering",
    "Computer Architecture",
    "Distributed Systems",
    "Formal Methods",
    "Artificial Intelligence",
    "Computer Graphics",
    "Cryptography",
    "Numerical Analysis",
    "Theory of Computation",
    "Human-Computer Interaction",
    "Natural Language Processing",
];

/// Textbook titles for the class domain.
pub const TEXTBOOKS: &[&str] = &[
    "Introduction to Algorithms by Cormen, Leiserson, Rivest, and Stein",
    "Structure and Interpretation of Computer Programs by Abelson and Sussman",
    "Computer Systems: A Programmer's Perspective by Bryant and O'Hallaron",
    "Types and Programming Languages by Pierce",
    "Compilers: Principles, Techniques, and Tools by Aho, Lam, Sethi, and Ullman",
    "Operating System Concepts by Silberschatz, Galvin, and Gagne",
    "Artificial Intelligence: A Modern Approach by Russell and Norvig",
    "Pattern Recognition and Machine Learning by Bishop",
    "Database System Concepts by Silberschatz, Korth, and Sudarshan",
    "Computer Networking: A Top-Down Approach by Kurose and Ross",
];

/// Research-topic phrases for conference calls-for-papers.
pub const RESEARCH_TOPICS: &[&str] = &[
    "program synthesis",
    "type systems",
    "static analysis",
    "program verification",
    "compiler optimization",
    "garbage collection",
    "concurrency",
    "gradual typing",
    "probabilistic programming",
    "language design",
    "model checking",
    "abstract interpretation",
    "symbolic execution",
    "program repair",
    "testing and debugging",
    "runtime systems",
    "memory management",
    "domain-specific languages",
    "software security",
    "parallelism",
];

/// Whether `w` (case-sensitive) appears in the given-name lexicon.
pub fn is_first_name(w: &str) -> bool {
    FIRST_NAMES.contains(&w)
}

/// Whether `w` (case-sensitive) appears in the family-name lexicon.
pub fn is_last_name(w: &str) -> bool {
    LAST_NAMES.contains(&w)
}

/// Whether `w` is a month name.
pub fn is_month(w: &str) -> bool {
    MONTHS.iter().any(|m| m.eq_ignore_ascii_case(w))
}

/// Whether `w` is a weekday name.
pub fn is_weekday(w: &str) -> bool {
    WEEKDAYS.iter().any(|m| m.eq_ignore_ascii_case(w))
}

/// Whether `w` is a known conference acronym.
pub fn is_conference(w: &str) -> bool {
    CONFERENCES.contains(&w)
}

/// Whether `w` is an organization suffix word ("University", "Institute"…).
pub fn is_org_suffix(w: &str) -> bool {
    ORG_SUFFIXES
        .iter()
        .any(|s| s.split_whitespace().next() == Some(w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_lookups() {
        assert!(is_first_name("Jane"));
        assert!(!is_first_name("jane")); // case-sensitive by design
        assert!(is_last_name("Doe"));
        assert!(is_month("january"));
        assert!(is_weekday("Friday"));
        assert!(is_conference("PLDI"));
        assert!(!is_conference("PLDIX"));
        assert!(is_org_suffix("University"));
        assert!(!is_org_suffix("Banana"));
    }

    #[test]
    fn pools_are_nonempty_and_distinct() {
        assert!(FIRST_NAMES.len() > 50);
        assert!(LAST_NAMES.len() > 50);
        let mut firsts: Vec<&str> = FIRST_NAMES.to_vec();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), FIRST_NAMES.len(), "duplicate first names");
        let mut lasts: Vec<&str> = LAST_NAMES.to_vec();
        lasts.sort_unstable();
        lasts.dedup();
        assert_eq!(lasts.len(), LAST_NAMES.len(), "duplicate last names");
    }

    #[test]
    fn conferences_are_single_alphanumeric_words() {
        for c in CONFERENCES {
            assert!(
                c.chars().all(|ch| ch.is_ascii_alphanumeric()),
                "bad acronym {c}"
            );
        }
    }
}
