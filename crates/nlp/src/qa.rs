//! Extractive question answering.
//!
//! Stand-in for the BERT-large SQuAD model the paper uses for the DSL's
//! `hasAnswer(z, Q)` predicate and for the BERTQA baseline (Sections 7 and
//! 8.1). Like the real model it:
//!
//! * returns a *single best span* per (passage, question) pair — which is
//!   precisely why the baseline collapses on multi-answer tasks (Table 2's
//!   low BERTQA recall);
//! * conditions on the question's expected answer type (who → person,
//!   when → date, where → location);
//! * is *imperfect*: a deterministic hash-noise term perturbs span scores,
//!   emulating neural idiosyncrasy without sacrificing reproducibility.

use crate::embedding::canonicalize;
use crate::ner::{EntityKind, EntityRecognizer};
use crate::text::{is_stopword, lower_words, sentences, words};

/// An extracted answer span.
#[derive(Debug, Clone, PartialEq)]
pub struct QaAnswer {
    /// The answer text.
    pub text: String,
    /// Byte offset of the span start in the passage.
    pub start: usize,
    /// Byte offset one past the span end.
    pub end: usize,
    /// Model confidence in `[0, 1]`.
    pub score: f32,
}

/// Expected answer type inferred from the question's wh-word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerType {
    /// "who …" — expects a person.
    Person,
    /// "when …" / "what time" / "deadline" — expects a date or time.
    DateTime,
    /// "where …" — expects a location.
    Location,
    /// "how much …" — expects money.
    Money,
    /// Anything else.
    Other,
}

/// The simulated extractive QA model.
#[derive(Debug, Clone)]
pub struct QaModel {
    ner: EntityRecognizer,
    threshold: f32,
}

impl QaModel {
    /// The default "pretrained" model with the standard answerability
    /// threshold.
    pub fn pretrained() -> Self {
        QaModel {
            ner: EntityRecognizer::pretrained(),
            threshold: 0.42,
        }
    }

    /// Overrides the answerability threshold (used by ablations).
    pub fn with_threshold(threshold: f32) -> Self {
        QaModel {
            ner: EntityRecognizer::pretrained(),
            threshold,
        }
    }

    /// The model's answerability threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Infers the expected answer type of a question.
    pub fn answer_type(question: &str) -> AnswerType {
        let q = question.to_lowercase();
        let first = q.split_whitespace().next().unwrap_or("");
        if first == "who" || q.contains("who are") || q.contains("who is") {
            AnswerType::Person
        } else if first == "when"
            || q.contains("what time")
            || q.contains("deadline")
            || q.contains("what date")
        {
            AnswerType::DateTime
        } else if first == "where" || q.contains("located") || q.contains("location") {
            AnswerType::Location
        } else if q.contains("how much") || q.contains("cost") || q.contains("price") {
            AnswerType::Money
        } else {
            AnswerType::Other
        }
    }

    /// Answers `question` against `passage`, returning the single best
    /// span, or `None` when no span clears the answerability threshold.
    pub fn answer(&self, passage: &str, question: &str) -> Option<QaAnswer> {
        let best = self.best_span(passage, question)?;
        if best.score >= self.threshold {
            Some(best)
        } else {
            None
        }
    }

    /// The DSL predicate `hasAnswer(z, Q)`.
    pub fn has_answer(&self, passage: &str, question: &str) -> bool {
        self.answer(passage, question).is_some()
    }

    fn best_span(&self, passage: &str, question: &str) -> Option<QaAnswer> {
        if passage.trim().is_empty() || question.trim().is_empty() {
            return None;
        }
        let q_words = content_words(question);
        if q_words.is_empty() {
            return None;
        }
        let want = Self::answer_type(question);
        let sents = sentences(passage);
        let n_sents = sents.len().max(1) as f32;

        let mut best: Option<QaAnswer> = None;
        for (si, sent) in sents.iter().enumerate() {
            let overlap = overlap_score(&q_words, sent.text);
            // Position prior: earlier sentences get a small boost, like the
            // lead bias real QA models learn.
            let position = 0.06 * (1.0 - si as f32 / n_sents);
            let candidates = self.candidate_spans(sent.text, want);
            for (rel_start, rel_end, typed) in candidates {
                let span_text = &sent.text[rel_start..rel_end];
                if span_text.trim().is_empty() {
                    continue;
                }
                let type_bonus = if typed { 0.30 } else { 0.0 };
                // Penalize spans that merely parrot the question.
                let parrot = overlap_score(&q_words, span_text);
                let noise = hash_noise(passage, question, span_text);
                let score = (0.55 * overlap + type_bonus + position - 0.15 * parrot + noise)
                    .clamp(0.0, 1.0);
                let abs_start = sent.start + rel_start;
                let abs_end = sent.start + rel_end;
                if best.as_ref().is_none_or(|b| score > b.score) {
                    best = Some(QaAnswer {
                        text: span_text.trim().to_string(),
                        start: abs_start,
                        end: abs_end,
                        score,
                    });
                }
            }
        }
        best
    }

    /// Candidate answer spans inside one sentence: typed entity spans when
    /// the question expects a type, plus the sentence remainder after
    /// removing question words (the "copy the rest of the sentence"
    /// fallback real extractive models exhibit).
    fn candidate_spans(&self, sentence: &str, want: AnswerType) -> Vec<(usize, usize, bool)> {
        let mut out = Vec::new();
        let entity_kinds: &[EntityKind] = match want {
            AnswerType::Person => &[EntityKind::Person],
            AnswerType::DateTime => &[EntityKind::Date, EntityKind::Time],
            AnswerType::Location => &[EntityKind::Location],
            AnswerType::Money => &[EntityKind::Money],
            AnswerType::Other => &[],
        };
        for e in self.ner.entities(sentence) {
            let typed = entity_kinds.contains(&e.kind);
            out.push((e.start, e.end, typed));
        }
        // Fallback span: the tail of the sentence after a colon, or the
        // whole sentence (capped) when nothing better exists.
        if let Some(colon) = sentence.find(':') {
            let tail_start = colon + 1;
            if tail_start < sentence.len() {
                out.push((tail_start, sentence.len(), false));
            }
        }
        let cap = cap_span(sentence, 14);
        out.push((0, cap, false));
        out
    }
}

impl Default for QaModel {
    fn default() -> Self {
        Self::pretrained()
    }
}

/// Question content words, canonicalized so "committees" matches
/// "committee" in the passage.
fn content_words(question: &str) -> Vec<String> {
    lower_words(question)
        .into_iter()
        .filter(|w| !is_stopword(w))
        .map(|w| {
            let c = canonicalize(&w);
            if c.is_empty() {
                crate::embedding::stem(&w)
            } else {
                c.to_string()
            }
        })
        .collect()
}

/// Fraction of question content words present in `text` (canonicalized).
fn overlap_score(q_words: &[String], text: &str) -> f32 {
    if q_words.is_empty() {
        return 0.0;
    }
    let t_words: Vec<String> = lower_words(text)
        .into_iter()
        .map(|w| {
            let c = canonicalize(&w);
            if c.is_empty() {
                crate::embedding::stem(&w)
            } else {
                c.to_string()
            }
        })
        .collect();
    let hits = q_words
        .iter()
        .filter(|q| t_words.iter().any(|t| t == *q))
        .count();
    hits as f32 / q_words.len() as f32
}

/// Byte offset that truncates `sentence` to at most `max_words` words.
fn cap_span(sentence: &str, max_words: usize) -> usize {
    let ws = words(sentence);
    if ws.len() <= max_words {
        sentence.len()
    } else {
        ws[max_words - 1].end
    }
}

/// Deterministic noise in `[-0.04, 0.04]` from the (passage, question,
/// span) triple — the reproducible stand-in for neural idiosyncrasy.
fn hash_noise(passage: &str, question: &str, span: &str) -> f32 {
    let mut h: u64 = 0xcbf29ce484222325;
    for s in [passage, "\u{1}", question, "\u{1}", span] {
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    // map to [-0.04, 0.04]
    ((h % 8001) as f32 / 8000.0 - 0.5) * 0.08
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qa() -> QaModel {
        QaModel::pretrained()
    }

    #[test]
    fn answers_simple_who_question() {
        let passage = "Instructor: Jane Doe. Office hours by appointment.";
        let a = qa()
            .answer(passage, "Who is the instructor?")
            .expect("answer");
        assert!(a.text.contains("Jane Doe"), "got {a:?}");
    }

    #[test]
    fn answers_when_question_with_date() {
        let passage = "The paper submission deadline is January 15, 2026 for all tracks.";
        let a = qa()
            .answer(passage, "When is the paper submission deadline?")
            .expect("answer");
        assert!(a.text.contains("January 15, 2026"), "got {a:?}");
    }

    #[test]
    fn answers_where_question() {
        let passage = "Our clinic is located at 123 Main Street in Austin.";
        let a = qa()
            .answer(passage, "Where is the clinic located?")
            .expect("answer");
        assert!(
            a.text.contains("Main Street") || a.text.contains("Austin"),
            "got {a:?}"
        );
    }

    #[test]
    fn no_answer_on_unrelated_passage() {
        let passage = "The weather has been unusually warm for this season.";
        assert!(qa().answer(passage, "Who are the PhD students?").is_none());
    }

    #[test]
    fn empty_inputs_have_no_answer() {
        assert!(qa().answer("", "Who?").is_none());
        assert!(qa().answer("text", "").is_none());
    }

    #[test]
    fn single_span_only() {
        // The characteristic failure on multi-answer content: one span.
        let passage = "PhD students: Robert Smith, Mary Anderson, and Wei Chen.";
        let a = qa()
            .answer(passage, "Who are the PhD students?")
            .expect("answer");
        // The span is a single entity or tail, never the full enumerated set
        // split into three separate answers.
        assert!(a.text.len() < passage.len());
    }

    #[test]
    fn answer_type_inference() {
        assert_eq!(QaModel::answer_type("Who are the TAs?"), AnswerType::Person);
        assert_eq!(
            QaModel::answer_type("When is the paper submission deadline?"),
            AnswerType::DateTime
        );
        assert_eq!(
            QaModel::answer_type("Where are the clinics located?"),
            AnswerType::Location
        );
        assert_eq!(
            QaModel::answer_type("How much does a visit cost?"),
            AnswerType::Money
        );
        assert_eq!(
            QaModel::answer_type("What are the topics of interest?"),
            AnswerType::Other
        );
    }

    #[test]
    fn deterministic() {
        let p = "Instructor: Jane Doe.";
        let q = "Who is the instructor?";
        assert_eq!(qa().answer(p, q), qa().answer(p, q));
    }

    #[test]
    fn offsets_slice_back() {
        let passage = "Lectures are on Monday at 10:30 in room 5.";
        if let Some(a) = qa().answer(passage, "What time are the lectures?") {
            assert_eq!(passage[a.start..a.end].trim(), a.text);
        }
    }

    #[test]
    fn has_answer_consistent_with_answer() {
        let p = "Instructor: Jane Doe.";
        let q = "Who is the instructor?";
        assert_eq!(qa().has_answer(p, q), qa().answer(p, q).is_some());
    }

    #[test]
    fn threshold_zero_always_answers_on_nonempty() {
        let m = QaModel::with_threshold(0.0);
        assert!(m
            .answer("Completely unrelated text.", "Who is the instructor?")
            .is_some());
    }

    #[test]
    fn colon_tail_fallback() {
        let passage = "Topics of interest: program synthesis, type systems, static analysis";
        let a = qa()
            .answer(passage, "What are the topics of interest?")
            .expect("answer");
        assert!(a.text.contains("program synthesis"), "got {a:?}");
    }
}
