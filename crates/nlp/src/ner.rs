//! Named-entity recognition.
//!
//! Stand-in for the spaCy tagger the paper uses for `hasEntity(z, l)`
//! (Section 7). Rule- and lexicon-based, and *deliberately imperfect* in
//! the way the paper calls out (Key Idea #2): by default the tagger does
//! **not** recognize computer-science conference acronyms as
//! organizations, which is exactly the failure mode that forces the
//! synthesizer to optimize F₁ instead of exact match.

use crate::lexicon;
use crate::text::{words, Word};

/// Entity types of the DSL's `hasEntity(z, l)` predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityKind {
    /// A person name.
    Person,
    /// An organization (university, company, insurance plan…).
    Organization,
    /// A calendar date (absolute or partial).
    Date,
    /// A clock time or time range.
    Time,
    /// A location (city, address).
    Location,
    /// A monetary amount.
    Money,
}

impl std::fmt::Display for EntityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EntityKind::Person => "PERSON",
            EntityKind::Organization => "ORG",
            EntityKind::Date => "DATE",
            EntityKind::Time => "TIME",
            EntityKind::Location => "LOC",
            EntityKind::Money => "MONEY",
        })
    }
}

impl std::str::FromStr for EntityKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "PERSON" => Ok(EntityKind::Person),
            "ORG" | "ORGANIZATION" => Ok(EntityKind::Organization),
            "DATE" => Ok(EntityKind::Date),
            "TIME" => Ok(EntityKind::Time),
            "LOC" | "LOCATION" => Ok(EntityKind::Location),
            "MONEY" => Ok(EntityKind::Money),
            other => Err(format!("unknown entity kind: {other}")),
        }
    }
}

/// One recognized entity with byte offsets into the input text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// The entity type.
    pub kind: EntityKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// The surface text.
    pub text: String,
}

/// The configurable entity recognizer.
///
/// [`EntityRecognizer::pretrained`] mimics an off-the-shelf model: good at
/// people / dates / universities, blind to conference acronyms.
/// [`EntityRecognizer::with_conference_orgs`] closes that gap — used by
/// tests that need a "perfect" oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntityRecognizer {
    conference_orgs: bool,
}

impl EntityRecognizer {
    /// The default imperfect model (conference names are *not* ORGs).
    pub fn pretrained() -> Self {
        EntityRecognizer {
            conference_orgs: false,
        }
    }

    /// A variant that also tags conference acronyms as organizations.
    pub fn with_conference_orgs() -> Self {
        EntityRecognizer {
            conference_orgs: true,
        }
    }

    /// Recognizes all entities in `text`, left to right, longest match
    /// first, non-overlapping.
    pub fn entities(&self, text: &str) -> Vec<Entity> {
        let ws = words(text);
        let mut out = Vec::new();
        let mut i = 0;
        while i < ws.len() {
            if let Some((entity, consumed)) = self.match_at(text, &ws, i) {
                out.push(entity);
                i += consumed;
            } else {
                i += 1;
            }
        }
        out
    }

    /// Whether `text` contains an entity of the given kind — the DSL's
    /// `hasEntity(z, l)`.
    pub fn has_entity(&self, text: &str, kind: EntityKind) -> bool {
        self.entities(text).iter().any(|e| e.kind == kind)
    }

    /// The surface strings of all entities of `kind` in `text`, in order.
    pub fn entity_strings(&self, text: &str, kind: EntityKind) -> Vec<String> {
        self.entities(text)
            .into_iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.text)
            .collect()
    }

    fn match_at(&self, text: &str, ws: &[Word<'_>], i: usize) -> Option<(Entity, usize)> {
        // Order matters: longer / more specific patterns first.
        self.match_money(text, ws, i)
            .or_else(|| self.match_date(text, ws, i))
            .or_else(|| self.match_time(text, ws, i))
            .or_else(|| self.match_org(text, ws, i))
            .or_else(|| self.match_person(text, ws, i))
            .or_else(|| self.match_location(text, ws, i))
    }

    // ----- people ---------------------------------------------------------

    fn match_person(&self, text: &str, ws: &[Word<'_>], i: usize) -> Option<(Entity, usize)> {
        let mut j = i;
        let mut has_title = false;
        // Optional title: "Dr." is tokenized as "Dr" (trailing period cut).
        if is_title_word(ws[j].text) {
            has_title = true;
            j += 1;
            if j >= ws.len() {
                return None;
            }
        }
        // Pattern: First Last [Last], where First is in the lexicon (or a
        // title preceded the name and both words are capitalized).
        let first_ok = lexicon::is_first_name(ws[j].text)
            || (has_title && ws[j].is_capitalized() && ws[j].is_alpha());
        if !first_ok || !ws[j].is_capitalized() {
            return None;
        }
        let mut k = j + 1;
        let mut matched_last = false;
        while k < ws.len() && k - j < 3 {
            let w = &ws[k];
            let lastish = lexicon::is_last_name(w.text)
                || (w.is_capitalized() && w.is_alpha() && (has_title || matched_last));
            if lastish && w.is_capitalized() {
                matched_last = true;
                k += 1;
            } else {
                break;
            }
        }
        if !matched_last {
            return None;
        }
        let start = ws[j].start; // titles excluded from the span
        let end = ws[k - 1].end;
        Some((
            Entity {
                kind: EntityKind::Person,
                start,
                end,
                text: text[start..end].to_string(),
            },
            k - i,
        ))
    }

    // ----- organizations --------------------------------------------------

    fn match_org(&self, text: &str, ws: &[Word<'_>], i: usize) -> Option<(Entity, usize)> {
        // "University of X"
        if ws[i].text == "University" && i + 2 < ws.len() && ws[i + 1].text == "of" {
            let mut k = i + 2;
            while k < ws.len() && ws[k].is_capitalized() && k - i < 5 {
                k += 1;
            }
            if k > i + 2 {
                return Some((self.org_entity(text, ws, i, k), k - i));
            }
        }
        // "<Capitalized>+ <OrgSuffix>" — "Rome University", "Cedar Medical
        // Center", "Lakeside Clinic", "Somewhere Institute of Technology".
        if ws[i].is_capitalized() && ws[i].is_alpha() && !lexicon::is_org_suffix(ws[i].text) {
            let mut k = i + 1;
            while k < ws.len() && ws[k].is_capitalized() && k - i < 5 {
                if is_org_head(ws[k].text) {
                    let mut end = k + 1;
                    // absorb "of Technology" style tails
                    if end + 1 < ws.len() && ws[end].text == "of" && ws[end + 1].is_capitalized() {
                        end += 2;
                    }
                    return Some((self.org_entity(text, ws, i, end), end - i));
                }
                k += 1;
            }
        }
        // Insurance plan names (multi-word lexicon lookup).
        for plan in lexicon::INSURANCES {
            let plan_words: Vec<&str> = plan.split_whitespace().collect();
            if i + plan_words.len() <= ws.len()
                && plan_words
                    .iter()
                    .enumerate()
                    .all(|(d, pw)| ws[i + d].text == *pw)
            {
                return Some((
                    self.org_entity(text, ws, i, i + plan_words.len()),
                    plan_words.len(),
                ));
            }
        }
        // Conference acronyms — only the non-default model sees these.
        if self.conference_orgs && lexicon::is_conference(ws[i].text) {
            return Some((self.org_entity(text, ws, i, i + 1), 1));
        }
        None
    }

    fn org_entity(&self, text: &str, ws: &[Word<'_>], i: usize, end: usize) -> Entity {
        let start = ws[i].start;
        let stop = ws[end - 1].end;
        Entity {
            kind: EntityKind::Organization,
            start,
            end: stop,
            text: text[start..stop].to_string(),
        }
    }

    // ----- dates ------------------------------------------------------------

    fn match_date(&self, text: &str, ws: &[Word<'_>], i: usize) -> Option<(Entity, usize)> {
        let w = &ws[i];
        // "Month Day, Year" / "Month Day" / "Month Year"
        if lexicon::is_month(w.text) {
            let mut k = i + 1;
            if k < ws.len() && is_day_number(ws[k].text) {
                k += 1;
            }
            if k < ws.len() && is_year(ws[k].text) {
                k += 1;
            }
            if k > i + 1 {
                return Some((span_entity(EntityKind::Date, text, ws, i, k), k - i));
            }
        }
        // "Spring 2020" / "Fall 2019"
        if matches!(w.text, "Spring" | "Summer" | "Fall" | "Autumn" | "Winter")
            && i + 1 < ws.len()
            && is_year(ws[i + 1].text)
        {
            return Some((span_entity(EntityKind::Date, text, ws, i, i + 2), 2));
        }
        // "12/01/2026" or "2026-01-12"
        if is_numeric_date(w.text) {
            return Some((span_entity(EntityKind::Date, text, ws, i, i + 1), 1));
        }
        // Bare year.
        if is_year(w.text) {
            return Some((span_entity(EntityKind::Date, text, ws, i, i + 1), 1));
        }
        // Weekday ("Friday")
        if lexicon::is_weekday(w.text) {
            return Some((span_entity(EntityKind::Date, text, ws, i, i + 1), 1));
        }
        None
    }

    // ----- times ------------------------------------------------------------

    fn match_time(&self, text: &str, ws: &[Word<'_>], i: usize) -> Option<(Entity, usize)> {
        let w = ws[i].text;
        let is_clock = looks_like_clock(w);
        let is_hour_ampm = w
            .strip_suffix("am")
            .or_else(|| w.strip_suffix("pm"))
            .or_else(|| w.strip_suffix("AM"))
            .or_else(|| w.strip_suffix("PM"))
            .is_some_and(|h| !h.is_empty() && h.chars().all(|c| c.is_ascii_digit()));
        if is_clock {
            // Absorb a following am/pm word.
            let mut k = i + 1;
            if k < ws.len() && matches!(ws[k].text.to_ascii_lowercase().as_str(), "am" | "pm") {
                k += 1;
            }
            return Some((span_entity(EntityKind::Time, text, ws, i, k), k - i));
        }
        if is_hour_ampm {
            return Some((span_entity(EntityKind::Time, text, ws, i, i + 1), 1));
        }
        None
    }

    // ----- locations ---------------------------------------------------------

    fn match_location(&self, text: &str, ws: &[Word<'_>], i: usize) -> Option<(Entity, usize)> {
        // Street addresses: "123 Main Street" / "45 Oak Ave, Suite 200".
        if ws[i].is_numeric() && i + 2 < ws.len() {
            let mut k = i + 1;
            while k < ws.len() && ws[k].is_capitalized() && k - i <= 3 {
                if is_street_word(ws[k].text) {
                    return Some((
                        span_entity(EntityKind::Location, text, ws, i, k + 1),
                        k + 1 - i,
                    ));
                }
                k += 1;
            }
        }
        // Known place names (possibly multi-word, e.g. "Ann Arbor").
        for place in lexicon::PLACES {
            let pw: Vec<&str> = place.split_whitespace().collect();
            if i + pw.len() <= ws.len() && pw.iter().enumerate().all(|(d, p)| ws[i + d].text == *p)
            {
                return Some((
                    span_entity(EntityKind::Location, text, ws, i, i + pw.len()),
                    pw.len(),
                ));
            }
        }
        None
    }

    // ----- money --------------------------------------------------------------

    fn match_money(&self, text: &str, ws: &[Word<'_>], i: usize) -> Option<(Entity, usize)> {
        let w = &ws[i];
        // "$50" tokenizes as "50" preceded by '$' in raw text.
        let has_dollar_prefix = w.start > 0 && text.as_bytes()[w.start - 1] == b'$';
        if has_dollar_prefix && w.text.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            let start = w.start - 1;
            return Some((
                Entity {
                    kind: EntityKind::Money,
                    start,
                    end: w.end,
                    text: text[start..w.end].to_string(),
                },
                1,
            ));
        }
        if w.is_numeric()
            && i + 1 < ws.len()
            && matches!(
                ws[i + 1].text.to_ascii_lowercase().as_str(),
                "dollars" | "usd"
            )
        {
            return Some((span_entity(EntityKind::Money, text, ws, i, i + 2), 2));
        }
        None
    }
}

impl Default for EntityRecognizer {
    fn default() -> Self {
        Self::pretrained()
    }
}

fn span_entity(kind: EntityKind, text: &str, ws: &[Word<'_>], i: usize, end: usize) -> Entity {
    let start = ws[i].start;
    let stop = ws[end - 1].end;
    Entity {
        kind,
        start,
        end: stop,
        text: text[start..stop].to_string(),
    }
}

fn is_title_word(w: &str) -> bool {
    matches!(
        w,
        "Dr" | "Prof" | "Professor" | "Mr" | "Ms" | "Mrs" | "Dr." | "Prof."
    )
}

fn is_org_head(w: &str) -> bool {
    // "Medical"/"Health" are *not* heads so "Cedar Medical Center" extends
    // through to "Center".
    matches!(
        w,
        "University"
            | "Institute"
            | "College"
            | "Laboratory"
            | "Labs"
            | "Center"
            | "Centre"
            | "Academy"
            | "Polytechnic"
            | "Clinic"
            | "Hospital"
            | "Corporation"
            | "Inc"
            | "Company"
            | "Practice"
            | "Associates"
    )
}

fn is_street_word(w: &str) -> bool {
    matches!(
        w,
        "Street"
            | "St"
            | "Avenue"
            | "Ave"
            | "Road"
            | "Rd"
            | "Boulevard"
            | "Blvd"
            | "Drive"
            | "Dr"
            | "Lane"
            | "Ln"
            | "Way"
            | "Suite"
    )
}

fn is_year(w: &str) -> bool {
    if let Some(y) = w.strip_prefix('\'') {
        return y.len() == 2 && y.chars().all(|c| c.is_ascii_digit());
    }
    w.len() == 4 && w.chars().all(|c| c.is_ascii_digit()) && {
        let n: u32 = w.parse().unwrap_or(0);
        (1900..=2099).contains(&n)
    }
}

fn is_day_number(w: &str) -> bool {
    w.chars().all(|c| c.is_ascii_digit()) && matches!(w.parse::<u32>(), Ok(1..=31))
}

fn is_numeric_date(w: &str) -> bool {
    // 12/01/2026 tokenizes as three words ("12", "01", "2026") because '/'
    // is not word-internal — but 2026-01-12 stays whole via '-'.
    let parts: Vec<&str> = w.split('-').collect();
    parts.len() == 3
        && parts
            .iter()
            .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()))
}

fn looks_like_clock(w: &str) -> bool {
    // "10:30" or "10:30-11:45"
    w.split('-').all(|part| {
        let pieces: Vec<&str> = part.split(':').collect();
        pieces.len() == 2
            && pieces
                .iter()
                .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()))
    }) && w.contains(':')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ner() -> EntityRecognizer {
        EntityRecognizer::pretrained()
    }

    fn kinds(text: &str) -> Vec<(EntityKind, String)> {
        ner()
            .entities(text)
            .into_iter()
            .map(|e| (e.kind, e.text))
            .collect()
    }

    #[test]
    fn person_names_from_lexicon() {
        let es = kinds("Advisees include Robert Smith and Mary Anderson.");
        assert!(es.contains(&(EntityKind::Person, "Robert Smith".into())));
        assert!(es.contains(&(EntityKind::Person, "Mary Anderson".into())));
    }

    #[test]
    fn titled_person_without_lexicon_first_name() {
        let es = kinds("Contact Dr. Quirine Zambesi for details.");
        assert!(es
            .iter()
            .any(|(k, t)| *k == EntityKind::Person && t == "Quirine Zambesi"));
    }

    #[test]
    fn lone_capitalized_word_is_not_person() {
        let es = kinds("Robert went home.");
        assert!(es.iter().all(|(k, _)| *k != EntityKind::Person));
    }

    #[test]
    fn universities_are_orgs() {
        let es = kinds("She is at Rome University and the University of Texas.");
        let orgs: Vec<&str> = es
            .iter()
            .filter(|(k, _)| *k == EntityKind::Organization)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(orgs.contains(&"Rome University"));
        assert!(orgs.iter().any(|o| o.starts_with("University of Texas")));
    }

    #[test]
    fn institute_of_technology() {
        let es = kinds("He joined Somewhere Institute of Technology last year.");
        assert!(es.iter().any(
            |(k, t)| *k == EntityKind::Organization && t == "Somewhere Institute of Technology"
        ));
    }

    #[test]
    fn pretrained_model_misses_conference_orgs() {
        // The paper's Key Idea #2 example: conference names are NOT
        // recognized as ORG by the default model…
        let es = kinds("Served on the PLDI committee.");
        assert!(es.iter().all(|(k, _)| *k != EntityKind::Organization));
        // …but the oracle variant sees them.
        let oracle = EntityRecognizer::with_conference_orgs();
        assert!(oracle.has_entity("Served on the PLDI committee.", EntityKind::Organization));
    }

    #[test]
    fn insurance_plans_are_orgs() {
        let es = kinds("We accept Aetna and Blue Cross Blue Shield plans.");
        let orgs: Vec<&str> = es
            .iter()
            .filter(|(k, _)| *k == EntityKind::Organization)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(orgs, ["Aetna", "Blue Cross Blue Shield"]);
    }

    #[test]
    fn dates() {
        let es = kinds("Submissions due January 15, 2026 or Fall 2025.");
        let dates: Vec<&str> = es
            .iter()
            .filter(|(k, _)| *k == EntityKind::Date)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(dates.contains(&"January 15, 2026"));
        assert!(dates.contains(&"Fall 2025"));
    }

    #[test]
    fn iso_date_and_bare_year() {
        let es = kinds("Deadline 2026-01-12, camera ready 2026.");
        let dates: Vec<&str> = es
            .iter()
            .filter(|(k, _)| *k == EntityKind::Date)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(dates, ["2026-01-12", "2026"]);
    }

    #[test]
    fn times() {
        let es = kinds("Lectures MWF 10:00-11:15 and Friday 3pm.");
        let times: Vec<&str> = es
            .iter()
            .filter(|(k, _)| *k == EntityKind::Time)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(times, ["10:00-11:15", "3pm"]);
    }

    #[test]
    fn locations() {
        let es = kinds("Our office is at 123 Main Street in Austin.");
        let locs: Vec<&str> = es
            .iter()
            .filter(|(k, _)| *k == EntityKind::Location)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(locs.contains(&"123 Main Street"));
        assert!(locs.contains(&"Austin"));
    }

    #[test]
    fn multiword_place() {
        let es = kinds("She moved to Ann Arbor.");
        assert!(es
            .iter()
            .any(|(k, t)| *k == EntityKind::Location && t == "Ann Arbor"));
    }

    #[test]
    fn money() {
        let es = kinds("The copay is $25 or 40 dollars without insurance.");
        let money: Vec<&str> = es
            .iter()
            .filter(|(k, _)| *k == EntityKind::Money)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(money, ["$25", "40 dollars"]);
    }

    #[test]
    fn has_entity_predicate() {
        assert!(ner().has_entity("Jane Doe teaches.", EntityKind::Person));
        assert!(!ner().has_entity("No names here.", EntityKind::Person));
    }

    #[test]
    fn entity_strings_in_order() {
        let names = ner().entity_strings("Jane Doe, then Robert Smith.", EntityKind::Person);
        assert_eq!(names, ["Jane Doe", "Robert Smith"]);
    }

    #[test]
    fn offsets_slice_back_to_text() {
        let text = "Meet Dr. Jane Doe at 123 Main Street, Austin on January 5, 2026.";
        for e in ner().entities(text) {
            assert_eq!(&text[e.start..e.end], e.text);
        }
    }

    #[test]
    fn empty_text_no_entities() {
        assert!(ner().entities("").is_empty());
    }
}
