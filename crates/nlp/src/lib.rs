//! # webqa-nlp
//!
//! Simulated "pretrained" NLP modules for the WebQA reproduction — the
//! three neural primitives of the paper's DSL (Section 4):
//!
//! * **Keyword matching** (`matchKeyword(z, K, t)`):
//!   [`keyword_similarity`] / [`best_keyword_similarity`], built on hashed
//!   character-trigram embeddings plus a synonym table — the stand-in for
//!   Sentence-BERT.
//! * **Question answering** (`hasAnswer(z, Q)`): [`QaModel`], a
//!   deterministic extractive span scorer — the stand-in for BERT-SQuAD.
//! * **Entity extraction** (`hasEntity(z, l)`): [`EntityRecognizer`], a
//!   rule/lexicon tagger — the stand-in for spaCy. It is *deliberately
//!   imperfect* (conference acronyms are not ORGs), which is the exact
//!   scenario motivating the paper's optimal-F₁ synthesis (Key Idea #2).
//!
//! All three are pure functions of their inputs: no model files, no RNG at
//! inference time, bit-reproducible everywhere.
//!
//! ```
//! use webqa_nlp::{keyword_similarity, EntityKind, EntityRecognizer, QaModel};
//!
//! assert!(keyword_similarity("Professional Services", "Service") > 0.9);
//!
//! let ner = EntityRecognizer::pretrained();
//! assert!(ner.has_entity("Jane Doe is here", EntityKind::Person));
//!
//! let qa = QaModel::pretrained();
//! assert!(qa.has_answer("Instructor: Jane Doe.", "Who is the instructor?"));
//! ```

#![warn(missing_docs)]

mod embedding;
pub mod lexicon;
mod ner;
mod qa;
pub mod text;

pub use embedding::{best_keyword_similarity, embed, keyword_similarity, Embedding};
pub use ner::{Entity, EntityKind, EntityRecognizer};
pub use qa::{AnswerType, QaAnswer, QaModel};
