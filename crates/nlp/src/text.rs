//! Word tokenization and sentence segmentation.
//!
//! The paper uses spaCy for sentence segmentation (Section 7); this module
//! is the from-scratch replacement. Unlike the *scoring* tokenizer in
//! `webqa-metrics`, these tokens keep their original case and byte offsets
//! because the NER and QA models need both.

/// A word token with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word<'a> {
    /// The token text (original case).
    pub text: &'a str,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Word<'_> {
    /// Whether the word starts with an uppercase letter.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(|c| c.is_uppercase())
    }

    /// Whether the word is entirely alphabetic.
    pub fn is_alpha(&self) -> bool {
        !self.text.is_empty() && self.text.chars().all(|c| c.is_alphabetic())
    }

    /// Whether the word is entirely numeric.
    pub fn is_numeric(&self) -> bool {
        !self.text.is_empty() && self.text.chars().all(|c| c.is_ascii_digit())
    }
}

/// Splits text into [`Word`]s: maximal runs of alphanumerics plus
/// word-internal `'`, `-`, `.`, `:`, `@` (emails, times, abbreviations).
pub fn words(text: &str) -> Vec<Word<'_>> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_word_byte(bytes[i]) {
            let start = i;
            while i < bytes.len() && (is_word_byte(bytes[i]) || is_internal(bytes, i)) {
                i += 1;
            }
            out.push(Word {
                text: &text[start..i],
                start,
                end: i,
            });
        } else if bytes[i] == b'\'' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
            // Year abbreviation: '21
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            out.push(Word {
                text: &text[start..i],
                start,
                end: i,
            });
        } else {
            i += utf8_len(bytes[i]);
        }
    }
    out
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b >= 0x80
}

fn is_internal(bytes: &[u8], i: usize) -> bool {
    matches!(bytes[i], b'\'' | b'-' | b'.' | b':' | b'@')
        && i > 0
        && is_word_byte(bytes[i - 1])
        && i + 1 < bytes.len()
        && is_word_byte(bytes[i + 1])
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// A sentence with its byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence<'a> {
    /// The sentence text (trimmed).
    pub text: &'a str,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// Segments text into sentences.
///
/// Splits on `.`, `!`, `?`, newlines, and semicolons, while protecting
/// common abbreviations ("Dr.", "Prof.", "e.g.") and decimal numbers.
pub fn sentences(text: &str) -> Vec<Sentence<'_>> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let is_break = match b {
            b'!' | b'?' | b'\n' | b';' => true,
            b'.' => {
                let prev_word = last_word(&text[start..i]);
                let next_is_space = bytes.get(i + 1).is_none_or(|&n| n.is_ascii_whitespace());
                next_is_space && !is_abbreviation(prev_word)
            }
            _ => false,
        };
        if is_break {
            push_sentence(text, start, i + 1, &mut out);
            start = i + 1;
        }
        i += 1;
    }
    push_sentence(text, start, text.len(), &mut out);
    out
}

fn push_sentence<'a>(text: &'a str, start: usize, end: usize, out: &mut Vec<Sentence<'a>>) {
    let raw = &text[start..end.min(text.len())];
    let trimmed = raw.trim_matches(|c: char| c.is_whitespace() || c == '.' || c == ';');
    if trimmed.is_empty() {
        return;
    }
    let offset = raw.find(trimmed).unwrap_or(0);
    out.push(Sentence {
        text: trimmed,
        start: start + offset,
        end: start + offset + trimmed.len(),
    });
}

fn last_word(s: &str) -> &str {
    s.rsplit(|c: char| c.is_whitespace()).next().unwrap_or("")
}

fn is_abbreviation(word: &str) -> bool {
    let w = word.trim_end_matches('.');
    matches!(
        w.to_ascii_lowercase().as_str(),
        "dr" | "prof"
            | "mr"
            | "mrs"
            | "ms"
            | "st"
            | "jr"
            | "sr"
            | "vs"
            | "etc"
            | "e.g"
            | "i.e"
            | "ph.d"
            | "m.d"
            | "u.s"
            | "dept"
            | "univ"
            | "vol"
            | "no"
            | "pp"
            | "al"
    ) || (w.len() == 1 && w.chars().all(|c| c.is_ascii_uppercase()))
}

/// Lowercased word strings (convenience for bag-of-words overlap).
pub fn lower_words(text: &str) -> Vec<String> {
    words(text).iter().map(|w| w.text.to_lowercase()).collect()
}

/// English stopwords used by the QA overlap scorer and keyword matcher.
pub fn is_stopword(w: &str) -> bool {
    matches!(
        w,
        "a" | "an"
            | "the"
            | "of"
            | "in"
            | "on"
            | "at"
            | "to"
            | "for"
            | "and"
            | "or"
            | "is"
            | "are"
            | "was"
            | "were"
            | "be"
            | "been"
            | "this"
            | "that"
            | "these"
            | "those"
            | "with"
            | "by"
            | "from"
            | "as"
            | "it"
            | "its"
            | "their"
            | "his"
            | "her"
            | "he"
            | "she"
            | "they"
            | "them"
            | "has"
            | "have"
            | "had"
            | "do"
            | "does"
            | "did"
            | "not"
            | "what"
            | "which"
            | "who"
            | "whom"
            | "when"
            | "where"
            | "how"
            | "why"
            | "whose"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_offsets_are_exact() {
        let text = "Jane Doe, PLDI '21";
        let ws = words(text);
        let spans: Vec<&str> = ws.iter().map(|w| &text[w.start..w.end]).collect();
        let texts: Vec<&str> = ws.iter().map(|w| w.text).collect();
        assert_eq!(spans, texts);
        assert_eq!(texts, ["Jane", "Doe", "PLDI", "'21"]);
    }

    #[test]
    fn emails_and_times_stay_whole() {
        let ws = lower_words("jane@cs.edu at 10:30");
        assert_eq!(ws, ["jane@cs.edu", "at", "10:30"]);
    }

    #[test]
    fn capitalization_predicate() {
        let text = "Jane doe";
        let ws = words(text);
        assert!(ws[0].is_capitalized());
        assert!(!ws[1].is_capitalized());
    }

    #[test]
    fn numeric_and_alpha_predicates() {
        let text = "CS 2021 x1";
        let ws = words(text);
        assert!(ws[0].is_alpha() && !ws[0].is_numeric());
        assert!(ws[1].is_numeric() && !ws[1].is_alpha());
        assert!(!ws[2].is_alpha() && !ws[2].is_numeric());
    }

    #[test]
    fn simple_sentences() {
        let s = sentences("First one. Second one! Third?");
        let texts: Vec<&str> = s.iter().map(|x| x.text).collect();
        assert_eq!(texts, ["First one", "Second one!", "Third?"]);
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = sentences("Dr. Jane Doe is a professor. She works at Univ. of Texas.");
        assert_eq!(s.len(), 2);
        assert!(s[0].text.starts_with("Dr. Jane"));
    }

    #[test]
    fn decimal_numbers_do_not_split() {
        let s = sentences("GPA is 3.5 overall. Next.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn newlines_split() {
        let s = sentences("line one\nline two");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_text() {
        assert!(words("").is_empty());
        assert!(sentences("").is_empty());
        assert!(sentences(" .. ").is_empty());
    }

    #[test]
    fn sentence_offsets_are_exact() {
        let text = "Alpha beta. Gamma delta.";
        for s in sentences(text) {
            assert_eq!(&text[s.start..s.end], s.text);
        }
    }

    #[test]
    fn initials_do_not_split() {
        let s = sentences("J. Doe wrote this. Done.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn stopwords() {
        assert!(is_stopword("the"));
        assert!(is_stopword("who"));
        assert!(!is_stopword("committee"));
    }

    #[test]
    fn unicode_words() {
        let ws = lower_words("Müller café");
        assert_eq!(ws, ["müller", "café"]);
    }
}
