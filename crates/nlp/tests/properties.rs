//! Property-based tests for the simulated NLP modules: totality,
//! determinism, bounded scores, and offset validity — the contracts the
//! DSL evaluator and synthesizer rely on.

use proptest::prelude::*;
use webqa_nlp::{
    best_keyword_similarity, keyword_similarity, text, EntityKind, EntityRecognizer, QaModel,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn keyword_similarity_bounded(a in "\\PC{0,40}", b in "\\PC{0,20}") {
        let s = keyword_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
    }

    #[test]
    fn keyword_similarity_deterministic(a in "[a-zA-Z ]{0,30}", b in "[a-zA-Z ]{0,15}") {
        prop_assert_eq!(keyword_similarity(&a, &b), keyword_similarity(&a, &b));
    }

    #[test]
    fn self_similarity_is_one_for_wordful_text(a in "[a-z]{2,10}( [a-z]{2,10}){0,3}") {
        prop_assert_eq!(keyword_similarity(&a, &a), 1.0);
    }

    #[test]
    fn best_keyword_takes_pointwise_max(
        text in "[a-zA-Z ]{0,30}",
        k1 in "[a-zA-Z]{1,10}",
        k2 in "[a-zA-Z]{1,10}",
    ) {
        let both = best_keyword_similarity(&text, &[k1.as_str(), k2.as_str()]);
        let s1 = keyword_similarity(&text, &k1);
        let s2 = keyword_similarity(&text, &k2);
        prop_assert!((both - s1.max(s2)).abs() < 1e-6);
    }

    #[test]
    fn ner_is_total_and_offsets_valid(s in "\\PC{0,120}") {
        let ner = EntityRecognizer::pretrained();
        for e in ner.entities(&s) {
            prop_assert!(e.start <= e.end && e.end <= s.len());
            prop_assert!(s.is_char_boundary(e.start) && s.is_char_boundary(e.end));
            prop_assert_eq!(&s[e.start..e.end], e.text.as_str());
        }
    }

    #[test]
    fn ner_entities_do_not_overlap(s in "\\PC{0,120}") {
        let ner = EntityRecognizer::pretrained();
        let es = ner.entities(&s);
        for pair in es.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
        }
    }

    #[test]
    fn oracle_ner_is_superset_for_org(s in "[A-Za-z ',.]{0,100}") {
        // with_conference_orgs only ever adds ORG entities.
        let base = EntityRecognizer::pretrained();
        let oracle = EntityRecognizer::with_conference_orgs();
        if base.has_entity(&s, EntityKind::Organization) {
            prop_assert!(oracle.has_entity(&s, EntityKind::Organization));
        }
    }

    #[test]
    fn qa_is_total_and_scores_bounded(p in "\\PC{0,150}", q in "\\PC{0,40}") {
        let qa = QaModel::pretrained();
        if let Some(a) = qa.answer(&p, &q) {
            prop_assert!((0.0..=1.0).contains(&a.score));
            prop_assert!(a.start <= a.end && a.end <= p.len());
        }
    }

    #[test]
    fn qa_deterministic(p in "[a-zA-Z .:,]{0,80}", q in "[a-zA-Z ?]{0,30}") {
        let qa = QaModel::pretrained();
        prop_assert_eq!(qa.answer(&p, &q), qa.answer(&p, &q));
    }

    #[test]
    fn word_offsets_always_slice_back(s in "\\PC{0,120}") {
        for w in text::words(&s) {
            prop_assert_eq!(&s[w.start..w.end], w.text);
        }
    }

    #[test]
    fn sentence_offsets_always_slice_back(s in "\\PC{0,120}") {
        for sent in text::sentences(&s) {
            prop_assert_eq!(&s[sent.start..sent.end], sent.text);
        }
    }

    #[test]
    fn sentences_cover_subset_of_text(s in "[a-zA-Z .!?\n]{0,120}") {
        // Sentences are disjoint and ordered.
        let sents = text::sentences(&s);
        for pair in sents.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
        }
    }
}
