//! Shared experiment harness for the table/figure benches.
//!
//! Every bench target regenerates one table or figure of the paper
//! (Section 8 / Appendix C). This library holds the common machinery:
//! corpus construction, per-task runs of WebQA and the three baselines,
//! and row formatting.
//!
//! Knobs (environment variables, so `cargo bench` stays zero-config):
//!
//! * `WEBQA_PAGES` — pages per domain (default 40, the paper's scale);
//! * `WEBQA_TRAIN` — labeled pages per task (default 5);
//! * `WEBQA_SEED` — corpus seed (default 42).

use webqa::{score_answers, Config, Selection, WebQa};
use webqa_baselines::{BertQa, EntExtract, Hyb};
use webqa_corpus::{Corpus, Task, TaskDataset};
use webqa_metrics::{Counts, Score};

/// Experiment-wide setup shared by all benches.
pub struct Setup {
    /// The generated corpus.
    pub corpus: Corpus,
    /// Labeled pages per task.
    pub train_pages: usize,
    pages_per_domain: usize,
    seed: u64,
}

impl Setup {
    /// Builds the standard setup from the environment knobs.
    pub fn from_env() -> Setup {
        let pages = env_usize("WEBQA_PAGES", 16);
        let train = env_usize("WEBQA_TRAIN", 5);
        let seed = env_usize("WEBQA_SEED", 42) as u64;
        Setup {
            corpus: Corpus::generate(pages, seed),
            train_pages: train,
            pages_per_domain: pages,
            seed,
        }
    }

    /// The dataset split for one task.
    pub fn dataset(&self, task: &Task) -> TaskDataset {
        self.corpus.dataset(task, self.train_pages)
    }

    /// Path of the cross-bench result cache for this setup. Figure 12,
    /// Table 2, and Table 6 all present the *same* experiment, so the
    /// first bench to run stores the per-task rows and the others reuse
    /// them.
    fn cache_path(&self) -> std::path::PathBuf {
        // Benches run with the package directory as cwd; anchor the cache
        // in the workspace target directory.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
        root.join(format!(
            "webqa_rows_p{}_t{}_s{}.tsv",
            self.pages_per_domain, self.train_pages, self.seed
        ))
    }
}

/// Per-task rows of the tool-comparison experiment, cached on disk across
/// bench invocations (delete `target/webqa_rows_*.tsv` to force a rerun).
pub fn task_rows_cached(setup: &Setup) -> Vec<TaskRow> {
    let path = setup.cache_path();
    if let Some(rows) = read_rows(&path) {
        eprintln!("# reusing cached rows from {}", path.display());
        return rows;
    }
    let rows: Vec<TaskRow> = webqa_corpus::TASKS
        .iter()
        .map(|t| {
            let row = run_all_tools(setup, t, default_config());
            eprintln!(
                "  {:<10} webqa F1={:.2}  bertqa F1={:.2}  hyb F1={:.2}  ent F1={:.2}",
                t.id, row.webqa.f1, row.bertqa.f1, row.hyb.f1, row.ent.f1
            );
            row
        })
        .collect();
    write_rows(&path, &rows);
    rows
}

fn read_rows(path: &std::path::Path) -> Option<Vec<TaskRow>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines() {
        let mut cols = line.split('\t');
        let id = cols.next()?;
        let task = webqa_corpus::task_by_id(id)?;
        let mut vals = [0.0f64; 12];
        for v in vals.iter_mut() {
            *v = cols.next()?.parse().ok()?;
        }
        let s = |i: usize| Score {
            precision: vals[i],
            recall: vals[i + 1],
            f1: vals[i + 2],
        };
        rows.push(TaskRow {
            task,
            webqa: s(0),
            bertqa: s(3),
            hyb: s(6),
            ent: s(9),
        });
    }
    if rows.len() == webqa_corpus::TASKS.len() {
        Some(rows)
    } else {
        None
    }
}

fn write_rows(path: &std::path::Path, rows: &[TaskRow]) {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in rows {
        let mut line = r.task.id.to_string();
        for s in [&r.webqa, &r.bertqa, &r.hyb, &r.ent] {
            let _ = write!(line, "\t{}\t{}\t{}", s.precision, s.recall, s.f1);
        }
        out.push_str(&line);
        out.push('\n');
    }
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::write(path, out);
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Scores of every tool on one task (a row of Table 6).
#[derive(Debug, Clone)]
pub struct TaskRow {
    /// The task.
    pub task: &'static Task,
    /// WebQA's test-set score.
    pub webqa: Score,
    /// BERTQA baseline score.
    pub bertqa: Score,
    /// HYB baseline score.
    pub hyb: Score,
    /// EntExtract baseline score.
    pub ent: Score,
}

/// Runs WebQA (with the given pipeline config) on one task and scores the
/// held-out pages.
pub fn run_webqa(setup: &Setup, task: &Task, config: Config) -> Score {
    let data = setup.dataset(task);
    let system = WebQa::new(config);
    let labeled: Vec<_> = data
        .train
        .iter()
        .map(|p| (p.page.clone(), p.gold.clone()))
        .collect();
    let unlabeled: Vec<_> = data.test.iter().map(|p| p.page.clone()).collect();
    let result = system.run(task.question, task.keywords, &labeled, &unlabeled);
    let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();
    score_answers(&result.answers, &gold)
}

/// Runs WebQA with only the first `n_train` of the labeled pages (the
/// Figure 14 sweep); the test split is unchanged so scores stay
/// comparable across `n_train`.
pub fn run_webqa_with_train(setup: &Setup, task: &Task, config: Config, n_train: usize) -> Score {
    let data = setup.dataset(task);
    let system = WebQa::new(config);
    let labeled: Vec<_> = data
        .train
        .iter()
        .take(n_train)
        .map(|p| (p.page.clone(), p.gold.clone()))
        .collect();
    let unlabeled: Vec<_> = data.test.iter().map(|p| p.page.clone()).collect();
    let result = system.run(task.question, task.keywords, &labeled, &unlabeled);
    let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();
    score_answers(&result.answers, &gold)
}

/// Runs all four tools on one task (the computation behind Figure 12,
/// Table 2, and Table 6).
pub fn run_all_tools(setup: &Setup, task: &'static Task, config: Config) -> TaskRow {
    let data = setup.dataset(task);
    let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();

    // WebQA.
    let webqa = run_webqa(setup, task, config);

    // BERTQA: flat-text QA per page.
    let bq = BertQa::new();
    let bert_answers: Vec<Vec<String>> = data
        .test
        .iter()
        .map(|p| bq.answer_page(task.question, &p.html))
        .collect();
    let bertqa = score_answers(&bert_answers, &gold);

    // HYB: exact-match wrapper induction from the labeled pages.
    let hyb_train: Vec<(String, Vec<String>)> = data
        .train
        .iter()
        .map(|p| (p.html.clone(), p.gold.clone()))
        .collect();
    let hyb_answers: Vec<Vec<String>> = match Hyb::train(&hyb_train) {
        Ok(wrapper) => data.test.iter().map(|p| wrapper.extract(&p.html)).collect(),
        Err(_) => vec![Vec::new(); data.test.len()], // synthesis failed (paper §8.1)
    };
    let hyb = score_answers(&hyb_answers, &gold);

    // EntExtract: zero-shot.
    let ee = EntExtract::new();
    let ent_answers: Vec<Vec<String>> = data
        .test
        .iter()
        .map(|p| ee.extract(task.question, &p.html))
        .collect();
    let ent = score_answers(&ent_answers, &gold);

    TaskRow {
        task,
        webqa,
        bertqa,
        hyb,
        ent,
    }
}

/// Macro-averages a set of scores (how the paper aggregates per-task rows
/// into domain rows and the Figure 12 bars).
pub fn mean_scores<'a, I: IntoIterator<Item = &'a Score>>(scores: I) -> Score {
    Score::mean(scores)
}

/// Micro-average counts helper re-exported for benches that accumulate
/// their own counts.
pub fn counts_to_score(c: Counts) -> Score {
    Score::from_counts(c)
}

/// Default pipeline config used by the accuracy benches: the standard
/// pipeline with a trimmed program cap and ensemble size (the selection
/// outcome is grouped by program *behaviour*, so shrinking the syntactic
/// ensemble does not change the reproduced quantities).
pub fn default_config() -> Config {
    let mut c = Config::default();
    c.synth.max_programs = 600;
    c.selection.ensemble_size = 300;
    c
}

/// Pipeline config with a fixed selection strategy.
pub fn config_with_strategy(strategy: Selection) -> Config {
    Config {
        strategy,
        ..Config::default()
    }
}

/// Formats one score triple as the paper prints them (two decimals).
pub fn fmt_score(s: &Score) -> String {
    format!("{:.2} {:.2} {:.2}", s.precision, s.recall, s.f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_corpus::task_by_id;

    fn tiny_setup() -> Setup {
        Setup {
            corpus: Corpus::generate(8, 7),
            train_pages: 4,
            pages_per_domain: 8,
            seed: 7,
        }
    }

    #[test]
    fn run_all_tools_produces_scores_in_range() {
        let setup = tiny_setup();
        let task = task_by_id("clinic_t1").unwrap();
        let row = run_all_tools(&setup, task, default_config());
        for s in [row.webqa, row.bertqa, row.hyb, row.ent] {
            assert!((0.0..=1.0).contains(&s.f1));
        }
    }

    #[test]
    fn webqa_beats_baselines_on_a_list_task() {
        let setup = tiny_setup();
        let task = task_by_id("fac_t1").unwrap();
        let row = run_all_tools(&setup, task, default_config());
        assert!(
            row.webqa.f1 >= row.bertqa.f1 && row.webqa.f1 >= row.hyb.f1,
            "WebQA {:?} vs BERTQA {:?} / HYB {:?}",
            row.webqa,
            row.bertqa,
            row.hyb
        );
    }
}
