//! Shared experiment harness for the table/figure benches.
//!
//! Every bench target regenerates one table or figure of the paper
//! (Section 8 / Appendix C). This library holds the common machinery:
//! corpus construction, a shared interned page store (every page is
//! parsed exactly once, however many tasks and tools read it), per-task
//! runs of WebQA — through the staged `webqa::Engine` — and the three
//! baselines, and row formatting.
//!
//! Knobs (environment variables, so `cargo bench` stays zero-config):
//!
//! * `WEBQA_PAGES` — pages per domain (default 40, the paper's scale);
//! * `WEBQA_TRAIN` — labeled pages per task (default 5);
//! * `WEBQA_SEED` — corpus seed (default 42).

use webqa::{score_answers, Config, Engine, PageId, PageStore, Selection};
use webqa_baselines::{BertQa, EntExtract, Hyb};
use webqa_corpus::{Corpus, Domain, Task, TaskDataset};
use webqa_metrics::{Counts, Score};

pub mod trajectory;

/// Experiment-wide setup shared by all benches.
pub struct Setup {
    /// The generated corpus.
    pub corpus: Corpus,
    /// Labeled pages per task.
    pub train_pages: usize,
    /// Pages of every domain, parsed once and interned.
    store: PageStore,
    /// Per-domain page handles, aligned with `corpus.pages(domain)`.
    page_ids: Vec<(Domain, Vec<PageId>)>,
    pages_per_domain: usize,
    seed: u64,
}

impl Setup {
    /// Builds the standard setup from the environment knobs.
    pub fn from_env() -> Setup {
        Self::new(
            env_usize("WEBQA_PAGES", 16),
            env_usize("WEBQA_TRAIN", 5),
            env_usize("WEBQA_SEED", 42) as u64,
        )
    }

    /// Builds a setup with explicit knobs, interning every corpus page.
    pub fn new(pages_per_domain: usize, train_pages: usize, seed: u64) -> Setup {
        let corpus = Corpus::generate(pages_per_domain, seed);
        let mut store = PageStore::new();
        let page_ids = Domain::ALL
            .iter()
            .map(|&domain| {
                (
                    domain,
                    corpus
                        .pages(domain)
                        .iter()
                        .map(|p| store.insert_tree(p.tree()))
                        .collect(),
                )
            })
            .collect();
        Setup {
            corpus,
            train_pages,
            store,
            page_ids,
            pages_per_domain,
            seed,
        }
    }

    /// Pages generated per domain (`WEBQA_PAGES`).
    pub fn pages_per_domain(&self) -> usize {
        self.pages_per_domain
    }

    /// The corpus seed (`WEBQA_SEED`).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The dataset split for one task (raw HTML + parsed trees; the
    /// baselines need the HTML — WebQA itself runs off the interned
    /// store via [`Setup::engine`]).
    pub fn dataset(&self, task: &Task) -> TaskDataset {
        self.corpus.dataset(task, self.train_pages)
    }

    /// An engine with the given config over the shared page store
    /// (cloning the store only bumps `Arc` refcounts per page).
    pub fn engine(&self, config: Config) -> Engine {
        Engine::with_store(config, self.store.clone())
    }

    fn domain_ids(&self, domain: Domain) -> &[PageId] {
        self.page_ids
            .iter()
            .find(|(d, _)| *d == domain)
            .map(|(_, ids)| ids.as_slice())
            .expect("every domain is interned")
    }

    /// The engine task for one corpus task: first `train_pages` pages of
    /// the domain labeled, the rest as unlabeled targets.
    pub fn engine_task(&self, task: &Task) -> webqa::Task {
        self.engine_task_with_train(task, self.train_pages)
    }

    /// [`Setup::engine_task`] with only the first `n_train` labels; the
    /// unlabeled (test) split is unchanged so scores stay comparable
    /// across `n_train` (the Figure 14 sweep).
    pub fn engine_task_with_train(&self, task: &Task, n_train: usize) -> webqa::Task {
        let pages = self.corpus.pages(task.domain);
        let mut t = webqa::Task::from_id_split(
            task.question,
            task.keywords.iter().copied(),
            self.domain_ids(task.domain),
            self.train_pages,
            |i| pages[i].gold(task.id).to_vec(),
        );
        // Fewer labels than the split boundary (the Figure 14 sweep): drop
        // the extras but keep the test split unchanged so scores compare.
        t.labeled.truncate(n_train);
        t
    }

    /// Gold labels of the unlabeled (test) split, aligned with the
    /// engine task's answer order.
    pub fn test_gold(&self, task: &Task) -> Vec<Vec<String>> {
        let split = self.train_pages.min(self.domain_ids(task.domain).len());
        self.corpus.pages(task.domain)[split..]
            .iter()
            .map(|p| p.gold(task.id).to_vec())
            .collect()
    }

    /// Path of the cross-bench result cache for this setup. Figure 12,
    /// Table 2, and Table 6 all present the *same* experiment, so the
    /// first bench to run stores the per-task rows and the others reuse
    /// them.
    fn cache_path(&self) -> std::path::PathBuf {
        // Benches run with the package directory as cwd; anchor the cache
        // in the workspace target directory.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
        root.join(format!(
            "webqa_rows_p{}_t{}_s{}.tsv",
            self.pages_per_domain, self.train_pages, self.seed
        ))
    }
}

/// Per-task rows of the tool-comparison experiment, cached on disk across
/// bench invocations (delete `target/webqa_rows_*.tsv` to force a rerun).
pub fn task_rows_cached(setup: &Setup) -> Vec<TaskRow> {
    let path = setup.cache_path();
    if let Some(rows) = read_rows(&path) {
        eprintln!("# reusing cached rows from {}", path.display());
        return rows;
    }
    let rows: Vec<TaskRow> = webqa_corpus::TASKS
        .iter()
        .map(|t| {
            let row = run_all_tools(setup, t, default_config());
            eprintln!(
                "  {:<10} webqa F1={:.2}  bertqa F1={:.2}  hyb F1={:.2}  ent F1={:.2}",
                t.id, row.webqa.f1, row.bertqa.f1, row.hyb.f1, row.ent.f1
            );
            row
        })
        .collect();
    write_rows(&path, &rows);
    rows
}

fn read_rows(path: &std::path::Path) -> Option<Vec<TaskRow>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines() {
        let mut cols = line.split('\t');
        let id = cols.next()?;
        let task = webqa_corpus::task_by_id(id)?;
        let mut vals = [0.0f64; 12];
        for v in vals.iter_mut() {
            *v = cols.next()?.parse().ok()?;
        }
        let s = |i: usize| Score {
            precision: vals[i],
            recall: vals[i + 1],
            f1: vals[i + 2],
        };
        rows.push(TaskRow {
            task,
            webqa: s(0),
            bertqa: s(3),
            hyb: s(6),
            ent: s(9),
        });
    }
    if rows.len() == webqa_corpus::TASKS.len() {
        Some(rows)
    } else {
        None
    }
}

fn write_rows(path: &std::path::Path, rows: &[TaskRow]) {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in rows {
        let mut line = r.task.id.to_string();
        for s in [&r.webqa, &r.bertqa, &r.hyb, &r.ent] {
            let _ = write!(line, "\t{}\t{}\t{}", s.precision, s.recall, s.f1);
        }
        out.push_str(&line);
        out.push('\n');
    }
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::write(path, out);
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Scores of every tool on one task (a row of Table 6).
#[derive(Debug, Clone)]
pub struct TaskRow {
    /// The task.
    pub task: &'static Task,
    /// WebQA's test-set score.
    pub webqa: Score,
    /// BERTQA baseline score.
    pub bertqa: Score,
    /// HYB baseline score.
    pub hyb: Score,
    /// EntExtract baseline score.
    pub ent: Score,
}

/// Runs WebQA (with the given pipeline config) on one task and scores the
/// held-out pages. The engine reads the interned pages — no `PageTree`
/// is parsed or cloned here.
pub fn run_webqa(setup: &Setup, task: &Task, config: Config) -> Score {
    run_webqa_with_train(setup, task, config, setup.train_pages)
}

/// Runs WebQA with only the first `n_train` of the labeled pages (the
/// Figure 14 sweep); the test split is unchanged so scores stay
/// comparable across `n_train`.
pub fn run_webqa_with_train(setup: &Setup, task: &Task, config: Config, n_train: usize) -> Score {
    let engine = setup.engine(config);
    let result = engine
        .run(&setup.engine_task_with_train(task, n_train))
        .expect("store-issued ids always resolve");
    score_answers(&result.answers, &setup.test_gold(task)).expect("aligned by construction")
}

/// Runs all four tools on one task (the computation behind Figure 12,
/// Table 2, and Table 6).
pub fn run_all_tools(setup: &Setup, task: &'static Task, config: Config) -> TaskRow {
    let data = setup.dataset(task);
    let gold: Vec<_> = data.test.iter().map(|p| p.gold.clone()).collect();

    // WebQA.
    let webqa = run_webqa(setup, task, config);

    // BERTQA: flat-text QA per page.
    let bq = BertQa::new();
    let bert_answers: Vec<Vec<String>> = data
        .test
        .iter()
        .map(|p| bq.answer_page(task.question, &p.html))
        .collect();
    let bertqa = score_answers(&bert_answers, &gold).expect("aligned");

    // HYB: exact-match wrapper induction from the labeled pages.
    let hyb_train: Vec<(String, Vec<String>)> = data
        .train
        .iter()
        .map(|p| (p.html.clone(), p.gold.clone()))
        .collect();
    let hyb_answers: Vec<Vec<String>> = match Hyb::train(&hyb_train) {
        Ok(wrapper) => data.test.iter().map(|p| wrapper.extract(&p.html)).collect(),
        Err(_) => vec![Vec::new(); data.test.len()], // synthesis failed (paper §8.1)
    };
    let hyb = score_answers(&hyb_answers, &gold).expect("aligned");

    // EntExtract: zero-shot.
    let ee = EntExtract::new();
    let ent_answers: Vec<Vec<String>> = data
        .test
        .iter()
        .map(|p| ee.extract(task.question, &p.html))
        .collect();
    let ent = score_answers(&ent_answers, &gold).expect("aligned");

    TaskRow {
        task,
        webqa,
        bertqa,
        hyb,
        ent,
    }
}

/// Macro-averages a set of scores (how the paper aggregates per-task rows
/// into domain rows and the Figure 12 bars).
pub fn mean_scores<'a, I: IntoIterator<Item = &'a Score>>(scores: I) -> Score {
    Score::mean(scores)
}

/// Micro-average counts helper re-exported for benches that accumulate
/// their own counts.
pub fn counts_to_score(c: Counts) -> Score {
    Score::from_counts(c)
}

/// Default pipeline config used by the accuracy benches: the standard
/// pipeline with a trimmed program cap and ensemble size (the selection
/// outcome is grouped by program *behaviour*, so shrinking the syntactic
/// ensemble does not change the reproduced quantities).
pub fn default_config() -> Config {
    let mut c = Config::default();
    c.synth.max_programs = 600;
    c.selection.ensemble_size = 300;
    c
}

/// Pipeline config with a fixed selection strategy.
pub fn config_with_strategy(strategy: Selection) -> Config {
    Config {
        strategy,
        ..Config::default()
    }
}

/// Formats one score triple as the paper prints them (two decimals).
pub fn fmt_score(s: &Score) -> String {
    format!("{:.2} {:.2} {:.2}", s.precision, s.recall, s.f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_corpus::task_by_id;

    fn tiny_setup() -> Setup {
        Setup::new(8, 4, 7)
    }

    #[test]
    fn corpus_pages_are_interned_once() {
        let setup = tiny_setup();
        // 4 domains × 8 pages, each parsed exactly once; every task and
        // engine clone reads the same Arcs.
        assert_eq!(setup.engine(default_config()).store().len(), 32);
        let t = task_by_id("fac_t1").unwrap();
        let spec = setup.engine_task(t);
        assert_eq!(spec.labeled.len(), 4);
        assert_eq!(spec.unlabeled.len(), 4);
        assert_eq!(setup.test_gold(t).len(), 4);
    }

    #[test]
    fn run_all_tools_produces_scores_in_range() {
        let setup = tiny_setup();
        let task = task_by_id("clinic_t1").unwrap();
        let row = run_all_tools(&setup, task, default_config());
        for s in [row.webqa, row.bertqa, row.hyb, row.ent] {
            assert!((0.0..=1.0).contains(&s.f1));
        }
    }

    #[test]
    fn webqa_beats_baselines_on_a_list_task() {
        let setup = tiny_setup();
        let task = task_by_id("fac_t1").unwrap();
        let row = run_all_tools(&setup, task, default_config());
        assert!(
            row.webqa.f1 >= row.bertqa.f1 && row.webqa.f1 >= row.hyb.f1,
            "WebQA {:?} vs BERTQA {:?} / HYB {:?}",
            row.webqa,
            row.bertqa,
            row.hyb
        );
    }
}
