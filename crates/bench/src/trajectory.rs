//! Machine-readable perf trajectories.
//!
//! Two append-only JSON-array files at the workspace root accumulate one
//! record per recorded bench run, keyed by the corpus knobs. Timing
//! alone cannot be asserted in CI (hardware varies); the counters can —
//! and the trajectory files are what let a future "make it faster" PR
//! show its numbers instead of hand-waving:
//!
//! * `BENCH_synth.json` ([`RunRecord`], written by `synth_hotpath`):
//!   per-task synthesis wall time plus the full `SynthStats` counters;
//! * `BENCH_serve.json` ([`ServeRecord`], written by
//!   `serve_throughput`): served requests/sec across concurrent clients
//!   plus the engine's cross-request cache hit/miss/eviction counters;
//!   also ([`LatencyRecord`], written by `serve_latency`): open-loop
//!   tail latency (p50/p99/p999) and shed rate past saturation; also
//!   ([`WarmRecord`], written by `serve_warm`): snapshot load counters
//!   and the base-tier hit rate of a warm-restarted daemon serving new
//!   questions over known pages. The record shapes share the file —
//!   each carries a `bench` tag.

use std::time::{SystemTime, UNIX_EPOCH};

use webqa_synth::SynthStats;

/// Wall time and search counters for one synthesis target.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TargetRecord {
    /// Corpus task id (e.g. `fac_t1`).
    pub task: String,
    /// Wall-clock seconds spent in `synthesize`.
    pub wall_s: f64,
    /// Training F₁ of the synthesis outcome.
    pub train_f1: f64,
    /// Number of optimal programs materialized.
    pub programs: usize,
    /// Search statistics.
    pub stats: SynthStats,
}

/// One recorded bench run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RunRecord {
    /// Seconds since the Unix epoch when the run finished.
    pub timestamp_unix: u64,
    /// `WEBQA_PAGES` (pages per domain).
    pub pages: usize,
    /// `WEBQA_TRAIN` (labeled pages per task).
    pub train: usize,
    /// `WEBQA_SEED` (corpus seed).
    pub seed: u64,
    /// Total wall-clock seconds across all targets.
    pub total_wall_s: f64,
    /// Per-target records.
    pub targets: Vec<TargetRecord>,
}

impl RunRecord {
    /// A record for the given setup knobs, stamped with the current time.
    pub fn new(pages: usize, train: usize, seed: u64, targets: Vec<TargetRecord>) -> Self {
        RunRecord {
            timestamp_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            pages,
            train,
            seed,
            total_wall_s: targets.iter().map(|t| t.wall_s).sum(),
            targets,
        }
    }
}

/// One recorded serving-throughput run (`cargo bench --bench
/// serve_throughput` → `BENCH_serve.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeRecord {
    /// Seconds since the Unix epoch when the run finished.
    pub timestamp_unix: u64,
    /// `WEBQA_PAGES` (pages per domain of the generated workload).
    pub pages: usize,
    /// `WEBQA_TRAIN` (labeled pages per task).
    pub train: usize,
    /// `WEBQA_SEED` (corpus seed).
    pub seed: u64,
    /// Concurrent client connections (`WEBQA_CLIENTS`).
    pub clients: usize,
    /// Times each client replayed its full task stream
    /// (`WEBQA_REPEATS`).
    pub repeats: usize,
    /// Distinct tasks in the stream.
    pub distinct_tasks: usize,
    /// Total `run` requests served (all clients, all repeats).
    pub requests: usize,
    /// Wall-clock seconds from first request sent to last response read.
    pub wall_s: f64,
    /// `requests / wall_s`.
    pub requests_per_sec: f64,
    /// The server engine's cross-request cache counters after the run.
    pub cache: webqa::CacheStats,
}

impl ServeRecord {
    /// Fraction of query-tier feature lookups served from the store —
    /// `None` when the tier is disabled or saw no traffic (the old
    /// `0.0` here rendered a disabled cache as a misleading "0% hit
    /// rate").
    pub fn feature_hit_rate(&self) -> Option<f64> {
        self.cache.feature_hit_rate()
    }

    /// Fraction of base-tier (query-independent) feature lookups served
    /// from the store; `None` as for
    /// [`feature_hit_rate`](ServeRecord::feature_hit_rate).
    pub fn base_hit_rate(&self) -> Option<f64> {
        self.cache.base_hit_rate()
    }

    /// Fraction of completed-run lookups served from the LRU; `None` as
    /// for [`feature_hit_rate`](ServeRecord::feature_hit_rate).
    pub fn result_hit_rate(&self) -> Option<f64> {
        self.cache.result_hit_rate()
    }
}

/// One recorded warm-restart run (`cargo bench --bench serve_warm` →
/// `BENCH_serve.json`): a daemon serves a cross-query stream with
/// `--cache-dir`, shuts down (spilling its snapshot), restarts on the
/// same directory, and serves a stream of *different questions over the
/// same pages*. The record captures what the restart got for free.
#[derive(Debug, Clone, serde::Serialize)]
pub struct WarmRecord {
    /// Record shape tag, always `"serve_warm"`.
    pub bench: String,
    /// Seconds since the Unix epoch when the run finished.
    pub timestamp_unix: u64,
    /// Pages per domain of the generated workload (`WEBQA_PAGES`).
    pub pages: usize,
    /// Labeled pages per task (`WEBQA_TRAIN`).
    pub train: usize,
    /// Corpus seed (`WEBQA_SEED`).
    pub seed: u64,
    /// `run` requests served by the restarted daemon.
    pub requests: usize,
    /// Pages loaded from the snapshot at restart.
    pub pages_loaded: u64,
    /// Base-feature tables loaded from the snapshot at restart.
    pub base_loaded: u64,
    /// Wall-clock milliseconds the restart spent loading the snapshot.
    pub load_ms: u64,
    /// Base-tier hits while serving the different-questions stream —
    /// every one is an NER pass the warm start skipped.
    pub base_hits: u64,
    /// Base-tier misses (pages whose base table was not in the
    /// snapshot, plus LRU evictions).
    pub base_misses: u64,
    /// `base_hits / (base_hits + base_misses)` (0 when no traffic).
    pub base_hit_rate: f64,
    /// Wall-clock seconds serving the post-restart stream.
    pub wall_s: f64,
}

/// One recorded open-loop latency run (`cargo bench --bench
/// serve_latency` → `BENCH_serve.json`).
///
/// The load generator drives a bounded-pool server *past* saturation,
/// so the interesting numbers are the tail of the admitted requests
/// (`p99_ms`, `p999_ms` — bounded by the backlog cap) and the
/// `shed_rate` (the fraction refused with a typed `overloaded` error
/// instead of queueing without bound).
#[derive(Debug, Clone, serde::Serialize)]
pub struct LatencyRecord {
    /// Record shape tag, always `"serve_latency"` (distinguishes these
    /// records from [`ServeRecord`]s in the shared `BENCH_serve.json`).
    pub bench: String,
    /// Seconds since the Unix epoch when the run finished.
    pub timestamp_unix: u64,
    /// Worker threads in the server pool (`WEBQA_WORKERS`).
    pub workers: usize,
    /// Admission-queue backlog cap (`WEBQA_BACKLOG`).
    pub backlog: usize,
    /// Total requests offered by the open-loop generator
    /// (`WEBQA_REQUESTS`).
    pub requests: usize,
    /// Mean per-request service time measured at calibration, ms.
    pub service_ms_est: f64,
    /// Offered arrival rate, requests/sec (a multiple of the measured
    /// saturation rate, `WEBQA_OVERLOAD_X` × workers / service time).
    pub offered_rps: f64,
    /// Requests answered `ok`.
    pub ok: usize,
    /// Requests shed with a typed `overloaded` error.
    pub shed: usize,
    /// `shed / requests`.
    pub shed_rate: f64,
    /// Wall-clock seconds from first send to last response.
    pub wall_s: f64,
    /// Median latency of admitted (`ok`) requests, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency of admitted requests, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile latency of admitted requests, ms.
    pub p999_ms: f64,
}

/// One shard count's measurement within a [`FleetRecord`] sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FleetEntry {
    /// Engine shards per daemon for this sweep point.
    pub shards: usize,
    /// Total `run` requests served across the fleet.
    pub requests: usize,
    /// Wall-clock seconds from first request sent to last response read.
    pub wall_s: f64,
    /// `requests / wall_s`.
    pub requests_per_sec: f64,
}

/// One recorded fleet-scaling run (`webqa-cli bench-fleet` →
/// `BENCH_serve.json`): the same duplicated task stream served at each
/// shard count in a sweep, so the trajectory shows how requests/sec
/// moves as the per-daemon engine is split into digest-routed shards.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FleetRecord {
    /// Record shape tag, always `"serve_fleet"` (distinguishes these
    /// records from the other shapes in the shared `BENCH_serve.json`).
    pub bench: String,
    /// Seconds since the Unix epoch when the run finished.
    pub timestamp_unix: u64,
    /// Daemons in the fleet (clients round-robin across them).
    pub daemons: usize,
    /// Concurrent client connections per daemon.
    pub clients: usize,
    /// Times each client replayed its full task stream.
    pub repeats: usize,
    /// `WEBQA_PAGES`-style corpus knob (pages per domain).
    pub pages: usize,
    /// Labeled pages per task.
    pub train: usize,
    /// Corpus seed.
    pub seed: u64,
    /// One entry per shard count swept, in sweep order.
    pub entries: Vec<FleetEntry>,
}

/// Default synthesis-trajectory path: `BENCH_synth.json` at the
/// workspace root.
pub fn default_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_synth.json")
}

/// Serving-trajectory path: `BENCH_serve.json` at the workspace root.
pub fn serve_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

/// Appends `run` to the trajectory file at `path`, preserving previous
/// records (the file is a JSON array of run objects). IO errors are
/// reported, not fatal — a read-only checkout must not fail the bench.
pub fn append<T: serde::Serialize>(path: &std::path::Path, run: &T) -> std::io::Result<()> {
    let mut runs: Vec<serde_json::Value> = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str::<serde_json::Value>(&text) {
            Ok(serde_json::Value::Array(a)) => a,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    runs.push(serde_json::to_value(run).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("serialize: {e:?}"))
    })?);
    let rendered = serde_json::to_string_pretty(&serde_json::Value::Array(runs))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
    std::fs::write(path, rendered + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(task: &str, wall: f64) -> TargetRecord {
        TargetRecord {
            task: task.to_string(),
            wall_s: wall,
            train_f1: 1.0,
            programs: 3,
            stats: SynthStats::default(),
        }
    }

    #[test]
    fn append_accumulates_runs() {
        let dir = std::env::temp_dir().join("webqa_trajectory_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_synth.json");
        let _ = std::fs::remove_file(&path);

        let run1 = RunRecord::new(4, 2, 42, vec![record("fac_t1", 0.5)]);
        append(&path, &run1).expect("first write");
        let run2 = RunRecord::new(
            4,
            2,
            42,
            vec![record("fac_t1", 0.4), record("conf_t4", 0.2)],
        );
        append(&path, &run2).expect("second write");

        let text = std::fs::read_to_string(&path).expect("file exists");
        let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        match parsed {
            serde_json::Value::Array(runs) => {
                assert_eq!(runs.len(), 2);
                let total = runs[1].get("total_wall_s").and_then(|v| match v {
                    serde_json::Value::Number(n) => Some(n.as_f64()),
                    _ => None,
                });
                assert!(matches!(total, Some(t) if (t - 0.6).abs() < 1e-9));
            }
            other => panic!("expected array, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_file_is_replaced_not_fatal() {
        let dir = std::env::temp_dir().join("webqa_trajectory_test_corrupt");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_synth.json");
        std::fs::write(&path, "not json").expect("seed corrupt file");
        append(&path, &RunRecord::new(1, 1, 1, vec![])).expect("append survives");
        let text = std::fs::read_to_string(&path).expect("file exists");
        assert!(serde_json::from_str::<serde_json::Value>(&text).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
