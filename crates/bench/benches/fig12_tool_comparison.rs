//! **Figure 12** — "Comparison between WebQA and other tools": average
//! precision / recall / F₁ of WebQA, BERTQA, HYB, and EntExtract over all
//! 25 tasks.
//!
//! Regenerate with:
//! `cargo bench -p webqa-bench --bench fig12_tool_comparison`

use webqa_bench::{mean_scores, task_rows_cached, Setup};

fn main() {
    let setup = Setup::from_env();
    println!("# Figure 12: comparison between WebQA and other tools");
    println!(
        "# corpus: {} pages, {} train pages/task\n",
        setup.corpus.len(),
        setup.train_pages
    );

    let start = std::time::Instant::now();
    let rows = task_rows_cached(&setup);

    let webqa = mean_scores(rows.iter().map(|r| &r.webqa).collect::<Vec<_>>());
    let bertqa = mean_scores(rows.iter().map(|r| &r.bertqa).collect::<Vec<_>>());
    let hyb = mean_scores(rows.iter().map(|r| &r.hyb).collect::<Vec<_>>());
    let ent = mean_scores(rows.iter().map(|r| &r.ent).collect::<Vec<_>>());

    println!("{:<12} {:>6} {:>6} {:>6}", "tool", "P", "R", "F1");
    for (name, s) in [
        ("WebQA", webqa),
        ("BERTQA", bertqa),
        ("HYB", hyb),
        ("EntExtract", ent),
    ] {
        println!(
            "{:<12} {:>6.2} {:>6.2} {:>6.2}",
            name, s.precision, s.recall, s.f1
        );
    }
    println!("\n# paper (Figure 12, avg over tasks): WebQA ≈ .69/.72/.70  BERTQA ≈ .47/.17/.21");
    println!("#                                     HYB ≈ .34/.04/.05   EntExtract ≈ .07/.16/.09");
    println!("# expected shape: WebQA wins every metric; BERTQA recall collapses on");
    println!("# multi-span tasks; HYB near zero (exact-match wrapper induction fails);");
    println!("# EntExtract low precision (often extracts an irrelevant list).");
    println!("# wall time: {:.1?}", start.elapsed());
}
