//! **Serving throughput** — requests/sec and cross-request cache hit
//! rates of the resident `webqa_server` daemon under concurrent
//! clients, appended to the machine-readable trajectory at
//! `BENCH_serve.json` (workspace root).
//!
//! The workload mirrors the `tests/serve_api.rs` harness at bench scale:
//! a stream of distinct corpus tasks, replayed with duplication by
//! several concurrent TCP clients (each client starts at a different
//! offset, so the interleaving is adversarial). The interesting numbers
//! are the requests/sec trend and the `FeatureStore` / result-LRU hit
//! rates — on a duplicated stream most requests should be cache hits.
//!
//! Regenerate with:
//! `cargo bench -p webqa_bench --bench serve_throughput`
//!
//! Knobs: `WEBQA_PAGES` / `WEBQA_TRAIN` / `WEBQA_SEED` (corpus),
//! `WEBQA_CLIENTS` (concurrent connections, default 4), `WEBQA_REPEATS`
//! (stream replays per client, default 3), plus `WEBQA_TRAJECTORY=0` to
//! skip writing the file.

use std::time::Instant;

use webqa_bench::trajectory::{self, ServeRecord};
use webqa_corpus::{task_by_id, Corpus, Domain};
use webqa_server::{Client, ServeOptions, Server};

/// Two tasks per domain: enough duplication pressure without re-running
/// the whole 25-task catalogue per repeat.
const TASK_IDS: [&str; 8] = [
    "fac_t1",
    "fac_t2",
    "conf_t1",
    "conf_t2",
    "class_t1",
    "class_t2",
    "clinic_t1",
    "clinic_t2",
];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let pages = env_usize("WEBQA_PAGES", 8);
    let train = env_usize("WEBQA_TRAIN", 3)
        .min(pages.saturating_sub(1))
        .max(1);
    let seed = env_usize("WEBQA_SEED", 42) as u64;
    let clients = env_usize("WEBQA_CLIENTS", 4);
    let repeats = env_usize("WEBQA_REPEATS", 3);

    println!(
        "# Serving throughput: {clients} clients × {repeats} repeats over {} tasks",
        TASK_IDS.len()
    );
    println!("# corpus: {pages} pages/domain, {train} labeled, seed {seed}\n");

    let listening = Server::new(ServeOptions {
        engine: webqa::Config {
            synth: webqa::SynthConfig::fast(),
            ..webqa::Config::default()
        },
        max_frame_bytes: 16 << 20,
        ..ServeOptions::default()
    })
    .listen(Some("127.0.0.1:0"), None)
    .expect("bind loopback");
    let addr = listening.tcp_addr().expect("tcp endpoint");

    // Intern every involved page once up-front (out of the timed
    // window), keeping per-domain handle lists; the timed stream then
    // references pages by handle, like a steady-state client would.
    let corpus = Corpus::generate(pages, seed);
    let mut setup_client = Client::connect_tcp(addr).expect("connect");
    let mut handles: Vec<(Domain, Vec<u64>)> = Vec::new();
    for &domain in &Domain::ALL {
        let ids: Vec<u64> = corpus
            .pages(domain)
            .iter()
            .map(|p| {
                let mut m = serde_json::Map::new();
                m.insert("op".to_string(), serde_json::json!("intern"));
                m.insert("html".to_string(), serde_json::json!(p.html.clone()));
                let resp = setup_client
                    .request(&serde_json::Value::Object(m))
                    .expect("intern");
                resp["ok"]["page"].as_u64().expect("page handle")
            })
            .collect();
        handles.push((domain, ids));
    }
    let ids_of = |d: Domain| -> &[u64] {
        handles
            .iter()
            .find(|(dom, _)| *dom == d)
            .map(|(_, ids)| ids.as_slice())
            .expect("all domains interned")
    };

    // One `run` request line per task, built once and shared by every
    // client (the protocol is stateless per request).
    let requests: Vec<String> = TASK_IDS
        .iter()
        .map(|id| {
            let task = task_by_id(id).expect("catalogue task");
            let pages_of = corpus.pages(task.domain);
            let ids = ids_of(task.domain);
            let labeled: Vec<serde_json::Value> = ids[..train]
                .iter()
                .zip(pages_of)
                .map(|(&h, p)| {
                    let mut m = serde_json::Map::new();
                    m.insert("page".to_string(), serde_json::json!(h));
                    m.insert(
                        "gold".to_string(),
                        serde_json::json!(p.gold(task.id).to_vec()),
                    );
                    serde_json::Value::Object(m)
                })
                .collect();
            let mut m = serde_json::Map::new();
            m.insert("op".to_string(), serde_json::json!("run"));
            m.insert("question".to_string(), serde_json::json!(task.question));
            m.insert(
                "keywords".to_string(),
                serde_json::json!(task
                    .keywords
                    .iter()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>()),
            );
            m.insert("labeled".to_string(), serde_json::Value::Array(labeled));
            m.insert(
                "targets".to_string(),
                serde_json::json!(ids[train..].to_vec()),
            );
            serde_json::to_string(&serde_json::Value::Object(m)).expect("serializable")
        })
        .collect();

    // The timed window: every client replays the full stream `repeats`
    // times, starting at its own offset.
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let requests = &requests;
            scope.spawn(move || {
                let mut client = Client::connect_tcp(addr).expect("connect");
                for r in 0..repeats {
                    for i in 0..requests.len() {
                        let line = &requests[(i + c + r) % requests.len()];
                        let resp = client.request_line(line).expect("response");
                        assert!(resp.contains("\"ok\""), "request failed: {resp}");
                    }
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let total_requests = clients * repeats * requests.len();

    let stats_resp = setup_client
        .request_line("{\"op\":\"stats\"}")
        .expect("stats");
    let v: serde_json::Value = serde_json::from_str(&stats_resp).expect("valid JSON");
    let counter = |name: &str| v["ok"]["cache"][name].as_u64().unwrap_or(0);
    let flag = |name: &str| v["ok"]["cache"][name].as_bool().unwrap_or(false);
    let cache = webqa::CacheStats {
        feature_hits: counter("feature_hits"),
        feature_misses: counter("feature_misses"),
        feature_evictions: counter("feature_evictions"),
        base_hits: counter("base_hits"),
        base_misses: counter("base_misses"),
        base_evictions: counter("base_evictions"),
        result_hits: counter("result_hits"),
        result_misses: counter("result_misses"),
        result_evictions: counter("result_evictions"),
        features_enabled: flag("features_enabled"),
        results_enabled: flag("results_enabled"),
    };

    let record = ServeRecord {
        timestamp_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        pages,
        train,
        seed,
        clients,
        repeats,
        distinct_tasks: requests.len(),
        requests: total_requests,
        wall_s,
        requests_per_sec: total_requests as f64 / wall_s.max(1e-9),
        cache,
    };

    println!("{:<22} {:>10}", "run requests", record.requests);
    println!("{:<22} {:>10.3}", "wall seconds", record.wall_s);
    println!("{:<22} {:>10.1}", "requests/sec", record.requests_per_sec);
    // `None` = tier disabled or untouched: print "off" rather than the
    // misleading "0.0%" this used to show for a cache that was off.
    let pct = |rate: Option<f64>| match rate {
        Some(r) => format!("{:>9.1}%", 100.0 * r),
        None => format!("{:>10}", "off"),
    };
    println!(
        "{:<22} {}  ({} hits / {} misses)",
        "feature hit rate",
        pct(record.feature_hit_rate()),
        cache.feature_hits,
        cache.feature_misses,
    );
    println!(
        "{:<22} {}  ({} hits / {} misses)",
        "base hit rate",
        pct(record.base_hit_rate()),
        cache.base_hits,
        cache.base_misses,
    );
    println!(
        "{:<22} {}  ({} hits / {} misses)",
        "result hit rate",
        pct(record.result_hit_rate()),
        cache.result_hits,
        cache.result_misses,
    );

    // A duplicated stream must actually exercise the caches — fail the
    // bench (it runs in CI smoke) if serving stopped memoizing.
    assert!(
        cache.result_hits > 0,
        "duplicated task stream produced no result-cache hits"
    );
    assert!(
        cache.feature_hits > 0,
        "repeat queries over interned pages produced no feature-store hits"
    );

    listening.shutdown();

    if std::env::var("WEBQA_TRAJECTORY").as_deref() == Ok("0") {
        println!("\n# WEBQA_TRAJECTORY=0: not recording");
        return;
    }
    let path = trajectory::serve_path();
    match trajectory::append(&path, &record) {
        Ok(()) => println!("\n# recorded to {}", path.display()),
        Err(e) => println!("\n# trajectory not recorded ({e})"),
    }
}
