//! **Figure 14** (Appendix C.2) — "F₁ score achieved in each task of the
//! Conference domain with respect to the number of labeled examples":
//! conf_t1..conf_t6 with 1–5 training pages.
//!
//! Regenerate with:
//! `cargo bench -p webqa-bench --bench fig14_examples`

use webqa_bench::{default_config, Setup};
use webqa_corpus::tasks_in_domain;

fn main() {
    let setup = Setup::from_env();
    println!("# Figure 14: F1 vs number of labeled examples (Conference domain)\n");
    let tasks = tasks_in_domain(webqa_corpus::Domain::Conference);

    print!("{:<10}", "#examples");
    for t in &tasks {
        print!(" {:>9}", t.id);
    }
    println!();

    for n in 1..=setup.train_pages {
        print!("{:<10}", n);
        for task in &tasks {
            // Shrink the labeled set (the paper removes labeled pages);
            // the test split stays the same.
            let s = webqa_bench::run_webqa_with_train(&setup, task, default_config(), n);
            print!(" {:>9.2}", s.f1);
        }
        println!();
    }
    println!("\n# paper (Figure 14): F1 generally degrades with fewer examples, but");
    println!("# sensitivity is task-dependent (conf_t5 needs one example; conf_t4 drops");
    println!("# sharply below five).");
}
