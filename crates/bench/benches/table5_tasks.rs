//! **Table 5** — "Questions and Keywords for each task": the 25 task
//! definitions used throughout the evaluation.
//!
//! Regenerate with:
//! `cargo bench -p webqa-bench --bench table5_tasks`

use webqa_corpus::{Domain, TASKS};

fn main() {
    println!("# Table 5: questions and keywords for each task\n");
    let mut domain: Option<Domain> = None;
    for t in &TASKS {
        if domain != Some(t.domain) {
            println!("--- {} ---", t.domain);
            domain = Some(t.domain);
        }
        println!("{:<10} {:<68} {}", t.id, t.question, t.keywords.join(", "));
    }
    println!("\n# verbatim from the paper's Table 5 (25 tasks, 4 domains).");
}
