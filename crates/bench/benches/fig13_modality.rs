//! **Figure 13** (Appendix C.1) — "Comparison between WebQA and its
//! variants": per-domain average F₁ of full WebQA vs the question-only
//! (`WebQA-NL`) and keyword-only (`WebQA-KW`) input-modality ablations,
//! with one-tailed Welch t-tests over per-task F₁.
//!
//! Regenerate with:
//! `cargo bench -p webqa-bench --bench fig13_modality`

use webqa::{Modality, Selection};
use webqa_bench::{run_webqa, Setup};
use webqa_corpus::{Domain, TASKS};
use webqa_metrics::stats;

fn main() {
    let setup = Setup::from_env();
    println!("# Figure 13: input-modality ablation (avg F1 per domain)\n");

    let variants = [
        ("WebQA-NL", Modality::QuestionOnly),
        ("WebQA-KW", Modality::KeywordsOnly),
        ("WebQA", Modality::Both),
    ];
    // per variant: per-task F1
    let mut f1s: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for task in &TASKS {
        for (vi, (name, modality)) in variants.iter().enumerate() {
            let mut cfg = webqa_bench::default_config();
            cfg.modality = *modality;
            cfg.strategy = Selection::Transductive;
            let s = run_webqa(&setup, task, cfg);
            eprintln!("  {:<10} {:<10} F1={:.2}", task.id, name, s.f1);
            f1s[vi].push(s.f1);
        }
    }

    println!(
        "{:<12} {:>9} {:>9} {:>9}",
        "Domain", "WebQA-NL", "WebQA-KW", "WebQA"
    );
    for domain in Domain::ALL {
        let idx: Vec<usize> = TASKS
            .iter()
            .enumerate()
            .filter(|(_, t)| t.domain == domain)
            .map(|(i, _)| i)
            .collect();
        let avg = |vi: usize| {
            let v: Vec<f64> = idx.iter().map(|&i| f1s[vi][i]).collect();
            stats::mean(&v)
        };
        println!(
            "{:<12} {:>9.2} {:>9.2} {:>9.2}",
            domain.to_string(),
            avg(0),
            avg(1),
            avg(2)
        );
    }

    // One-tailed Welch t-tests: full WebQA vs each single-modality variant
    // over the 25 per-task F1s (the paper reports p < 0.01 for both).
    for (vi, (name, _)) in variants.iter().take(2).enumerate() {
        let t = stats::welch_t_test(&f1s[2], &f1s[vi]);
        println!(
            "\nWebQA > {name}: t = {:.2}, one-tailed p = {:.4}",
            t.t, t.p_one_tailed
        );
    }
    println!("\n# paper (Figure 13): both modalities together beat either alone in every");
    println!("# domain, p < 0.01. Expected shape: WebQA column ≥ the two ablations.");
}
