//! **Table 4** — "Evaluation of transductive learning": % improvement in
//! mean F₁ and variance reduction of transductive selection over the
//! `Random` and `Shortest` baselines, measured over 20 runs (Section 8.3,
//! footnote 11).
//!
//! Regenerate with:
//! `cargo bench -p webqa-bench --bench table4_transductive`

use webqa::{score_answers, Config};
use webqa_bench::Setup;
use webqa_corpus::{task_by_id, Task};
use webqa_metrics::stats;
use webqa_select::{select_random, select_shortest, select_transductive, SelectionConfig};
use webqa_synth::SynthConfig;

const RUNS: usize = 20;
const DEFAULT_TASKS: [&str; 12] = [
    "fac_t1",
    "fac_t3",
    "fac_t5",
    "conf_t1",
    "conf_t2",
    "conf_t3",
    "class_t2",
    "class_t3",
    "class_t5",
    "clinic_t1",
    "clinic_t4",
    "clinic_t5",
];

fn main() {
    let setup = Setup::from_env();
    let tasks: Vec<&Task> = DEFAULT_TASKS
        .iter()
        .map(|id| task_by_id(id).expect("known id"))
        .collect();
    println!("# Table 4: transductive learning vs Random/Shortest ({RUNS} runs/task)\n");

    let mut f1s = [Vec::new(), Vec::new(), Vec::new()]; // transductive, random, shortest
    let mut variances = [Vec::new(), Vec::new(), Vec::new()];

    for task in &tasks {
        // Stage-driven: synthesize once through the engine (off the
        // shared interned store), then re-run only the selection stage
        // per seed — the quantity Table 4 varies.
        let mut synth_cfg = SynthConfig::fast();
        synth_cfg.max_programs = 600;
        let engine = setup.engine(Config {
            synth: synth_cfg,
            ..Config::default()
        });
        let etask = setup.engine_task(task);
        let synthesized = engine
            .prepare(&etask)
            .expect("store-issued ids resolve")
            .synthesize();
        let outcome = synthesized.outcome();
        let (ctx, unlabeled) = (synthesized.context(), synthesized.unlabeled());
        let gold = setup.test_gold(task);

        let score_of = |program: Option<webqa_dsl::Program>| -> f64 {
            match program {
                Some(p) => {
                    let answers: Vec<Vec<String>> =
                        unlabeled.iter().map(|page| p.eval(ctx, page)).collect();
                    score_answers(&answers, &gold).expect("aligned").f1
                }
                None => 0.0,
            }
        };

        let mut per_run = [Vec::new(), Vec::new(), Vec::new()];
        for run in 0..RUNS {
            let seed = 1000 + run as u64;
            let sel_cfg = SelectionConfig {
                ensemble_size: 300,
                seed,
                ..Default::default()
            };
            per_run[0].push(score_of(select_transductive(
                &sel_cfg,
                ctx,
                &outcome.programs,
                unlabeled,
            )));
            per_run[1].push(score_of(select_random(&outcome.programs, seed)));
            per_run[2].push(score_of(select_shortest(&outcome.programs, seed)));
        }
        eprintln!(
            "  {:<10} trans μ={:.2} σ²={:.5} | random μ={:.2} σ²={:.5} | shortest μ={:.2} σ²={:.5}",
            task.id,
            stats::mean(&per_run[0]),
            stats::variance(&per_run[0]),
            stats::mean(&per_run[1]),
            stats::variance(&per_run[1]),
            stats::mean(&per_run[2]),
            stats::variance(&per_run[2]),
        );
        for i in 0..3 {
            f1s[i].push(stats::mean(&per_run[i]));
            variances[i].push(stats::variance(&per_run[i]));
        }
    }

    let mean_f1: Vec<f64> = f1s.iter().map(|v| stats::mean(v)).collect();
    let mean_var: Vec<f64> = variances.iter().map(|v| stats::mean(v)).collect();
    const EPS: f64 = 1e-6;

    println!(
        "{:<12} {:>20} {:>22}",
        "Technique", "% Improvement in F1", "Reduction in Variance"
    );
    for (i, name) in ["Random", "Shortest"].iter().enumerate() {
        let idx = i + 1;
        let improvement = 100.0 * (mean_f1[0] - mean_f1[idx]) / mean_f1[idx].max(EPS);
        let reduction = (mean_var[idx] + EPS) / (mean_var[0] + EPS);
        println!("{:<12} {:>19.1}% {:>21.0}x", name, improvement, reduction);
    }
    println!("\n# paper (Table 4): Random +6.0% / 1550x ; Shortest +6.3% / 1570x");
    println!("# expected shape: modest mean-F1 improvement, large variance reduction");
    println!("# (transductive selection is near-deterministic across runs).");
}
