//! Criterion micro-benchmarks for the hot paths of the system: HTML
//! parsing, page-tree conversion, the three simulated NLP modules, DSL
//! program evaluation, and one end-to-end extractor synthesis.
//!
//! These are the components whose cost the paper's Table 3 timing
//! ultimately decomposes into.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webqa_corpus::{generate_pages, Domain};
use webqa_dsl::{PageTree, Program, QueryContext};
use webqa_nlp::{keyword_similarity, EntityKind, EntityRecognizer, QaModel};
use webqa_synth::{synthesize, Example, SynthConfig};

fn sample_html() -> String {
    generate_pages(Domain::Faculty, 1, 11)[0].html.clone()
}

fn bench_html(c: &mut Criterion) {
    let html = sample_html();
    c.bench_function("html/parse_dom", |b| {
        b.iter(|| webqa_html::parse_html(black_box(&html)))
    });
    c.bench_function("html/page_tree", |b| {
        b.iter(|| PageTree::parse(black_box(&html)))
    });
}

fn bench_nlp(c: &mut Criterion) {
    let ner = EntityRecognizer::pretrained();
    let qa = QaModel::pretrained();
    let text = "Jane Doe served on the PLDI '21 program committee at Rome University \
                starting January 5, 2021 with Dr. Robert Smith.";
    c.bench_function("nlp/keyword_similarity", |b| {
        b.iter(|| keyword_similarity(black_box("Professional Services"), black_box("Committee")))
    });
    c.bench_function("nlp/ner", |b| b.iter(|| ner.entities(black_box(text))));
    c.bench_function("nlp/ner_has_entity", |b| {
        b.iter(|| ner.has_entity(black_box(text), EntityKind::Person))
    });
    c.bench_function("nlp/qa_answer", |b| {
        b.iter(|| {
            qa.answer(
                black_box(text),
                black_box("Who served on the program committee?"),
            )
        })
    });
}

fn bench_eval(c: &mut Criterion) {
    let page = PageTree::parse(&sample_html());
    let ctx = QueryContext::new(
        "What program committees or PC has this person served for?",
        ["Program Committee", "PC"],
    );
    let program: Program = "sat(descendants(descendants(root, text(kw(0.80))), leaf), true) -> \
         filter(split(content, ','), kw(0.50))"
        .parse()
        .expect("valid");
    // Warm the context caches once: steady-state evaluation is the number
    // that matters for ensemble selection.
    let _ = program.eval(&ctx, &page);
    c.bench_function("dsl/program_eval_warm", |b| {
        b.iter(|| program.eval(black_box(&ctx), black_box(&page)))
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let pages = generate_pages(Domain::Faculty, 2, 23);
    let ctx = QueryContext::new(
        "Who are the current PhD students?",
        ["Current Students", "PhD"],
    );
    let examples: Vec<Example> = pages
        .iter()
        .map(|p| Example::new(p.tree(), p.gold("fac_t1").to_vec()))
        .collect();
    let mut group = c.benchmark_group("synth");
    group.sample_size(10);
    group.bench_function("synthesize_fac_t1_2pages", |b| {
        b.iter(|| synthesize(&SynthConfig::fast(), &ctx, black_box(&examples)))
    });
    group.finish();
}

criterion_group!(benches, bench_html, bench_nlp, bench_eval, bench_synthesis);
criterion_main!(benches);
