//! **Serving tail latency under overload** — an open-loop load
//! generator drives a bounded-pool `webqa_server` *past* saturation and
//! records p50/p99/p999 of the admitted requests plus the shed rate,
//! appended to the machine-readable trajectory at `BENCH_serve.json`
//! (workspace root, `"bench":"serve_latency"` records).
//!
//! Open-loop matters: a closed-loop client (send, wait, send) slows
//! down when the server does and so never observes overload. Here
//! arrivals happen on a fixed schedule regardless of responses, the way
//! independent callers behave, so once the offered rate exceeds
//! `workers / service_time` the admission queue must fill and the
//! server must choose between bounded queueing and shedding. The bench
//! asserts it does both: every response is either `ok` or a typed
//! `overloaded`, at least one request is shed, and nothing hangs.
//!
//! The per-request service time is measured at startup (closed-loop
//! calibration over the same request shape), then the generator offers
//! `WEBQA_OVERLOAD_X` × the saturation rate. The server's result cache
//! is disabled so every admitted request pays full synthesis — repeats
//! must not collapse into cache hits.
//!
//! Regenerate with:
//! `cargo bench -p webqa_bench --bench serve_latency`
//!
//! Knobs: `WEBQA_WORKERS` (pool size, default 2), `WEBQA_BACKLOG`
//! (admission cap, default 4), `WEBQA_REQUESTS` (offered requests,
//! default 600), `WEBQA_OVERLOAD_X` (offered-rate multiple of
//! saturation, default 4), plus `WEBQA_TRAJECTORY=0` to skip writing
//! the file.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use webqa_bench::trajectory::{self, LatencyRecord};
use webqa_server::{Client, ServeOptions, Server};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Calibration requests: enough to average out scheduler noise.
const CAL_REQUESTS: usize = 12;
/// Sender connections the offered stream is striped across.
const CONNS: usize = 8;

/// One tiny two-page task per `variant`; distinct content per request
/// so the workload is honest even if caching were re-enabled.
fn page_pair(variant: usize) -> (String, String) {
    (
        format!("<h1>A{variant}</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>"),
        format!("<h1>B{variant}</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>"),
    )
}

/// A handle-based `run` request line (pages pre-interned, so the timed
/// stream classifies lock-free).
fn request_line(setup: &mut Client, id: usize, variant: usize) -> String {
    let (labeled_html, target_html) = page_pair(variant);
    let mut intern = |html: &str| -> u64 {
        let mut m = serde_json::Map::new();
        m.insert("op".to_string(), serde_json::json!("intern"));
        m.insert("html".to_string(), serde_json::json!(html));
        let resp = setup
            .request(&serde_json::Value::Object(m))
            .expect("intern");
        resp["ok"]["page"].as_u64().expect("page handle")
    };
    let mut labeled = serde_json::Map::new();
    labeled.insert("page".to_string(), serde_json::json!(intern(&labeled_html)));
    labeled.insert(
        "gold".to_string(),
        serde_json::json!(vec!["Jane Doe".to_string()]),
    );
    let mut m = serde_json::Map::new();
    m.insert("id".to_string(), serde_json::json!(id as u64));
    m.insert("op".to_string(), serde_json::json!("run"));
    m.insert(
        "question".to_string(),
        serde_json::json!("Who are the PhD students?"),
    );
    m.insert(
        "keywords".to_string(),
        serde_json::json!(vec!["Students".to_string()]),
    );
    m.insert(
        "labeled".to_string(),
        serde_json::Value::Array(vec![serde_json::Value::Object(labeled)]),
    );
    m.insert(
        "targets".to_string(),
        serde_json::json!(vec![intern(&target_html)]),
    );
    serde_json::to_string(&serde_json::Value::Object(m)).expect("serializable")
}

/// Next line from a response stream, or a panic naming the hang.
fn lines_next(lines: &mut std::io::Lines<BufReader<TcpStream>>) -> String {
    lines
        .next()
        .expect("response before EOF")
        .expect("readable response")
}

/// `p`-th percentile (0..=1) of an ascending-sorted latency slice, ms.
fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p * sorted.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx].as_secs_f64() * 1e3
}

fn main() {
    let workers = env_usize("WEBQA_WORKERS", 2);
    let backlog = env_usize("WEBQA_BACKLOG", 4);
    let requests = env_usize("WEBQA_REQUESTS", 600);
    let overload_x = env_usize("WEBQA_OVERLOAD_X", 4).max(1);

    println!("# Serving tail latency: open-loop, {overload_x}x saturation");
    println!("# server: {workers} workers, backlog {backlog}; {requests} offered requests\n");

    let listening = Server::new(ServeOptions {
        engine: webqa::Config {
            synth: webqa::SynthConfig::paper(),
            cache: webqa::CacheConfig::disabled(),
            ..webqa::Config::default()
        },
        workers,
        backlog,
        ..ServeOptions::default()
    })
    .listen(Some("127.0.0.1:0"), None)
    .expect("bind loopback");
    let addr = listening.tcp_addr().expect("tcp endpoint");

    // Build every request (interning its pages) outside the timed
    // window. Calibration ids live above the offered-stream ids.
    let mut setup = Client::connect_tcp(addr).expect("connect");
    let offered: Vec<String> = (0..requests)
        .map(|i| request_line(&mut setup, i, i))
        .collect();
    let calibration: Vec<String> = (0..CAL_REQUESTS)
        .map(|i| request_line(&mut setup, 1_000_000 + i, requests + i))
        .collect();

    // Closed-loop calibration: the mean service time of one request on
    // an otherwise idle server sets the saturation rate. Nagle off —
    // with it on, the round trips pay delayed-ACK stalls and the
    // estimate lands several times above the true service time.
    let cal_stream = TcpStream::connect(addr).expect("connect");
    cal_stream.set_nodelay(true).expect("nodelay");
    let mut cal_reader = BufReader::new(cal_stream.try_clone().expect("split stream")).lines();
    let mut cal_writer = cal_stream;
    let t0 = Instant::now();
    for line in &calibration {
        cal_writer.write_all(line.as_bytes()).expect("send");
        cal_writer.write_all(b"\n").expect("send");
        cal_writer.flush().expect("send");
        let resp = lines_next(&mut cal_reader);
        assert!(resp.contains("\"ok\""), "calibration failed: {resp}");
    }
    let service = t0.elapsed() / CAL_REQUESTS as u32;
    let service_ms = service.as_secs_f64() * 1e3;
    let saturation_rps = workers as f64 / service.as_secs_f64().max(1e-6);
    let offered_rps = saturation_rps * overload_x as f64;
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    println!("{:<22} {:>10.3} ms", "service time (mean)", service_ms);
    println!("{:<22} {:>10.1} rps", "saturation (est)", saturation_rps);
    println!("{:<22} {:>10.1} rps", "offered", offered_rps);

    // The open-loop window. Request `i` goes out on connection
    // `i % CONNS` at `start + i * interval`, whether or not earlier
    // responses have arrived; a reader thread per connection records
    // each response's latency against the send schedule.
    let send_at: Vec<Mutex<Option<Instant>>> = (0..requests).map(|_| Mutex::new(None)).collect();
    let results: Mutex<Vec<(Duration, bool)>> = Mutex::new(Vec::with_capacity(requests));
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CONNS {
            let offered = &offered;
            let send_at = &send_at;
            let results = &results;
            let assigned: Vec<usize> = (c..requests).step_by(CONNS).collect();
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let reader = stream.try_clone().expect("split stream");
            let count = assigned.len();
            scope.spawn({
                let assigned = assigned.clone();
                move || {
                    let mut w = stream;
                    let start = Instant::now();
                    for &i in &assigned {
                        let due = interval * i as u32;
                        if let Some(wait) = due.checked_sub(start.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        *send_at[i].lock().expect("send schedule") = Some(Instant::now());
                        w.write_all(offered[i].as_bytes()).expect("send");
                        w.write_all(b"\n").expect("send");
                        w.flush().expect("send");
                    }
                }
            });
            scope.spawn(move || {
                let mut lines = BufReader::new(reader).lines();
                for _ in 0..count {
                    let line = lines
                        .next()
                        .expect("response before EOF")
                        .expect("readable response");
                    let done = Instant::now();
                    let v: serde_json::Value =
                        serde_json::from_str(&line).expect("response envelope");
                    let id = v["id"].as_u64().expect("echoed id") as usize;
                    let sent = send_at[id]
                        .lock()
                        .expect("send schedule")
                        .expect("response follows send");
                    let shed = line.contains("\"kind\":\"overloaded\"");
                    assert!(
                        shed || line.contains("\"ok\""),
                        "unexpected response: {line}"
                    );
                    results
                        .lock()
                        .expect("results")
                        .push((done.duration_since(sent), shed));
                }
            });
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();

    let results = results.into_inner().expect("results");
    assert_eq!(results.len(), requests, "every offered request answers");
    let shed = results.iter().filter(|(_, s)| *s).count();
    let mut ok_lat: Vec<Duration> = results
        .iter()
        .filter(|(_, s)| !*s)
        .map(|(d, _)| *d)
        .collect();
    ok_lat.sort();
    assert!(
        !ok_lat.is_empty(),
        "an overloaded server must still admit some requests"
    );
    assert!(
        shed > 0,
        "offering {overload_x}x saturation against backlog {backlog} must shed"
    );

    let record = LatencyRecord {
        bench: "serve_latency".to_string(),
        timestamp_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        workers,
        backlog,
        requests,
        service_ms_est: service_ms,
        offered_rps,
        ok: ok_lat.len(),
        shed,
        shed_rate: shed as f64 / requests as f64,
        wall_s,
        p50_ms: percentile_ms(&ok_lat, 0.50),
        p99_ms: percentile_ms(&ok_lat, 0.99),
        p999_ms: percentile_ms(&ok_lat, 0.999),
    };

    println!();
    println!("{:<22} {:>10}", "admitted (ok)", record.ok);
    println!(
        "{:<22} {:>10}  ({:.1}%)",
        "shed (overloaded)",
        record.shed,
        100.0 * record.shed_rate
    );
    println!("{:<22} {:>10.3}", "wall seconds", record.wall_s);
    println!("{:<22} {:>10.3} ms", "p50", record.p50_ms);
    println!("{:<22} {:>10.3} ms", "p99", record.p99_ms);
    println!("{:<22} {:>10.3} ms", "p999", record.p999_ms);

    listening.shutdown();

    if std::env::var("WEBQA_TRAJECTORY").as_deref() == Ok("0") {
        println!("\n# WEBQA_TRAJECTORY=0: not recording");
        return;
    }
    let path = trajectory::serve_path();
    match trajectory::append(&path, &record) {
        Ok(()) => println!("\n# recorded to {}", path.display()),
        Err(e) => println!("\n# trajectory not recorded ({e})"),
    }
}
