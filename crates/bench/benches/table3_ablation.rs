//! **Table 3** — "Results of the ablation study": average synthesis time
//! of WebQA vs the `NoPrune` and `NoDecomp` ablations, and the speedups.
//!
//! All variants synthesize the same optimal programs; only search time
//! differs (Section 8.2: pruning buys ~3.6x, decomposition ~2.4x).
//!
//! Regenerate with:
//! `cargo bench -p webqa-bench --bench table3_ablation`
//!
//! `WEBQA_ABLATION_TASKS` (default 8) controls how many tasks are timed
//! (two per domain by default — the ablations are deliberately slow, that
//! is the point of the table).

use std::time::{Duration, Instant};

use webqa_bench::Setup;
use webqa_corpus::{task_by_id, Task};
use webqa_dsl::QueryContext;
use webqa_synth::{synthesize, Example, SynthConfig};

const DEFAULT_TASKS: [&str; 8] = [
    "fac_t5",
    "conf_t2",
    "class_t2",
    "clinic_t4",
    "fac_t1",
    "conf_t4",
    "class_t5",
    "clinic_t1",
];

fn time_synthesis(setup: &Setup, task: &Task, cfg: &SynthConfig) -> (Duration, f64, usize) {
    let data = setup.dataset(task);
    let ctx = QueryContext::new(task.question, task.keywords.to_vec());
    let examples: Vec<Example> = data
        .train
        .iter()
        .map(|p| Example::new(p.page.clone(), p.gold.clone()))
        .collect();
    let start = Instant::now();
    let out = synthesize(cfg, &ctx, &examples);
    (start.elapsed(), out.f1, out.stats.work())
}

fn main() {
    let setup = Setup::from_env();
    let n_tasks: usize = std::env::var("WEBQA_ABLATION_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let tasks: Vec<&Task> = DEFAULT_TASKS
        .iter()
        .take(n_tasks)
        .map(|id| task_by_id(id).expect("known id"))
        .collect();

    println!(
        "# Table 3: synthesis-time ablation over {} tasks\n",
        tasks.len()
    );

    let variants: [(&str, SynthConfig); 4] = [
        ("WebQA", SynthConfig::fast()),
        ("WebQA-NoPrune", SynthConfig::fast().without_pruning()),
        (
            "WebQA-NoDecomp",
            SynthConfig::fast().without_decomposition(),
        ),
        // This repo's extra ablation of the lazy guard enumeration the
        // paper credits for pruning power (DESIGN.md §5).
        ("WebQA-NoLazy", SynthConfig::fast().without_lazy_guards()),
    ];

    let mut totals = [Duration::ZERO; 4];
    let mut work = [0usize; 4];
    for task in &tasks {
        for (i, (name, cfg)) in variants.iter().enumerate() {
            let (dt, f1, w) = time_synthesis(&setup, task, cfg);
            totals[i] += dt;
            work[i] += w;
            eprintln!(
                "  {:<10} {:<15} {:>8.2?}  trainF1={:.2}  work={}",
                task.id, name, dt, f1, w
            );
        }
    }

    let base = totals[0].as_secs_f64() / tasks.len() as f64;
    println!(
        "{:<16} {:>12} {:>12} {:>14}",
        "Technique", "Avg time (s)", "Avg Speedup", "Search work"
    );
    for (i, (name, _)) in variants.iter().enumerate() {
        let avg = totals[i].as_secs_f64() / tasks.len() as f64;
        let speedup = if i == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", avg / base)
        };
        println!(
            "{:<16} {:>12.2} {:>12} {:>14}",
            name,
            avg,
            speedup,
            work[i] / tasks.len()
        );
    }
    println!("\n# paper (Table 3): WebQA 419s | NoPrune 1351s (3.6x) | NoDecomp 931s (2.4x)");
    println!("# (NoLazy is this repo's extra ablation — not in the paper's table.)");
    println!("# expected shape: both ablations are multiples slower at identical F1;");
    println!("# absolute times differ (simulated NLP modules are far cheaper than BERT).");
}
