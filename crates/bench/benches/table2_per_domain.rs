//! **Table 2** — "Evaluation results for each baseline per domain":
//! precision / recall / F₁ of every tool, macro-averaged over the tasks
//! of each domain.
//!
//! Regenerate with:
//! `cargo bench -p webqa-bench --bench table2_per_domain`
//!
//! With `WEBQA_ASSERT_DIRECTIONAL=1` (the CI smoke setting) the run
//! *asserts* the paper's headline direction instead of only printing it:
//! WebQA's macro-averaged F₁ must strictly beat every baseline's.

use webqa_bench::{mean_scores, task_rows_cached, Setup};
use webqa_corpus::Domain;

fn main() {
    let setup = Setup::from_env();
    println!("# Table 2: per-domain results (P / R / F1 per tool)\n");
    let rows = task_rows_cached(&setup);

    println!(
        "{:<12} | {:^17} | {:^17} | {:^17} | {:^17}",
        "Domain", "WebQA", "BERTQA", "HYB", "EntExtract"
    );
    println!("{}", "-".repeat(88));
    for domain in Domain::ALL {
        let in_domain: Vec<_> = rows.iter().filter(|r| r.task.domain == domain).collect();
        let webqa = mean_scores(in_domain.iter().map(|r| &r.webqa).collect::<Vec<_>>());
        let bertqa = mean_scores(in_domain.iter().map(|r| &r.bertqa).collect::<Vec<_>>());
        let hyb = mean_scores(in_domain.iter().map(|r| &r.hyb).collect::<Vec<_>>());
        let ent = mean_scores(in_domain.iter().map(|r| &r.ent).collect::<Vec<_>>());
        println!(
            "{:<12} | {} | {} | {} | {}",
            domain.to_string(),
            webqa_bench::fmt_score(&webqa),
            webqa_bench::fmt_score(&bertqa),
            webqa_bench::fmt_score(&hyb),
            webqa_bench::fmt_score(&ent),
        );
    }
    if std::env::var("WEBQA_ASSERT_DIRECTIONAL").as_deref() == Ok("1") {
        let webqa = mean_scores(rows.iter().map(|r| &r.webqa).collect::<Vec<_>>());
        let bertqa = mean_scores(rows.iter().map(|r| &r.bertqa).collect::<Vec<_>>());
        let hyb = mean_scores(rows.iter().map(|r| &r.hyb).collect::<Vec<_>>());
        let ent = mean_scores(rows.iter().map(|r| &r.ent).collect::<Vec<_>>());
        for (name, baseline) in [("BERTQA", bertqa), ("HYB", hyb), ("EntExtract", ent)] {
            assert!(
                webqa.f1 > baseline.f1,
                "directional regression: WebQA F1 {:.3} must strictly beat {name} F1 {:.3}",
                webqa.f1,
                baseline.f1
            );
        }
        println!(
            "\n# directional assert OK: WebQA F1 {:.3} > BERTQA/HYB/EntExtract",
            webqa.f1
        );
    }

    println!("\n# paper (Table 2): Faculty    0.72/0.80/0.75 | 0.44/0.08/0.18 | 0.48/0.02/0.04 | 0.02/0.14/0.04");
    println!("#                  Conference 0.71/0.69/0.70 | 0.58/0.31/0.32 | 0.26/0.02/0.03 | 0.07/0.20/0.09");
    println!("#                  Class      0.63/0.77/0.68 | 0.55/0.26/0.31 | 0.18/0.04/0.04 | 0.04/0.09/0.05");
    println!("#                  Clinic     0.71/0.62/0.66 | 0.31/0.02/0.04 | 0.42/0.06/0.09 | 0.14/0.20/0.16");
    println!("# expected shape: WebQA leads every domain on F1.");
}
