//! **Warm restart** — how much of a fresh daemon's cold start the
//! on-disk snapshot tier (`ServeOptions::cache_dir`) actually saves,
//! appended to the machine-readable trajectory at `BENCH_serve.json`
//! (workspace root) as a `"bench": "serve_warm"` record.
//!
//! Two daemon lives over one cache directory:
//!
//! 1. **Seed life**: serve the catalogue task stream once, then shut
//!    down gracefully — the daemon spills its content-addressed page
//!    store and the query-independent base-feature tier to
//!    `DIR/snapshot-v1/`.
//! 2. **Warm life**: restart on the same directory, re-intern the same
//!    pages (content addressing dedups them onto the snapshot-loaded
//!    trees), and serve a second query stream over the known pages.
//!    Every base-tier hit in this phase is an NER + mask-extraction
//!    pass the snapshot paid for in the previous life.
//!
//! The interesting numbers are the snapshot load counters
//! (`pages_loaded`, `base_loaded`, `load_ms`) and the warm stream's
//! base-tier hit rate — a zero hit rate means persistence stopped
//! working, so this bench asserts it non-zero (it runs in CI smoke).
//!
//! Regenerate with:
//! `cargo bench -p webqa_bench --bench serve_warm`
//!
//! Knobs: `WEBQA_PAGES` / `WEBQA_TRAIN` / `WEBQA_SEED` (corpus), plus
//! `WEBQA_TRAJECTORY=0` to skip writing the file.

use std::time::Instant;

use webqa_bench::trajectory::{self, WarmRecord};
use webqa_corpus::{task_by_id, Corpus, Domain};
use webqa_server::{Client, Listening, ServeOptions, Server};

/// Two tasks per domain, same slice as `serve_throughput`: enough
/// coverage to populate base tables for every domain's pages.
const TASK_IDS: [&str; 8] = [
    "fac_t1",
    "fac_t2",
    "conf_t1",
    "conf_t2",
    "class_t1",
    "class_t2",
    "clinic_t1",
    "clinic_t2",
];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Starts a daemon on the given snapshot directory and a client bound
/// to it.
fn start(cache_dir: &std::path::Path) -> (Listening, Client) {
    let listening = Server::new(ServeOptions {
        engine: webqa::Config {
            synth: webqa::SynthConfig::fast(),
            ..webqa::Config::default()
        },
        max_frame_bytes: 16 << 20,
        cache_dir: Some(cache_dir.to_path_buf()),
        ..ServeOptions::default()
    })
    .listen(Some("127.0.0.1:0"), None)
    .expect("bind loopback");
    let addr = listening.tcp_addr().expect("tcp endpoint");
    let client = Client::connect_tcp(addr).expect("connect");
    (listening, client)
}

/// Interns every corpus page through `client`, returning per-domain
/// handle lists. Handles are per-life (a warm restart may hand out
/// different ones for the same content), so each life interns afresh —
/// in the warm life this dedups onto the snapshot-loaded trees.
fn intern_all(client: &mut Client, corpus: &Corpus) -> Vec<(Domain, Vec<u64>)> {
    Domain::ALL
        .iter()
        .map(|&domain| {
            let ids = corpus
                .pages(domain)
                .iter()
                .map(|p| {
                    let mut m = serde_json::Map::new();
                    m.insert("op".to_string(), serde_json::json!("intern"));
                    m.insert("html".to_string(), serde_json::json!(p.html.clone()));
                    let resp = client
                        .request(&serde_json::Value::Object(m))
                        .expect("intern");
                    resp["ok"]["page"].as_u64().expect("page handle")
                })
                .collect();
            (domain, ids)
        })
        .collect()
}

/// One `run` request line per catalogue task against this life's
/// handles.
fn build_requests(corpus: &Corpus, handles: &[(Domain, Vec<u64>)], train: usize) -> Vec<String> {
    let ids_of = |d: Domain| -> &[u64] {
        handles
            .iter()
            .find(|(dom, _)| *dom == d)
            .map(|(_, ids)| ids.as_slice())
            .expect("all domains interned")
    };
    TASK_IDS
        .iter()
        .map(|id| {
            let task = task_by_id(id).expect("catalogue task");
            let pages_of = corpus.pages(task.domain);
            let ids = ids_of(task.domain);
            let labeled: Vec<serde_json::Value> = ids[..train]
                .iter()
                .zip(pages_of)
                .map(|(&h, p)| {
                    let mut m = serde_json::Map::new();
                    m.insert("page".to_string(), serde_json::json!(h));
                    m.insert(
                        "gold".to_string(),
                        serde_json::json!(p.gold(task.id).to_vec()),
                    );
                    serde_json::Value::Object(m)
                })
                .collect();
            let mut m = serde_json::Map::new();
            m.insert("op".to_string(), serde_json::json!("run"));
            m.insert("question".to_string(), serde_json::json!(task.question));
            m.insert(
                "keywords".to_string(),
                serde_json::json!(task
                    .keywords
                    .iter()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>()),
            );
            m.insert("labeled".to_string(), serde_json::Value::Array(labeled));
            m.insert(
                "targets".to_string(),
                serde_json::json!(ids[train..].to_vec()),
            );
            serde_json::to_string(&serde_json::Value::Object(m)).expect("serializable")
        })
        .collect()
}

fn run_stream(client: &mut Client, requests: &[String]) {
    for line in requests {
        let resp = client.request_line(line).expect("response");
        assert!(resp.contains("\"ok\""), "request failed: {resp}");
    }
}

fn main() {
    let pages = env_usize("WEBQA_PAGES", 8);
    let train = env_usize("WEBQA_TRAIN", 3)
        .min(pages.saturating_sub(1))
        .max(1);
    let seed = env_usize("WEBQA_SEED", 42) as u64;

    let cache_dir =
        std::env::temp_dir().join(format!("webqa-serve-warm-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "# Warm restart: {} tasks per life, snapshot at {}",
        TASK_IDS.len(),
        cache_dir.display()
    );
    println!("# corpus: {pages} pages/domain, {train} labeled, seed {seed}\n");

    let corpus = Corpus::generate(pages, seed);

    // Seed life: serve the stream once, shut down, spill the snapshot.
    let seed_start = Instant::now();
    let (listening, mut client) = start(&cache_dir);
    let handles = intern_all(&mut client, &corpus);
    let requests = build_requests(&corpus, &handles, train);
    run_stream(&mut client, &requests);
    drop(client);
    listening.shutdown();
    let seed_wall_s = seed_start.elapsed().as_secs_f64();
    assert!(
        cache_dir.join("snapshot-v1").is_dir(),
        "graceful shutdown must leave a snapshot"
    );

    // Warm life: restart on the same directory and serve again.
    let (listening, mut client) = start(&cache_dir);
    let handles = intern_all(&mut client, &corpus);
    let requests = build_requests(&corpus, &handles, train);
    let warm_start = Instant::now();
    run_stream(&mut client, &requests);
    let wall_s = warm_start.elapsed().as_secs_f64();

    let stats_resp = client.request_line("{\"op\":\"stats\"}").expect("stats");
    let v: serde_json::Value = serde_json::from_str(&stats_resp).expect("valid JSON");
    let persist = |name: &str| v["ok"]["persist"][name].as_u64().unwrap_or(0);
    let counter = |name: &str| v["ok"]["cache"][name].as_u64().unwrap_or(0);
    let (base_hits, base_misses) = (counter("base_hits"), counter("base_misses"));
    let base_hit_rate = if base_hits + base_misses > 0 {
        base_hits as f64 / (base_hits + base_misses) as f64
    } else {
        0.0
    };

    let record = WarmRecord {
        bench: "serve_warm".to_string(),
        timestamp_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        pages,
        train,
        seed,
        requests: requests.len(),
        pages_loaded: persist("pages_loaded"),
        base_loaded: persist("base_loaded"),
        load_ms: persist("load_ms"),
        base_hits,
        base_misses,
        base_hit_rate,
        wall_s,
    };

    println!("{:<22} {:>10.3}", "seed-life seconds", seed_wall_s);
    println!("{:<22} {:>10.3}", "warm-life seconds", record.wall_s);
    println!("{:<22} {:>10}", "pages loaded", record.pages_loaded);
    println!("{:<22} {:>10}", "base tables loaded", record.base_loaded);
    println!("{:<22} {:>10}", "snapshot load ms", record.load_ms);
    println!(
        "{:<22} {:>9.1}%  ({} hits / {} misses)",
        "base hit rate",
        100.0 * record.base_hit_rate,
        record.base_hits,
        record.base_misses,
    );

    // Persistence regressions must fail the bench (it runs in CI
    // smoke): the restart must actually load the snapshot, and the
    // warm stream must actually be served from the loaded base tier.
    assert!(
        record.pages_loaded > 0,
        "warm restart loaded no pages from the snapshot"
    );
    assert!(
        record.base_loaded > 0,
        "warm restart loaded no base-feature tables from the snapshot"
    );
    assert!(
        record.base_hits > 0,
        "warm stream over snapshot-loaded pages produced no base-tier hits"
    );

    listening.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);

    if std::env::var("WEBQA_TRAJECTORY").as_deref() == Ok("0") {
        println!("\n# WEBQA_TRAJECTORY=0: not recording");
        return;
    }
    let path = trajectory::serve_path();
    match trajectory::append(&path, &record) {
        Ok(()) => println!("\n# recorded to {}", path.display()),
        Err(e) => println!("\n# trajectory not recorded ({e})"),
    }
}
