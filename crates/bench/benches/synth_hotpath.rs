//! **Synthesis hot path** — wall time and search counters of
//! `webqa_synth::synthesize` per corpus task, appended to the
//! machine-readable perf trajectory at `BENCH_synth.json` (workspace
//! root).
//!
//! This is the target behind the ROADMAP "Perf: synthesis hot path"
//! item: run it before and after a hot-path change and diff the recorded
//! runs instead of a stopwatch.
//!
//! Regenerate with:
//! `cargo bench -p webqa_bench --bench synth_hotpath`
//!
//! Knobs: `WEBQA_PAGES` / `WEBQA_TRAIN` / `WEBQA_SEED` (see
//! `webqa_bench`), plus `WEBQA_TRAJECTORY=0` to skip writing the file.

use std::time::Instant;

use webqa_bench::trajectory::{self, RunRecord, TargetRecord};
use webqa_bench::{default_config, Setup};
use webqa_corpus::TASKS;

fn main() {
    let setup = Setup::from_env();
    println!("# Synthesis hot path: per-task wall time + SynthStats\n");
    println!(
        "{:<12} {:>9} {:>7} {:>9} {:>10} {:>10} {:>10} {:>9}",
        "task", "wall_s", "F1", "programs", "enum", "pruned", "loc_memo", "guards"
    );

    let config = default_config();
    let mut targets = Vec::new();
    for task in &TASKS {
        let engine = setup.engine(config.clone());
        let spec = setup.engine_task(task);
        let prepared = engine.prepare(&spec).expect("store-issued ids resolve");
        let start = Instant::now();
        let synthesized = prepared.synthesize();
        let wall_s = start.elapsed().as_secs_f64();
        let outcome = synthesized.outcome();
        println!(
            "{:<12} {:>9.3} {:>7.2} {:>9} {:>10} {:>10} {:>10} {:>9}",
            task.id,
            wall_s,
            outcome.f1,
            outcome.programs.len(),
            outcome.stats.extractors_enumerated,
            outcome.stats.extractors_pruned,
            outcome.stats.locator_memo_hits,
            outcome.stats.guards_yielded,
        );
        targets.push(TargetRecord {
            task: task.id.to_string(),
            wall_s,
            train_f1: outcome.f1,
            programs: outcome.programs.len(),
            stats: outcome.stats,
        });
    }

    let run = RunRecord::new(
        setup.pages_per_domain(),
        setup.train_pages,
        setup.seed(),
        targets,
    );
    println!("\n# total synthesis wall time: {:.3}s", run.total_wall_s);

    if std::env::var("WEBQA_TRAJECTORY").as_deref() == Ok("0") {
        println!("# WEBQA_TRAJECTORY=0: not recording");
        return;
    }
    let path = trajectory::default_path();
    match trajectory::append(&path, &run) {
        Ok(()) => println!("# recorded to {}", path.display()),
        Err(e) => println!("# trajectory not recorded ({e})"),
    }
}
