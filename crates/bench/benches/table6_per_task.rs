//! **Table 6** — "Evaluation results for each baseline per task": the
//! full per-task breakdown behind Figure 12 / Table 2.
//!
//! Regenerate with:
//! `cargo bench -p webqa-bench --bench table6_per_task`

use webqa_bench::{fmt_score, task_rows_cached, Setup};

fn main() {
    let setup = Setup::from_env();
    println!("# Table 6: per-task results (P R F1 per tool)\n");
    let rows = task_rows_cached(&setup);

    println!(
        "{:<10} | {:^15} | {:^15} | {:^15} | {:^15}",
        "Task", "WebQA", "BERTQA", "HYB", "EntExtract"
    );
    println!("{}", "-".repeat(80));
    let mut domain = None;
    for r in &rows {
        if domain != Some(r.task.domain) {
            println!("--- {} ---", r.task.domain);
            domain = Some(r.task.domain);
        }
        println!(
            "{:<10} | {} | {} | {} | {}",
            r.task.id,
            fmt_score(&r.webqa),
            fmt_score(&r.bertqa),
            fmt_score(&r.hyb),
            fmt_score(&r.ent),
        );
    }
    println!("\n# compare with the paper's Table 6; the reproduced quantity is the");
    println!("# per-task ordering (WebQA ≥ baselines on nearly every row, with the");
    println!("# paper's two exceptions-style rows being single-fact QA tasks where");
    println!("# BERTQA is competitive, e.g. conf_t4/conf_t5).");
}
