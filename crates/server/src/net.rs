//! Socket plumbing: frame reading with a size cap, the per-connection
//! serve loop, accept threads, and the thin [`Client`].
//!
//! Framing is line-delimited (see the crate docs for the full spec):
//! [`read_frame`] pulls bytes through `BufRead::fill_buf` so the cap is
//! enforced *while reading* — an oversized frame is rejected without
//! buffering the whole payload, and a client that disconnects mid-line
//! surfaces as a clean [`Frame::Eof`], never a partial request.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::pool::{ConnWriter, Job};
use crate::{Action, Server, Shared};

/// One read attempt's outcome.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Frame {
    /// A complete line (without the trailing newline; a trailing `\r` is
    /// stripped).
    Line(String),
    /// End of stream on a frame boundary — or mid-frame, in which case
    /// the partial bytes are discarded (a disconnect is never a request).
    Eof,
    /// The line exceeded the cap before its newline arrived.
    Oversized,
    /// The line was complete but not UTF-8.
    BadUtf8,
    /// The transport failed.
    Io,
}

/// Reads one newline-terminated frame, enforcing `max` bytes (exclusive
/// of the newline) as the reading proceeds.
pub(crate) fn read_frame(reader: &mut impl BufRead, max: usize) -> Frame {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Frame::Io,
        };
        if chunk.is_empty() {
            return Frame::Eof;
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if buf.len() + i > max {
                    return Frame::Oversized;
                }
                buf.extend_from_slice(&chunk[..i]);
                reader.consume(i + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return match String::from_utf8(buf) {
                    Ok(s) => Frame::Line(s),
                    Err(_) => Frame::BadUtf8,
                };
            }
            None => {
                let len = chunk.len();
                if buf.len() + len > max {
                    return Frame::Oversized;
                }
                buf.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
    }
}

/// Serves one connection until EOF, an unrecoverable framing error, or
/// server shutdown. Every complete frame gets exactly one response line
/// (unless the response-count cap suppresses it).
///
/// This is the pipelined read loop: control ops and protocol errors are
/// answered inline, heavy ops go to the admission queue and are answered
/// by the worker pool through the connection's shared [`ConnWriter`] —
/// the reader keeps pulling frames while earlier requests compute, so
/// responses arrive in completion order, correlated by `id`.
pub(crate) fn serve_conn<S: AcceptedStream>(shared: &Arc<Shared>, stream: S) {
    let server = Server {
        shared: Arc::clone(shared),
    };
    let conn = match stream.split_writer() {
        Ok(w) => Arc::new(ConnWriter::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match read_frame(&mut reader, shared.max_frame_bytes) {
            Frame::Line(line) if line.trim().is_empty() => continue,
            Frame::Line(line) => {
                let (id, classified) = server.classify_line(&line);
                match classified {
                    Ok(Action::Heavy(op)) => {
                        let shard = op.shard;
                        let admitted = shared.shards.get(shard).queue.try_push(Job {
                            id: id.clone(),
                            op,
                            conn: Arc::clone(&conn),
                        });
                        if !admitted {
                            // Shed: constant-time refusal, written here
                            // on the reader thread — never queued behind
                            // the very backlog that is full.
                            let response = server.overloaded_response(id, shard);
                            if !shared.write_response(&conn, &response) {
                                return;
                            }
                        }
                    }
                    Ok(Action::Immediate(body)) => {
                        let response = server.render_outcome(id, Ok(body));
                        if !shared.write_response(&conn, &response) {
                            return;
                        }
                    }
                    Err(e) => {
                        let response = server.render_outcome(id, Err(e));
                        if !shared.write_response(&conn, &response) {
                            return;
                        }
                    }
                }
            }
            Frame::Eof | Frame::Io => return,
            Frame::Oversized => {
                let response = server.oversized_response();
                let _ = shared.write_response(&conn, &response);
                return;
            }
            Frame::BadUtf8 => {
                let response = server.bad_utf8_response();
                if !shared.write_response(&conn, &response) {
                    return;
                }
            }
        }
    }
}

/// A server bound to its endpoints, with live accept threads.
///
/// Dropping the handle (or calling [`Listening::shutdown`]) stops
/// accepting, joins the accept threads, closes every live connection's
/// stream (unblocking idle reads, so no connection thread outlives the
/// shutdown for more than its in-flight request), and removes the Unix
/// socket file.
pub struct Listening {
    pub(crate) shared: Arc<Shared>,
    pub(crate) tcp_addr: Option<SocketAddr>,
    pub(crate) unix_path: Option<PathBuf>,
    pub(crate) http_addr: Option<SocketAddr>,
    pub(crate) accept_threads: Vec<JoinHandle<()>>,
    pub(crate) worker_threads: Vec<JoinHandle<()>>,
}

impl Listening {
    /// The bound TCP address (with the OS-assigned port when the server
    /// was spawned on port 0), if a TCP endpoint was requested.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-socket path, if one was requested.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// The bound address of the HTTP/1.1 facade, if one was requested.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// A [`Server`] view onto the running daemon (for in-process
    /// inspection: request counters, engine cache stats).
    pub fn server(&self) -> Server {
        Server {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Total requests received so far (every non-blank frame counts,
    /// error responses included; a request is counted when its frame is
    /// read, possibly before its response is written — see
    /// [`Listening::responses_sent`] for the completion-side counter).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Total responses fully written to clients. It can never run ahead
    /// of a response still being computed; for "stop after N requests"
    /// conditions use [`Listening::wait_for_responses`] instead of
    /// polling.
    pub fn responses_sent(&self) -> u64 {
        *crate::relock(self.shared.completions.lock())
    }

    /// Blocks until at least `n` responses have been fully written
    /// (condvar wait, no polling), returning the count observed. With
    /// [`crate::ServeOptions::max_responses`] set to `n`, this is an
    /// exact "serve exactly n, then stop" rendezvous: the write-permit
    /// cap guarantees the count never overshoots, whatever the
    /// concurrency.
    pub fn wait_for_responses(&self, n: u64) -> u64 {
        let mut done = crate::relock(self.shared.completions.lock());
        while *done < n {
            done = crate::relock(self.shared.completion_cv.wait(done));
        }
        *done
    }

    /// Stops accepting, wakes and joins the accept threads, and closes
    /// every live connection's stream — an idle connection's blocked
    /// read errors out immediately, so connection threads wind down
    /// instead of leaking; a request already executing finishes its
    /// computation but its response write fails. (Equivalent to
    /// dropping the handle; the explicit name exists for call-site
    /// clarity.)
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Listening {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Abort in-flight syntheses: their cooperative tokens trip at
        // the next enumerator checkpoint, so workers drain in bounded
        // steps instead of finishing arbitrarily long runs.
        for (_, token) in crate::relock(self.shared.inflight.lock()).iter() {
            token.cancel();
        }
        // Wake workers parked on the empty admission queues so they
        // observe the flag (queued-but-unstarted jobs are abandoned —
        // their connections are closing below anyway).
        self.shared.shards.wake_all();
        // Poke each endpoint so a blocked `accept` returns and observes
        // the flag.
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(addr) = self.http_addr {
            let _ = TcpStream::connect(addr);
        }
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = UnixStream::connect(path);
        }
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        // Close every live connection so idle reads unblock and their
        // threads exit rather than leaking.
        for (_, close) in crate::relock(self.shared.conns.lock()).drain() {
            close();
        }
        // Workers exit after their current (now-cancelled) job.
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        // Every worker has joined, so the stores and caches are
        // quiescent: spill the warm state (pages + base-feature tables)
        // to the snapshot directory for the next `--cache-dir` start.
        // No-op when persistence is off.
        self.shared.shards.spill_all();
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A deferred close for one live connection's stream, registered so
/// shutdown can unblock its reader.
pub(crate) type CloseFn = Box<dyn Fn() + Send>;

/// A stream type the accept loop can serve: readable/writable, and able
/// to produce an out-of-band close handle for the shutdown registry.
pub(crate) trait AcceptedStream: Read + Write + Send + Sized + 'static {
    fn closer(&self) -> Option<CloseFn>;
    /// An independently owned write half (the reader keeps the original),
    /// so the worker pool can answer while the reader blocks on frames.
    fn split_writer(&self) -> io::Result<Box<dyn Write + Send>>;
}

impl AcceptedStream for TcpStream {
    fn closer(&self) -> Option<CloseFn> {
        self.try_clone().ok().map(|s| -> CloseFn {
            Box::new(move || {
                let _ = s.shutdown(std::net::Shutdown::Both);
            })
        })
    }

    fn split_writer(&self) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

#[cfg(unix)]
impl AcceptedStream for UnixStream {
    fn closer(&self) -> Option<CloseFn> {
        self.try_clone().ok().map(|s| -> CloseFn {
            Box::new(move || {
                let _ = s.shutdown(std::net::Shutdown::Both);
            })
        })
    }

    fn split_writer(&self) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

/// The accept loop shared by every transport (line-protocol TCP/Unix
/// and the HTTP facade): accept, register the connection in the
/// shutdown registry, run `serve` on its own thread, deregister on
/// exit.
pub(crate) fn accept_loop<L, S>(
    shared: Arc<Shared>,
    listener: L,
    accept: fn(&L) -> io::Result<S>,
    serve: fn(&Arc<Shared>, S),
) -> JoinHandle<()>
where
    L: Send + 'static,
    S: AcceptedStream,
{
    std::thread::spawn(move || loop {
        match accept(&listener) {
            Ok(stream) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Some(close) = stream.closer() {
                    crate::relock(shared.conns.lock()).insert(conn_id, close);
                }
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    serve(&shared, stream);
                    crate::relock(shared.conns.lock()).remove(&conn_id);
                });
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    })
}

/// Spawns the accept thread for a TCP listener.
pub(crate) fn accept_tcp(shared: Arc<Shared>, listener: TcpListener) -> JoinHandle<()> {
    accept_loop(
        shared,
        listener,
        |l: &TcpListener| l.accept().map(|(s, _)| s),
        serve_conn,
    )
}

/// Spawns the accept thread for a Unix listener.
#[cfg(unix)]
pub(crate) fn accept_unix(shared: Arc<Shared>, listener: UnixListener) -> JoinHandle<()> {
    accept_loop(
        shared,
        listener,
        |l: &UnixListener| l.accept().map(|(s, _)| s),
        serve_conn,
    )
}

/// One end of a client connection (TCP or Unix).
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A thin blocking client for the wire protocol: one request line out,
/// one response line back. Suitable for scripting and test harnesses;
/// open several clients for concurrency.
pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl Client {
    /// Connects over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(Conn::Tcp(stream.try_clone()?));
        Ok(Client {
            reader,
            writer: Conn::Tcp(stream),
        })
    }

    /// Connects over a Unix socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = BufReader::new(Conn::Unix(stream.try_clone()?));
        Ok(Client {
            reader,
            writer: Conn::Unix(stream),
        })
    }

    /// Sends one raw request line (the newline is appended here) and
    /// reads one response line.
    ///
    /// # Errors
    ///
    /// Transport errors, including the server closing the connection
    /// without a response ([`io::ErrorKind::UnexpectedEof`]).
    pub fn request_line(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.read_response_line()
    }

    /// Sends one request line *without* waiting for its response — the
    /// pipelining primitive. Responses come back in completion order;
    /// pair ids from [`Client::read_response_line`] to correlate.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Sends raw bytes verbatim (no newline appended) — the protocol-
    /// robustness tests use this to ship malformed and partial frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one response line (without its newline).
    pub fn read_response_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a request [`Value`](serde_json::Value) and parses the
    /// response envelope.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`io::ErrorKind::InvalidData`] when the
    /// response is not valid JSON.
    pub fn request(&mut self, request: &serde_json::Value) -> io::Result<serde_json::Value> {
        let line = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let response = self.request_line(&line)?;
        serde_json::from_str(&response)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_split_on_newlines_and_strip_cr() {
        let mut r = BufReader::new(&b"abc\r\ndef\n"[..]);
        assert_eq!(read_frame(&mut r, 100), Frame::Line("abc".into()));
        assert_eq!(read_frame(&mut r, 100), Frame::Line("def".into()));
        assert_eq!(read_frame(&mut r, 100), Frame::Eof);
    }

    #[test]
    fn oversized_frames_are_rejected_while_reading() {
        let big = [b'x'; 64];
        let mut r = BufReader::with_capacity(8, &big[..]);
        assert_eq!(read_frame(&mut r, 16), Frame::Oversized);
    }

    #[test]
    fn partial_trailing_frame_is_a_clean_eof() {
        let mut r = BufReader::new(&b"no newline here"[..]);
        assert_eq!(read_frame(&mut r, 100), Frame::Eof);
    }

    #[test]
    fn non_utf8_line_is_flagged() {
        let mut r = BufReader::new(&b"\xff\xfe\n"[..]);
        assert_eq!(read_frame(&mut r, 100), Frame::BadUtf8);
    }
}
