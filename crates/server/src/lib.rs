//! # webqa-server
//!
//! The resident serving layer: a daemon owning long-lived
//! [`webqa::Engine`] state — and therefore its cross-request caches
//! (the feature store and the completed-run LRU, `webqa::CacheStats`)
//! — split into digest-routed **shards** and speaking two wire
//! surfaces: a line-delimited JSON protocol over TCP and/or Unix
//! domain sockets, and a minimal HTTP/1.1 facade mapping the same
//! operations onto `POST`/`GET` routes. Every transport primitive is
//! hand-rolled on `std::net` / `std::os::unix::net` (this build
//! environment has no crates.io access, so no tokio/hyper/axum — and
//! none is needed: both protocols are request/response over blocking
//! sockets).
//!
//! # Execution model: bounded worker pool
//!
//! Connection threads are cheap: they read frames, parse them, and
//! answer control ops (`ping`, `intern`, `stats`) and protocol errors
//! inline. Heavy ops (`run`, `run_batch`) instead pass through a
//! **bounded admission queue** ([`ServeOptions::backlog`]) into a
//! **fixed worker pool** ([`ServeOptions::workers`]):
//!
//! * Engine concurrency is exactly `workers`, however many sockets are
//!   open — a connection flood cannot fork a thousand syntheses.
//! * When the backlog is full the request is **shed immediately** with
//!   a typed `overloaded` error; load shedding never queues behind the
//!   work it refuses. The connection stays open.
//! * Each heavy op carries a latency budget — the smaller of its own
//!   `deadline_ms` field and the server's default deadline, measured
//!   from frame arrival so *queue wait counts*. The budget is enforced
//!   cooperatively inside the synthesis enumerator (a
//!   [`webqa::CancelToken`] checked every guard step): an expired run
//!   aborts promptly with a typed `deadline-exceeded` error and caches
//!   nothing — engine state is never poisoned by a cancelled run.
//!
//! # Sharding: N engines routed by content digest
//!
//! The engine is split into [`ServeOptions::shards`] independent shards
//! (default 1; `0` = one per core). Each shard owns its *own* engine —
//! page store, feature store, result LRU — behind its own `RwLock`,
//! plus its own admission queue and worker slice (the global
//! `workers`/`backlog` budgets are split as evenly as possible, floored
//! at one per shard). A page belongs to exactly one shard, chosen by a
//! pure function of its content digest (`digest % shards`), so the same
//! page lands on the same shard on every daemon of a fleet without
//! coordination — and interning on one shard never takes another
//! shard's write lock. Within a shard, heavy ops share the read lock
//! (synthesis runs concurrently across that shard's workers) and
//! interning takes a brief write lock; stores are append-only, so
//! handles stay valid forever after.
//!
//! Wire handles interleave the shard id into the low bits
//! (`handle = local_index * shards + shard`), which keeps handles dense
//! globally and makes a 1-shard server bit-compatible with the
//! pre-shard protocol (`handle == local_index`). A task executes on its
//! **home shard** — the owner of its first page reference — and any
//! page it references from another shard is pulled in by `Arc`-sharing
//! the parsed tree (one brief write lock on the home shard,
//! content-addressed dedup making repeats free). Responses carry no
//! page handles, so sharding is observationally invisible:
//! `tests/serve_api.rs` pins 4-shard responses byte-identical to
//! 1-shard and to the cold reference.
//!
//! **Semantics guarantee.** Serving is observationally invisible: the
//! response to a `run` request is byte-identical to what a cold,
//! single-threaded [`webqa::Engine`] computes for the same task and
//! config — regardless of cache hits, evictions, interleaving with
//! other clients, or how often the query repeats. `tests/serve_api.rs`
//! (workspace root) is the harness that pins this: N concurrent clients
//! over shuffled, duplicated task streams, every response compared
//! byte-for-byte against a never-cached reference engine.
//!
//! # Persistence: warm restarts from an on-disk snapshot
//!
//! With [`ServeOptions::cache_dir`] set (`webqa-cli serve --cache-dir
//! DIR`), the daemon spills its content-addressed page store and the
//! query-independent base-feature tier to a versioned snapshot under
//! `DIR/snapshot-v1/` at graceful shutdown, and reloads it at startup
//! — each shard loading only the digests it owns, so a restarted
//! daemon answers its first requests from a warm base tier instead of
//! re-running NER and mask extraction. Writes are content-addressed
//! (digest = filename) and idempotent via atomic tmp-file renames;
//! loads re-verify the embedded checksum *and* recompute the content
//! digest, so a truncated or tampered entry is a counted cold miss
//! (`persist.corrupt_skipped`), never a wrong answer. The same
//! invisibility contract applies: `tests/serve_api.rs` pins a warm
//! restart byte-identical to a cold daemon, and the engine-level
//! proptest (`crates/core/tests/cache_semantics.rs`) pins persist →
//! reload → re-run equal to the never-cached reference. An unusable
//! cache dir degrades to a cold start with a warning — persistence is
//! an optimization, never a liveness requirement.
//!
//! # Wire protocol
//!
//! ## Framing
//!
//! * One request per line: a UTF-8 JSON **object** terminated by `\n`
//!   (a trailing `\r` is tolerated and stripped). Blank lines are
//!   ignored.
//! * One response per line, **in completion order** — *not* request
//!   order. Clients may pipeline: send many requests without waiting,
//!   and correlate responses by the echoed `id`. Control ops and
//!   errors answer immediately; heavy ops answer whenever a worker
//!   finishes them, so a fast request overtakes a slow one on the same
//!   connection. Clients that never pipeline still see request order.
//! * Frames larger than the server's `max_frame_bytes` (default 1 MiB)
//!   get an `oversized` error response and the connection is then
//!   closed — framing cannot resync past an unread tail.
//! * A line that is not valid JSON (or not an object, or not UTF-8)
//!   gets a `bad-frame` error; the connection stays open.
//! * EOF before a newline discards the partial frame and closes the
//!   connection quietly — a mid-request disconnect is never executed as
//!   a request and never poisons the shared engine.
//!
//! ## Envelope
//!
//! Requests carry an operation and an optional correlation id (any JSON
//! value, echoed verbatim; `null` when absent or unparsable):
//!
//! ```text
//! → {"id": 1, "op": "<ping|intern|run|run_batch|check|stats>", ...op fields...}
//! ← {"id": 1, "ok": {...}}
//! ← {"id": 1, "err": {"kind": "<kind>", "message": "..."}}
//! ```
//!
//! Error kinds: `bad-frame`, `oversized`, `bad-request`, `unknown-op`,
//! `page`, `unknown-page`, `overloaded`, `deadline-exceeded`,
//! `internal` (see [`protocol::ErrKind`]). Errors are responses like
//! any other — the engine and the connection remain fully usable
//! afterwards (except `oversized`, which closes).
//!
//! ## Operations
//!
//! ### `ping`
//!
//! ```text
//! → {"op":"ping"}
//! ← {"id":null,"ok":{"pong":true}}
//! ```
//!
//! ### `intern` — parse and store a page, returning its handle
//!
//! ```text
//! → {"op":"intern","html":"<h1>A</h1>...","lenient":false}
//! ← {"id":null,"ok":{"page":0,"nodes":7,"digest":"91c5a6d2e03b7f14"}}
//! ```
//!
//! Interning is content-addressed (the store deduplicates): the same
//! HTML always yields the same handle, however many clients send it.
//! Damaged HTML is rejected with `kind:"page"`. The optional `"lenient"`
//! flag (default `false`) parses with browser-style recovery instead, so
//! real-world pages the strict parser rejects can still be ingested —
//! the same opt-out `webqa-cli import --lenient` uses. `"digest"` is the
//! interned tree's content digest as a 16-hex-digit string (a u64 does
//! not survive JSON numbers); it equals the digest `import` prints for
//! the same page, so client- and server-side ingestion can be diffed.
//!
//! ### `run` — synthesize and answer one task
//!
//! ```text
//! → {"op":"run",
//!    "question": "Who are the PhD students?",
//!    "keywords": ["Students"],
//!    "labeled":  [{"page": 0, "gold": ["Jane Doe"]},
//!                 {"html": "<h1>B</h1>...", "gold": ["Mary"]}],
//!    "targets":  [1, {"html": "<h1>C</h1>..."}]}
//! ← {"id":null,"ok":{
//!      "program": "sat(...) -> ...",        // null when nothing found
//!      "train_f1": 1.0,
//!      "counts": {"matched":3,"predicted":3,"gold":3},
//!      "total_optimal": 12,
//!      "answers": [["Wei Chen"], ["..."]]}}  // aligned with targets
//! ```
//!
//! Pages are referenced by handle (from `intern`, or a previous inline
//! use) or supplied inline as `{"html": ...}`; inline pages are interned
//! first (content-addressed, so resending the same page is free) and the
//! request then runs against the store. Unknown handles yield
//! `kind:"unknown-page"`.
//!
//! An optional `"deadline_ms": N` field bounds the request's latency:
//! if the run has not finished `N` milliseconds after the frame
//! arrived (queue wait included), it aborts with `deadline-exceeded`.
//! When the server also has a default deadline, the smaller budget
//! wins.
//!
//! ### `run_batch` — synthesize and answer many tasks as one request
//!
//! ```text
//! → {"op":"run_batch",
//!    "tasks": [{...run fields...}, {...run fields...}],
//!    "deadline_ms": 5000}
//! ← {"id":null,"ok":{"results":[{...run body...}, {...run body...}]}}
//! ```
//!
//! Each `tasks[]` entry takes exactly the fields of a `run` request
//! (`question`, `keywords`, `labeled`, `targets`). The batch occupies
//! **one** worker slot and fans its tasks out over the engine's batch
//! runner internally (parallelism = machine budget ÷ workers), so one
//! huge batch cannot starve other connections of the whole pool.
//! `results` aligns with `tasks`, and every entry is byte-identical to
//! what a separate `run` would have produced. The request is
//! all-or-nothing: a malformed task fails the whole batch up front
//! (before anything executes), and one optional `deadline_ms` covers
//! the entire batch.
//!
//! ### `stats` — serving and cache counters
//!
//! ```text
//! → {"op":"stats"}
//! ← {"id":null,"ok":{
//!      "requests": 42, "errors": 1, "shed": 0, "deadline_exceeded": 0,
//!      "workers": 8, "backlog": 64, "queue_depth": 0, "inflight": 0,
//!      "pages": 7, "uptime_ms": 12345,
//!      "cache": {"feature_hits":30,"feature_misses":4,"feature_evictions":0,
//!                "base_hits":12,"base_misses":5,"base_evictions":0,
//!                "result_hits":11,"result_misses":9,"result_evictions":0,
//!                "features_enabled":true,"results_enabled":true},
//!      "persist": {"pages_loaded":7,"base_loaded":5,"pages_spilled":0,
//!                  "base_spilled":0,"corrupt_skipped":0,"load_ms":3},
//!      "shards": [{"shard":0,"workers":8,"backlog":64,"queue_depth":0,
//!                  "inflight":0,"pages":7,"cache":{...}}, ...]}}
//! ```
//!
//! `shed` counts requests refused by the full admission queue,
//! `deadline_exceeded` counts runs aborted by an expired latency
//! budget; both are also included in `errors`. The `cache` object
//! carries the engine's three tiers — the query-keyed feature tables
//! (`feature_*`), the query-*independent* base tables shared across
//! questions (`base_*`), and the completed-run LRU (`result_*`) — plus
//! the `*_enabled` flags: a disabled tier counts nothing, so its
//! counters stay zero rather than accumulating misleading misses. The
//! `persist` object reports the on-disk snapshot tier
//! ([`ServeOptions::cache_dir`]): entries loaded at startup, entries
//! spilled at shutdown, corrupt entries skipped, and the load wall
//! time; it is all zeros when no cache dir is configured. The `shards`
//! array breaks workers, backlog, queue depth, inflight ops, pages,
//! and every cache counter down per shard — computed in the same pass
//! as the totals, so the breakdown always sums to them exactly
//! (`tests/serve_api.rs` asserts this).
//!
//! ### `check` — lint + abstract-interpretation verdicts for a program
//!
//! ```text
//! → {"op":"check",
//!    "program": "sat(root, kw(0.60)) -> content; sat(root, true) -> content",
//!    "question": "Who are the PhD students?",   // optional
//!    "keywords": ["Students"]}                  // optional
//! ← {"id":null,"ok":{
//!      "program": "sat(...) -> ...",   // round-tripped canonical text
//!      "size": 8, "branches": 2,
//!      "lint": ["..."],                // static well-formedness issues
//!      "verdicts": ["..."],            // analyzer proofs of dead code
//!      "canonical_key": "...",         // equality-up-to-normalization key
//!      "clean": true}}                 // no lint issues, no verdicts
//! ```
//!
//! Pure static analysis ([`webqa::lint`] plus the abstract interpreter,
//! [`webqa::Analyzer`]): the program is parsed and analyzed against the
//! given query context without evaluating any page — the op is answered
//! inline on the connection thread and never takes an engine lock, a
//! worker slot, or an admission-queue place. An unparsable `program` is
//! a `bad-request`; a parseable program with findings still answers
//! `ok` (with `"clean": false`) — findings are the op's *output*, not a
//! protocol failure. The body mirrors `webqa-cli check --json` field
//! for field.
//!
//! # HTTP/1.1 facade
//!
//! With an HTTP endpoint bound ([`Server::listen_all`], or
//! `webqa-cli serve --http HOST:PORT`), the same six operations are
//! served as routes; the response **body is the line-protocol envelope
//! byte for byte** (without the trailing newline), so everything above
//! about envelopes, error kinds, and byte-identical semantics carries
//! over verbatim:
//!
//! ```text
//! POST /v1/run        body = the run request object (op injected)
//! POST /v1/run_batch  body = the run_batch request object
//! POST /v1/intern     body = {"html": "..."}
//! POST /v1/check      body = the check request object (op injected)
//! GET  /v1/ping       (empty body)
//! GET  /v1/stats      (empty body)
//! ```
//!
//! * **Framing**: requests must carry exactly one `Content-Length` —
//!   the facade never parses chunked bodies, so any
//!   `Transfer-Encoding` header is refused with 411 (Length Required)
//!   and a duplicate `Content-Length` with 400, both closing the
//!   connection: ambiguous framing is how request smuggling works, and
//!   refusing is the only safe answer. Bodies above `max_frame_bytes`
//!   are refused with 413.
//!   An empty body is treated as `{}` (all ops accept it except the
//!   heavy ones, which then fail with their usual typed errors).
//!   Responses always carry `Content-Type: application/json` and
//!   `Content-Length`.
//! * **Keep-alive**: connections persist by default (HTTP/1.1
//!   semantics); `Connection: close` — or an `HTTP/1.0` request line —
//!   is honored. Requests on one connection are processed in order;
//!   there is no cross-request pipelining on the facade (use the line
//!   protocol for that).
//! * **Status codes** map from the envelope's error kind: 200 `ok`,
//!   400 `bad-frame`/`bad-request`, 404 `unknown-op`/`unknown-page`
//!   (and unknown paths), 405 wrong method on a known path, 413
//!   `oversized`, 422 `page`, 503 `overloaded`, 504
//!   `deadline-exceeded`, 500 `internal`. Heavy ops pass through the
//!   same per-shard admission queues, deadlines, and shedding as the
//!   line protocol.
//!
//! # Example
//!
//! ```
//! use webqa_server::{Client, ServeOptions, Server};
//!
//! let listening = Server::new(ServeOptions::default())
//!     .listen(Some("127.0.0.1:0"), None)?;
//! let addr = listening.tcp_addr().expect("tcp endpoint");
//!
//! let mut client = Client::connect_tcp(addr)?;
//! let pong = client.request_line(r#"{"id":1,"op":"ping"}"#)?;
//! assert_eq!(pong, r#"{"id":1,"ok":{"pong":true}}"#);
//!
//! listening.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
// A panicking worker must never take the daemon down with it: resident
// code recovers poisoned locks and degrades typed instead of unwrapping.
// Tests are exempt — there a panic is the assertion mechanism.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod http;
mod net;
mod pool;
pub mod protocol;
mod shard;

pub use http::HttpClient;
pub use net::{Client, Listening};
pub use protocol::{render_run_result, ErrKind};

use std::io;
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde_json::{Map, Value};
use webqa::{
    content_digest, lint, Analyzer, CacheStats, CancelToken, Engine, Error as EngineError, PageId,
    PageTree, Program, QueryContext, Task,
};

use pool::ConnWriter;
use protocol::{
    bad_request, bool_field, envelope, page_ref, str_field, string_list, PageRef, ProtoError,
};
use shard::ShardSet;

/// Recovers a poisoned lock. Everything behind the server's locks —
/// completion counters, job/connection registries, the engines' stores
/// and caches — is valid at every intermediate step, so a worker that
/// panicked while holding one leaves usable state behind; the serving
/// loop keeps answering instead of cascading the panic into every
/// thread that touches the lock afterwards.
pub(crate) fn relock<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The resident engine's pipeline configuration (synthesis knobs,
    /// selection strategy, cache capacities).
    pub engine: webqa::Config,
    /// Maximum request-frame size in bytes (default 1 MiB). Larger
    /// frames are refused with an `oversized` error.
    pub max_frame_bytes: usize,
    /// Worker threads executing heavy ops (`run` / `run_batch`), divided
    /// as evenly as possible across the shards (every shard gets at
    /// least one). `0` (the default) means auto: the machine's available
    /// parallelism. This — not the connection count — bounds engine
    /// concurrency.
    pub workers: usize,
    /// Admission-queue capacity (default 64), divided across the shards
    /// like `workers`: heavy ops waiting for a worker beyond a shard's
    /// share are shed with an `overloaded` error.
    pub backlog: usize,
    /// Engine shards, routed by page content digest (see the module docs
    /// of `shard.rs`). `1` (the default) reproduces the single-engine
    /// server exactly — wire handles included; `0` means auto: one shard
    /// per unit of available parallelism.
    pub shards: usize,
    /// Default per-request latency budget, measured from frame arrival
    /// (queue wait included). `None` (the default) = no deadline unless
    /// a request carries `deadline_ms`; when both are present the
    /// *smaller* budget wins.
    pub default_deadline: Option<Duration>,
    /// Hard cap on responses ever written (default `None` = unlimited).
    /// Enforced by write permits, so "serve exactly N" is exact under
    /// any concurrency; [`Listening::wait_for_responses`] blocks until
    /// the cap (or any count) is reached.
    pub max_responses: Option<u64>,
    /// Snapshot directory for warm restarts (default `None` = fully
    /// in-memory). When set, startup loads the versioned snapshot under
    /// this directory (each shard loads the digests it owns; corrupt
    /// entries degrade to cold misses) and clean shutdown spills the
    /// interned pages and resident base-feature tables back. Purely an
    /// optimization: responses are byte-identical with or without it.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            engine: webqa::Config::default(),
            max_frame_bytes: 1 << 20,
            workers: 0,
            backlog: 64,
            shards: 1,
            default_deadline: None,
            max_responses: None,
            cache_dir: None,
        }
    }
}

/// The machine's available parallelism (the `0 = auto` resolution).
fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

impl ServeOptions {
    /// The effective worker count (`workers`, with `0` resolved to the
    /// machine's available parallelism).
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            machine_parallelism()
        }
    }

    /// The effective shard count (`shards`, with `0` resolved to the
    /// machine's available parallelism).
    fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            machine_parallelism()
        }
    }
}

/// State shared by every connection of one daemon.
pub(crate) struct Shared {
    /// The engine shards: each owns its engine (store + caches), its
    /// admission queue, and its worker slice; pages route to shards by
    /// content digest.
    pub(crate) shards: ShardSet,
    pub(crate) max_frame_bytes: usize,
    pub(crate) started: Instant,
    /// Frames received (counted at read time).
    pub(crate) requests: AtomicU64,
    pub(crate) errors: AtomicU64,
    /// Requests shed by the admission queues (`overloaded` responses;
    /// also counted in `errors`).
    pub(crate) shed: AtomicU64,
    /// Requests that returned `deadline-exceeded` (also in `errors`).
    pub(crate) deadline_hits: AtomicU64,
    pub(crate) shutdown: AtomicBool,
    /// Per-task parallelism handed to `Engine::run_batch` by the
    /// `run_batch` op: the machine budget divided across workers.
    pub(crate) batch_jobs: usize,
    /// Server-side default latency budget (see
    /// [`ServeOptions::default_deadline`]).
    pub(crate) default_deadline: Option<Duration>,
    /// Write-permit cap: when set, at most this many responses are ever
    /// written, totalled across all connections.
    pub(crate) max_responses: Option<u64>,
    /// Permits claimed (compared against `max_responses` before every
    /// write; a failed write returns its permit).
    pub(crate) write_permits: AtomicU64,
    /// Responses fully written, guarded by a mutex so
    /// [`Listening::wait_for_responses`] can condvar-wait on it.
    pub(crate) completions: Mutex<u64>,
    pub(crate) completion_cv: Condvar,
    /// Cancel tokens of in-flight heavy ops, so shutdown can abort
    /// long-running syntheses instead of waiting them out.
    pub(crate) inflight: Mutex<std::collections::HashMap<u64, CancelToken>>,
    pub(crate) next_job: AtomicU64,
    /// Live-connection close handles, so shutdown can unblock idle
    /// readers instead of leaking their threads.
    pub(crate) conns: Mutex<std::collections::HashMap<u64, net::CloseFn>>,
    pub(crate) next_conn: AtomicU64,
}

impl Shared {
    /// Writes one response line through `conn` under the write-permit
    /// cap and counts the completion. Returns `false` when the response
    /// was suppressed (cap reached) or the connection is gone.
    pub(crate) fn write_response(&self, conn: &ConnWriter, line: &str) -> bool {
        if let Some(max) = self.max_responses {
            let n = self.write_permits.fetch_add(1, Ordering::SeqCst);
            if n >= max {
                return false;
            }
        }
        let ok = conn.write_line(line);
        if ok {
            let mut done = relock(self.completions.lock());
            *done += 1;
            self.completion_cv.notify_all();
        } else if self.max_responses.is_some() {
            // The permit was claimed but no response reached a client;
            // return it so the cap still yields exactly N deliveries.
            self.write_permits.fetch_sub(1, Ordering::SeqCst);
        }
        ok
    }

    /// Registers an in-flight heavy op's token (shutdown cancels them).
    pub(crate) fn track_job(&self, token: &CancelToken) -> u64 {
        let job = self.next_job.fetch_add(1, Ordering::Relaxed);
        relock(self.inflight.lock()).insert(job, token.clone());
        job
    }

    pub(crate) fn untrack_job(&self, job: u64) {
        relock(self.inflight.lock()).remove(&job);
    }
}

/// A classified request: either answered inline by the connection
/// thread (control ops, parse errors) or handed to the worker pool.
pub(crate) enum Action {
    /// The `ok` body, already computed.
    Immediate(Value),
    /// A parsed heavy op for the admission queue.
    Heavy(HeavyOp),
}

/// A fully parsed heavy operation: pages resolved onto their home
/// shard's store, deadline fixed at admission time (so queue wait counts
/// against the budget).
pub(crate) struct HeavyOp {
    kind: HeavyKind,
    deadline: Option<Instant>,
    /// The shard whose queue admits (and whose worker slice executes)
    /// this op: the task's home shard; for a batch, the first task's
    /// home shard (a cross-shard batch still occupies one worker slot —
    /// its sub-batches execute from there, shard by shard).
    pub(crate) shard: usize,
}

/// A page reference resolved onto its owning shard: the shared parsed
/// tree, the owner shard, and the page's id *in the owner's store*.
/// [`Server::localize`] turns this into a home-shard id when the task
/// runs elsewhere.
struct ResolvedPage {
    tree: Arc<PageTree>,
    owner: usize,
    id_in_owner: PageId,
}

enum HeavyKind {
    Run(Task),
    /// Batch entries keep their home shard alongside the task so a
    /// cross-shard batch can split per shard and reassemble in input
    /// order.
    Batch(Vec<(usize, Task)>),
}

impl HeavyOp {
    #[cfg(test)]
    pub(crate) fn noop_for_tests() -> Self {
        HeavyOp {
            kind: HeavyKind::Batch(Vec::new()),
            deadline: None,
            shard: 0,
        }
    }
}

/// The resident WebQA server. Construct with [`Server::new`], then
/// either bind endpoints with [`Server::listen`] or drive the protocol
/// in-process with [`Server::handle_line`] (what the tests of pure
/// protocol behavior do).
pub struct Server {
    pub(crate) shared: Arc<Shared>,
}

impl Server {
    /// A server owning fresh engine shards built from `opts`. When
    /// [`ServeOptions::cache_dir`] is set, the shards warm-load the
    /// on-disk snapshot here (an unopenable directory degrades to a cold
    /// start with a stderr warning — persistence is an optimization,
    /// never a liveness requirement).
    pub fn new(opts: ServeOptions) -> Server {
        let machine = machine_parallelism();
        let persist = opts.cache_dir.as_ref().and_then(|dir| {
            webqa::PersistSink::open(dir)
                .map_err(|e| {
                    eprintln!(
                        "webqa-server: cache dir {} unusable ({e}); starting cold",
                        dir.display()
                    )
                })
                .ok()
        });
        let shards = ShardSet::new(
            &opts.engine,
            opts.effective_shards(),
            opts.effective_workers(),
            opts.backlog,
            persist,
        );
        // Post-clamp: the shard set may have reduced the shard count to
        // honor the global budgets, so derive per-op parallelism from
        // what was actually built, not from what was requested.
        let workers = shards.total_workers();
        Server {
            shared: Arc::new(Shared {
                shards,
                max_frame_bytes: opts.max_frame_bytes,
                started: Instant::now(),
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                deadline_hits: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                // Split the machine budget across workers so a full pool
                // of run_batch ops cannot oversubscribe the cores.
                batch_jobs: (machine / workers).max(1),
                default_deadline: opts.default_deadline,
                max_responses: opts.max_responses,
                write_permits: AtomicU64::new(0),
                completions: Mutex::new(0),
                completion_cv: Condvar::new(),
                inflight: Mutex::new(std::collections::HashMap::new()),
                next_job: AtomicU64::new(0),
                conns: Mutex::new(std::collections::HashMap::new()),
                next_conn: AtomicU64::new(0),
            }),
        }
    }

    /// Binds line-protocol endpoints (at least one) and spawns their
    /// accept threads. TCP addresses are standard `host:port` strings
    /// (`port 0` = OS-assigned, readable back from
    /// [`Listening::tcp_addr`]). Shorthand for [`Server::listen_all`]
    /// with no HTTP endpoint.
    ///
    /// # Errors
    ///
    /// Bind failures, or [`io::ErrorKind::InvalidInput`] when no
    /// endpoint was requested.
    pub fn listen(self, tcp: Option<&str>, unix: Option<&Path>) -> io::Result<Listening> {
        self.listen_all(tcp, unix, None)
    }

    /// Binds the requested endpoints (at least one) and spawns their
    /// accept threads: line-protocol TCP and/or Unix socket, and/or the
    /// HTTP/1.1 facade (`http`, a `host:port` string; the bound address
    /// is readable back from [`Listening::http_addr`]).
    ///
    /// # Errors
    ///
    /// Bind failures, or [`io::ErrorKind::InvalidInput`] when no
    /// endpoint was requested.
    pub fn listen_all(
        self,
        tcp: Option<&str>,
        unix: Option<&Path>,
        http: Option<&str>,
    ) -> io::Result<Listening> {
        if tcp.is_none() && unix.is_none() && http.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no endpoint requested: pass a TCP address, a Unix socket path, and/or an HTTP address",
            ));
        }
        let mut accept_threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = tcp {
            let listener = TcpListener::bind(addr)?;
            tcp_addr = Some(listener.local_addr()?);
            accept_threads.push(net::accept_tcp(Arc::clone(&self.shared), listener));
        }
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = unix {
            // A stale socket file from a crashed predecessor would make
            // bind fail; remove it (connecting to a live one would fail
            // the bind anyway, which is the behavior we want).
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            unix_path = Some(path.to_path_buf());
            accept_threads.push(net::accept_unix(Arc::clone(&self.shared), listener));
        }
        #[cfg(not(unix))]
        if unix.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        let mut http_addr = None;
        if let Some(addr) = http {
            let listener = TcpListener::bind(addr)?;
            http_addr = Some(listener.local_addr()?);
            accept_threads.push(http::accept_http(Arc::clone(&self.shared), listener));
        }
        let worker_threads = pool::spawn_workers(&self.shared);
        Ok(Listening {
            shared: self.shared,
            tcp_addr,
            unix_path,
            http_addr,
            accept_threads,
            worker_threads,
        })
    }

    /// Handles one complete frame and renders the one-line response —
    /// the entire protocol, transport-free and synchronous (heavy ops
    /// execute inline on the calling thread). Tests of pure protocol
    /// behavior drive this directly; connection loops instead use the
    /// crate-private `classify_line` so heavy ops go through the
    /// worker pool.
    pub fn handle_line(&self, line: &str) -> String {
        let (id, classified) = self.classify_line(line);
        let outcome = match classified {
            Ok(Action::Immediate(body)) => Ok(body),
            Ok(Action::Heavy(op)) => self.execute_heavy(op),
            Err(e) => Err(e),
        };
        self.render_outcome(id, outcome)
    }

    /// Parses one frame into its echo id and either an immediate result
    /// or a pool-ready heavy op. Counts the request; the deadline (if
    /// any) is anchored *here*, so time spent queued counts against the
    /// request's latency budget.
    pub(crate) fn classify_line(&self, line: &str) -> (Value, Result<Action, ProtoError>) {
        match serde_json::from_str::<Value>(line) {
            Err(_) => {
                self.shared.requests.fetch_add(1, Ordering::Relaxed);
                (
                    Value::Null,
                    Err(ProtoError::new(
                        ErrKind::BadFrame,
                        "frame is not valid JSON",
                    )),
                )
            }
            Ok(v) => self.classify_value(v),
        }
    }

    /// [`Server::classify_line`] for an already-parsed frame — the HTTP
    /// facade's entry point (its body arrives pre-parsed, with the op
    /// injected from the request path). Counts the request.
    pub(crate) fn classify_value(&self, v: Value) -> (Value, Result<Action, ProtoError>) {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        if v.as_object().is_none() {
            return (
                Value::Null,
                Err(ProtoError::new(
                    ErrKind::BadFrame,
                    "frame must be a JSON object",
                )),
            );
        }
        let id = v["id"].clone();
        (id, self.dispatch(&v))
    }

    /// Renders the response envelope and maintains the error counter —
    /// the single exit point for every response, wherever it executed.
    pub(crate) fn render_outcome(&self, id: Value, outcome: Result<Value, ProtoError>) -> String {
        if outcome.is_err() {
            self.shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        envelope(id, outcome)
    }

    /// The response to a heavy op its home shard's admission queue
    /// refused.
    pub(crate) fn overloaded_response(&self, id: Value, shard: usize) -> String {
        self.shared.shed.fetch_add(1, Ordering::Relaxed);
        self.render_outcome(
            id,
            Err(ProtoError::new(
                ErrKind::Overloaded,
                format!(
                    "admission queue full (backlog {}); request shed",
                    self.shared.shards.get(shard).queue.capacity()
                ),
            )),
        )
    }

    /// Executes a parsed heavy op under its deadline token. Runs on a
    /// worker thread in the daemon, inline in [`Server::handle_line`].
    pub(crate) fn execute_heavy(&self, op: HeavyOp) -> Result<Value, ProtoError> {
        let token = match op.deadline {
            Some(at) => CancelToken::with_deadline(at),
            None => CancelToken::never(),
        };
        let job = self.shared.track_job(&token);
        let shard = self.shared.shards.get(op.shard);
        shard.inflight.fetch_add(1, Ordering::Relaxed);
        let outcome = self.run_heavy(op.shard, op.kind, &token);
        shard.inflight.fetch_sub(1, Ordering::Relaxed);
        self.shared.untrack_job(job);
        outcome
    }

    fn run_heavy(
        &self,
        home: usize,
        kind: HeavyKind,
        token: &CancelToken,
    ) -> Result<Value, ProtoError> {
        match kind {
            HeavyKind::Run(task) => {
                // The long-running part shares the home shard's read
                // lock: concurrent workers proceed in parallel, and only
                // *this shard's* interns serialize against them.
                let engine = relock(self.shared.shards.get(home).engine.read());
                let result = engine
                    .run_with_cancel(&task, token)
                    .map_err(|e| self.engine_err(e))?;
                Ok(render_run_result(&result))
            }
            HeavyKind::Batch(tasks) => {
                // Split by home shard, execute the sub-batches shard by
                // shard (each under that shard's read lock), and
                // reassemble in input order — every entry byte-identical
                // to what a separate `run` would have produced.
                let mut order: Vec<usize> = Vec::new();
                let mut groups: std::collections::HashMap<usize, (Vec<usize>, Vec<Task>)> =
                    std::collections::HashMap::new();
                for (i, (shard, task)) in tasks.into_iter().enumerate() {
                    let (indices, group) = groups.entry(shard).or_insert_with(|| {
                        order.push(shard);
                        (Vec::new(), Vec::new())
                    });
                    indices.push(i);
                    group.push(task);
                }
                let mut rendered: Vec<Value> =
                    vec![Value::Null; groups.values().map(|(i, _)| i.len()).sum()];
                for shard in order {
                    // Grouped above: every key in `order` was inserted
                    // exactly once and is removed exactly once here.
                    let Some((indices, group)) = groups.remove(&shard) else {
                        continue;
                    };
                    let engine = relock(self.shared.shards.get(shard).engine.read());
                    let results = engine
                        .run_batch_with_cancel(&group, self.shared.batch_jobs, token)
                        .map_err(|e| self.engine_err(e))?;
                    for (slot, result) in indices.into_iter().zip(results.iter()) {
                        rendered[slot] = render_run_result(result);
                    }
                }
                let mut map = Map::new();
                map.insert("results".to_string(), Value::Array(rendered));
                Ok(Value::Object(map))
            }
        }
    }

    /// Maps engine failures onto the wire vocabulary (and counts
    /// deadline trips).
    fn engine_err(&self, e: EngineError) -> ProtoError {
        match e {
            EngineError::UnknownPage(id) => ProtoError::new(
                ErrKind::UnknownPage,
                format!("page handle {} is unknown to this server", id.index()),
            ),
            EngineError::Cancelled => {
                self.shared.deadline_hits.fetch_add(1, Ordering::Relaxed);
                ProtoError::new(
                    ErrKind::DeadlineExceeded,
                    "latency budget expired before the run finished",
                )
            }
            other => ProtoError::new(ErrKind::Internal, other.to_string()),
        }
    }

    /// The response to a frame that blew the size cap (counted like any
    /// other request; the caller closes the connection afterwards).
    pub(crate) fn oversized_response(&self) -> String {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.errors.fetch_add(1, Ordering::Relaxed);
        envelope(
            Value::Null,
            Err(ProtoError::new(
                ErrKind::Oversized,
                format!(
                    "frame exceeds max_frame_bytes ({}); closing connection",
                    self.shared.max_frame_bytes
                ),
            )),
        )
    }

    /// The response to a complete but non-UTF-8 frame.
    pub(crate) fn bad_utf8_response(&self) -> String {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.errors.fetch_add(1, Ordering::Relaxed);
        envelope(
            Value::Null,
            Err(ProtoError::new(ErrKind::BadFrame, "frame is not UTF-8")),
        )
    }

    fn dispatch(&self, request: &Value) -> Result<Action, ProtoError> {
        match request["op"].as_str() {
            Some("ping") => {
                let mut map = Map::new();
                map.insert("pong".to_string(), Value::Bool(true));
                Ok(Action::Immediate(Value::Object(map)))
            }
            Some("intern") => self.op_intern(request).map(Action::Immediate),
            Some("run") => {
                let deadline = self.deadline_of(request)?;
                let (task, home) = self.parse_run_task(request)?;
                Ok(Action::Heavy(HeavyOp {
                    kind: HeavyKind::Run(task),
                    deadline,
                    shard: home,
                }))
            }
            Some("run_batch") => {
                let deadline = self.deadline_of(request)?;
                let tasks = match &request["tasks"] {
                    Value::Array(items) => items
                        .iter()
                        .map(|item| self.parse_run_task(item).map(|(t, h)| (h, t)))
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return bad_request("field \"tasks\" must be an array"),
                };
                // The batch is admitted on (and its worker slot charged
                // to) the first task's home shard.
                let shard = tasks.first().map_or(0, |&(h, _)| h);
                Ok(Action::Heavy(HeavyOp {
                    kind: HeavyKind::Batch(tasks),
                    deadline,
                    shard,
                }))
            }
            Some("check") => self.op_check(request).map(Action::Immediate),
            Some("stats") => self.op_stats().map(Action::Immediate),
            Some(other) => Err(ProtoError::new(
                ErrKind::UnknownOp,
                format!("unknown op {other:?} (expected ping|intern|run|run_batch|check|stats)"),
            )),
            None => bad_request("field \"op\" must be a string"),
        }
    }

    /// The request's effective latency budget: the smaller of its
    /// `deadline_ms` and the server default, anchored now (= at frame
    /// arrival).
    fn deadline_of(&self, request: &Value) -> Result<Option<Instant>, ProtoError> {
        let requested = match &request["deadline_ms"] {
            Value::Null => None,
            v => match v.as_u64() {
                Some(ms) => Some(Duration::from_millis(ms)),
                None => {
                    return bad_request(
                        "field \"deadline_ms\" must be a non-negative integer (milliseconds)",
                    )
                }
            },
        };
        let budget = match (requested, self.shared.default_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Ok(budget.map(|d| Instant::now() + d))
    }

    /// Parses inline HTML and interns it onto its owning shard (parse
    /// happens *before* any lock; the owner's write lock is held only
    /// for the content-addressed insert). Returns the resolved page
    /// plus the parsed tree's node count. `lenient` selects browser-style
    /// recovery ([`PageTree::parse`], never fails) over the strict
    /// damage-rejecting parse.
    fn intern_html(&self, html: &str, lenient: bool) -> Result<(ResolvedPage, usize), ProtoError> {
        let tree = if lenient {
            PageTree::parse(html)
        } else {
            PageTree::try_parse(html)
                .map_err(|e| ProtoError::new(ErrKind::Page, EngineError::from(e).to_string()))?
        };
        let nodes = tree.len();
        let tree = Arc::new(tree);
        let owner = self.shared.shards.owner_of(content_digest(&tree));
        let id = {
            let mut engine = relock(self.shared.shards.get(owner).engine.write());
            engine.store_mut().insert_shared(Arc::clone(&tree))
        };
        Ok((
            ResolvedPage {
                tree,
                owner,
                id_in_owner: id,
            },
            nodes,
        ))
    }

    fn op_intern(&self, request: &Value) -> Result<Value, ProtoError> {
        let html = str_field(request, "html")?;
        let lenient = bool_field(request, "lenient", false)?;
        let (page, nodes) = self.intern_html(html, lenient)?;
        let handle = self
            .shared
            .shards
            .encode_handle(page.owner, page.id_in_owner.index());
        let mut map = Map::new();
        map.insert("page".to_string(), serde_json::json!(handle));
        map.insert("nodes".to_string(), serde_json::json!(nodes));
        // Hex string: the digest is a full u64 and JSON numbers cannot
        // carry it faithfully. Matches the CLI's `import` output, so
        // client-side and server-side ingestion can be diffed directly.
        map.insert(
            "digest".to_string(),
            serde_json::json!(format!("{:016x}", content_digest(&page.tree))),
        );
        Ok(Value::Object(map))
    }

    /// Resolves one page reference onto its owning shard, interning
    /// inline HTML on the fly. Handles only take the owner's read lock.
    fn resolve(&self, r: PageRef) -> Result<ResolvedPage, ProtoError> {
        match r {
            PageRef::Handle(h) => {
                let (owner, local) = self.shared.shards.decode_handle(h);
                let engine = relock(self.shared.shards.get(owner).engine.read());
                let id = engine.store().id_at(local as usize).ok_or_else(|| {
                    ProtoError::new(
                        ErrKind::UnknownPage,
                        format!("page handle {h} is unknown to this server"),
                    )
                })?;
                // `id_at` just resolved this id under the same read
                // lock, so `get` can only miss if the store is corrupt —
                // degrade typed rather than panic the connection thread.
                let tree = match engine.store().get(id) {
                    Ok(tree) => Arc::clone(tree),
                    Err(_) => {
                        return Err(ProtoError::new(
                            ErrKind::Internal,
                            format!("page handle {h} resolved to a missing store slot"),
                        ))
                    }
                };
                Ok(ResolvedPage {
                    tree,
                    owner,
                    id_in_owner: id,
                })
            }
            // Inline pages inside run/run_batch stay strict: only the
            // dedicated `intern` op takes the lenient opt-out.
            PageRef::Html(html) => self.intern_html(&html, false).map(|(page, _)| page),
        }
    }

    /// The home-shard-local id of a resolved page: its own id when it
    /// already lives on `home`, else the id of its `Arc`-shared copy
    /// pulled into the home shard's store. `home_engine` lazily caches
    /// the home shard's write lock so a task with many foreign pages
    /// pays for one acquisition — and a task with none (always the case
    /// at one shard) never takes a write lock at all.
    fn localize<'a>(
        &'a self,
        home_engine: &mut Option<std::sync::RwLockWriteGuard<'a, Engine>>,
        home: usize,
        page: &ResolvedPage,
    ) -> PageId {
        if page.owner == home {
            return page.id_in_owner;
        }
        let engine =
            home_engine.get_or_insert_with(|| relock(self.shared.shards.get(home).engine.write()));
        engine.store_mut().insert_shared(Arc::clone(&page.tree))
    }

    /// Parses and fully resolves one run spec (the body of a `run`
    /// request, or one `tasks[]` entry of `run_batch`) into an engine
    /// [`Task`] plus its home shard (the owner of its first page
    /// reference; a pageless task runs on shard 0). Inline pages are
    /// interned here, on the connection thread — workers only ever
    /// synthesize. Foreign pages are pulled into the home shard so the
    /// run executes against a single store.
    fn parse_run_task(&self, request: &Value) -> Result<(Task, usize), ProtoError> {
        let question = str_field(request, "question")?.to_string();
        let keywords = string_list(request, "keywords")?;

        // Parse both page lists fully before touching the engine, so a
        // malformed tail can never leave a half-interned request behind.
        let labeled_specs: Vec<(PageRef, Vec<String>)> = match &request["labeled"] {
            Value::Null => Vec::new(),
            Value::Array(items) => items
                .iter()
                .map(|item| {
                    let r = page_ref(item, "labeled[] entry")?;
                    let gold = string_list(item, "gold")?;
                    Ok((r, gold))
                })
                .collect::<Result<_, ProtoError>>()?,
            _ => return bad_request("field \"labeled\" must be an array"),
        };
        let target_specs: Vec<PageRef> = match &request["targets"] {
            Value::Null => Vec::new(),
            Value::Array(items) => items
                .iter()
                .map(|item| page_ref(item, "targets[] entry"))
                .collect::<Result<_, ProtoError>>()?,
            _ => return bad_request("field \"targets\" must be an array"),
        };

        // Resolve every reference onto its owning shard, then pick the
        // home shard and localize: pages already home use their own id,
        // foreign pages are Arc-copied in under one write lock.
        let labeled: Vec<(ResolvedPage, Vec<String>)> = labeled_specs
            .into_iter()
            .map(|(r, gold)| self.resolve(r).map(|p| (p, gold)))
            .collect::<Result<_, _>>()?;
        let targets: Vec<ResolvedPage> = target_specs
            .into_iter()
            .map(|r| self.resolve(r))
            .collect::<Result<_, _>>()?;
        let home = labeled
            .first()
            .map(|(p, _)| p.owner)
            .or_else(|| targets.first().map(|p| p.owner))
            .unwrap_or(0);

        let mut task = Task::new(question, keywords);
        let mut home_engine = None;
        for (p, gold) in &labeled {
            let id = self.localize(&mut home_engine, home, p);
            task.labeled.push((id, gold.clone()));
        }
        for p in &targets {
            let id = self.localize(&mut home_engine, home, p);
            task.unlabeled.push(id);
        }
        Ok((task, home))
    }

    /// `check`: lint plus abstract-interpretation verdicts for a program
    /// against an (optional) query context. Pure static analysis — no
    /// page is evaluated, no engine lock is taken, no worker slot or
    /// queue place is consumed — so it is answered inline like `ping`.
    /// The body mirrors `webqa-cli check --json` field for field.
    fn op_check(&self, request: &Value) -> Result<Value, ProtoError> {
        let src = str_field(request, "program")?;
        let program: Program = src.parse().map_err(|e| {
            ProtoError::new(
                ErrKind::BadRequest,
                format!("field \"program\" does not parse: {e}"),
            )
        })?;
        let question = match &request["question"] {
            Value::Null => "",
            v => match v.as_str() {
                Some(q) => q,
                None => return bad_request("field \"question\" must be a string"),
            },
        };
        let ctx = QueryContext::new(question, string_list(request, "keywords")?);
        let report = lint(&program, &ctx);
        let analysis = Analyzer::new(&ctx).analyze(&program);
        let verdicts = analysis.verdicts();
        let clean = report.is_clean() && verdicts.is_empty();
        let strings =
            |items: Vec<String>| Value::Array(items.into_iter().map(Value::String).collect());
        let mut map = Map::new();
        map.insert("program".to_string(), Value::String(program.to_string()));
        map.insert("size".to_string(), serde_json::json!(program.size()));
        map.insert(
            "branches".to_string(),
            serde_json::json!(program.branches.len()),
        );
        map.insert(
            "lint".to_string(),
            strings(report.issues.iter().map(|i| i.to_string()).collect()),
        );
        map.insert("verdicts".to_string(), strings(verdicts));
        map.insert(
            "canonical_key".to_string(),
            Value::String(analysis.canonical_key.clone()),
        );
        map.insert("clean".to_string(), Value::Bool(clean));
        Ok(Value::Object(map))
    }

    fn op_stats(&self) -> Result<Value, ProtoError> {
        let shards = &self.shared.shards;
        // One pass over the shards: read each engine once, emitting the
        // per-shard breakdown while accumulating the fleet totals (so
        // the breakdown always sums to the totals in the same response).
        let mut shard_entries = Vec::with_capacity(shards.count());
        let mut cache_total = CacheStats::default();
        let mut pages_total = 0usize;
        for (i, s) in shards.iter().enumerate() {
            let (pages, cache) = {
                let engine = relock(s.engine.read());
                (engine.store().len(), engine.cache_stats())
            };
            pages_total += pages;
            cache_total = cache_total.merged(cache);
            let mut entry = Map::new();
            entry.insert("shard".to_string(), serde_json::json!(i as u64));
            entry.insert("workers".to_string(), serde_json::json!(s.workers as u64));
            entry.insert(
                "backlog".to_string(),
                serde_json::json!(s.queue.capacity() as u64),
            );
            entry.insert(
                "queue_depth".to_string(),
                serde_json::json!(s.queue.depth() as u64),
            );
            entry.insert(
                "inflight".to_string(),
                serde_json::json!(s.inflight.load(Ordering::Relaxed)),
            );
            entry.insert("pages".to_string(), serde_json::json!(pages));
            entry.insert(
                "cache".to_string(),
                serde_json::to_value(&cache)
                    .map_err(|e| ProtoError::new(ErrKind::Internal, e.to_string()))?,
            );
            shard_entries.push(Value::Object(entry));
        }
        let cache = serde_json::to_value(&cache_total)
            .map_err(|e| ProtoError::new(ErrKind::Internal, e.to_string()))?;
        let mut map = Map::new();
        map.insert(
            "requests".to_string(),
            serde_json::json!(self.shared.requests.load(Ordering::Relaxed)),
        );
        map.insert(
            "errors".to_string(),
            serde_json::json!(self.shared.errors.load(Ordering::Relaxed)),
        );
        map.insert(
            "shed".to_string(),
            serde_json::json!(self.shared.shed.load(Ordering::Relaxed)),
        );
        map.insert(
            "deadline_exceeded".to_string(),
            serde_json::json!(self.shared.deadline_hits.load(Ordering::Relaxed)),
        );
        map.insert(
            "workers".to_string(),
            serde_json::json!(shards.total_workers() as u64),
        );
        map.insert(
            "backlog".to_string(),
            serde_json::json!(shards.total_backlog() as u64),
        );
        map.insert(
            "queue_depth".to_string(),
            serde_json::json!(shards.total_queue_depth() as u64),
        );
        map.insert(
            "inflight".to_string(),
            serde_json::json!(relock(self.shared.inflight.lock()).len() as u64),
        );
        map.insert("pages".to_string(), serde_json::json!(pages_total));
        map.insert(
            "uptime_ms".to_string(),
            serde_json::json!(self.shared.started.elapsed().as_millis() as u64),
        );
        map.insert("cache".to_string(), cache);
        map.insert(
            "persist".to_string(),
            serde_json::to_value(&shards.persist_stats())
                .map_err(|e| ProtoError::new(ErrKind::Internal, e.to_string()))?,
        );
        map.insert("shards".to_string(), Value::Array(shard_entries));
        Ok(Value::Object(map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(ServeOptions {
            engine: webqa::Config {
                synth: webqa::SynthConfig::fast(),
                ..webqa::Config::default()
            },
            max_frame_bytes: 1 << 16,
            ..ServeOptions::default()
        })
    }

    #[test]
    fn ping_echoes_the_id() {
        let s = server();
        assert_eq!(
            s.handle_line(r#"{"id":42,"op":"ping"}"#),
            r#"{"id":42,"ok":{"pong":true}}"#
        );
        // Ids are arbitrary JSON, echoed verbatim.
        assert_eq!(
            s.handle_line(r#"{"id":"abc","op":"ping"}"#),
            r#"{"id":"abc","ok":{"pong":true}}"#
        );
    }

    #[test]
    fn malformed_and_unknown_frames_are_typed_errors() {
        let s = server();
        let r = s.handle_line("this is not json");
        assert!(r.contains(r#""kind":"bad-frame""#), "{r}");
        let r = s.handle_line("[1,2,3]");
        assert!(r.contains(r#""kind":"bad-frame""#), "{r}");
        let r = s.handle_line(r#"{"op":"frobnicate"}"#);
        assert!(r.contains(r#""kind":"unknown-op""#), "{r}");
        let r = s.handle_line(r#"{"op":"run"}"#);
        assert!(r.contains(r#""kind":"bad-request""#), "{r}");
        // The server still works after every error.
        assert!(s.handle_line(r#"{"op":"ping"}"#).contains("pong"));
    }

    #[test]
    fn intern_is_content_addressed() {
        let s = server();
        let a = s.handle_line(r#"{"op":"intern","html":"<h1>A</h1><p>x</p>"}"#);
        let b = s.handle_line(r#"{"op":"intern","html":"<h1>A</h1><p>x</p>"}"#);
        assert_eq!(a, b);
        assert!(a.contains(r#""page":0"#), "{a}");
        let damaged = s.handle_line(r#"{"op":"intern","html":"<p>50&bogus;mg</p>"}"#);
        assert!(damaged.contains(r#""kind":"page""#), "{damaged}");
    }

    #[test]
    fn intern_lenient_flag_and_digest() {
        let s = server();
        // The strict default rejects this page; lenient interning
        // recovers it browser-style.
        let strict = s.handle_line(r#"{"op":"intern","html":"<p>50&bogus;mg</p>"}"#);
        assert!(strict.contains(r#""kind":"page""#), "{strict}");
        let lenient =
            s.handle_line(r#"{"op":"intern","html":"<p>50&bogus;mg</p>","lenient":true}"#);
        let v: Value = serde_json::from_str(&lenient).expect("valid JSON");
        assert!(v["ok"]["page"].as_u64().is_some(), "{lenient}");

        // The digest is the tree's content digest as 16 hex digits, and
        // it matches what the CLI computes for the same page.
        let digest = v["ok"]["digest"].as_str().expect("digest string");
        assert_eq!(digest.len(), 16, "{lenient}");
        let expected = format!(
            "{:016x}",
            content_digest(&PageTree::parse("<p>50&bogus;mg</p>"))
        );
        assert_eq!(digest, expected);

        // An explicit false behaves like the default; junk is typed.
        let explicit = s.handle_line(r#"{"op":"intern","html":"<p>x</p>","lenient":false}"#);
        assert!(explicit.contains(r#""digest":""#), "{explicit}");
        let junk = s.handle_line(r#"{"op":"intern","html":"<p>x</p>","lenient":"yes"}"#);
        assert!(junk.contains(r#""kind":"bad-request""#), "{junk}");
    }

    #[test]
    fn run_with_inline_pages_answers() {
        let s = server();
        let req = r#"{"id":1,"op":"run","question":"Who are the PhD students?","keywords":["Students"],"labeled":[{"html":"<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>","gold":["Jane Doe"]}],"targets":[{"html":"<h1>B</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>"}]}"#;
        let resp = s.handle_line(req);
        assert!(resp.contains(r#""answers":[["Wei Chen"]]"#), "{resp}");
        assert!(resp.contains(r#""train_f1":1.0"#), "{resp}");

        // Unknown handles are typed errors, and the engine survives.
        let bad = s.handle_line(
            r#"{"op":"run","question":"Q","keywords":[],"labeled":[{"page":999,"gold":["x"]}],"targets":[]}"#,
        );
        assert!(bad.contains(r#""kind":"unknown-page""#), "{bad}");
        let resp2 = s.handle_line(req);
        assert_eq!(
            resp2, resp,
            "repeat after an error must be byte-identical (and a cache hit)"
        );
    }

    #[test]
    fn run_batch_matches_individual_runs() {
        let s = server();
        let run_a = r#""question":"Who are the PhD students?","keywords":["Students"],"labeled":[{"html":"<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>","gold":["Jane Doe"]}],"targets":[{"html":"<h1>B</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>"}]"#;
        let batch = s.handle_line(&format!(
            r#"{{"id":9,"op":"run_batch","tasks":[{{{run_a}}},{{{run_a}}}]}}"#
        ));
        let v: Value = serde_json::from_str(&batch).expect("valid JSON");
        let results = v["ok"]["results"].as_array().expect("results array");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0], results[1], "identical tasks, identical bodies");

        // Each entry is exactly what a separate `run` would say.
        let single = s.handle_line(&format!(r#"{{"op":"run",{run_a}}}"#));
        let sv: Value = serde_json::from_str(&single).expect("valid JSON");
        assert_eq!(results[0], sv["ok"]);

        // A malformed task fails the whole batch before anything runs.
        let bad = s.handle_line(&format!(
            r#"{{"op":"run_batch","tasks":[{{{run_a}}},{{"keywords":[]}}]}}"#
        ));
        assert!(bad.contains(r#""kind":"bad-request""#), "{bad}");
        let not_array = s.handle_line(r#"{"op":"run_batch","tasks":7}"#);
        assert!(not_array.contains(r#""kind":"bad-request""#), "{not_array}");
    }

    #[test]
    fn deadline_ms_must_be_a_nonnegative_integer() {
        let s = server();
        let r = s.handle_line(
            r#"{"op":"run","deadline_ms":"soon","question":"Q","keywords":[],"labeled":[],"targets":[]}"#,
        );
        assert!(r.contains(r#""kind":"bad-request""#), "{r}");
        assert!(r.contains("deadline_ms"), "{r}");
    }

    #[test]
    fn expired_deadline_is_typed_and_the_engine_survives() {
        let s = server();
        let fields = r#""question":"Who are the PhD students?","keywords":["Students"],"labeled":[{"html":"<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>","gold":["Jane Doe"]}],"targets":[]"#;
        let dead = s.handle_line(&format!(r#"{{"op":"run","deadline_ms":0,{fields}}}"#));
        assert!(dead.contains(r#""kind":"deadline-exceeded""#), "{dead}");

        // The same task without a deadline runs fine afterwards: the
        // cancelled attempt cached nothing and poisoned nothing.
        let ok = s.handle_line(&format!(r#"{{"op":"run",{fields}}}"#));
        assert!(ok.contains(r#""train_f1":1.0"#), "{ok}");

        let stats = s.handle_line(r#"{"op":"stats"}"#);
        let v: Value = serde_json::from_str(&stats).expect("valid JSON");
        assert_eq!(v["ok"]["deadline_exceeded"].as_u64(), Some(1));
    }

    #[test]
    fn check_reports_verdicts_without_touching_the_engine() {
        let s = server();
        let resp = s.handle_line(
            r#"{"id":3,"op":"check","program":"sat(root, kw(0.60)) -> content; sat(root, true) -> content","keywords":["Students"]}"#,
        );
        let v: Value = serde_json::from_str(&resp).expect("valid JSON");
        assert_eq!(v["id"].as_u64(), Some(3));
        assert_eq!(v["ok"]["branches"].as_u64(), Some(2));
        assert_eq!(v["ok"]["clean"].as_bool(), Some(true));
        assert_eq!(v["ok"]["verdicts"].as_array().map(Vec::len), Some(0));
        assert!(v["ok"]["canonical_key"].as_str().is_some(), "{resp}");

        // Without keywords the kw-guard is provably false: findings are
        // the op's *output*, still an `ok` response.
        let dirty = s.handle_line(
            r#"{"op":"check","program":"sat(root, kw(0.60)) -> content; sat(root, true) -> content"}"#,
        );
        let v: Value = serde_json::from_str(&dirty).expect("valid JSON");
        assert_eq!(v["ok"]["clean"].as_bool(), Some(false));
        let verdicts = v["ok"]["verdicts"].as_array().expect("verdicts array");
        assert!(
            verdicts
                .iter()
                .any(|x| x.as_str() == Some("branch 0: guard is provably false")),
            "{dirty}"
        );

        // An unparsable program is a protocol error, not a finding —
        // and the op consumed no engine state: the store stays empty.
        let bad = s.handle_line(r#"{"op":"check","program":"sat(root,"}"#);
        assert!(bad.contains(r#""kind":"bad-request""#), "{bad}");
        let stats = s.handle_line(r#"{"op":"stats"}"#);
        let v: Value = serde_json::from_str(&stats).expect("valid JSON");
        assert_eq!(v["ok"]["pages"].as_u64(), Some(0));
    }

    #[test]
    fn stats_reports_counters_and_cache() {
        let s = server();
        let _ = s.handle_line(r#"{"op":"ping"}"#);
        let resp = s.handle_line(r#"{"op":"stats"}"#);
        let v: Value = serde_json::from_str(&resp).expect("valid JSON");
        assert_eq!(v["ok"]["requests"].as_u64(), Some(2));
        assert_eq!(v["ok"]["errors"].as_u64(), Some(0));
        assert!(v["ok"]["cache"]["feature_hits"].as_u64().is_some());
    }
}
