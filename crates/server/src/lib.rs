//! # webqa-server
//!
//! The resident serving layer: a daemon owning one long-lived
//! [`webqa::Engine`] — and therefore its cross-request caches (the
//! feature store and the completed-run LRU, `webqa::CacheStats`) — and
//! speaking a line-delimited JSON protocol over TCP and/or Unix domain
//! sockets. Every transport primitive is hand-rolled on `std::net` /
//! `std::os::unix::net` (this build environment has no crates.io access,
//! so no tokio/hyper/axum — and none is needed: the protocol is
//! newline-framed request/response over blocking sockets, one thread per
//! connection).
//!
//! The engine sits behind one `RwLock`: `run` requests share a read
//! lock (synthesis runs concurrently across connections), and page
//! interning takes a brief write lock. The page store is append-only,
//! so handles issued under the write lock stay valid forever after.
//!
//! **Semantics guarantee.** Serving is observationally invisible: the
//! response to a `run` request is byte-identical to what a cold,
//! single-threaded [`webqa::Engine`] computes for the same task and
//! config — regardless of cache hits, evictions, interleaving with
//! other clients, or how often the query repeats. `tests/serve_api.rs`
//! (workspace root) is the harness that pins this: N concurrent clients
//! over shuffled, duplicated task streams, every response compared
//! byte-for-byte against a never-cached reference engine.
//!
//! # Wire protocol
//!
//! ## Framing
//!
//! * One request per line: a UTF-8 JSON **object** terminated by `\n`
//!   (a trailing `\r` is tolerated and stripped). Blank lines are
//!   ignored.
//! * One response per line, in request order per connection.
//! * Frames larger than the server's `max_frame_bytes` (default 1 MiB)
//!   get an `oversized` error response and the connection is then
//!   closed — framing cannot resync past an unread tail.
//! * A line that is not valid JSON (or not an object, or not UTF-8)
//!   gets a `bad-frame` error; the connection stays open.
//! * EOF before a newline discards the partial frame and closes the
//!   connection quietly — a mid-request disconnect is never executed as
//!   a request and never poisons the shared engine.
//!
//! ## Envelope
//!
//! Requests carry an operation and an optional correlation id (any JSON
//! value, echoed verbatim; `null` when absent or unparsable):
//!
//! ```text
//! → {"id": 1, "op": "<ping|intern|run|stats>", ...op fields...}
//! ← {"id": 1, "ok": {...}}
//! ← {"id": 1, "err": {"kind": "<kind>", "message": "..."}}
//! ```
//!
//! Error kinds: `bad-frame`, `oversized`, `bad-request`, `unknown-op`,
//! `page`, `unknown-page`, `internal` (see [`protocol::ErrKind`]).
//! Errors are responses like any other — the engine and the connection
//! remain fully usable afterwards (except `oversized`, which closes).
//!
//! ## Operations
//!
//! ### `ping`
//!
//! ```text
//! → {"op":"ping"}
//! ← {"id":null,"ok":{"pong":true}}
//! ```
//!
//! ### `intern` — parse and store a page, returning its handle
//!
//! ```text
//! → {"op":"intern","html":"<h1>A</h1>..."}
//! ← {"id":null,"ok":{"page":0,"nodes":7}}
//! ```
//!
//! Interning is content-addressed (the store deduplicates): the same
//! HTML always yields the same handle, however many clients send it.
//! Damaged HTML is rejected with `kind:"page"`.
//!
//! ### `run` — synthesize and answer one task
//!
//! ```text
//! → {"op":"run",
//!    "question": "Who are the PhD students?",
//!    "keywords": ["Students"],
//!    "labeled":  [{"page": 0, "gold": ["Jane Doe"]},
//!                 {"html": "<h1>B</h1>...", "gold": ["Mary"]}],
//!    "targets":  [1, {"html": "<h1>C</h1>..."}]}
//! ← {"id":null,"ok":{
//!      "program": "sat(...) -> ...",        // null when nothing found
//!      "train_f1": 1.0,
//!      "counts": {"matched":3,"predicted":3,"gold":3},
//!      "total_optimal": 12,
//!      "answers": [["Wei Chen"], ["..."]]}}  // aligned with targets
//! ```
//!
//! Pages are referenced by handle (from `intern`, or a previous inline
//! use) or supplied inline as `{"html": ...}`; inline pages are interned
//! first (content-addressed, so resending the same page is free) and the
//! request then runs against the store. Unknown handles yield
//! `kind:"unknown-page"`.
//!
//! ### `stats` — serving and cache counters
//!
//! ```text
//! → {"op":"stats"}
//! ← {"id":null,"ok":{
//!      "requests": 42, "errors": 1, "pages": 7, "uptime_ms": 12345,
//!      "cache": {"feature_hits":30,"feature_misses":4,"feature_evictions":0,
//!                "result_hits":11,"result_misses":9,"result_evictions":0}}}
//! ```
//!
//! # Example
//!
//! ```
//! use webqa_server::{Client, ServeOptions, Server};
//!
//! let listening = Server::new(ServeOptions::default())
//!     .listen(Some("127.0.0.1:0"), None)?;
//! let addr = listening.tcp_addr().expect("tcp endpoint");
//!
//! let mut client = Client::connect_tcp(addr)?;
//! let pong = client.request_line(r#"{"id":1,"op":"ping"}"#)?;
//! assert_eq!(pong, r#"{"id":1,"ok":{"pong":true}}"#);
//!
//! listening.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

mod net;
pub mod protocol;

pub use net::{Client, Listening};
pub use protocol::{render_run_result, ErrKind};

use std::io;
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use serde_json::{Map, Value};
use webqa::{Engine, Error as EngineError, PageId, Task};

use protocol::{bad_request, envelope, page_ref, str_field, string_list, PageRef, ProtoError};

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The resident engine's pipeline configuration (synthesis knobs,
    /// selection strategy, cache capacities).
    pub engine: webqa::Config,
    /// Maximum request-frame size in bytes (default 1 MiB). Larger
    /// frames are refused with an `oversized` error.
    pub max_frame_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            engine: webqa::Config::default(),
            max_frame_bytes: 1 << 20,
        }
    }
}

/// State shared by every connection of one daemon.
pub(crate) struct Shared {
    pub(crate) engine: RwLock<Engine>,
    pub(crate) max_frame_bytes: usize,
    pub(crate) started: Instant,
    /// Frames received (counted at read time).
    pub(crate) requests: AtomicU64,
    /// Responses fully written (counted after the write completes).
    pub(crate) responses: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) shutdown: AtomicBool,
    /// Live-connection close handles, so shutdown can unblock idle
    /// readers instead of leaking their threads.
    pub(crate) conns: std::sync::Mutex<std::collections::HashMap<u64, net::CloseFn>>,
    pub(crate) next_conn: AtomicU64,
}

/// The resident WebQA server. Construct with [`Server::new`], then
/// either bind endpoints with [`Server::listen`] or drive the protocol
/// in-process with [`Server::handle_line`] (what the tests of pure
/// protocol behavior do).
pub struct Server {
    pub(crate) shared: Arc<Shared>,
}

impl Server {
    /// A server owning a fresh engine built from `opts`.
    pub fn new(opts: ServeOptions) -> Server {
        Server {
            shared: Arc::new(Shared {
                engine: RwLock::new(Engine::new(opts.engine)),
                max_frame_bytes: opts.max_frame_bytes,
                started: Instant::now(),
                requests: AtomicU64::new(0),
                responses: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                conns: std::sync::Mutex::new(std::collections::HashMap::new()),
                next_conn: AtomicU64::new(0),
            }),
        }
    }

    /// Binds the requested endpoints (at least one) and spawns their
    /// accept threads. TCP addresses are standard `host:port` strings
    /// (`port 0` = OS-assigned, readable back from
    /// [`Listening::tcp_addr`]).
    ///
    /// # Errors
    ///
    /// Bind failures, or [`io::ErrorKind::InvalidInput`] when no
    /// endpoint was requested.
    pub fn listen(self, tcp: Option<&str>, unix: Option<&Path>) -> io::Result<Listening> {
        if tcp.is_none() && unix.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no endpoint requested: pass a TCP address and/or a Unix socket path",
            ));
        }
        let mut accept_threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = tcp {
            let listener = TcpListener::bind(addr)?;
            tcp_addr = Some(listener.local_addr()?);
            accept_threads.push(net::accept_tcp(Arc::clone(&self.shared), listener));
        }
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = unix {
            // A stale socket file from a crashed predecessor would make
            // bind fail; remove it (connecting to a live one would fail
            // the bind anyway, which is the behavior we want).
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            unix_path = Some(path.to_path_buf());
            accept_threads.push(net::accept_unix(Arc::clone(&self.shared), listener));
        }
        #[cfg(not(unix))]
        if unix.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        Ok(Listening {
            shared: self.shared,
            tcp_addr,
            unix_path,
            accept_threads,
        })
    }

    /// Handles one complete frame and renders the one-line response —
    /// the entire protocol, transport-free. Connection loops call this;
    /// so can tests.
    pub fn handle_line(&self, line: &str) -> String {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        let (id, outcome) = match serde_json::from_str::<Value>(line) {
            Err(_) => (
                Value::Null,
                Err(ProtoError::new(
                    ErrKind::BadFrame,
                    "frame is not valid JSON",
                )),
            ),
            Ok(v) if v.as_object().is_none() => (
                Value::Null,
                Err(ProtoError::new(
                    ErrKind::BadFrame,
                    "frame must be a JSON object",
                )),
            ),
            Ok(v) => {
                let id = v["id"].clone();
                (id, self.dispatch(&v))
            }
        };
        if outcome.is_err() {
            self.shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        envelope(id, outcome)
    }

    /// The response to a frame that blew the size cap (counted like any
    /// other request; the caller closes the connection afterwards).
    pub(crate) fn oversized_response(&self) -> String {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.errors.fetch_add(1, Ordering::Relaxed);
        envelope(
            Value::Null,
            Err(ProtoError::new(
                ErrKind::Oversized,
                format!(
                    "frame exceeds max_frame_bytes ({}); closing connection",
                    self.shared.max_frame_bytes
                ),
            )),
        )
    }

    /// The response to a complete but non-UTF-8 frame.
    pub(crate) fn bad_utf8_response(&self) -> String {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.errors.fetch_add(1, Ordering::Relaxed);
        envelope(
            Value::Null,
            Err(ProtoError::new(ErrKind::BadFrame, "frame is not UTF-8")),
        )
    }

    fn dispatch(&self, request: &Value) -> Result<Value, ProtoError> {
        match request["op"].as_str() {
            Some("ping") => {
                let mut map = Map::new();
                map.insert("pong".to_string(), Value::Bool(true));
                Ok(Value::Object(map))
            }
            Some("intern") => self.op_intern(request),
            Some("run") => self.op_run(request),
            Some("stats") => self.op_stats(),
            Some(other) => Err(ProtoError::new(
                ErrKind::UnknownOp,
                format!("unknown op {other:?} (expected ping|intern|run|stats)"),
            )),
            None => bad_request("field \"op\" must be a string"),
        }
    }

    /// Interns inline HTML (brief write lock), returning its handle and
    /// the parsed tree's node count.
    fn intern_html(&self, html: &str) -> Result<(u64, usize), ProtoError> {
        let mut engine = self.shared.engine.write().expect("engine lock");
        let id = engine
            .store_mut()
            .insert_html(html)
            .map_err(|e| ProtoError::new(ErrKind::Page, e.to_string()))?;
        let nodes = engine
            .store()
            .get(id)
            .expect("just-interned id resolves")
            .len();
        Ok((id.index() as u64, nodes))
    }

    fn op_intern(&self, request: &Value) -> Result<Value, ProtoError> {
        let html = str_field(request, "html")?;
        let (handle, nodes) = self.intern_html(html)?;
        let mut map = Map::new();
        map.insert("page".to_string(), serde_json::json!(handle));
        map.insert("nodes".to_string(), serde_json::json!(nodes));
        Ok(Value::Object(map))
    }

    /// Resolves one page reference to a store handle, interning inline
    /// HTML on the fly.
    fn resolve(&self, r: PageRef) -> Result<u64, ProtoError> {
        match r {
            PageRef::Handle(n) => Ok(n),
            PageRef::Html(html) => self.intern_html(&html).map(|(handle, _)| handle),
        }
    }

    fn op_run(&self, request: &Value) -> Result<Value, ProtoError> {
        let question = str_field(request, "question")?.to_string();
        let keywords = string_list(request, "keywords")?;

        // Parse both page lists fully before touching the engine, so a
        // malformed tail can never leave a half-interned request behind.
        let labeled_specs: Vec<(PageRef, Vec<String>)> = match &request["labeled"] {
            Value::Null => Vec::new(),
            Value::Array(items) => items
                .iter()
                .map(|item| {
                    let r = page_ref(item, "labeled[] entry")?;
                    let gold = string_list(item, "gold")?;
                    Ok((r, gold))
                })
                .collect::<Result<_, ProtoError>>()?,
            _ => return bad_request("field \"labeled\" must be an array"),
        };
        let target_specs: Vec<PageRef> = match &request["targets"] {
            Value::Null => Vec::new(),
            Value::Array(items) => items
                .iter()
                .map(|item| page_ref(item, "targets[] entry"))
                .collect::<Result<_, ProtoError>>()?,
            _ => return bad_request("field \"targets\" must be an array"),
        };

        let mut task = Task::new(question, keywords);
        for (r, gold) in labeled_specs {
            let handle = self.resolve(r)?;
            task.labeled.push((self.handle_to_id(handle)?, gold));
        }
        for r in target_specs {
            let handle = self.resolve(r)?;
            task.unlabeled.push(self.handle_to_id(handle)?);
        }

        // The long-running part shares a read lock: concurrent `run`s
        // proceed in parallel, `intern`s briefly serialize against them.
        let engine = self.shared.engine.read().expect("engine lock");
        let result = engine.run(&task).map_err(|e| match e {
            EngineError::UnknownPage(id) => ProtoError::new(
                ErrKind::UnknownPage,
                format!("page handle {} is unknown to this server", id.index()),
            ),
            other => ProtoError::new(ErrKind::Internal, other.to_string()),
        })?;
        Ok(render_run_result(&result))
    }

    /// Converts a wire handle to a digest-checked [`PageId`].
    fn handle_to_id(&self, handle: u64) -> Result<PageId, ProtoError> {
        let engine = self.shared.engine.read().expect("engine lock");
        engine.store().id_at(handle as usize).ok_or_else(|| {
            ProtoError::new(
                ErrKind::UnknownPage,
                format!("page handle {handle} is unknown to this server"),
            )
        })
    }

    fn op_stats(&self) -> Result<Value, ProtoError> {
        let engine = self.shared.engine.read().expect("engine lock");
        let cache = serde_json::to_value(&engine.cache_stats())
            .map_err(|e| ProtoError::new(ErrKind::Internal, e.to_string()))?;
        let mut map = Map::new();
        map.insert(
            "requests".to_string(),
            serde_json::json!(self.shared.requests.load(Ordering::Relaxed)),
        );
        map.insert(
            "errors".to_string(),
            serde_json::json!(self.shared.errors.load(Ordering::Relaxed)),
        );
        map.insert("pages".to_string(), serde_json::json!(engine.store().len()));
        map.insert(
            "uptime_ms".to_string(),
            serde_json::json!(self.shared.started.elapsed().as_millis() as u64),
        );
        map.insert("cache".to_string(), cache);
        Ok(Value::Object(map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(ServeOptions {
            engine: webqa::Config {
                synth: webqa::SynthConfig::fast(),
                ..webqa::Config::default()
            },
            max_frame_bytes: 1 << 16,
        })
    }

    #[test]
    fn ping_echoes_the_id() {
        let s = server();
        assert_eq!(
            s.handle_line(r#"{"id":42,"op":"ping"}"#),
            r#"{"id":42,"ok":{"pong":true}}"#
        );
        // Ids are arbitrary JSON, echoed verbatim.
        assert_eq!(
            s.handle_line(r#"{"id":"abc","op":"ping"}"#),
            r#"{"id":"abc","ok":{"pong":true}}"#
        );
    }

    #[test]
    fn malformed_and_unknown_frames_are_typed_errors() {
        let s = server();
        let r = s.handle_line("this is not json");
        assert!(r.contains(r#""kind":"bad-frame""#), "{r}");
        let r = s.handle_line("[1,2,3]");
        assert!(r.contains(r#""kind":"bad-frame""#), "{r}");
        let r = s.handle_line(r#"{"op":"frobnicate"}"#);
        assert!(r.contains(r#""kind":"unknown-op""#), "{r}");
        let r = s.handle_line(r#"{"op":"run"}"#);
        assert!(r.contains(r#""kind":"bad-request""#), "{r}");
        // The server still works after every error.
        assert!(s.handle_line(r#"{"op":"ping"}"#).contains("pong"));
    }

    #[test]
    fn intern_is_content_addressed() {
        let s = server();
        let a = s.handle_line(r#"{"op":"intern","html":"<h1>A</h1><p>x</p>"}"#);
        let b = s.handle_line(r#"{"op":"intern","html":"<h1>A</h1><p>x</p>"}"#);
        assert_eq!(a, b);
        assert!(a.contains(r#""page":0"#), "{a}");
        let damaged = s.handle_line(r#"{"op":"intern","html":"<p>50&bogus;mg</p>"}"#);
        assert!(damaged.contains(r#""kind":"page""#), "{damaged}");
    }

    #[test]
    fn run_with_inline_pages_answers() {
        let s = server();
        let req = r#"{"id":1,"op":"run","question":"Who are the PhD students?","keywords":["Students"],"labeled":[{"html":"<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>","gold":["Jane Doe"]}],"targets":[{"html":"<h1>B</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>"}]}"#;
        let resp = s.handle_line(req);
        assert!(resp.contains(r#""answers":[["Wei Chen"]]"#), "{resp}");
        assert!(resp.contains(r#""train_f1":1.0"#), "{resp}");

        // Unknown handles are typed errors, and the engine survives.
        let bad = s.handle_line(
            r#"{"op":"run","question":"Q","keywords":[],"labeled":[{"page":999,"gold":["x"]}],"targets":[]}"#,
        );
        assert!(bad.contains(r#""kind":"unknown-page""#), "{bad}");
        let resp2 = s.handle_line(req);
        assert_eq!(
            resp2, resp,
            "repeat after an error must be byte-identical (and a cache hit)"
        );
    }

    #[test]
    fn stats_reports_counters_and_cache() {
        let s = server();
        let _ = s.handle_line(r#"{"op":"ping"}"#);
        let resp = s.handle_line(r#"{"op":"stats"}"#);
        let v: Value = serde_json::from_str(&resp).expect("valid JSON");
        assert_eq!(v["ok"]["requests"].as_u64(), Some(2));
        assert_eq!(v["ok"]["errors"].as_u64(), Some(0));
        assert!(v["ok"]["cache"]["feature_hits"].as_u64().is_some());
    }
}
