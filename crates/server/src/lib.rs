//! # webqa-server
//!
//! The resident serving layer: a daemon owning one long-lived
//! [`webqa::Engine`] — and therefore its cross-request caches (the
//! feature store and the completed-run LRU, `webqa::CacheStats`) — and
//! speaking a line-delimited JSON protocol over TCP and/or Unix domain
//! sockets. Every transport primitive is hand-rolled on `std::net` /
//! `std::os::unix::net` (this build environment has no crates.io access,
//! so no tokio/hyper/axum — and none is needed: the protocol is
//! newline-framed request/response over blocking sockets).
//!
//! # Execution model: bounded worker pool
//!
//! Connection threads are cheap: they read frames, parse them, and
//! answer control ops (`ping`, `intern`, `stats`) and protocol errors
//! inline. Heavy ops (`run`, `run_batch`) instead pass through a
//! **bounded admission queue** ([`ServeOptions::backlog`]) into a
//! **fixed worker pool** ([`ServeOptions::workers`]):
//!
//! * Engine concurrency is exactly `workers`, however many sockets are
//!   open — a connection flood cannot fork a thousand syntheses.
//! * When the backlog is full the request is **shed immediately** with
//!   a typed `overloaded` error; load shedding never queues behind the
//!   work it refuses. The connection stays open.
//! * Each heavy op carries a latency budget — the smaller of its own
//!   `deadline_ms` field and the server's default deadline, measured
//!   from frame arrival so *queue wait counts*. The budget is enforced
//!   cooperatively inside the synthesis enumerator (a
//!   [`webqa::CancelToken`] checked every guard step): an expired run
//!   aborts promptly with a typed `deadline-exceeded` error and caches
//!   nothing — engine state is never poisoned by a cancelled run.
//!
//! The engine sits behind one `RwLock`: heavy ops share a read lock
//! (synthesis runs concurrently across workers), and page interning
//! takes a brief write lock. The page store is append-only, so handles
//! issued under the write lock stay valid forever after.
//!
//! **Semantics guarantee.** Serving is observationally invisible: the
//! response to a `run` request is byte-identical to what a cold,
//! single-threaded [`webqa::Engine`] computes for the same task and
//! config — regardless of cache hits, evictions, interleaving with
//! other clients, or how often the query repeats. `tests/serve_api.rs`
//! (workspace root) is the harness that pins this: N concurrent clients
//! over shuffled, duplicated task streams, every response compared
//! byte-for-byte against a never-cached reference engine.
//!
//! # Wire protocol
//!
//! ## Framing
//!
//! * One request per line: a UTF-8 JSON **object** terminated by `\n`
//!   (a trailing `\r` is tolerated and stripped). Blank lines are
//!   ignored.
//! * One response per line, **in completion order** — *not* request
//!   order. Clients may pipeline: send many requests without waiting,
//!   and correlate responses by the echoed `id`. Control ops and
//!   errors answer immediately; heavy ops answer whenever a worker
//!   finishes them, so a fast request overtakes a slow one on the same
//!   connection. Clients that never pipeline still see request order.
//! * Frames larger than the server's `max_frame_bytes` (default 1 MiB)
//!   get an `oversized` error response and the connection is then
//!   closed — framing cannot resync past an unread tail.
//! * A line that is not valid JSON (or not an object, or not UTF-8)
//!   gets a `bad-frame` error; the connection stays open.
//! * EOF before a newline discards the partial frame and closes the
//!   connection quietly — a mid-request disconnect is never executed as
//!   a request and never poisons the shared engine.
//!
//! ## Envelope
//!
//! Requests carry an operation and an optional correlation id (any JSON
//! value, echoed verbatim; `null` when absent or unparsable):
//!
//! ```text
//! → {"id": 1, "op": "<ping|intern|run|run_batch|stats>", ...op fields...}
//! ← {"id": 1, "ok": {...}}
//! ← {"id": 1, "err": {"kind": "<kind>", "message": "..."}}
//! ```
//!
//! Error kinds: `bad-frame`, `oversized`, `bad-request`, `unknown-op`,
//! `page`, `unknown-page`, `overloaded`, `deadline-exceeded`,
//! `internal` (see [`protocol::ErrKind`]). Errors are responses like
//! any other — the engine and the connection remain fully usable
//! afterwards (except `oversized`, which closes).
//!
//! ## Operations
//!
//! ### `ping`
//!
//! ```text
//! → {"op":"ping"}
//! ← {"id":null,"ok":{"pong":true}}
//! ```
//!
//! ### `intern` — parse and store a page, returning its handle
//!
//! ```text
//! → {"op":"intern","html":"<h1>A</h1>..."}
//! ← {"id":null,"ok":{"page":0,"nodes":7}}
//! ```
//!
//! Interning is content-addressed (the store deduplicates): the same
//! HTML always yields the same handle, however many clients send it.
//! Damaged HTML is rejected with `kind:"page"`.
//!
//! ### `run` — synthesize and answer one task
//!
//! ```text
//! → {"op":"run",
//!    "question": "Who are the PhD students?",
//!    "keywords": ["Students"],
//!    "labeled":  [{"page": 0, "gold": ["Jane Doe"]},
//!                 {"html": "<h1>B</h1>...", "gold": ["Mary"]}],
//!    "targets":  [1, {"html": "<h1>C</h1>..."}]}
//! ← {"id":null,"ok":{
//!      "program": "sat(...) -> ...",        // null when nothing found
//!      "train_f1": 1.0,
//!      "counts": {"matched":3,"predicted":3,"gold":3},
//!      "total_optimal": 12,
//!      "answers": [["Wei Chen"], ["..."]]}}  // aligned with targets
//! ```
//!
//! Pages are referenced by handle (from `intern`, or a previous inline
//! use) or supplied inline as `{"html": ...}`; inline pages are interned
//! first (content-addressed, so resending the same page is free) and the
//! request then runs against the store. Unknown handles yield
//! `kind:"unknown-page"`.
//!
//! An optional `"deadline_ms": N` field bounds the request's latency:
//! if the run has not finished `N` milliseconds after the frame
//! arrived (queue wait included), it aborts with `deadline-exceeded`.
//! When the server also has a default deadline, the smaller budget
//! wins.
//!
//! ### `run_batch` — synthesize and answer many tasks as one request
//!
//! ```text
//! → {"op":"run_batch",
//!    "tasks": [{...run fields...}, {...run fields...}],
//!    "deadline_ms": 5000}
//! ← {"id":null,"ok":{"results":[{...run body...}, {...run body...}]}}
//! ```
//!
//! Each `tasks[]` entry takes exactly the fields of a `run` request
//! (`question`, `keywords`, `labeled`, `targets`). The batch occupies
//! **one** worker slot and fans its tasks out over the engine's batch
//! runner internally (parallelism = machine budget ÷ workers), so one
//! huge batch cannot starve other connections of the whole pool.
//! `results` aligns with `tasks`, and every entry is byte-identical to
//! what a separate `run` would have produced. The request is
//! all-or-nothing: a malformed task fails the whole batch up front
//! (before anything executes), and one optional `deadline_ms` covers
//! the entire batch.
//!
//! ### `stats` — serving and cache counters
//!
//! ```text
//! → {"op":"stats"}
//! ← {"id":null,"ok":{
//!      "requests": 42, "errors": 1, "shed": 0, "deadline_exceeded": 0,
//!      "workers": 8, "backlog": 64, "queue_depth": 0,
//!      "pages": 7, "uptime_ms": 12345,
//!      "cache": {"feature_hits":30,"feature_misses":4,"feature_evictions":0,
//!                "result_hits":11,"result_misses":9,"result_evictions":0}}}
//! ```
//!
//! `shed` counts requests refused by the full admission queue,
//! `deadline_exceeded` counts runs aborted by an expired latency
//! budget; both are also included in `errors`.
//!
//! # Example
//!
//! ```
//! use webqa_server::{Client, ServeOptions, Server};
//!
//! let listening = Server::new(ServeOptions::default())
//!     .listen(Some("127.0.0.1:0"), None)?;
//! let addr = listening.tcp_addr().expect("tcp endpoint");
//!
//! let mut client = Client::connect_tcp(addr)?;
//! let pong = client.request_line(r#"{"id":1,"op":"ping"}"#)?;
//! assert_eq!(pong, r#"{"id":1,"ok":{"pong":true}}"#);
//!
//! listening.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

mod net;
mod pool;
pub mod protocol;

pub use net::{Client, Listening};
pub use protocol::{render_run_result, ErrKind};

use std::io;
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use serde_json::{Map, Value};
use webqa::{CancelToken, Engine, Error as EngineError, PageId, Task};

use pool::{Admission, ConnWriter};
use protocol::{bad_request, envelope, page_ref, str_field, string_list, PageRef, ProtoError};

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The resident engine's pipeline configuration (synthesis knobs,
    /// selection strategy, cache capacities).
    pub engine: webqa::Config,
    /// Maximum request-frame size in bytes (default 1 MiB). Larger
    /// frames are refused with an `oversized` error.
    pub max_frame_bytes: usize,
    /// Worker threads executing heavy ops (`run` / `run_batch`). `0`
    /// (the default) means auto: the machine's available parallelism.
    /// This — not the connection count — bounds engine concurrency.
    pub workers: usize,
    /// Admission-queue capacity (default 64): heavy ops waiting for a
    /// worker beyond this cap are shed with an `overloaded` error.
    pub backlog: usize,
    /// Default per-request latency budget, measured from frame arrival
    /// (queue wait included). `None` (the default) = no deadline unless
    /// a request carries `deadline_ms`; when both are present the
    /// *smaller* budget wins.
    pub default_deadline: Option<Duration>,
    /// Hard cap on responses ever written (default `None` = unlimited).
    /// Enforced by write permits, so "serve exactly N" is exact under
    /// any concurrency; [`Listening::wait_for_responses`] blocks until
    /// the cap (or any count) is reached.
    pub max_responses: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            engine: webqa::Config::default(),
            max_frame_bytes: 1 << 20,
            workers: 0,
            backlog: 64,
            default_deadline: None,
            max_responses: None,
        }
    }
}

impl ServeOptions {
    /// The effective worker count (`workers`, with `0` resolved to the
    /// machine's available parallelism).
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        }
    }
}

/// State shared by every connection of one daemon.
pub(crate) struct Shared {
    pub(crate) engine: RwLock<Engine>,
    pub(crate) max_frame_bytes: usize,
    pub(crate) started: Instant,
    /// Frames received (counted at read time).
    pub(crate) requests: AtomicU64,
    pub(crate) errors: AtomicU64,
    /// Requests shed by the admission queue (`overloaded` responses;
    /// also counted in `errors`).
    pub(crate) shed: AtomicU64,
    /// Requests that returned `deadline-exceeded` (also in `errors`).
    pub(crate) deadline_hits: AtomicU64,
    pub(crate) shutdown: AtomicBool,
    /// The bounded admission queue feeding the worker pool.
    pub(crate) pool: Admission,
    /// Fixed worker count (for `stats` and the batch-jobs split).
    pub(crate) workers: usize,
    /// Per-task parallelism handed to `Engine::run_batch` by the
    /// `run_batch` op: the machine budget divided across workers.
    pub(crate) batch_jobs: usize,
    /// Server-side default latency budget (see
    /// [`ServeOptions::default_deadline`]).
    pub(crate) default_deadline: Option<Duration>,
    /// Write-permit cap: when set, at most this many responses are ever
    /// written, totalled across all connections.
    pub(crate) max_responses: Option<u64>,
    /// Permits claimed (compared against `max_responses` before every
    /// write; a failed write returns its permit).
    pub(crate) write_permits: AtomicU64,
    /// Responses fully written, guarded by a mutex so
    /// [`Listening::wait_for_responses`] can condvar-wait on it.
    pub(crate) completions: Mutex<u64>,
    pub(crate) completion_cv: Condvar,
    /// Cancel tokens of in-flight heavy ops, so shutdown can abort
    /// long-running syntheses instead of waiting them out.
    pub(crate) inflight: Mutex<std::collections::HashMap<u64, CancelToken>>,
    pub(crate) next_job: AtomicU64,
    /// Live-connection close handles, so shutdown can unblock idle
    /// readers instead of leaking their threads.
    pub(crate) conns: Mutex<std::collections::HashMap<u64, net::CloseFn>>,
    pub(crate) next_conn: AtomicU64,
}

impl Shared {
    /// Writes one response line through `conn` under the write-permit
    /// cap and counts the completion. Returns `false` when the response
    /// was suppressed (cap reached) or the connection is gone.
    pub(crate) fn write_response(&self, conn: &ConnWriter, line: &str) -> bool {
        if let Some(max) = self.max_responses {
            let n = self.write_permits.fetch_add(1, Ordering::SeqCst);
            if n >= max {
                return false;
            }
        }
        let ok = conn.write_line(line);
        if ok {
            let mut done = self.completions.lock().expect("completion counter");
            *done += 1;
            self.completion_cv.notify_all();
        } else if self.max_responses.is_some() {
            // The permit was claimed but no response reached a client;
            // return it so the cap still yields exactly N deliveries.
            self.write_permits.fetch_sub(1, Ordering::SeqCst);
        }
        ok
    }

    /// Registers an in-flight heavy op's token (shutdown cancels them).
    pub(crate) fn track_job(&self, token: &CancelToken) -> u64 {
        let job = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.inflight
            .lock()
            .expect("inflight registry")
            .insert(job, token.clone());
        job
    }

    pub(crate) fn untrack_job(&self, job: u64) {
        self.inflight
            .lock()
            .expect("inflight registry")
            .remove(&job);
    }
}

/// A classified request: either answered inline by the connection
/// thread (control ops, parse errors) or handed to the worker pool.
pub(crate) enum Action {
    /// The `ok` body, already computed.
    Immediate(Value),
    /// A parsed heavy op for the admission queue.
    Heavy(HeavyOp),
}

/// A fully parsed heavy operation: pages resolved, deadline fixed at
/// admission time (so queue wait counts against the budget).
pub(crate) struct HeavyOp {
    kind: HeavyKind,
    deadline: Option<Instant>,
}

enum HeavyKind {
    Run(Task),
    Batch(Vec<Task>),
}

impl HeavyOp {
    #[cfg(test)]
    pub(crate) fn noop_for_tests() -> Self {
        HeavyOp {
            kind: HeavyKind::Batch(Vec::new()),
            deadline: None,
        }
    }
}

/// The resident WebQA server. Construct with [`Server::new`], then
/// either bind endpoints with [`Server::listen`] or drive the protocol
/// in-process with [`Server::handle_line`] (what the tests of pure
/// protocol behavior do).
pub struct Server {
    pub(crate) shared: Arc<Shared>,
}

impl Server {
    /// A server owning a fresh engine built from `opts`.
    pub fn new(opts: ServeOptions) -> Server {
        let workers = opts.effective_workers();
        let machine = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        Server {
            shared: Arc::new(Shared {
                engine: RwLock::new(Engine::new(opts.engine)),
                max_frame_bytes: opts.max_frame_bytes,
                started: Instant::now(),
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                deadline_hits: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                pool: Admission::new(opts.backlog),
                workers,
                // Split the machine budget across workers so a full pool
                // of run_batch ops cannot oversubscribe the cores.
                batch_jobs: (machine / workers).max(1),
                default_deadline: opts.default_deadline,
                max_responses: opts.max_responses,
                write_permits: AtomicU64::new(0),
                completions: Mutex::new(0),
                completion_cv: Condvar::new(),
                inflight: Mutex::new(std::collections::HashMap::new()),
                next_job: AtomicU64::new(0),
                conns: Mutex::new(std::collections::HashMap::new()),
                next_conn: AtomicU64::new(0),
            }),
        }
    }

    /// Binds the requested endpoints (at least one) and spawns their
    /// accept threads. TCP addresses are standard `host:port` strings
    /// (`port 0` = OS-assigned, readable back from
    /// [`Listening::tcp_addr`]).
    ///
    /// # Errors
    ///
    /// Bind failures, or [`io::ErrorKind::InvalidInput`] when no
    /// endpoint was requested.
    pub fn listen(self, tcp: Option<&str>, unix: Option<&Path>) -> io::Result<Listening> {
        if tcp.is_none() && unix.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no endpoint requested: pass a TCP address and/or a Unix socket path",
            ));
        }
        let mut accept_threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = tcp {
            let listener = TcpListener::bind(addr)?;
            tcp_addr = Some(listener.local_addr()?);
            accept_threads.push(net::accept_tcp(Arc::clone(&self.shared), listener));
        }
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = unix {
            // A stale socket file from a crashed predecessor would make
            // bind fail; remove it (connecting to a live one would fail
            // the bind anyway, which is the behavior we want).
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            unix_path = Some(path.to_path_buf());
            accept_threads.push(net::accept_unix(Arc::clone(&self.shared), listener));
        }
        #[cfg(not(unix))]
        if unix.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        let worker_threads = pool::spawn_workers(&self.shared, self.shared.workers);
        Ok(Listening {
            shared: self.shared,
            tcp_addr,
            unix_path,
            accept_threads,
            worker_threads,
        })
    }

    /// Handles one complete frame and renders the one-line response —
    /// the entire protocol, transport-free and synchronous (heavy ops
    /// execute inline on the calling thread). Tests of pure protocol
    /// behavior drive this directly; connection loops instead use the
    /// crate-private `classify_line` so heavy ops go through the
    /// worker pool.
    pub fn handle_line(&self, line: &str) -> String {
        let (id, classified) = self.classify_line(line);
        let outcome = match classified {
            Ok(Action::Immediate(body)) => Ok(body),
            Ok(Action::Heavy(op)) => self.execute_heavy(op),
            Err(e) => Err(e),
        };
        self.render_outcome(id, outcome)
    }

    /// Parses one frame into its echo id and either an immediate result
    /// or a pool-ready heavy op. Counts the request; the deadline (if
    /// any) is anchored *here*, so time spent queued counts against the
    /// request's latency budget.
    pub(crate) fn classify_line(&self, line: &str) -> (Value, Result<Action, ProtoError>) {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        match serde_json::from_str::<Value>(line) {
            Err(_) => (
                Value::Null,
                Err(ProtoError::new(
                    ErrKind::BadFrame,
                    "frame is not valid JSON",
                )),
            ),
            Ok(v) if v.as_object().is_none() => (
                Value::Null,
                Err(ProtoError::new(
                    ErrKind::BadFrame,
                    "frame must be a JSON object",
                )),
            ),
            Ok(v) => {
                let id = v["id"].clone();
                (id, self.dispatch(&v))
            }
        }
    }

    /// Renders the response envelope and maintains the error counter —
    /// the single exit point for every response, wherever it executed.
    pub(crate) fn render_outcome(&self, id: Value, outcome: Result<Value, ProtoError>) -> String {
        if outcome.is_err() {
            self.shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        envelope(id, outcome)
    }

    /// The response to a heavy op the admission queue refused.
    pub(crate) fn overloaded_response(&self, id: Value) -> String {
        self.shared.shed.fetch_add(1, Ordering::Relaxed);
        self.render_outcome(
            id,
            Err(ProtoError::new(
                ErrKind::Overloaded,
                format!(
                    "admission queue full (backlog {}); request shed",
                    self.shared.pool.capacity()
                ),
            )),
        )
    }

    /// Executes a parsed heavy op under its deadline token. Runs on a
    /// worker thread in the daemon, inline in [`Server::handle_line`].
    pub(crate) fn execute_heavy(&self, op: HeavyOp) -> Result<Value, ProtoError> {
        let token = match op.deadline {
            Some(at) => CancelToken::with_deadline(at),
            None => CancelToken::never(),
        };
        let job = self.shared.track_job(&token);
        let outcome = self.run_heavy(op.kind, &token);
        self.shared.untrack_job(job);
        outcome
    }

    fn run_heavy(&self, kind: HeavyKind, token: &CancelToken) -> Result<Value, ProtoError> {
        // The long-running part shares a read lock: concurrent workers
        // proceed in parallel, `intern`s briefly serialize against them.
        let engine = self.shared.engine.read().expect("engine lock");
        match kind {
            HeavyKind::Run(task) => {
                let result = engine
                    .run_with_cancel(&task, token)
                    .map_err(|e| self.engine_err(e))?;
                Ok(render_run_result(&result))
            }
            HeavyKind::Batch(tasks) => {
                let results = engine
                    .run_batch_with_cancel(&tasks, self.shared.batch_jobs, token)
                    .map_err(|e| self.engine_err(e))?;
                let rendered: Vec<Value> = results.iter().map(render_run_result).collect();
                let mut map = Map::new();
                map.insert("results".to_string(), Value::Array(rendered));
                Ok(Value::Object(map))
            }
        }
    }

    /// Maps engine failures onto the wire vocabulary (and counts
    /// deadline trips).
    fn engine_err(&self, e: EngineError) -> ProtoError {
        match e {
            EngineError::UnknownPage(id) => ProtoError::new(
                ErrKind::UnknownPage,
                format!("page handle {} is unknown to this server", id.index()),
            ),
            EngineError::Cancelled => {
                self.shared.deadline_hits.fetch_add(1, Ordering::Relaxed);
                ProtoError::new(
                    ErrKind::DeadlineExceeded,
                    "latency budget expired before the run finished",
                )
            }
            other => ProtoError::new(ErrKind::Internal, other.to_string()),
        }
    }

    /// The response to a frame that blew the size cap (counted like any
    /// other request; the caller closes the connection afterwards).
    pub(crate) fn oversized_response(&self) -> String {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.errors.fetch_add(1, Ordering::Relaxed);
        envelope(
            Value::Null,
            Err(ProtoError::new(
                ErrKind::Oversized,
                format!(
                    "frame exceeds max_frame_bytes ({}); closing connection",
                    self.shared.max_frame_bytes
                ),
            )),
        )
    }

    /// The response to a complete but non-UTF-8 frame.
    pub(crate) fn bad_utf8_response(&self) -> String {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.errors.fetch_add(1, Ordering::Relaxed);
        envelope(
            Value::Null,
            Err(ProtoError::new(ErrKind::BadFrame, "frame is not UTF-8")),
        )
    }

    fn dispatch(&self, request: &Value) -> Result<Action, ProtoError> {
        match request["op"].as_str() {
            Some("ping") => {
                let mut map = Map::new();
                map.insert("pong".to_string(), Value::Bool(true));
                Ok(Action::Immediate(Value::Object(map)))
            }
            Some("intern") => self.op_intern(request).map(Action::Immediate),
            Some("run") => {
                let deadline = self.deadline_of(request)?;
                let task = self.parse_run_task(request)?;
                Ok(Action::Heavy(HeavyOp {
                    kind: HeavyKind::Run(task),
                    deadline,
                }))
            }
            Some("run_batch") => {
                let deadline = self.deadline_of(request)?;
                let tasks = match &request["tasks"] {
                    Value::Array(items) => items
                        .iter()
                        .map(|item| self.parse_run_task(item))
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return bad_request("field \"tasks\" must be an array"),
                };
                Ok(Action::Heavy(HeavyOp {
                    kind: HeavyKind::Batch(tasks),
                    deadline,
                }))
            }
            Some("stats") => self.op_stats().map(Action::Immediate),
            Some(other) => Err(ProtoError::new(
                ErrKind::UnknownOp,
                format!("unknown op {other:?} (expected ping|intern|run|run_batch|stats)"),
            )),
            None => bad_request("field \"op\" must be a string"),
        }
    }

    /// The request's effective latency budget: the smaller of its
    /// `deadline_ms` and the server default, anchored now (= at frame
    /// arrival).
    fn deadline_of(&self, request: &Value) -> Result<Option<Instant>, ProtoError> {
        let requested = match &request["deadline_ms"] {
            Value::Null => None,
            v => match v.as_u64() {
                Some(ms) => Some(Duration::from_millis(ms)),
                None => {
                    return bad_request(
                        "field \"deadline_ms\" must be a non-negative integer (milliseconds)",
                    )
                }
            },
        };
        let budget = match (requested, self.shared.default_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Ok(budget.map(|d| Instant::now() + d))
    }

    /// Interns inline HTML (brief write lock), returning its handle and
    /// the parsed tree's node count.
    fn intern_html(&self, html: &str) -> Result<(u64, usize), ProtoError> {
        let mut engine = self.shared.engine.write().expect("engine lock");
        let id = engine
            .store_mut()
            .insert_html(html)
            .map_err(|e| ProtoError::new(ErrKind::Page, e.to_string()))?;
        let nodes = engine
            .store()
            .get(id)
            .expect("just-interned id resolves")
            .len();
        Ok((id.index() as u64, nodes))
    }

    fn op_intern(&self, request: &Value) -> Result<Value, ProtoError> {
        let html = str_field(request, "html")?;
        let (handle, nodes) = self.intern_html(html)?;
        let mut map = Map::new();
        map.insert("page".to_string(), serde_json::json!(handle));
        map.insert("nodes".to_string(), serde_json::json!(nodes));
        Ok(Value::Object(map))
    }

    /// Resolves one page reference to a store handle, interning inline
    /// HTML on the fly.
    fn resolve(&self, r: PageRef) -> Result<u64, ProtoError> {
        match r {
            PageRef::Handle(n) => Ok(n),
            PageRef::Html(html) => self.intern_html(&html).map(|(handle, _)| handle),
        }
    }

    /// Parses and fully resolves one run spec (the body of a `run`
    /// request, or one `tasks[]` entry of `run_batch`) into an engine
    /// [`Task`]. Inline pages are interned here, on the connection
    /// thread — workers only ever synthesize.
    fn parse_run_task(&self, request: &Value) -> Result<Task, ProtoError> {
        let question = str_field(request, "question")?.to_string();
        let keywords = string_list(request, "keywords")?;

        // Parse both page lists fully before touching the engine, so a
        // malformed tail can never leave a half-interned request behind.
        let labeled_specs: Vec<(PageRef, Vec<String>)> = match &request["labeled"] {
            Value::Null => Vec::new(),
            Value::Array(items) => items
                .iter()
                .map(|item| {
                    let r = page_ref(item, "labeled[] entry")?;
                    let gold = string_list(item, "gold")?;
                    Ok((r, gold))
                })
                .collect::<Result<_, ProtoError>>()?,
            _ => return bad_request("field \"labeled\" must be an array"),
        };
        let target_specs: Vec<PageRef> = match &request["targets"] {
            Value::Null => Vec::new(),
            Value::Array(items) => items
                .iter()
                .map(|item| page_ref(item, "targets[] entry"))
                .collect::<Result<_, ProtoError>>()?,
            _ => return bad_request("field \"targets\" must be an array"),
        };

        let mut task = Task::new(question, keywords);
        for (r, gold) in labeled_specs {
            let handle = self.resolve(r)?;
            task.labeled.push((self.handle_to_id(handle)?, gold));
        }
        for r in target_specs {
            let handle = self.resolve(r)?;
            task.unlabeled.push(self.handle_to_id(handle)?);
        }
        Ok(task)
    }

    /// Converts a wire handle to a digest-checked [`PageId`].
    fn handle_to_id(&self, handle: u64) -> Result<PageId, ProtoError> {
        let engine = self.shared.engine.read().expect("engine lock");
        engine.store().id_at(handle as usize).ok_or_else(|| {
            ProtoError::new(
                ErrKind::UnknownPage,
                format!("page handle {handle} is unknown to this server"),
            )
        })
    }

    fn op_stats(&self) -> Result<Value, ProtoError> {
        let engine = self.shared.engine.read().expect("engine lock");
        let cache = serde_json::to_value(&engine.cache_stats())
            .map_err(|e| ProtoError::new(ErrKind::Internal, e.to_string()))?;
        let mut map = Map::new();
        map.insert(
            "requests".to_string(),
            serde_json::json!(self.shared.requests.load(Ordering::Relaxed)),
        );
        map.insert(
            "errors".to_string(),
            serde_json::json!(self.shared.errors.load(Ordering::Relaxed)),
        );
        map.insert(
            "shed".to_string(),
            serde_json::json!(self.shared.shed.load(Ordering::Relaxed)),
        );
        map.insert(
            "deadline_exceeded".to_string(),
            serde_json::json!(self.shared.deadline_hits.load(Ordering::Relaxed)),
        );
        map.insert(
            "workers".to_string(),
            serde_json::json!(self.shared.workers as u64),
        );
        map.insert(
            "backlog".to_string(),
            serde_json::json!(self.shared.pool.capacity() as u64),
        );
        map.insert(
            "queue_depth".to_string(),
            serde_json::json!(self.shared.pool.depth() as u64),
        );
        map.insert(
            "inflight".to_string(),
            serde_json::json!(self
                .shared
                .inflight
                .lock()
                .expect("inflight registry")
                .len() as u64),
        );
        map.insert("pages".to_string(), serde_json::json!(engine.store().len()));
        map.insert(
            "uptime_ms".to_string(),
            serde_json::json!(self.shared.started.elapsed().as_millis() as u64),
        );
        map.insert("cache".to_string(), cache);
        Ok(Value::Object(map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(ServeOptions {
            engine: webqa::Config {
                synth: webqa::SynthConfig::fast(),
                ..webqa::Config::default()
            },
            max_frame_bytes: 1 << 16,
            ..ServeOptions::default()
        })
    }

    #[test]
    fn ping_echoes_the_id() {
        let s = server();
        assert_eq!(
            s.handle_line(r#"{"id":42,"op":"ping"}"#),
            r#"{"id":42,"ok":{"pong":true}}"#
        );
        // Ids are arbitrary JSON, echoed verbatim.
        assert_eq!(
            s.handle_line(r#"{"id":"abc","op":"ping"}"#),
            r#"{"id":"abc","ok":{"pong":true}}"#
        );
    }

    #[test]
    fn malformed_and_unknown_frames_are_typed_errors() {
        let s = server();
        let r = s.handle_line("this is not json");
        assert!(r.contains(r#""kind":"bad-frame""#), "{r}");
        let r = s.handle_line("[1,2,3]");
        assert!(r.contains(r#""kind":"bad-frame""#), "{r}");
        let r = s.handle_line(r#"{"op":"frobnicate"}"#);
        assert!(r.contains(r#""kind":"unknown-op""#), "{r}");
        let r = s.handle_line(r#"{"op":"run"}"#);
        assert!(r.contains(r#""kind":"bad-request""#), "{r}");
        // The server still works after every error.
        assert!(s.handle_line(r#"{"op":"ping"}"#).contains("pong"));
    }

    #[test]
    fn intern_is_content_addressed() {
        let s = server();
        let a = s.handle_line(r#"{"op":"intern","html":"<h1>A</h1><p>x</p>"}"#);
        let b = s.handle_line(r#"{"op":"intern","html":"<h1>A</h1><p>x</p>"}"#);
        assert_eq!(a, b);
        assert!(a.contains(r#""page":0"#), "{a}");
        let damaged = s.handle_line(r#"{"op":"intern","html":"<p>50&bogus;mg</p>"}"#);
        assert!(damaged.contains(r#""kind":"page""#), "{damaged}");
    }

    #[test]
    fn run_with_inline_pages_answers() {
        let s = server();
        let req = r#"{"id":1,"op":"run","question":"Who are the PhD students?","keywords":["Students"],"labeled":[{"html":"<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>","gold":["Jane Doe"]}],"targets":[{"html":"<h1>B</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>"}]}"#;
        let resp = s.handle_line(req);
        assert!(resp.contains(r#""answers":[["Wei Chen"]]"#), "{resp}");
        assert!(resp.contains(r#""train_f1":1.0"#), "{resp}");

        // Unknown handles are typed errors, and the engine survives.
        let bad = s.handle_line(
            r#"{"op":"run","question":"Q","keywords":[],"labeled":[{"page":999,"gold":["x"]}],"targets":[]}"#,
        );
        assert!(bad.contains(r#""kind":"unknown-page""#), "{bad}");
        let resp2 = s.handle_line(req);
        assert_eq!(
            resp2, resp,
            "repeat after an error must be byte-identical (and a cache hit)"
        );
    }

    #[test]
    fn run_batch_matches_individual_runs() {
        let s = server();
        let run_a = r#""question":"Who are the PhD students?","keywords":["Students"],"labeled":[{"html":"<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>","gold":["Jane Doe"]}],"targets":[{"html":"<h1>B</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>"}]"#;
        let batch = s.handle_line(&format!(
            r#"{{"id":9,"op":"run_batch","tasks":[{{{run_a}}},{{{run_a}}}]}}"#
        ));
        let v: Value = serde_json::from_str(&batch).expect("valid JSON");
        let results = v["ok"]["results"].as_array().expect("results array");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0], results[1], "identical tasks, identical bodies");

        // Each entry is exactly what a separate `run` would say.
        let single = s.handle_line(&format!(r#"{{"op":"run",{run_a}}}"#));
        let sv: Value = serde_json::from_str(&single).expect("valid JSON");
        assert_eq!(results[0], sv["ok"]);

        // A malformed task fails the whole batch before anything runs.
        let bad = s.handle_line(&format!(
            r#"{{"op":"run_batch","tasks":[{{{run_a}}},{{"keywords":[]}}]}}"#
        ));
        assert!(bad.contains(r#""kind":"bad-request""#), "{bad}");
        let not_array = s.handle_line(r#"{"op":"run_batch","tasks":7}"#);
        assert!(not_array.contains(r#""kind":"bad-request""#), "{not_array}");
    }

    #[test]
    fn deadline_ms_must_be_a_nonnegative_integer() {
        let s = server();
        let r = s.handle_line(
            r#"{"op":"run","deadline_ms":"soon","question":"Q","keywords":[],"labeled":[],"targets":[]}"#,
        );
        assert!(r.contains(r#""kind":"bad-request""#), "{r}");
        assert!(r.contains("deadline_ms"), "{r}");
    }

    #[test]
    fn expired_deadline_is_typed_and_the_engine_survives() {
        let s = server();
        let fields = r#""question":"Who are the PhD students?","keywords":["Students"],"labeled":[{"html":"<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>","gold":["Jane Doe"]}],"targets":[]"#;
        let dead = s.handle_line(&format!(r#"{{"op":"run","deadline_ms":0,{fields}}}"#));
        assert!(dead.contains(r#""kind":"deadline-exceeded""#), "{dead}");

        // The same task without a deadline runs fine afterwards: the
        // cancelled attempt cached nothing and poisoned nothing.
        let ok = s.handle_line(&format!(r#"{{"op":"run",{fields}}}"#));
        assert!(ok.contains(r#""train_f1":1.0"#), "{ok}");

        let stats = s.handle_line(r#"{"op":"stats"}"#);
        let v: Value = serde_json::from_str(&stats).expect("valid JSON");
        assert_eq!(v["ok"]["deadline_exceeded"].as_u64(), Some(1));
    }

    #[test]
    fn stats_reports_counters_and_cache() {
        let s = server();
        let _ = s.handle_line(r#"{"op":"ping"}"#);
        let resp = s.handle_line(r#"{"op":"stats"}"#);
        let v: Value = serde_json::from_str(&resp).expect("valid JSON");
        assert_eq!(v["ok"]["requests"].as_u64(), Some(2));
        assert_eq!(v["ok"]["errors"].as_u64(), Some(0));
        assert!(v["ok"]["cache"]["feature_hits"].as_u64().is_some());
    }
}
