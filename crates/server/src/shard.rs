//! Engine sharding: N independent engines routed by page content digest.
//!
//! One global `RwLock<Engine>` made every page intern a writer that
//! stalled all readers. A [`ShardSet`] instead owns `N` [`EngineShard`]s
//! — each with its *own* engine, page store, feature store, result LRU,
//! admission queue, and worker slice — and assigns every page to exactly
//! one shard by a pure function of its content digest:
//!
//! ```text
//! owner(page) = content_digest(page) % N
//! ```
//!
//! Because the digest is a pure function of page *content* (PR 3's
//! content-addressed store), routing is deterministic across restarts,
//! across daemons, and across clients: the same page always lands on the
//! same shard, so interning on shard A never takes shard B's write lock,
//! and a fleet of daemons agrees on placement without coordination.
//!
//! # Wire handles interleave shard-locally
//!
//! A shard's store issues dense local indices; the wire handle
//! interleaves them with the shard id so handles stay dense *globally*:
//!
//! ```text
//! handle = local_index * N + shard        (encode)
//! shard  = handle % N,  local = handle / N  (decode)
//! ```
//!
//! With `N = 1` (the default) `handle == local_index` — single-shard
//! servers are bit-for-bit compatible with the pre-shard wire surface.
//!
//! # Tasks run on their home shard
//!
//! A task's **home shard** is the owner of its first page reference
//! (first labeled page, else first target; a pageless task runs on
//! shard 0). Pages the task references that live on *other* shards are
//! pulled into the home shard's store by `Arc`-sharing the parsed tree
//! (one brief write lock; content-addressed dedup makes repeats free),
//! so the run executes against a single store. The `RunResult` carries
//! no page handles, which is what makes the whole scheme observationally
//! invisible: responses are byte-identical whatever `N` is — pinned by
//! `tests/serve_api.rs` against 1-shard and cold never-cached engines.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, RwLock};

use webqa::{Engine, PersistSink};

use crate::pool::Admission;

/// One shard: an engine (own store + caches) behind its own lock, the
/// bounded admission queue feeding its worker slice, and its counters.
pub(crate) struct EngineShard {
    /// The shard's engine. Heavy ops share the read lock; interning and
    /// foreign-page pull-ins take brief write locks — and only ever
    /// *this shard's* lock.
    pub(crate) engine: RwLock<Engine>,
    /// The bounded admission queue feeding this shard's workers.
    pub(crate) queue: Admission,
    /// Worker threads dedicated to this shard.
    pub(crate) workers: usize,
    /// Heavy ops of this shard currently executing.
    pub(crate) inflight: AtomicU64,
}

/// The daemon's shards, plus the routing arithmetic.
pub(crate) struct ShardSet {
    shards: Vec<EngineShard>,
}

/// `i`'s share when `total` is split as evenly as possible over `parts`
/// slots (earlier slots absorb the remainder). Callers guarantee
/// `total >= parts`, so every share is at least 1 — there is no floor
/// here, because a floor would *inflate* the global budget (e.g.
/// `--workers 2 --shards 8` used to spawn 8 workers).
fn share(total: usize, parts: usize, i: usize) -> usize {
    let base = total / parts;
    let extra = usize::from(i < total % parts);
    base + extra
}

impl ShardSet {
    /// Builds `count` shards (min 1), each with a fresh engine from
    /// `config` and its share of the worker/backlog budgets.
    ///
    /// The shard count is clamped to the worker and backlog budgets:
    /// more shards than workers (or backlog slots) would either leave
    /// shards unable to make progress or silently inflate the global
    /// budget. Clamping keeps `total_workers()` / `total_backlog()`
    /// equal to what the operator configured.
    pub(crate) fn new(
        config: &webqa::Config,
        count: usize,
        total_workers: usize,
        total_backlog: usize,
        persist: Option<Arc<PersistSink>>,
    ) -> ShardSet {
        let total_workers = total_workers.max(1);
        let total_backlog = total_backlog.max(1);
        let count = count.max(1).min(total_workers).min(total_backlog);
        ShardSet {
            shards: (0..count)
                .map(|i| {
                    let mut engine = Engine::new(config.clone());
                    if let Some(sink) = &persist {
                        engine = engine.with_persist(Arc::clone(sink));
                        // Warm start: each shard loads exactly the
                        // digests it owns (owner = digest % count, the
                        // routing function), so an N-shard fleet reads
                        // every snapshot entry once and placement agrees
                        // with live interning.
                        let n = count as u64;
                        engine.load_snapshot_filtered(|d| d % n == i as u64);
                    }
                    EngineShard {
                        engine: RwLock::new(engine),
                        queue: Admission::new(share(total_backlog, count, i)),
                        workers: share(total_workers, count, i),
                        inflight: AtomicU64::new(0),
                    }
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub(crate) fn count(&self) -> usize {
        self.shards.len()
    }

    /// The shard at index `i` (panics on out-of-range — indices come
    /// from this set's own routing, never from the wire unchecked).
    pub(crate) fn get(&self, i: usize) -> &EngineShard {
        &self.shards[i]
    }

    /// Iterates the shards in index order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &EngineShard> {
        self.shards.iter()
    }

    /// The owning shard of a page with content digest `digest` — the
    /// pure routing function.
    pub(crate) fn owner_of(&self, digest: u64) -> usize {
        (digest % self.shards.len() as u64) as usize
    }

    /// Encodes a shard-local store index as a wire handle.
    pub(crate) fn encode_handle(&self, shard: usize, local: usize) -> u64 {
        local as u64 * self.shards.len() as u64 + shard as u64
    }

    /// Decodes a wire handle to `(shard, local_index)`.
    pub(crate) fn decode_handle(&self, handle: u64) -> (usize, u64) {
        let n = self.shards.len() as u64;
        ((handle % n) as usize, handle / n)
    }

    /// Sum of per-shard worker counts.
    pub(crate) fn total_workers(&self) -> usize {
        self.shards.iter().map(|s| s.workers).sum()
    }

    /// Sum of per-shard backlog capacities.
    pub(crate) fn total_backlog(&self) -> usize {
        self.shards.iter().map(|s| s.queue.capacity()).sum()
    }

    /// Sum of per-shard queue depths (point-in-time).
    pub(crate) fn total_queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue.depth()).sum()
    }

    /// Wakes every shard's parked workers (shutdown path).
    pub(crate) fn wake_all(&self) {
        for s in &self.shards {
            s.queue.wake_all();
        }
    }

    /// Spills every shard's warm state (pages + resident base-feature
    /// tables) to the attached snapshot sink — a no-op without one.
    /// Called at shutdown, after the worker threads have joined, so the
    /// stores and caches are quiescent.
    pub(crate) fn spill_all(&self) {
        for s in &self.shards {
            crate::relock(s.engine.read()).spill_snapshot();
        }
    }

    /// The snapshot sink's traffic counters. The sink is one `Arc`
    /// shared by every shard, so any shard's view is the fleet total
    /// (zeros when persistence is off).
    pub(crate) fn persist_stats(&self) -> webqa::PersistStats {
        crate::relock(self.shards[0].engine.read()).persist_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: usize) -> ShardSet {
        ShardSet::new(&webqa::Config::default(), n, 8, 64, None)
    }

    #[test]
    fn handles_interleave_and_round_trip() {
        for n in [1usize, 2, 3, 4, 7] {
            let s = set(n);
            for shard in 0..n {
                for local in [0usize, 1, 5, 1000] {
                    let h = s.encode_handle(shard, local);
                    assert_eq!(s.decode_handle(h), (shard, local as u64), "n={n}");
                }
            }
        }
        // One shard: the handle IS the local index (wire compatibility).
        let one = set(1);
        for local in 0..10 {
            assert_eq!(one.encode_handle(0, local), local as u64);
        }
    }

    #[test]
    fn routing_is_digest_mod_count() {
        let s = set(4);
        for digest in [0u64, 1, 17, u64::MAX] {
            assert_eq!(s.owner_of(digest), (digest % 4) as usize);
        }
        assert_eq!(set(1).owner_of(u64::MAX), 0);
    }

    #[test]
    fn budgets_split_evenly_with_a_floor_of_one() {
        // 8 workers / 64 backlog over 3 shards: 3+3+2 and 22+21+21.
        let s = set(3);
        assert_eq!(
            s.iter().map(|x| x.workers).collect::<Vec<_>>(),
            vec![3, 3, 2]
        );
        assert_eq!(s.total_workers(), 8);
        assert_eq!(s.total_backlog(), 64);
        // More shards than workers: the shard count clamps to the
        // worker budget, so every shard gets exactly one worker and
        // one backlog slot — the totals stay what was configured.
        let wide = ShardSet::new(&webqa::Config::default(), 4, 2, 2, None);
        assert_eq!(wide.count(), 2);
        assert!(wide.iter().all(|x| x.workers == 1));
        assert!(wide.iter().all(|x| x.queue.capacity() == 1));
    }

    #[test]
    fn shard_count_clamps_to_the_global_budgets() {
        // The PR 9 regression: `--workers 2 --shards 8` used to spawn 8
        // workers because each shard's share was floored at 1. The
        // effective shard count must honor the global budget instead.
        let s = ShardSet::new(&webqa::Config::default(), 8, 2, 64, None);
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_workers(), 2, "worker budget must not inflate");
        assert_eq!(s.total_backlog(), 64);

        // The backlog budget clamps too: a shard with a 0-capacity
        // queue could never admit its digest-routed requests.
        let s = ShardSet::new(&webqa::Config::default(), 8, 16, 3, None);
        assert_eq!(s.count(), 3);
        assert_eq!(s.total_workers(), 16);
        assert_eq!(s.total_backlog(), 3);

        // Degenerate budgets still yield a working single shard.
        let s = ShardSet::new(&webqa::Config::default(), 4, 0, 0, None);
        assert_eq!(s.count(), 1);
        assert_eq!(s.total_workers(), 1);
        assert_eq!(s.total_backlog(), 1);
    }

    #[test]
    fn shards_own_independent_engines() {
        let s = set(2);
        s.get(0)
            .engine
            .write()
            .expect("engine lock")
            .store_mut()
            .insert_html("<h1>A</h1>")
            .expect("clean page");
        assert_eq!(
            s.get(0).engine.read().expect("engine lock").store().len(),
            1
        );
        assert_eq!(
            s.get(1).engine.read().expect("engine lock").store().len(),
            0,
            "interning on shard 0 must not touch shard 1"
        );
    }
}
