//! The HTTP/1.1 facade: the line protocol's ops, reachable by anything
//! that speaks plain HTTP (`curl`, load balancers, language runtimes
//! with no raw-socket access).
//!
//! This is a deliberate 1:1 mapping, not a second API. Each route
//! borrows the line protocol's request object verbatim as its JSON body
//! — minus the `"op"` field, which the path supplies — and each
//! response body **is** the line protocol's one-line envelope, byte for
//! byte (without the trailing newline). That identity is what lets the
//! byte-compare harnesses in `tests/serve_api.rs` cover both transports
//! with one reference.
//!
//! ```text
//! POST /v1/run        body: {"question": ..., "keywords": ..., ...}
//! POST /v1/run_batch  body: {"tasks": [...], ...}
//! POST /v1/intern     body: {"html": "...", "lenient": false}
//! GET  /v1/ping
//! GET  /v1/stats
//! ```
//!
//! Framing is `Content-Length` only, capped at the server's
//! `max_frame_bytes` like a line-protocol frame. Requests that make the
//! body boundary ambiguous are refused outright — `Transfer-Encoding`
//! (any value) with `411 Length Required`, a duplicate `Content-Length`
//! with `400` — because silently mis-framing one would replay its body
//! bytes as the next request's head on a keep-alive connection (request
//! smuggling). Connections are keep-alive by default;
//! `Connection: close` (or HTTP/1.0, or any framing-level error) closes
//! after the response. Typed errors map
//! onto status codes (see `status_for`): the envelope in the body
//! remains the source of truth, the status line is a convenience for
//! HTTP-native clients.
//!
//! Heavy ops (`run`, `run_batch`) go through the *same* shard admission
//! queues and worker pool as line-protocol requests — the facade adds
//! no second execution path. The connection thread parks on a
//! [`ResponseGate`] that the worker fills through the ordinary
//! `write_response` machinery, so completion counting, write permits,
//! and load shedding behave identically across transports (HTTP is
//! one-request-at-a-time per connection, so "completion order" and
//! "request order" coincide here).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde_json::Value;

use crate::net::{accept_loop, read_frame, Frame};
use crate::pool::{ConnWriter, Job};
use crate::protocol::ProtoError;
use crate::{Action, ErrKind, Server, Shared};

/// Maximum header lines per request — far above any legitimate client,
/// low enough that a drip-feed of garbage headers cannot pin a thread.
const MAX_HEADERS: usize = 100;

/// Spawns the accept thread for the HTTP facade's listener.
pub(crate) fn accept_http(shared: Arc<Shared>, listener: TcpListener) -> JoinHandle<()> {
    accept_loop(
        shared,
        listener,
        |l: &TcpListener| l.accept().map(|(s, _)| s),
        serve_http_conn,
    )
}

/// One parsed request head plus its (already consumed) body.
struct HttpRequest {
    method: String,
    path: String,
    /// Close after responding: `Connection: close`, or HTTP/1.0.
    close: bool,
    body: String,
}

/// How a request attempt ends when no well-formed request was read.
enum ReadOutcome {
    /// A complete request (body consumed — keep-alive stays in sync).
    Request(HttpRequest),
    /// Clean end of the connection (EOF between requests, transport
    /// error, or shutdown).
    Closed,
    /// A protocol-level failure to respond to, then close: the error
    /// kind, the HTTP status, and a message.
    Fail(ErrKind, u16, String),
}

/// Reads one HTTP/1.1 request (head + `Content-Length` body) from the
/// connection. Never leaves the stream mid-request: every `Fail` is
/// followed by a close.
fn read_request(reader: &mut BufReader<TcpStream>, max: usize) -> ReadOutcome {
    // Request line (tolerating blank lines before it, as HTTP allows).
    let line = loop {
        match read_frame(reader, max) {
            Frame::Line(l) if l.is_empty() => continue,
            Frame::Line(l) => break l,
            Frame::Eof | Frame::Io => return ReadOutcome::Closed,
            Frame::Oversized => {
                return ReadOutcome::Fail(
                    ErrKind::Oversized,
                    413,
                    format!("request line exceeds max_frame_bytes ({max})"),
                )
            }
            Frame::BadUtf8 => {
                return ReadOutcome::Fail(
                    ErrKind::BadFrame,
                    400,
                    "request line is not UTF-8".to_string(),
                )
            }
        }
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
        _ => {
            return ReadOutcome::Fail(
                ErrKind::BadFrame,
                400,
                "malformed request line (expected \"METHOD PATH VERSION\")".to_string(),
            )
        }
    };
    let mut close = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        other => {
            return ReadOutcome::Fail(
                ErrKind::BadFrame,
                400,
                format!("unsupported protocol version {other:?}"),
            )
        }
    };

    // Headers: only Content-Length and Connection matter to the facade.
    let mut content_length: Option<usize> = None;
    for n in 0.. {
        if n >= MAX_HEADERS {
            return ReadOutcome::Fail(ErrKind::BadFrame, 400, "too many headers".to_string());
        }
        let header = match read_frame(reader, max) {
            Frame::Line(l) if l.is_empty() => break,
            Frame::Line(l) => l,
            Frame::Eof | Frame::Io => return ReadOutcome::Closed,
            Frame::Oversized => {
                return ReadOutcome::Fail(
                    ErrKind::Oversized,
                    413,
                    format!("header exceeds max_frame_bytes ({max})"),
                )
            }
            Frame::BadUtf8 => {
                return ReadOutcome::Fail(ErrKind::BadFrame, 400, "header is not UTF-8".to_string())
            }
        };
        let Some((name, value)) = header.split_once(':') else {
            return ReadOutcome::Fail(
                ErrKind::BadFrame,
                400,
                format!("malformed header line {header:?}"),
            );
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<usize>() {
                // Framing is the one thing a facade must never guess at:
                // a second Content-Length (even an equal one) means the
                // sender and this parser may disagree on where the body
                // ends, and on a keep-alive connection the leftover body
                // bytes would be parsed as the next request's head
                // (request smuggling). Refuse and close.
                Ok(n) if content_length.is_some() => {
                    return ReadOutcome::Fail(
                        ErrKind::BadFrame,
                        400,
                        format!("duplicate Content-Length header ({n})"),
                    )
                }
                Ok(n) => content_length = Some(n),
                Err(_) => {
                    return ReadOutcome::Fail(
                        ErrKind::BadFrame,
                        400,
                        format!("unparsable Content-Length {value:?}"),
                    )
                }
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Same smuggling hazard, worse: this facade frames by
            // Content-Length only, so a chunked body would be read as
            // zero-length and its bytes replayed as subsequent requests.
            // 411: the client must resend with a Content-Length.
            return ReadOutcome::Fail(
                ErrKind::BadFrame,
                411,
                format!("Transfer-Encoding {value:?} unsupported: this endpoint frames by Content-Length only"),
            );
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }

    // Body: Content-Length framing only, under the frame-size cap.
    let body = match content_length {
        None | Some(0) => String::new(),
        Some(n) if n > max => {
            return ReadOutcome::Fail(
                ErrKind::Oversized,
                413,
                format!("body of {n} bytes exceeds max_frame_bytes ({max})"),
            )
        }
        Some(n) => {
            let mut buf = vec![0u8; n];
            if reader.read_exact(&mut buf).is_err() {
                return ReadOutcome::Closed;
            }
            match String::from_utf8(buf) {
                Ok(s) => s,
                Err(_) => {
                    return ReadOutcome::Fail(
                        ErrKind::BadFrame,
                        400,
                        "body is not UTF-8".to_string(),
                    )
                }
            }
        }
    };

    ReadOutcome::Request(HttpRequest {
        method,
        path,
        close,
        body,
    })
}

/// The op a route maps to, or why it maps to nothing.
enum Route {
    Op(&'static str),
    /// Known path, wrong method: the method it wanted.
    WrongMethod(&'static str),
    Unknown,
}

fn route(method: &str, path: &str) -> Route {
    let (op, expected) = match path {
        "/v1/run" => ("run", "POST"),
        "/v1/run_batch" => ("run_batch", "POST"),
        "/v1/intern" => ("intern", "POST"),
        "/v1/check" => ("check", "POST"),
        "/v1/ping" => ("ping", "GET"),
        "/v1/stats" => ("stats", "GET"),
        _ => return Route::Unknown,
    };
    if method == expected {
        Route::Op(op)
    } else {
        Route::WrongMethod(expected)
    }
}

/// The status code a response envelope maps to: 200 for `ok`, the typed
/// error's HTTP rendering otherwise. The envelope stays the source of
/// truth; an unrecognized kind degrades to 500.
fn status_for(envelope: &str) -> u16 {
    let Ok(v) = serde_json::from_str::<Value>(envelope) else {
        return 500;
    };
    match v["err"]["kind"].as_str() {
        None => 200,
        Some("bad-frame" | "bad-request") => 400,
        Some("unknown-op" | "unknown-page") => 404,
        Some("oversized") => 413,
        Some("page") => 422,
        Some("overloaded") => 503,
        Some("deadline-exceeded") => 504,
        // `internal`, or any kind this mapping has not learned yet.
        Some(_) => 500,
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one response; returns whether the full write succeeded.
fn write_http(stream: &mut TcpStream, status: u16, body: &str, close: bool) -> bool {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}\r\n",
        reason(status),
        body.len(),
        if close { "Connection: close\r\n" } else { "" },
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .is_ok()
}

/// The rendezvous between an HTTP connection thread and the worker that
/// executes its heavy op: the worker's `write_response` lands the
/// envelope here (through a [`GateWriter`]); the connection thread
/// parks until it arrives or the server shuts down.
struct ResponseGate {
    slot: Mutex<Option<String>>,
    ready: Condvar,
}

impl ResponseGate {
    fn new() -> Arc<ResponseGate> {
        Arc::new(ResponseGate {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Blocks until the response arrives; `None` on shutdown (the
    /// periodic timeout exists only to observe the flag — a suppressed
    /// response, e.g. under a write-permit cap, must not pin the thread
    /// forever).
    fn wait(&self, shutdown: &AtomicBool) -> Option<String> {
        let mut slot = crate::relock(self.slot.lock());
        loop {
            if let Some(line) = slot.take() {
                return Some(line);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (s, _) = crate::relock(self.ready.wait_timeout(slot, Duration::from_millis(100)));
            slot = s;
        }
    }
}

/// A `Write` that delivers each flushed line into a [`ResponseGate`] —
/// what lets a worker answer an HTTP request through the very same
/// `ConnWriter`/`write_response` path it uses for socket lines (so
/// completion counting and write permits stay transport-uniform).
struct GateWriter {
    gate: Arc<ResponseGate>,
    buf: Vec<u8>,
}

impl Write for GateWriter {
    fn write(&mut self, b: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(b);
        Ok(b.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let mut line = String::from_utf8(std::mem::take(&mut self.buf))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        *crate::relock(self.gate.slot.lock()) = Some(line);
        self.gate.ready.notify_all();
        Ok(())
    }
}

/// Serves one HTTP connection until close, EOF, a framing error, or
/// shutdown — one request at a time, keep-alive between them.
pub(crate) fn serve_http_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let server = Server {
        shared: Arc::clone(shared),
    };
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let request = match read_request(&mut reader, shared.max_frame_bytes) {
            ReadOutcome::Request(r) => r,
            ReadOutcome::Closed => return,
            ReadOutcome::Fail(kind, status, message) => {
                // The stream may be out of sync past the failure, so
                // this is always a closing response.
                let envelope = typed_error(&server, kind, &message);
                let _ = write_http(&mut stream, status, &envelope, true);
                return;
            }
        };
        let close = request.close;

        let (status, envelope) = match route(&request.method, &request.path) {
            Route::Unknown => (
                404,
                typed_error(
                    &server,
                    ErrKind::UnknownOp,
                    &format!(
                        "unknown path {} (expected /v1/run, /v1/run_batch, /v1/intern, /v1/check, /v1/ping, or /v1/stats)",
                        request.path
                    ),
                ),
            ),
            Route::WrongMethod(expected) => (
                405,
                typed_error(
                    &server,
                    ErrKind::BadRequest,
                    &format!(
                        "method {} not allowed for {} (expected {expected})",
                        request.method, request.path
                    ),
                ),
            ),
            Route::Op(op) => {
                // The body is the line protocol's request object with
                // the op injected from the path (an empty body means an
                // empty object — the GET ops take no fields).
                let parsed = if request.body.is_empty() {
                    Ok(Value::Object(serde_json::Map::new()))
                } else {
                    serde_json::from_str::<Value>(&request.body)
                };
                match parsed {
                    Err(_) => (
                        400,
                        typed_error(&server, ErrKind::BadFrame, "body is not valid JSON"),
                    ),
                    Ok(mut v) => {
                        if let Value::Object(obj) = &mut v {
                            obj.insert("op".to_string(), Value::String(op.to_string()));
                        }
                        let (id, classified) = server.classify_value(v);
                        match classified {
                            Ok(Action::Immediate(body)) => {
                                let envelope = server.render_outcome(id, Ok(body));
                                (status_for(&envelope), envelope)
                            }
                            Err(e) => {
                                let envelope = server.render_outcome(id, Err(e));
                                (status_for(&envelope), envelope)
                            }
                            Ok(Action::Heavy(op)) => {
                                let gate = ResponseGate::new();
                                let conn = Arc::new(ConnWriter::new(Box::new(GateWriter {
                                    gate: Arc::clone(&gate),
                                    buf: Vec::new(),
                                })));
                                let shard = op.shard;
                                let admitted = shared.shards.get(shard).queue.try_push(Job {
                                    id: id.clone(),
                                    op,
                                    conn,
                                });
                                if !admitted {
                                    let envelope = server.overloaded_response(id, shard);
                                    (status_for(&envelope), envelope)
                                } else {
                                    match gate.wait(&shared.shutdown) {
                                        Some(envelope) => (status_for(&envelope), envelope),
                                        // Shutdown before the response
                                        // landed: close without one.
                                        None => return,
                                    }
                                }
                            }
                        }
                    }
                }
            }
        };

        if !write_http(&mut stream, status, &envelope, close) || close {
            return;
        }
    }
}

/// Renders a facade-level typed error (counting it like any request).
fn typed_error(server: &Server, kind: ErrKind, message: &str) -> String {
    server.shared.requests.fetch_add(1, Ordering::Relaxed);
    server.render_outcome(Value::Null, Err(ProtoError::new(kind, message)))
}

/// A thin blocking client for the HTTP/1.1 facade: one request out, one
/// response back, keep-alive across calls. Suitable for scripting and
/// test harnesses; open several clients for concurrency.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to a facade endpoint.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and reads its response, returning the status
    /// code and the body (the line protocol's response envelope).
    ///
    /// # Errors
    ///
    /// Transport errors, or [`io::ErrorKind::InvalidData`] when the
    /// server's response cannot be parsed.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let head = if body.is_empty() {
            format!("{method} {path} HTTP/1.1\r\n\r\n")
        } else {
            format!(
                "{method} {path} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
        };
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `POST` with a JSON body — the shape of `run`, `run_batch`, and
    /// `intern` calls.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`].
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// Bodyless `GET` — the shape of `ping` and `stats` calls.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`].
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        let status_line = self.read_line()?;
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            let header = self.read_line()?;
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse::<usize>().map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unparsable Content-Length {value:?}"),
                        )
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|b| (status, b))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
