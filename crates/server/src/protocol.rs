//! Pure request/response machinery of the wire protocol: typed error
//! kinds, the response envelope, field extraction from parsed frames,
//! and the canonical rendering of a [`RunResult`].
//!
//! Everything here is a function from values to values — no sockets —
//! so the whole protocol surface is unit-testable without a listener,
//! and the determinism harness (`tests/serve_api.rs`) can render its
//! *expected* responses through the very same code path the server uses.

use serde_json::{Map, Value};
use webqa::RunResult;

/// The typed error kinds of the wire protocol (the `err.kind` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    /// The frame was not a valid JSON object (unparsable bytes, non-UTF-8
    /// content, or a non-object top level). The connection stays open.
    BadFrame,
    /// The frame exceeded the server's `max_frame_bytes`. The connection
    /// is closed after the response — framing cannot resync past an
    /// unread tail.
    Oversized,
    /// The request was a well-formed frame with missing or ill-typed
    /// fields for its `op`.
    BadRequest,
    /// The `op` field named no operation this server implements.
    UnknownOp,
    /// Page ingestion failed (damaged HTML rejected by the strict
    /// parser).
    Page,
    /// A page handle that this server never issued.
    UnknownPage,
    /// The admission queue was full when the request arrived: the server
    /// shed it without executing anything. The connection stays open;
    /// retrying later (or against a server with a larger `backlog`) is
    /// the client's call.
    Overloaded,
    /// The request's latency budget (its `deadline_ms`, the server's
    /// default deadline, or both) expired before the run finished — in
    /// the queue or mid-synthesis. The engine state is untouched: a
    /// cancelled run caches nothing and poisons nothing.
    DeadlineExceeded,
    /// Anything else — the engine failed in a way the protocol does not
    /// classify.
    Internal,
}

impl ErrKind {
    /// The wire spelling of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrKind::BadFrame => "bad-frame",
            ErrKind::Oversized => "oversized",
            ErrKind::BadRequest => "bad-request",
            ErrKind::UnknownOp => "unknown-op",
            ErrKind::Page => "page",
            ErrKind::UnknownPage => "unknown-page",
            ErrKind::Overloaded => "overloaded",
            ErrKind::DeadlineExceeded => "deadline-exceeded",
            ErrKind::Internal => "internal",
        }
    }
}

/// A typed protocol error: kind plus a human-readable message.
#[derive(Debug, Clone)]
pub struct ProtoError {
    /// The typed kind (stable wire vocabulary).
    pub kind: ErrKind,
    /// Human-readable detail, not part of the stable surface.
    pub message: String,
}

impl ProtoError {
    /// Builds an error.
    pub fn new(kind: ErrKind, message: impl Into<String>) -> Self {
        ProtoError {
            kind,
            message: message.into(),
        }
    }
}

/// Shorthand for `Err(ProtoError::new(..))` in extraction helpers.
pub(crate) fn bad_request<T>(message: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError::new(ErrKind::BadRequest, message))
}

/// Renders the one-line response envelope: `{"id":…,"ok":…}` on success,
/// `{"id":…,"err":{"kind":…,"message":…}}` on failure. `id` is the
/// request's `id` field echoed verbatim (JSON `null` when absent or when
/// the frame never parsed).
pub fn envelope(id: Value, outcome: Result<Value, ProtoError>) -> String {
    let mut map = Map::new();
    map.insert("id".to_string(), id);
    match outcome {
        Ok(body) => {
            map.insert("ok".to_string(), body);
        }
        Err(e) => {
            let mut err = Map::new();
            err.insert(
                "kind".to_string(),
                Value::String(e.kind.as_str().to_string()),
            );
            err.insert("message".to_string(), Value::String(e.message));
            map.insert("err".to_string(), Value::Object(err));
        }
    }
    serde_json::to_string(&Value::Object(map)).unwrap_or_else(|_| {
        // Unreachable for tree-shaped `Value`s, but a worker thread must
        // answer *something* rather than panic while holding shared
        // state — degrade to a well-formed internal error.
        r#"{"id":null,"err":{"kind":"internal","message":"response serialization failed"}}"#
            .to_string()
    })
}

/// The canonical rendering of a completed run — the `ok` body of a `run`
/// response. Public so test harnesses can render the *expected* body
/// from a reference engine's [`RunResult`] through the identical code
/// path and compare responses byte for byte.
pub fn render_run_result(result: &RunResult) -> Value {
    let mut map = Map::new();
    map.insert(
        "program".to_string(),
        match &result.program {
            Some(p) => Value::String(p.to_string()),
            None => Value::Null,
        },
    );
    map.insert(
        "train_f1".to_string(),
        serde_json::json!(result.synthesis.f1),
    );
    let mut counts = Map::new();
    counts.insert(
        "matched".to_string(),
        serde_json::json!(result.synthesis.counts.matched),
    );
    counts.insert(
        "predicted".to_string(),
        serde_json::json!(result.synthesis.counts.predicted),
    );
    counts.insert(
        "gold".to_string(),
        serde_json::json!(result.synthesis.counts.gold),
    );
    map.insert("counts".to_string(), Value::Object(counts));
    map.insert(
        "total_optimal".to_string(),
        serde_json::json!(result.synthesis.total_optimal),
    );
    map.insert("answers".to_string(), serde_json::json!(result.answers));
    Value::Object(map)
}

/// Extracts a required string field.
pub(crate) fn str_field<'v>(obj: &'v Value, name: &str) -> Result<&'v str, ProtoError> {
    match obj[name].as_str() {
        Some(s) => Ok(s),
        None => bad_request(format!("field {name:?} must be a string")),
    }
}

/// Extracts an optional boolean field (absent = `default`).
pub(crate) fn bool_field(obj: &Value, name: &str, default: bool) -> Result<bool, ProtoError> {
    match &obj[name] {
        Value::Null => Ok(default),
        Value::Bool(b) => Ok(*b),
        _ => bad_request(format!("field {name:?} must be a boolean")),
    }
}

/// Extracts an optional array-of-strings field (absent = empty).
pub(crate) fn string_list(obj: &Value, name: &str) -> Result<Vec<String>, ProtoError> {
    match &obj[name] {
        Value::Null => Ok(Vec::new()),
        Value::Array(items) => items
            .iter()
            .map(|v| match v.as_str() {
                Some(s) => Ok(s.to_string()),
                None => bad_request(format!("field {name:?} must contain only strings")),
            })
            .collect(),
        _ => bad_request(format!("field {name:?} must be an array of strings")),
    }
}

/// A page reference in a request: either a handle issued by `intern` or
/// inline HTML to be interned on the fly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PageRef {
    Handle(u64),
    Html(String),
}

/// Parses a page reference: a bare number, or an object with exactly one
/// of `"page"` (handle) / `"html"` (inline source).
pub(crate) fn page_ref(v: &Value, what: &str) -> Result<PageRef, ProtoError> {
    if let Some(n) = v.as_u64() {
        return Ok(PageRef::Handle(n));
    }
    if v.as_object().is_some() {
        match (v["page"].as_u64(), v["html"].as_str()) {
            (Some(n), None) => return Ok(PageRef::Handle(n)),
            (None, Some(h)) => return Ok(PageRef::Html(h.to_string())),
            _ => {}
        }
    }
    bad_request(format!(
        "{what} must be a page handle or an object with exactly one of \"page\" / \"html\""
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_shapes() {
        let ok = envelope(serde_json::json!(7u64), Ok(Value::Bool(true)));
        assert_eq!(ok, r#"{"id":7,"ok":true}"#);
        let err = envelope(Value::Null, Err(ProtoError::new(ErrKind::BadFrame, "nope")));
        assert_eq!(
            err,
            r#"{"id":null,"err":{"kind":"bad-frame","message":"nope"}}"#
        );
    }

    #[test]
    fn page_refs_parse_both_spellings() {
        assert_eq!(
            page_ref(&serde_json::json!(3u64), "target").unwrap(),
            PageRef::Handle(3)
        );
        let v: Value = serde_json::from_str(r#"{"html":"<p>x</p>"}"#).unwrap();
        assert_eq!(
            page_ref(&v, "target").unwrap(),
            PageRef::Html("<p>x</p>".to_string())
        );
        let both: Value = serde_json::from_str(r#"{"html":"x","page":1}"#).unwrap();
        assert!(page_ref(&both, "target").is_err());
        assert!(page_ref(&Value::String("x".into()), "target").is_err());
    }

    #[test]
    fn bool_fields_default_and_reject_junk() {
        let v: Value = serde_json::from_str(r#"{"lenient":true}"#).unwrap();
        assert!(bool_field(&v, "lenient", false).unwrap());
        assert!(!bool_field(&v, "absent", false).unwrap());
        assert!(bool_field(&v, "absent", true).unwrap());
        let junk: Value = serde_json::from_str(r#"{"lenient":"yes"}"#).unwrap();
        assert!(bool_field(&junk, "lenient", false).is_err());
    }

    #[test]
    fn error_kinds_have_stable_spellings() {
        for (k, s) in [
            (ErrKind::BadFrame, "bad-frame"),
            (ErrKind::Oversized, "oversized"),
            (ErrKind::BadRequest, "bad-request"),
            (ErrKind::UnknownOp, "unknown-op"),
            (ErrKind::Page, "page"),
            (ErrKind::UnknownPage, "unknown-page"),
            (ErrKind::Overloaded, "overloaded"),
            (ErrKind::DeadlineExceeded, "deadline-exceeded"),
            (ErrKind::Internal, "internal"),
        ] {
            assert_eq!(k.as_str(), s);
        }
    }
}
