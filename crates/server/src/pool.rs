//! Bounded execution: the admission queue, the shared per-connection
//! writer, and the worker pool.
//!
//! The serving layer's concurrency control lives here. Connection
//! threads stay cheap — they read frames, parse, and answer control ops
//! inline — while every heavy op (`run`, `run_batch`) becomes a [`Job`]
//! pushed through a **bounded** [`Admission`] queue and executed by one
//! of a **fixed** number of worker threads. Two consequences:
//!
//! * engine concurrency is `workers`, not "number of open sockets" — a
//!   connection flood cannot fork a thousand syntheses;
//! * when the backlog cap is hit, [`Admission::try_push`] fails and the
//!   connection thread sheds the request with a typed `overloaded`
//!   response *immediately* — load shedding is constant-time, never
//!   queued behind the work it is refusing.
//!
//! Responses go out through the job's [`ConnWriter`] — a mutex around
//! the connection's write half — in **completion order**, which is what
//! makes request pipelining safe: the reader thread keeps pulling frames
//! while workers finish earlier ones, and the `id` echoed in each
//! response is the client's correlation key.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use serde_json::Value;

use crate::{relock, HeavyOp, Server, Shared};

/// The write half of one connection, shared between its reader thread
/// (inline responses) and the worker pool (heavy-op responses). The
/// mutex scope is one full response line, so lines never interleave.
pub(crate) struct ConnWriter {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl ConnWriter {
    pub(crate) fn new(writer: Box<dyn Write + Send>) -> Self {
        ConnWriter {
            writer: Mutex::new(writer),
        }
    }

    /// Writes one response line (newline appended) atomically w.r.t.
    /// other lines on this connection. Returns whether the full line
    /// reached the transport.
    pub(crate) fn write_line(&self, line: &str) -> bool {
        let mut w = relock(self.writer.lock());
        w.write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush())
            .is_ok()
    }
}

/// One admitted heavy op: the parsed request, its echo id, and the
/// connection to answer on.
pub(crate) struct Job {
    pub(crate) id: Value,
    pub(crate) op: HeavyOp,
    pub(crate) conn: Arc<ConnWriter>,
}

/// The bounded MPMC admission queue feeding the worker pool.
pub(crate) struct Admission {
    queue: Mutex<VecDeque<Job>>,
    capacity: usize,
    ready: Condvar,
}

impl Admission {
    pub(crate) fn new(capacity: usize) -> Self {
        Admission {
            queue: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            ready: Condvar::new(),
        }
    }

    /// The backlog cap.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a job unless the backlog is full; `false` = shed it.
    pub(crate) fn try_push(&self, job: Job) -> bool {
        let mut q = relock(self.queue.lock());
        if q.len() >= self.capacity {
            return false;
        }
        q.push_back(job);
        self.ready.notify_one();
        true
    }

    /// Blocks until a job is available or `shutdown` is set; `None`
    /// means the pool is winding down (queued jobs are abandoned — their
    /// connections are being closed anyway).
    pub(crate) fn pop(&self, shutdown: &AtomicBool) -> Option<Job> {
        let mut q = relock(self.queue.lock());
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            q = relock(self.ready.wait(q));
        }
    }

    /// Wakes every blocked worker (shutdown path).
    pub(crate) fn wake_all(&self) {
        let _guard = relock(self.queue.lock());
        self.ready.notify_all();
    }

    /// Current queue depth (diagnostics).
    pub(crate) fn depth(&self) -> usize {
        relock(self.queue.lock()).len()
    }
}

/// Spawns the fixed worker pool: each shard gets its own worker slice,
/// every worker looping pop → execute → respond on *its shard's* queue
/// until shutdown — a backed-up shard never steals another shard's
/// workers, so one hot page set cannot starve the rest of the fleet.
pub(crate) fn spawn_workers(shared: &Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut handles = Vec::new();
    for shard in 0..shared.shards.count() {
        for _ in 0..shared.shards.get(shard).workers {
            let shared = Arc::clone(shared);
            handles.push(std::thread::spawn(move || {
                let server = Server {
                    shared: Arc::clone(&shared),
                };
                while let Some(job) = shared.shards.get(shard).queue.pop(&shared.shutdown) {
                    let outcome = server.execute_heavy(job.op);
                    let line = server.render_outcome(job.id, outcome);
                    // A failed write means the client is gone; the job's
                    // work (and any cache fills) remains valid.
                    let _ = shared.write_response(&job.conn, &line);
                }
            }));
        }
    }
    handles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_job() -> Job {
        Job {
            id: Value::Null,
            op: HeavyOp::noop_for_tests(),
            conn: Arc::new(ConnWriter::new(Box::new(std::io::sink()))),
        }
    }

    #[test]
    fn admission_sheds_beyond_capacity() {
        let a = Admission::new(2);
        assert!(a.try_push(dummy_job()));
        assert!(a.try_push(dummy_job()));
        assert!(!a.try_push(dummy_job()), "third push must shed");
        assert_eq!(a.depth(), 2);
        let stop = AtomicBool::new(false);
        assert!(a.pop(&stop).is_some());
        assert!(a.try_push(dummy_job()), "pop frees a slot");
    }

    #[test]
    fn pop_returns_none_on_shutdown() {
        let a = Admission::new(1);
        let stop = AtomicBool::new(true);
        assert!(a.pop(&stop).is_none());
    }

    #[test]
    fn conn_writer_serializes_whole_lines() {
        let w = ConnWriter::new(Box::new(std::io::sink()));
        assert!(w.write_line("hello"));
    }
}
