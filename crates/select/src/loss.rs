//! Loss functions for the transductive objective (Eq. 4 of the paper).
//!
//! The objective `L̃(π; E, I) = E_{p(O|I,E)}[L(π; I, O)]` is parametrized
//! over a supervised loss `L`. The released system uses the Hamming
//! distance between extracted word sets (Section 7); the paper notes the
//! negative F₁ score as the other natural choice. Both are provided here,
//! plus token-set Jaccard distance — all operate on per-page extracted
//! token sets, so the selector can precompute outputs once per ensemble
//! member and evaluate any loss from them.

use webqa_metrics::{hamming_sorted_tokens, Counts, Token};

/// A supervised loss between two per-page extracted token sets, summed
/// over pages by the selector.
///
/// Implementations receive *sorted, deduplicated* token sets. Lower is
/// better; the value need not be bounded but must be non-negative and
/// zero on identical outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TokenLoss {
    /// Hamming distance between word sets — the paper's implementation
    /// choice (Section 7).
    #[default]
    Hamming,
    /// `1 − F₁(predicted, soft label)`: the loss sketched in Section 6.
    NegF1,
    /// Jaccard distance `1 − |A∩B| / |A∪B|` (1 when both empty is defined
    /// as 0: identical outputs have zero loss).
    Jaccard,
}

/// Fixed-point scale used to accumulate fractional losses in integer
/// arithmetic (keeps the selector's comparisons exact and deterministic).
const SCALE: f64 = 1_000_000.0;

impl TokenLoss {
    /// The loss between one page's predicted tokens and the soft-label
    /// tokens, in fixed-point millionths.
    ///
    /// Both inputs must be sorted and deduplicated.
    pub fn page_loss(self, predicted: &[Token], label: &[Token]) -> u64 {
        match self {
            TokenLoss::Hamming => hamming_sorted_tokens(predicted, label) as u64 * SCALE as u64,
            TokenLoss::NegF1 => {
                let counts = Counts::from_bags(predicted, label);
                ((1.0 - counts.f1()) * SCALE).round() as u64
            }
            TokenLoss::Jaccard => {
                let inter = intersection_size(predicted, label);
                let union = predicted.len() + label.len() - inter;
                if union == 0 {
                    0
                } else {
                    ((1.0 - inter as f64 / union as f64) * SCALE).round() as u64
                }
            }
        }
    }
}

/// Size of the intersection of two sorted deduplicated token slices.
fn intersection_size(a: &[Token], b: &[Token]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_metrics::tokenize;

    fn toks(s: &str) -> Vec<Token> {
        let mut t = tokenize(s);
        t.sort();
        t.dedup();
        t
    }

    #[test]
    fn identical_outputs_have_zero_loss() {
        let a = toks("jane doe bob smith");
        for loss in [TokenLoss::Hamming, TokenLoss::NegF1, TokenLoss::Jaccard] {
            assert_eq!(loss.page_loss(&a, &a), 0, "{loss:?}");
        }
    }

    #[test]
    fn empty_vs_empty_is_zero() {
        for loss in [TokenLoss::Hamming, TokenLoss::NegF1, TokenLoss::Jaccard] {
            assert_eq!(loss.page_loss(&[], &[]), 0, "{loss:?}");
        }
    }

    #[test]
    fn hamming_counts_symmetric_difference() {
        let a = toks("jane doe");
        let b = toks("jane smith");
        // symmetric difference {doe, smith} = 2
        assert_eq!(TokenLoss::Hamming.page_loss(&a, &b), 2_000_000);
        assert_eq!(
            TokenLoss::Hamming.page_loss(&a, &b),
            TokenLoss::Hamming.page_loss(&b, &a)
        );
    }

    #[test]
    fn neg_f1_is_one_minus_f1() {
        let a = toks("jane doe");
        let b = toks("jane smith");
        // P = R = 1/2 → F1 = 1/2 → loss 0.5
        assert_eq!(TokenLoss::NegF1.page_loss(&a, &b), 500_000);
        // Disjoint outputs: F1 = 0 → loss 1.
        assert_eq!(
            TokenLoss::NegF1.page_loss(&toks("x"), &toks("y")),
            1_000_000
        );
    }

    #[test]
    fn jaccard_distance() {
        let a = toks("jane doe");
        let b = toks("jane smith");
        // |∩| = 1, |∪| = 3 → distance 2/3
        assert_eq!(TokenLoss::Jaccard.page_loss(&a, &b), 666_667);
    }

    #[test]
    fn losses_order_outliers_consistently() {
        // A prediction close to the label loses less than a distant one,
        // under every loss.
        let label = toks("jane doe bob smith");
        let near = toks("jane doe bob");
        let far = toks("unrelated words entirely");
        for loss in [TokenLoss::Hamming, TokenLoss::NegF1, TokenLoss::Jaccard] {
            assert!(
                loss.page_loss(&near, &label) < loss.page_loss(&far, &label),
                "{loss:?}"
            );
        }
    }

    #[test]
    fn intersection_of_sorted_sets() {
        assert_eq!(intersection_size(&toks("a b c"), &toks("b c d")), 2);
        assert_eq!(intersection_size(&toks("a"), &[]), 0);
    }
}
