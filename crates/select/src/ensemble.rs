//! Ensemble construction and diagnostics.
//!
//! The transductive selector is built on an ensemble `Π_E` of optimal
//! programs (Section 6). This module exposes the ensemble itself —
//! member outputs, per-page soft labels `p(O | I, E)` (Eq. 6), the
//! majority-vote aggregate, and agreement statistics — so that callers
//! can inspect *why* a program was selected, and so the Table 4 benches
//! can report the variance the selector is reducing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webqa_dsl::{PageTree, Program, QueryContext};
use webqa_metrics::{tokenize_all, Token};

/// An ensemble of optimal programs with their precomputed outputs on the
/// unlabeled pages, grouped by behaviour.
#[derive(Debug, Clone)]
pub struct Ensemble {
    /// Distinct behaviours: per-page sorted token sets with the sampled
    /// weight (number of ensemble slots) and a representative program
    /// index into the original program list.
    groups: Vec<BehaviourGroup>,
    /// Total sampled weight (= the requested ensemble size).
    total_weight: u64,
    /// Number of unlabeled pages.
    pages: usize,
}

/// One behaviourally-distinct group of ensemble members.
#[derive(Debug, Clone)]
pub struct BehaviourGroup {
    /// Per-page extracted token sets (sorted, deduplicated).
    pub outputs: Vec<Vec<Token>>,
    /// Number of sampled ensemble slots with this behaviour.
    pub weight: u64,
    /// Index of a representative program in the input list.
    pub representative: usize,
}

impl Ensemble {
    /// Draws `size` i.i.d. members from `programs` (Eq. 5), evaluates each
    /// distinct member once on `unlabeled` (Eq. 8), and groups members
    /// with identical outputs.
    ///
    /// `unlabeled` is any slice viewable as `&PageTree` (plain trees or
    /// shared `Arc<PageTree>` handles).
    ///
    /// Returns `None` when `programs` is empty.
    pub fn sample<P: std::borrow::Borrow<PageTree>>(
        ctx: &QueryContext,
        programs: &[Program],
        unlabeled: &[P],
        size: usize,
        seed: u64,
    ) -> Option<Ensemble> {
        if programs.is_empty() || size == 0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut multiplicity: Vec<u64> = vec![0; programs.len()];
        for _ in 0..size {
            multiplicity[rng.gen_range(0..programs.len())] += 1;
        }
        let mut groups: Vec<BehaviourGroup> = Vec::new();
        for (i, &m) in multiplicity.iter().enumerate() {
            if m == 0 {
                continue;
            }
            let outputs: Vec<Vec<Token>> = unlabeled
                .iter()
                .map(|page| {
                    let mut t = tokenize_all(&programs[i].eval(ctx, page.borrow()));
                    t.sort();
                    t.dedup();
                    t
                })
                .collect();
            match groups.iter_mut().find(|g| g.outputs == outputs) {
                Some(g) => g.weight += m,
                None => groups.push(BehaviourGroup {
                    outputs,
                    weight: m,
                    representative: i,
                }),
            }
        }
        Some(Ensemble {
            groups,
            total_weight: size as u64,
            pages: unlabeled.len(),
        })
    }

    /// The behaviourally-distinct groups.
    pub fn groups(&self) -> &[BehaviourGroup] {
        &self.groups
    }

    /// Total sampled weight (the requested ensemble size).
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// The soft label for page `k`: each token with the fraction of
    /// ensemble weight that extracted it (the marginal of `p(O | I, E)`,
    /// Eq. 6). Tokens are in lexicographic order.
    pub fn soft_label(&self, page: usize) -> Vec<(Token, f64)> {
        assert!(page < self.pages, "page index out of range");
        let mut weights: std::collections::BTreeMap<&Token, u64> =
            std::collections::BTreeMap::new();
        for g in &self.groups {
            for t in &g.outputs[page] {
                *weights.entry(t).or_insert(0) += g.weight;
            }
        }
        weights
            .into_iter()
            .map(|(t, w)| (t.clone(), w as f64 / self.total_weight as f64))
            .collect()
    }

    /// The majority-vote aggregate output for page `k`: tokens extracted
    /// by more than half the ensemble weight. This is the "use the
    /// ensemble directly" alternative that Section 6 rejects for
    /// interpretability and cost — exposed here for comparison.
    pub fn majority_vote(&self, page: usize) -> Vec<Token> {
        self.soft_label(page)
            .into_iter()
            .filter(|&(_, w)| w > 0.5)
            .map(|(t, _)| t)
            .collect()
    }

    /// Agreement rate: the weight fraction of the single most common
    /// behaviour. 1.0 means every sampled member extracts exactly the
    /// same thing on every page (the ensemble is degenerate and selection
    /// is a no-op).
    pub fn agreement(&self) -> f64 {
        let max = self.groups.iter().map(|g| g.weight).max().unwrap_or(0);
        max as f64 / self.total_weight as f64
    }

    /// Number of behaviourally distinct groups.
    pub fn distinct_behaviours(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(src: &str) -> Program {
        src.parse().expect("valid program")
    }

    fn ctx() -> QueryContext {
        QueryContext::new("", ["Students"])
    }

    fn pages() -> Vec<PageTree> {
        vec![
            PageTree::parse("<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>"),
            PageTree::parse("<h1>B</h1><h2>Students</h2><ul><li>Bob Smith</li></ul>"),
        ]
    }

    #[test]
    fn empty_inputs_yield_no_ensemble() {
        assert!(Ensemble::sample(&ctx(), &[], &pages(), 100, 0).is_none());
        assert!(Ensemble::sample(
            &ctx(),
            &[prog("sat(root, true) -> content")],
            &pages(),
            0,
            0
        )
        .is_none());
    }

    #[test]
    fn weights_sum_to_ensemble_size() {
        let programs = vec![
            prog("sat(root, true) -> content"),
            prog("singleton(root) -> content"),
            prog("sat(descendants(root, leaf), true) -> content"),
        ];
        let e = Ensemble::sample(&ctx(), &programs, &pages(), 250, 11).unwrap();
        assert_eq!(e.groups().iter().map(|g| g.weight).sum::<u64>(), 250);
        assert_eq!(e.total_weight(), 250);
    }

    #[test]
    fn behavioural_grouping_merges_identical_programs() {
        // Two syntactically different programs with identical outputs on
        // these pages must land in one group.
        let programs = vec![
            prog("sat(descendants(root, leaf), true) -> content"),
            prog("sat(descendants(root, and(leaf, true)), true) -> content"),
        ];
        let e = Ensemble::sample(&ctx(), &programs, &pages(), 100, 3).unwrap();
        assert_eq!(e.distinct_behaviours(), 1);
        assert!((e.agreement() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn soft_labels_are_weight_fractions() {
        let programs = vec![
            prog("sat(descendants(root, leaf), true) -> content"), // extracts the names
            prog("sat(descendants(root, true), true) -> content"), // every node's text
        ];
        let e = Ensemble::sample(&ctx(), &programs, &pages(), 1000, 5).unwrap();
        let soft = e.soft_label(0);
        assert!(!soft.is_empty());
        for (_, w) in &soft {
            assert!(*w > 0.0 && *w <= 1.0);
        }
        // "jane" is extracted by both behaviours → weight 1.0.
        let jane = soft.iter().find(|(t, _)| t.as_str() == "jane");
        assert!(
            matches!(jane, Some((_, w)) if (w - 1.0).abs() < 1e-12),
            "{soft:?}"
        );
    }

    #[test]
    fn majority_vote_keeps_consensus_tokens() {
        let programs = vec![
            prog("sat(descendants(root, leaf), true) -> content"),
            prog("sat(descendants(root, elem), true) -> content"),
            prog("singleton(root) -> content"), // outlier: root text only
        ];
        let e = Ensemble::sample(&ctx(), &programs, &pages(), 999, 5).unwrap();
        let vote = e.majority_vote(0);
        assert!(vote.iter().any(|t| t.as_str() == "jane"), "{vote:?}");
        assert!(vote.iter().any(|t| t.as_str() == "doe"), "{vote:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn soft_label_checks_page_index() {
        let e = Ensemble::sample(
            &ctx(),
            &[prog("sat(root, true) -> content")],
            &pages(),
            10,
            0,
        )
        .unwrap();
        let _ = e.soft_label(2);
    }
}
