//! # webqa-select
//!
//! Program selection via transductive learning (Section 6 / Figure 11 of
//! the paper), plus the `Random` and `Shortest` baselines of Section 8.3.
//!
//! Synthesis returns *all* optimal programs — often hundreds. Most
//! generalize well; a sizable fraction do not. The transductive selector:
//!
//! 1. samples an ensemble `Π_E = {π₁…π_N}` i.i.d. from the optimal set
//!    (Eq. 5) — see [`Ensemble`];
//! 2. computes each member's outputs `O_j = (π_j(i₁)…π_j(i_K))` on the
//!    *unlabeled* pages (Eq. 8);
//! 3. returns `π* = argmin_π Σ_j L(π; I, O_j)` (Eq. 11) with `L` the
//!    Hamming distance between extracted word sets (Section 7) by
//!    default; [`TokenLoss`] provides the negative-F₁ and Jaccard
//!    alternatives.
//!
//! ```
//! use webqa_dsl::{PageTree, Program, QueryContext};
//! use webqa_select::{select_transductive, SelectionConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = QueryContext::new("", ["Students"]);
//! let programs: Vec<Program> = vec![
//!     "sat(root, true) -> content".parse()?,
//!     "singleton(root) -> content".parse()?,
//! ];
//! let unlabeled = vec![PageTree::parse("<h1>Jane Doe</h1>")];
//! let chosen = select_transductive(&SelectionConfig::default(), &ctx, &programs, &unlabeled);
//! assert!(chosen.is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod ensemble;
mod loss;

pub use ensemble::{BehaviourGroup, Ensemble};
pub use loss::TokenLoss;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webqa_dsl::{PageTree, Program, QueryContext};

/// Configuration of the transductive selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionConfig {
    /// Ensemble size `N` (paper default: 1000).
    pub ensemble_size: usize,
    /// RNG seed for the i.i.d. ensemble draw.
    pub seed: u64,
    /// The supervised loss `L` of Eq. 4 (default: Hamming, Section 7).
    pub loss: TokenLoss,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            ensemble_size: 1000,
            seed: 0x5EEDED,
            loss: TokenLoss::Hamming,
        }
    }
}

/// Figure 11: selects the ensemble member minimizing the expected loss
/// against the ensemble's own soft labels.
///
/// Accepts any page slice that can be viewed as `&PageTree` — plain
/// trees or the `Arc<PageTree>` handles the engine's page store hands
/// out, so selection never forces a deep copy.
///
/// Returns `None` when `programs` is empty.
pub fn select_transductive<P: std::borrow::Borrow<PageTree>>(
    cfg: &SelectionConfig,
    ctx: &QueryContext,
    programs: &[Program],
    unlabeled: &[P],
) -> Option<Program> {
    let ensemble = Ensemble::sample(ctx, programs, unlabeled, cfg.ensemble_size, cfg.seed)?;
    let winner = select_from_ensemble(&ensemble, cfg.loss)?;
    Some(programs[winner].clone())
}

/// Eq. 11 over a prebuilt ensemble: the representative program index of
/// the behaviour group minimizing `Σ_j w_j · L(π; I, O_j)`.
///
/// Ties break toward the earlier group (deterministic given the sampling
/// seed). Returns `None` for an empty ensemble.
pub fn select_from_ensemble(ensemble: &Ensemble, loss: TokenLoss) -> Option<usize> {
    let groups = ensemble.groups();
    let mut best: Option<(usize, u64)> = None;
    for (a, ga) in groups.iter().enumerate() {
        let mut total: u64 = 0;
        for gb in groups {
            let d: u64 = ga
                .outputs
                .iter()
                .zip(&gb.outputs)
                .map(|(x, y)| loss.page_loss(x, y))
                .sum();
            total = total.saturating_add(gb.weight.saturating_mul(d));
        }
        if best.is_none_or(|(_, l)| total < l) {
            best = Some((a, total));
        }
    }
    best.map(|(a, _)| groups[a].representative)
}

/// The `Random` baseline (Section 8.3): one optimal program uniformly at
/// random.
pub fn select_random(programs: &[Program], seed: u64) -> Option<Program> {
    if programs.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    Some(programs[rng.gen_range(0..programs.len())].clone())
}

/// The `Shortest` baseline (Section 8.3): uniformly random among the
/// programs of minimal AST size.
pub fn select_shortest(programs: &[Program], seed: u64) -> Option<Program> {
    if programs.is_empty() {
        return None;
    }
    let min = programs.iter().map(Program::size).min().expect("non-empty");
    let shortest: Vec<&Program> = programs.iter().filter(|p| p.size() == min).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    Some(shortest[rng.gen_range(0..shortest.len())].clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(src: &str) -> Program {
        src.parse().expect("valid program")
    }

    fn pages() -> Vec<PageTree> {
        vec![
            PageTree::parse(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>",
            ),
            PageTree::parse("<h1>B</h1><h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>"),
        ]
    }

    fn ctx() -> QueryContext {
        QueryContext::new("", ["Students"])
    }

    #[test]
    fn empty_program_set_selects_nothing() {
        let cfg = SelectionConfig::default();
        assert!(select_transductive(&cfg, &ctx(), &[], &pages()).is_none());
        assert!(select_random(&[], 1).is_none());
        assert!(select_shortest(&[], 1).is_none());
    }

    #[test]
    fn singleton_set_is_returned() {
        let p = prog("sat(root, true) -> content");
        let cfg = SelectionConfig::default();
        let sel = select_transductive(&cfg, &ctx(), std::slice::from_ref(&p), &pages()).unwrap();
        assert_eq!(sel, p);
    }

    #[test]
    fn consensus_program_wins() {
        // Three programs extract the student names (consensus); one
        // extracts the page root (outlier). The outlier must not be chosen.
        let consensus =
            prog("sat(descendants(descendants(root, text(kw(0.80))), leaf), true) -> content");
        let consensus2 = prog("sat(descendants(root, elem), true) -> content");
        let consensus3 =
            prog("sat(descendants(descendants(root, text(kw(0.80))), true), true) -> content");
        let outlier = prog("singleton(root) -> content");
        let programs = vec![consensus.clone(), consensus2, consensus3, outlier.clone()];
        let cfg = SelectionConfig {
            ensemble_size: 400,
            seed: 7,
            ..Default::default()
        };
        let sel = select_transductive(&cfg, &ctx(), &programs, &pages()).unwrap();
        assert_ne!(
            sel, outlier,
            "the outlier disagrees with the ensemble consensus"
        );
    }

    #[test]
    fn all_losses_reject_the_outlier() {
        let programs = vec![
            prog("sat(descendants(root, leaf), true) -> content"),
            prog("sat(descendants(root, elem), true) -> content"),
            prog("singleton(root) -> content"),
        ];
        let outlier = programs[2].clone();
        for loss in [TokenLoss::Hamming, TokenLoss::NegF1, TokenLoss::Jaccard] {
            let cfg = SelectionConfig {
                ensemble_size: 600,
                seed: 13,
                loss,
            };
            let sel = select_transductive(&cfg, &ctx(), &programs, &pages()).unwrap();
            assert_ne!(sel, outlier, "loss {loss:?} chose the outlier");
        }
    }

    #[test]
    fn transductive_is_deterministic_given_seed() {
        let programs = vec![
            prog("sat(root, true) -> content"),
            prog("singleton(root) -> content"),
            prog("sat(descendants(root, leaf), true) -> content"),
        ];
        let cfg = SelectionConfig {
            ensemble_size: 50,
            seed: 3,
            ..Default::default()
        };
        let a = select_transductive(&cfg, &ctx(), &programs, &pages());
        let b = select_transductive(&cfg, &ctx(), &programs, &pages());
        assert_eq!(a, b);
    }

    #[test]
    fn shortest_picks_minimal_size() {
        let small = prog("singleton(root) -> content");
        let big = prog(
            "sat(descendants(descendants(root, text(kw(0.80))), leaf), true) -> \
             filter(split(content, ','), kw(0.50))",
        );
        let sel = select_shortest(&[big.clone(), small.clone()], 9).unwrap();
        assert_eq!(sel, small);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let programs = vec![
            prog("singleton(root) -> content"),
            prog("sat(root, true) -> content"),
        ];
        assert_eq!(select_random(&programs, 5), select_random(&programs, 5));
    }

    #[test]
    fn random_varies_across_seeds() {
        let programs: Vec<Program> = vec![
            prog("singleton(root) -> content"),
            prog("sat(root, true) -> content"),
            prog("sat(root, answer) -> content"),
            prog("sat(descendants(root, leaf), true) -> content"),
        ];
        let picks: std::collections::HashSet<String> = (0..20)
            .map(|s| select_random(&programs, s).unwrap().to_string())
            .collect();
        assert!(picks.len() > 1, "20 seeds should not all agree");
    }
}
