//! The HYB baseline (Raza & Gulwani 2020, Section 8.1): wrapper induction
//! by hybrid top-down/bottom-up XPath inference.
//!
//! Faithful to the two properties the paper's failure analysis identifies:
//!
//! 1. HYB requires programs that **exactly** reproduce the labels — when
//!    no XPath selects exactly the labeled strings, training fails;
//! 2. HYB selects whole DOM nodes — it cannot perform sub-node string
//!    processing (splitting a comma list, extracting an entity span).
//!
//! Training: find, on each labeled page, the DOM nodes whose text equals a
//! label; generalize their concrete paths top-down (dropping positions,
//! suffixing with `//`); keep candidates that reproduce every page's
//! labels exactly (bottom-up verification).

use std::collections::HashSet;

use webqa_html::query::{concrete_path, PathExpr, Step};
use webqa_html::{parse_html, Document};

/// A trained HYB wrapper: an XPath-style selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hyb {
    path: PathExpr,
}

/// Why HYB training failed (mirrors the paper's "synthesis fails in
/// several cases").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HybError {
    /// A labeled string is not the exact text of any DOM node — HYB cannot
    /// express sub-node extraction.
    LabelNotANode(String),
    /// No generalized path reproduces all labels exactly on every page.
    NoConsistentPath,
    /// No training pages with non-empty labels were provided.
    NoLabels,
}

impl std::fmt::Display for HybError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HybError::LabelNotANode(l) => {
                write!(f, "label {l:?} does not correspond to a DOM node")
            }
            HybError::NoConsistentPath => write!(f, "no XPath reproduces all labels exactly"),
            HybError::NoLabels => write!(f, "no labeled examples"),
        }
    }
}

impl std::error::Error for HybError {}

impl Hyb {
    /// Trains a wrapper from `(html, labels)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`HybError`] when exact wrapper induction is impossible —
    /// the common case on heterogeneous pages, per the paper's analysis.
    pub fn train(examples: &[(String, Vec<String>)]) -> Result<Hyb, HybError> {
        if examples.iter().all(|(_, gold)| gold.is_empty()) {
            return Err(HybError::NoLabels);
        }
        let docs: Vec<Document> = examples.iter().map(|(h, _)| parse_html(h)).collect();

        // Step 1 (top-down): on the first labeled page, locate the DOM node
        // of every label and collect candidate generalizations.
        let mut candidates: Vec<PathExpr> = Vec::new();
        let first = examples
            .iter()
            .position(|(_, gold)| !gold.is_empty())
            .expect("checked above");
        let doc = &docs[first];
        for label in &examples[first].1 {
            let node = find_exact_node(doc, label)
                .ok_or_else(|| HybError::LabelNotANode(label.clone()))?;
            let concrete = concrete_path(doc, node).ok_or(HybError::NoConsistentPath)?;
            candidates.extend(generalize(&concrete));
        }

        // Step 2 (bottom-up): prefer a candidate that reproduces every
        // page's labels exactly; otherwise fall back to the candidate
        // exact on the most pages (the deployed system still emits its
        // best wrapper — this is where HYB's small-but-nonzero scores on
        // heterogeneous data come from). A candidate exact on no page at
        // all is a failure.
        let mut best: Option<(usize, PathExpr)> = None;
        for cand in candidates {
            let exact_pages = examples
                .iter()
                .zip(&docs)
                .filter(|((_, gold), doc)| {
                    let got: HashSet<String> = cand
                        .select(doc)
                        .into_iter()
                        .map(|n| doc.text_content(n))
                        .collect();
                    let want: HashSet<String> = gold.iter().cloned().collect();
                    got == want
                })
                .count();
            if exact_pages == examples.len() {
                return Ok(Hyb { path: cand });
            }
            if exact_pages > 0 && best.as_ref().is_none_or(|(n, _)| exact_pages > *n) {
                best = Some((exact_pages, cand));
            }
        }
        match best {
            Some((_, path)) => Ok(Hyb { path }),
            None => Err(HybError::NoConsistentPath),
        }
    }

    /// Applies the wrapper to a new page.
    pub fn extract(&self, html: &str) -> Vec<String> {
        let doc = parse_html(html);
        self.path
            .select(&doc)
            .into_iter()
            .map(|n| doc.text_content(n))
            .collect()
    }

    /// The learned selector.
    pub fn path(&self) -> &PathExpr {
        &self.path
    }
}

/// Finds a DOM node whose *exact* text content equals `label`.
fn find_exact_node(doc: &Document, label: &str) -> Option<webqa_html::NodeId> {
    doc.iter()
        .find(|&n| doc.tag(n).is_some() && doc.text_content(n) == label)
}

/// Candidate generalizations of a concrete path, most specific first:
/// the full positional path, the position-free path, `//`-anchored
/// suffixes of length 2 and 1.
fn generalize(path: &PathExpr) -> Vec<PathExpr> {
    let steps = path.steps();
    let mut out = vec![path.clone()];
    // Drop all positional predicates.
    let no_pos: Vec<Step> = steps
        .iter()
        .map(|s| Step {
            position: None,
            ..s.clone()
        })
        .collect();
    out.push(PathExpr::from_steps(no_pos.clone()));
    // Anchored suffixes: //parent/child and //child.
    if no_pos.len() >= 2 {
        let mut suffix2 = no_pos[no_pos.len() - 2..].to_vec();
        suffix2[0].descendant = true;
        out.push(PathExpr::from_steps(suffix2));
    }
    if let Some(last) = no_pos.last() {
        out.push(PathExpr::from_steps(vec![Step {
            descendant: true,
            ..last.clone()
        }]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIFORM_A: &str =
        "<html><body><div class='list'><ul><li>alpha</li><li>beta</li></ul></div></body></html>";
    const UNIFORM_B: &str =
        "<html><body><div class='list'><ul><li>gamma</li></ul></div></body></html>";

    #[test]
    fn learns_wrapper_on_uniform_schema() {
        let examples = vec![
            (
                UNIFORM_A.to_string(),
                vec!["alpha".to_string(), "beta".to_string()],
            ),
            (UNIFORM_B.to_string(), vec!["gamma".to_string()]),
        ];
        let hyb = Hyb::train(&examples).expect("uniform schema is learnable");
        let out = hyb.extract(
            "<html><body><div class='list'><ul><li>x</li><li>y</li></ul></div></body></html>",
        );
        assert_eq!(out, vec!["x", "y"]);
    }

    #[test]
    fn fails_when_label_is_substring_of_node() {
        // The label is part of a node's text, not a whole node: HYB cannot
        // express it (no sub-node string processing).
        let html = "<html><body><p>PLDI '21 (PC), CAV '20 (PC)</p></body></html>";
        let examples = vec![(html.to_string(), vec!["PLDI '21 (PC)".to_string()])];
        assert!(matches!(
            Hyb::train(&examples),
            Err(HybError::LabelNotANode(_))
        ));
    }

    #[test]
    fn heterogeneous_layouts_yield_a_non_generalizing_wrapper() {
        // Page 1 keeps items in a list, page 2 in paragraphs at a
        // different depth — no single generalized path matches both
        // exactly, so the fallback wrapper is exact on page 1 only and
        // extracts garbage on page 2 (the paper's low-recall HYB rows).
        let a = "<html><body><ul><li>one</li></ul><p>noise</p></body></html>";
        let b = "<html><body><div><div><p>two</p><ul><li>junk</li></ul></div></div></body></html>";
        let examples = vec![
            (a.to_string(), vec!["one".to_string()]),
            (b.to_string(), vec!["two".to_string()]),
        ];
        let hyb = Hyb::train(&examples).expect("fallback wrapper");
        assert_eq!(hyb.extract(a), vec!["one"]);
        assert_ne!(hyb.extract(b), vec!["two"]);
    }

    #[test]
    fn fails_when_any_label_is_not_a_node() {
        let a = "<html><body><ul><li>one</li><li>distractor</li></ul></body></html>";
        let examples = vec![(
            a.to_string(),
            vec!["one".to_string(), "missing label".to_string()],
        )];
        assert!(matches!(
            Hyb::train(&examples),
            Err(HybError::LabelNotANode(_))
        ));
    }

    #[test]
    fn no_labels_error() {
        let examples = vec![("<p>x</p>".to_string(), vec![])];
        assert!(matches!(Hyb::train(&examples), Err(HybError::NoLabels)));
    }

    #[test]
    fn positional_path_used_when_needed() {
        // Only the second li is labeled: the position-free generalization
        // over-selects, so training must keep the positional path.
        let a = "<html><body><ul><li>skip</li><li>keep</li></ul></body></html>";
        let b = "<html><body><ul><li>alpha</li><li>beta</li></ul></body></html>";
        let examples = vec![
            (a.to_string(), vec!["keep".to_string()]),
            (b.to_string(), vec!["beta".to_string()]),
        ];
        let hyb = Hyb::train(&examples).expect("positional wrapper exists");
        assert_eq!(hyb.extract(a), vec!["keep"]);
    }
}
