//! The BERTQA baseline (Section 8.1): a state-of-the-art textual QA
//! system fed the *entire webpage as flat text*.
//!
//! Its characteristic failure mode — which Table 2 quantifies — is
//! structural: it returns a single best span per page, so recall collapses
//! on tasks whose answers are many separate items, and it has no access to
//! the tree structure that disambiguates sections.

use webqa_html::parse_html;
use webqa_nlp::QaModel;

/// The flat-text QA baseline.
#[derive(Debug, Clone, Default)]
pub struct BertQa {
    model: QaModel,
}

impl BertQa {
    /// Creates the baseline with the pretrained QA model.
    pub fn new() -> Self {
        BertQa {
            model: QaModel::pretrained(),
        }
    }

    /// Answers `question` on a webpage by flattening it to text and
    /// extracting the single best span (empty when the model abstains).
    pub fn answer_page(&self, question: &str, html: &str) -> Vec<String> {
        let doc = parse_html(html);
        let text = doc.text_content(doc.root());
        match self.model.answer(&text, question) {
            Some(a) => vec![a.text],
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_single_fact_question() {
        let html = "<h1>CS 101</h1><h2>Staff</h2><p>Instructor: Jane Doe.</p>";
        let out = BertQa::new().answer_page("Who is the instructor?", html);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("Jane Doe"), "got {out:?}");
    }

    #[test]
    fn returns_at_most_one_span() {
        // Multi-answer content: the baseline structurally cannot return
        // all three names.
        let html = "<h1>R</h1><h2>Students</h2>\
                    <ul><li>Jane Doe</li><li>Bob Smith</li><li>Mary Anderson</li></ul>";
        let out = BertQa::new().answer_page("Who are the students?", html);
        assert!(out.len() <= 1);
    }

    #[test]
    fn abstains_on_empty_page() {
        assert!(BertQa::new().answer_page("Who?", "").is_empty());
    }

    #[test]
    fn deterministic() {
        let html = "<h1>X</h1><p>Deadline: January 5, 2026.</p>";
        let q = "When is the deadline?";
        let b = BertQa::new();
        assert_eq!(b.answer_page(q, html), b.answer_page(q, html));
    }
}
