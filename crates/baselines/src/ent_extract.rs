//! The EntExtract baseline (Pasupat & Liang 2014, Section 8.1):
//! zero-shot entity/list extraction from a webpage given only a natural-
//! language query.
//!
//! The method finds *repeated structures* (lists, table columns) on the
//! page, scores each against the query's expected entity type, and
//! returns the best-scoring collection. The paper's failure analysis —
//! "it often returns irrelevant answers (e.g., publications instead of
//! students)" — falls out naturally: on pages with several lists, a weak
//! zero-shot signal frequently picks the wrong one.

use webqa_html::{parse_html, Document, NodeId};
use webqa_nlp::{AnswerType, EntityKind, EntityRecognizer, QaModel};

/// The zero-shot list-extraction baseline.
#[derive(Debug, Clone, Default)]
pub struct EntExtract {
    ner: EntityRecognizer,
}

impl EntExtract {
    /// Creates the baseline with the pretrained NER model.
    pub fn new() -> Self {
        EntExtract {
            ner: EntityRecognizer::pretrained(),
        }
    }

    /// Extracts the best repeated structure for `query` from the page.
    pub fn extract(&self, query: &str, html: &str) -> Vec<String> {
        let doc = parse_html(html);
        let groups = repeated_structures(&doc);
        if groups.is_empty() {
            return Vec::new();
        }
        let want = QaModel::answer_type(query);
        let mut best: Option<(f64, Vec<String>)> = None;
        for items in groups {
            let score = self.score(&items, want);
            match &best {
                Some((s, _)) if *s >= score => {}
                _ => best = Some((score, items)),
            }
        }
        best.map(|(_, items)| items).unwrap_or_default()
    }

    /// Fraction of items whose content matches the expected entity type
    /// (plus a weak size prior — zero-shot systems prefer bigger lists).
    fn score(&self, items: &[String], want: AnswerType) -> f64 {
        let kind = match want {
            AnswerType::Person => Some(EntityKind::Person),
            AnswerType::DateTime => Some(EntityKind::Date),
            AnswerType::Location => Some(EntityKind::Location),
            AnswerType::Money => Some(EntityKind::Money),
            AnswerType::Other => None,
        };
        let type_frac = match kind {
            Some(k) => {
                items.iter().filter(|s| self.ner.has_entity(s, k)).count() as f64
                    / items.len() as f64
            }
            // No typed signal at all: every list looks equally plausible.
            None => 0.5,
        };
        type_frac + 0.01 * (items.len().min(20) as f64)
    }
}

/// Collects the repeated structures of the page: the items of each list
/// (`ul`/`ol`) and the rows of each table.
fn repeated_structures(doc: &Document) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for n in doc.iter() {
        match doc.tag(n) {
            Some("ul" | "ol") => {
                let items = child_texts(doc, n, "li");
                if items.len() >= 2 {
                    out.push(items);
                }
            }
            Some("table") => {
                let rows: Vec<String> = doc
                    .descendants(n)
                    .skip(1)
                    .filter(|&d| doc.tag(d) == Some("tr"))
                    .map(|d| doc.text_content(d))
                    .filter(|t| !t.is_empty())
                    .collect();
                if rows.len() >= 2 {
                    out.push(rows);
                }
            }
            _ => {}
        }
    }
    out
}

fn child_texts(doc: &Document, parent: NodeId, tag: &str) -> Vec<String> {
    doc.child_elements(parent)
        .into_iter()
        .filter(|&c| doc.tag(c) == Some(tag))
        .map(|c| doc.text_content(c))
        .filter(|t| !t.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = "<h1>R</h1>\
        <h2>Publications</h2><ul><li>Paper about synthesis. PLDI 2020.</li>\
        <li>Paper about typing. POPL 2019.</li></ul>\
        <h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>";

    #[test]
    fn person_query_prefers_person_list() {
        let out = EntExtract::new().extract("Who are the students?", PAGE);
        assert_eq!(out, vec!["Jane Doe", "Bob Smith"]);
    }

    #[test]
    fn untyped_query_may_pick_an_irrelevant_list() {
        // "What are the topics of interest?" carries no entity type; the
        // baseline falls back to a weak size prior and simply takes some
        // list — the paper's "returns irrelevant answers" behaviour.
        let out = EntExtract::new().extract("What are the topics of interest?", PAGE);
        assert!(!out.is_empty());
    }

    #[test]
    fn empty_page_extracts_nothing() {
        assert!(EntExtract::new().extract("Who?", "").is_empty());
        assert!(EntExtract::new()
            .extract("Who?", "<p>no lists here</p>")
            .is_empty());
    }

    #[test]
    fn table_rows_are_a_repeated_structure() {
        let html = "<table><tr><td>Jane Doe</td></tr><tr><td>Bob Smith</td></tr></table>";
        let out = EntExtract::new().extract("Who are the doctors?", html);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn deterministic() {
        let e = EntExtract::new();
        assert_eq!(e.extract("Who?", PAGE), e.extract("Who?", PAGE));
    }
}
