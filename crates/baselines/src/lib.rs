//! # webqa-baselines
//!
//! The three comparison systems of the paper's evaluation (Section 8.1):
//!
//! * [`BertQa`] — a textual QA model over the flattened page (single best
//!   span; collapses on multi-answer tasks);
//! * [`Hyb`] — wrapper induction à la Raza & Gulwani 2020 (exact-match
//!   XPath inference; fails when labels need sub-node string processing
//!   or when layouts are heterogeneous);
//! * [`EntExtract`] — zero-shot entity/list extraction à la Pasupat &
//!   Liang 2014 (picks a repeated structure by expected entity type;
//!   often an irrelevant one).
//!
//! Each reimplementation preserves the *failure modes* the paper's
//! analysis attributes to the original systems — that is what Table 2's
//! comparison shape depends on.

#![warn(missing_docs)]

mod bert_qa;
mod ent_extract;
mod hyb;

pub use bert_qa::BertQa;
pub use ent_extract::EntExtract;
pub use hyb::{Hyb, HybError};
