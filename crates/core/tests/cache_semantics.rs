//! Cache-invalidation property tests: arbitrary interleavings of
//! `FeatureStore` hits, LRU evictions, and re-insertions must be
//! observationally invisible.
//!
//! The discipline extends the `SynthConfig::reference()` pattern one
//! layer up: where `tests/synth_parity.rs` holds the optimized search
//! kernels equal to a definitional slow path, this suite holds a
//! *cached* engine equal to the never-cached reference path
//! (`CacheConfig::disabled()`). The cached engine runs with
//! deliberately tiny capacities, so a random task sequence constantly
//! hits, evicts, and re-inserts both the feature tables and the
//! completed-run LRU — and every single result is compared against the
//! reference engine field by field (programs, `Counts`, F₁, answers,
//! and the full `SynthStats`).
//!
//! The on-disk snapshot tier extends the same obligation across a
//! process boundary: persist → reload → re-run must equal the
//! never-cached reference, and a crash-truncated snapshot must degrade
//! to a cold miss — never a wrong answer.

use proptest::prelude::*;

use webqa::{CacheConfig, Config, Engine, PageStore, PersistSink, SynthConfig, Task};

/// The task pool: overlapping page/question combinations so feature keys
/// are shared across tasks (hits), and enough *distinct* (page, query)
/// keys — 10, over the store's 8 shards — that a capacity-1 feature
/// store is guaranteed evictions by pigeonhole, whatever the shard hash.
fn task_pool(store: &mut PageStore) -> Vec<Task> {
    let a = store
        .insert_html("<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>")
        .unwrap();
    let b = store
        .insert_html("<h1>B</h1><h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>")
        .unwrap();
    let c = store
        .insert_html("<h1>C</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>")
        .unwrap();
    let d = store
        .insert_html("<h1>D</h1><h2>Students</h2><ul><li>Elena Petrov</li></ul>")
        .unwrap();
    let e = store
        .insert_html(
            "<h1>E</h1><h2>Office Hours</h2><p>Tue 2pm</p><h2>Exams</h2><p>May 12, 2021</p>",
        )
        .unwrap();

    let students = || Task::new("Who are the current PhD students?", ["Students", "PhD"]);
    vec![
        // 0–2: shared labeled pages under one question, three target
        // variants — same feature keys, distinct result keys.
        students()
            .with_label(a, vec!["Jane Doe".into(), "Bob Smith".into()])
            .with_label(b, vec!["Mary Anderson".into()])
            .with_target(c),
        students()
            .with_label(a, vec!["Jane Doe".into(), "Bob Smith".into()])
            .with_label(b, vec!["Mary Anderson".into()])
            .with_target(d),
        students()
            .with_label(a, vec!["Jane Doe".into(), "Bob Smith".into()])
            .with_label(b, vec!["Mary Anderson".into()])
            .with_target(c)
            .with_target(d),
        // 3–6: other questions over overlapping pages — each (page,
        // query) pair is its own feature key, 8 more in total.
        Task::new("Who are the advisees?", ["Advisees"])
            .with_label(c, vec!["Wei Chen".into()])
            .with_target(a)
            .with_target(d),
        Task::new("When is the exam?", ["Exams"])
            .with_label(e, vec!["May 12, 2021".into()])
            .with_target(a),
        Task::new("Who is on the roster?", ["Students"])
            .with_label(a, vec!["Jane Doe".into(), "Bob Smith".into()])
            .with_label(d, vec!["Elena Petrov".into()])
            .with_target(b),
        Task::new("Who works with the group?", ["Advisees", "Students"])
            .with_label(c, vec!["Wei Chen".into()])
            .with_label(d, vec!["Elena Petrov".into()])
            .with_label(e, vec![])
            .with_target(a),
    ]
}

fn base_config() -> Config {
    Config {
        synth: SynthConfig::fast(),
        ..Config::default()
    }
}

fn engine_with(cache: CacheConfig, store: PageStore) -> Engine {
    Engine::with_store(
        Config {
            cache,
            ..base_config()
        },
        store,
    )
}

/// Runs `seq` through `cached` and the never-cached `reference`,
/// asserting field-by-field equality at every step.
fn assert_sequence_equal(cached: &Engine, reference: &Engine, tasks: &[Task], seq: &[usize]) {
    for (step, &i) in seq.iter().enumerate() {
        let got = cached.run(&tasks[i]).expect("store-issued ids resolve");
        let want = reference.run(&tasks[i]).expect("store-issued ids resolve");
        assert_eq!(got.program, want.program, "program, step {step} task {i}");
        assert_eq!(got.answers, want.answers, "answers, step {step} task {i}");
        assert_eq!(
            got.synthesis.f1, want.synthesis.f1,
            "F1, step {step} task {i}"
        );
        assert_eq!(
            got.synthesis.counts, want.synthesis.counts,
            "counts, step {step} task {i}"
        );
        assert_eq!(
            got.synthesis.total_optimal, want.synthesis.total_optimal,
            "total_optimal, step {step} task {i}"
        );
        assert_eq!(
            got.synthesis.stats, want.synthesis.stats,
            "stats, step {step} task {i}"
        );
        assert_eq!(
            got.synthesis.programs, want.synthesis.programs,
            "program set, step {step} task {i}"
        );
    }
}

/// A semantically equivalent spelling of `task`: keywords rotated by
/// `salt` (and, for odd salts, the lead keyword repeated), gold strings
/// of every labeled example rotated by `salt`. These are exactly the
/// reorderings the result LRU's canonical task key folds together;
/// example and target order are deliberately left untouched (the
/// pipeline observes both).
fn respelled(task: &Task, salt: usize) -> Task {
    let mut t = task.clone();
    if !t.keywords.is_empty() {
        let by = salt % t.keywords.len();
        t.keywords.rotate_left(by);
        if salt % 2 == 1 {
            t.keywords.push(t.keywords[0].clone());
        }
    }
    for (_, gold) in &mut t.labeled {
        if !gold.is_empty() {
            let by = salt % gold.len();
            gold.rotate_left(by);
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any interleaving of tasks through a thrashing cached engine
    /// (capacity 1 — every insert is an eviction somewhere) equals the
    /// never-cached reference, result for result.
    fn cached_engine_equals_never_cached_reference(
        seq in proptest::collection::vec(0usize..7, 1..16),
    ) {
        let mut store = PageStore::new();
        let tasks = task_pool(&mut store);
        let cached = engine_with(
            CacheConfig { feature_capacity: 1, result_capacity: 1 },
            store.clone(),
        );
        let reference = engine_with(CacheConfig::disabled(), store);
        assert_sequence_equal(&cached, &reference, &tasks, &seq);
        // The reference engine must really be the never-cached path.
        prop_assert_eq!(reference.cache_stats().feature_hits, 0);
        prop_assert_eq!(reference.cache_stats().result_hits, 0);
    }

    /// Key normalization is observationally invisible: a cached engine
    /// fed arbitrarily *respelled* requests (rotated/duplicated
    /// keywords, rotated gold) — where a respelled repeat may be served
    /// from an entry its differently-spelled predecessor filled — still
    /// equals the never-cached reference run of each exact request.
    fn normalized_keys_equal_never_cached_reference(
        seq in proptest::collection::vec((0usize..7, 0usize..5), 1..12),
    ) {
        let mut store = PageStore::new();
        let tasks = task_pool(&mut store);
        let cached = engine_with(
            CacheConfig { feature_capacity: 64, result_capacity: 8 },
            store.clone(),
        );
        let reference = engine_with(CacheConfig::disabled(), store);
        let variants: Vec<Task> = seq
            .iter()
            .map(|&(i, salt)| respelled(&tasks[i], salt))
            .collect();
        let steps: Vec<usize> = (0..variants.len()).collect();
        assert_sequence_equal(&cached, &reference, &variants, &steps);
    }
}

/// Deterministic companion pinning that the proptest's cache behaviors
/// actually occur (it must not silently degenerate into testing an idle
/// cache): a warm engine demonstrates hits, a capacity-1 engine
/// demonstrates evictions and re-insertion-after-eviction — with
/// semantics checked against the reference throughout.
#[test]
fn fixed_sequence_exercises_hits_evictions_and_reinsertions() {
    let mut store = PageStore::new();
    let tasks = task_pool(&mut store);
    let reference = engine_with(CacheConfig::disabled(), store.clone());

    // Warm engine: features comfortably resident, result LRU of 2 over
    // 7 distinct tasks — immediate repeats hit, the round-robin evicts,
    // and returning to an evicted task forces a re-insertion.
    let warm = engine_with(
        CacheConfig {
            feature_capacity: 64,
            result_capacity: 2,
        },
        store.clone(),
    );
    let seq = [0usize, 0, 1, 2, 3, 4, 5, 6, 0, 0, 1, 1];
    assert_sequence_equal(&warm, &reference, &tasks, &seq);
    let stats = warm.cache_stats();
    assert!(stats.feature_hits > 0, "no feature hits: {stats:?}");
    assert_eq!(
        stats.result_hits, 3,
        "the three immediate repeats must hit: {stats:?}"
    );
    assert!(stats.result_evictions > 0, "no LRU evictions: {stats:?}");
    assert!(
        stats.result_misses > 7,
        "returning to evicted tasks must re-miss (re-insertion), 7 distinct tasks: {stats:?}"
    );

    // Thrashing engine: 10 distinct (page, query) feature keys over 8
    // shards at one entry per shard — pigeonhole guarantees evictions
    // regardless of the shard hash; the second pass re-inserts.
    let thrash = engine_with(
        CacheConfig {
            feature_capacity: 1,
            result_capacity: 1,
        },
        store,
    );
    let all_then_all = [0usize, 1, 2, 3, 4, 5, 6, 0, 1, 2, 3, 4, 5, 6];
    assert_sequence_equal(&thrash, &reference, &tasks, &all_then_all);
    let stats = thrash.cache_stats();
    assert!(
        stats.feature_evictions > 0,
        "10 keys into 8 single-entry shards must evict: {stats:?}"
    );
    assert!(stats.result_evictions > 0, "no result evictions: {stats:?}");
}

/// The soundness basis for key normalization, pinned at the engine level
/// with caches disabled: the pipeline itself is invariant to keyword
/// order, keyword duplication, and gold order within an example — while
/// labeled-example order is *observed* (a reordering may legitimately
/// change the selected program), which is why the canonical key leaves
/// it alone.
#[test]
fn pipeline_is_invariant_to_keyword_and_gold_order_only() {
    let mut store = PageStore::new();
    let tasks = task_pool(&mut store);
    let engine = engine_with(CacheConfig::disabled(), store);

    for (i, task) in tasks.iter().enumerate() {
        let base = engine.run(task).expect("store-issued ids resolve");
        for salt in 1..4 {
            let variant = respelled(task, salt);
            let got = engine.run(&variant).expect("store-issued ids resolve");
            assert_eq!(base.program, got.program, "program, task {i} salt {salt}");
            assert_eq!(base.answers, got.answers, "answers, task {i} salt {salt}");
            assert_eq!(
                base.synthesis.stats, got.synthesis.stats,
                "stats, task {i} salt {salt}"
            );
        }
    }
}

/// Reordered-input requests are *actual* cache hits (not just equal
/// bytes): the respelled repeat is served from the entry its
/// differently-spelled predecessor filled, and a reordering the
/// pipeline observes (labeled-example order) correctly misses.
#[test]
fn reordered_requests_hit_the_result_cache() {
    let mut store = PageStore::new();
    let tasks = task_pool(&mut store);
    let reference = engine_with(CacheConfig::disabled(), store.clone());
    let cached = engine_with(
        CacheConfig {
            feature_capacity: 64,
            result_capacity: 8,
        },
        store,
    );

    // Cold fill, then three equivalent respellings: every one a hit,
    // every one byte-equal to the reference run of its exact spelling.
    cached.run(&tasks[0]).expect("store-issued ids resolve");
    assert_eq!(cached.cache_stats().result_hits, 0);
    for salt in 1..4 {
        let variant = respelled(&tasks[0], salt);
        let got = cached.run(&variant).expect("store-issued ids resolve");
        let want = reference.run(&variant).expect("store-issued ids resolve");
        assert_eq!(got.program, want.program, "salt {salt}");
        assert_eq!(got.answers, want.answers, "salt {salt}");
        assert_eq!(got.synthesis.stats, want.synthesis.stats, "salt {salt}");
    }
    let stats = cached.cache_stats();
    assert_eq!(
        stats.result_hits, 3,
        "every respelled repeat must hit: {stats:?}"
    );
    assert_eq!(stats.result_misses, 1, "one cold fill only: {stats:?}");

    // Flipping labeled-example order is NOT equivalent; it must miss
    // (and still match the reference for that exact ordering).
    let mut flipped = tasks[0].clone();
    flipped.labeled.reverse();
    let got = cached.run(&flipped).expect("store-issued ids resolve");
    let want = reference.run(&flipped).expect("store-issued ids resolve");
    assert_eq!(got.program, want.program);
    assert_eq!(got.answers, want.answers);
    let stats = cached.cache_stats();
    assert_eq!(
        stats.result_misses, 2,
        "example order is significant; the flip must miss: {stats:?}"
    );
}

/// A fresh, collision-free snapshot directory under the system temp
/// dir. Any leftover from a previous (crashed) run is removed first so
/// every test starts from an empty snapshot.
fn snapshot_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "webqa-cache-semantics-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `seq` through a persisting warm engine and spills its snapshot
/// into `dir`, returning the task pool's page HTML order implicitly via
/// `task_pool` (content-addressed, so a reloading store re-issues the
/// same ids).
fn spill_after(dir: &std::path::Path, seq: &[usize]) {
    let mut store = PageStore::new();
    let tasks = task_pool(&mut store);
    let warm = engine_with(
        CacheConfig {
            feature_capacity: 64,
            result_capacity: 8,
        },
        store,
    )
    .with_persist(PersistSink::open(dir).expect("temp snapshot dir is writable"));
    for &i in seq {
        warm.run(&tasks[i]).expect("store-issued ids resolve");
    }
    warm.spill_snapshot();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Persistence across a process boundary is observationally
    /// invisible: run a sequence, spill the snapshot, reload it into a
    /// brand-new engine, and the re-run equals the never-cached
    /// reference result for result — while the reload demonstrably
    /// serves the base-feature tier from disk (hits, zero corruption).
    fn persisted_reload_equals_never_cached_reference(
        seq in proptest::collection::vec(0usize..7, 1..12),
    ) {
        // Each proptest case needs its own directory: cases run in one
        // process, and a shared snapshot would leak state across cases.
        static CASE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = snapshot_dir(&format!("reload-{case}"));

        spill_after(&dir, &seq);

        // Second life: empty store, warm disk. `task_pool` re-interns
        // the same HTML, and content addressing dedups it onto the
        // snapshot-loaded pages, so the seeded base tables are keyed by
        // exactly the ids the tasks reference.
        let mut reloaded = engine_with(
            CacheConfig { feature_capacity: 64, result_capacity: 8 },
            PageStore::new(),
        )
        .with_persist(PersistSink::open(&dir).expect("temp snapshot dir is writable"));
        reloaded.load_snapshot();
        let loaded = reloaded.persist_stats();
        prop_assert!(loaded.pages_loaded > 0, "spill left no pages: {loaded:?}");
        prop_assert!(loaded.base_loaded > 0, "spill left no base tables: {loaded:?}");
        prop_assert_eq!(loaded.corrupt_skipped, 0);
        let tasks = task_pool(reloaded.store_mut());

        let reference = engine_with(CacheConfig::disabled(), reloaded.store().clone());
        assert_sequence_equal(&reloaded, &reference, &tasks, &seq);

        // The equality above must have been earned *through* the disk
        // tier: every task touches labeled pages whose base tables were
        // spilled in the first life, so the re-run hits the seeded tier.
        let stats = reloaded.cache_stats();
        prop_assert!(stats.base_hits > 0, "reload produced no base-tier hits: {stats:?}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash-mid-write recovery: truncate every snapshot entry (as a crash
/// or torn copy would) and the reload must degrade to a *cold miss* —
/// nothing loaded, every entry counted corrupt, and the re-run still
/// byte-equal to the never-cached reference. A corrupt snapshot may
/// cost time; it must never change an answer.
#[test]
fn truncated_snapshot_degrades_to_cold_miss_never_wrong_answer() {
    let dir = snapshot_dir("truncate");
    let seq = [0usize, 3, 4, 5, 6, 1, 2];
    spill_after(&dir, &seq);

    // Halve every file under the snapshot: the `end <checksum>` trailer
    // (and usually much more) is gone, exactly like a write cut short.
    let mut clipped = 0u64;
    for sub in ["pages", "base"] {
        let d = dir.join("snapshot-v1").join(sub);
        for entry in std::fs::read_dir(&d).expect("snapshot subdir exists") {
            let path = entry.expect("readable dir entry").path();
            let len = std::fs::metadata(&path).expect("entry metadata").len();
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .expect("snapshot entry is writable");
            file.set_len(len / 2).expect("truncate");
            clipped += 1;
        }
    }
    assert!(clipped >= 2, "spill must have produced page and base files");

    let mut reloaded = engine_with(
        CacheConfig {
            feature_capacity: 64,
            result_capacity: 8,
        },
        PageStore::new(),
    )
    .with_persist(PersistSink::open(&dir).expect("temp snapshot dir is writable"));
    reloaded.load_snapshot();
    let stats = reloaded.persist_stats();
    assert_eq!(
        stats.pages_loaded, 0,
        "truncated pages must not load: {stats:?}"
    );
    assert_eq!(
        stats.base_loaded, 0,
        "truncated base tables must not load: {stats:?}"
    );
    assert!(
        stats.corrupt_skipped > 0,
        "every clipped entry must be counted, not silently dropped: {stats:?}"
    );

    // Cold start from the surviving (empty) state: answers unchanged.
    let tasks = task_pool(reloaded.store_mut());
    let reference = engine_with(CacheConfig::disabled(), reloaded.store().clone());
    assert_sequence_equal(&reloaded, &reference, &tasks, &seq);

    let _ = std::fs::remove_dir_all(&dir);
}
