//! # webqa
//!
//! End-to-end WebQA: web question answering with neurosymbolic program
//! synthesis — the top-level crate of this reproduction of Chen et al.,
//! PLDI 2021 (arXiv:2104.07162).
//!
//! Given a natural-language question, keywords, a few labeled webpages,
//! and many unlabeled ones (Figure 1 of the paper), [`WebQa::run`]:
//!
//! 1. synthesizes **all** DSL programs with optimal token-F₁ on the labels
//!    (`webqa-synth`, Section 5);
//! 2. picks the program whose outputs best match the ensemble's soft
//!    labels on the unlabeled pages (`webqa-select`, Section 6);
//! 3. runs it on every unlabeled page.
//!
//! ```
//! use webqa::{Config, WebQa};
//! use webqa_dsl::PageTree;
//!
//! let labeled = vec![(
//!     PageTree::parse("<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>"),
//!     vec!["Jane Doe".to_string()],
//! )];
//! let unlabeled =
//!     vec![PageTree::parse("<h1>B</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>")];
//!
//! let system = WebQa::new(Config::default());
//! let result = system.run("Who are the PhD students?", &["Students"], &labeled, &unlabeled);
//! assert!(result.program.is_some());
//! ```
//!
//! The crate also provides the paper's *interactive labeling* helper
//! ([`suggest_labels`], Section 7), which clusters the target pages and
//! proposes at most five representatives to label.

#![warn(missing_docs)]

mod labeling;
mod pipeline;

pub use labeling::{suggest_labels, MAX_LABEL_REQUESTS};
pub use pipeline::{score_answers, Config, Modality, RunResult, Selection, WebQa};

// Re-export the workspace vocabulary that appears in this crate's API.
pub use webqa_dsl::{PageTree, Program, QueryContext};
pub use webqa_metrics::Score;
pub use webqa_select::SelectionConfig;
pub use webqa_synth::{SynthConfig, SynthesisOutcome};
