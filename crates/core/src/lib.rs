//! # webqa
//!
//! End-to-end WebQA: web question answering with neurosymbolic program
//! synthesis — the top-level crate of this reproduction of Chen et al.,
//! PLDI 2021 (arXiv:2104.07162).
//!
//! The centerpiece is the session-oriented [`Engine`]: pages are parsed
//! once (fallibly — [`Error`]) into a shared [`PageStore`] and referenced
//! by [`PageId`] handles, and the paper's Figure 1 pipeline runs as
//! inspectable stages:
//!
//! 1. [`Engine::prepare`] resolves a [`Task`]'s page handles and builds
//!    the synthesis examples;
//! 2. [`Prepared::synthesize`] enumerates **all** DSL programs with
//!    optimal token-F₁ on the labels (`webqa-synth`, Section 5);
//! 3. [`Synthesized::select`] picks the program whose outputs best match
//!    the ensemble's soft labels on the unlabeled pages (`webqa-select`,
//!    Section 6), keeping the ensemble for diagnostics;
//! 4. [`Selected::answers`] runs it on every unlabeled page.
//!
//! ```
//! use webqa::{Config, Engine, Task};
//!
//! let mut engine = Engine::new(Config::default());
//! let store = engine.store_mut();
//! let a = store.insert_html("<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>")?;
//! let b = store.insert_html("<h1>B</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>")?;
//!
//! let task = Task::new("Who are the PhD students?", ["Students"])
//!     .with_label(a, vec!["Jane Doe".into()])
//!     .with_target(b);
//!
//! let synthesized = engine.prepare(&task)?.synthesize();
//! assert!(synthesized.train_f1() > 0.99);
//! let selected = synthesized.select();
//! assert_eq!(selected.answers(), vec![vec!["Wei Chen".to_string()]]);
//! # Ok::<(), webqa::Error>(())
//! ```
//!
//! Independent tasks batch through [`Engine::run_batch`], which fans them
//! out over a scoped threadpool with deterministic, input-ordered
//! results. The pre-engine one-shot facade survives as [`WebQa::run`], a
//! thin compatibility wrapper that interns the caller's pages into a
//! throwaway engine.
//!
//! The crate also provides the paper's *interactive labeling* helper
//! ([`suggest_labels`], Section 7), which clusters the target pages and
//! proposes at most five representatives to label; [`Prepared`] wires it
//! into the staged loop (suggest → [`Prepared::label`] → re-synthesize).

#![warn(missing_docs)]

mod batch;
mod cache;
mod engine;
mod error;
mod labeling;
mod persist;
mod pipeline;
mod store;

pub use cache::{CacheConfig, CacheStats};
pub use engine::{Engine, Prepared, Selected, Synthesized, Task};
pub use error::Error;
pub use labeling::{suggest_labels, MAX_LABEL_REQUESTS};
pub use persist::{PersistSink, PersistStats};
pub use pipeline::{score_answers, Config, Modality, RunResult, Selection, WebQa};
pub use store::{content_digest, PageId, PageStore};

// Re-export the workspace vocabulary that appears in this crate's API.
pub use webqa_dsl::{
    lint, AnalysisReport, Analyzer, HtmlError, LintReport, PageTree, Program, QueryContext,
};
pub use webqa_metrics::Score;
pub use webqa_select::{Ensemble, SelectionConfig};
pub use webqa_synth::{CancelToken, SynthConfig, SynthesisOutcome};
