//! On-disk persistence of the warm state: the content-addressed page
//! store and the query-independent base-feature tier.
//!
//! A restarted daemon used to start cold — every page re-interned, every
//! NER pass recomputed. Because the [`PageStore`](crate::PageStore) is
//! content-addressed (PR 3) and a
//! [`PageBaseFeatures`](webqa_synth::PageBaseFeatures) table is a pure
//! function of page content, the warm state is a pure key-value set:
//! `content digest → (page tree, base table)`. This module spills it to
//! a versioned snapshot directory and loads it back on startup.
//!
//! # Snapshot layout (`v1`)
//!
//! ```text
//! <cache-dir>/snapshot-v1/
//!   pages/<digest:016x>.page   one interned page tree
//!   base/<digest:016x>.feat    its base-feature table (if resident)
//! ```
//!
//! Both formats are line-based text: a magic line, the embedded digest,
//! the node count, one payload line per node, and a trailing `end`
//! marker carrying an FNV checksum of the payload lines. The properties
//! the serving layer relies on:
//!
//! * **Idempotent writes** — the filename *is* the content digest, so
//!   re-spilling a page overwrites it with identical bytes (writes go
//!   through a temp file + rename, so readers never observe a partial
//!   file at the final name).
//! * **Corruption degrades to a miss, never a wrong answer** — a
//!   truncated, malformed, or bit-flipped entry fails its checksum /
//!   digest re-verification on load and is *skipped* (counted in
//!   [`PersistStats::corrupt_skipped`]); the engine recomputes from
//!   scratch exactly as if the entry had never been written. Loaded
//!   pages are re-digested from the rebuilt tree and must match the
//!   filename; loaded base tables must match their page's node count.
//! * **Digest stability is not assumed** — `content_digest` documents
//!   itself as "not a stable on-disk format" (std's `DefaultHasher`).
//!   Re-verifying the digest on load means a toolchain upgrade that
//!   changes the hash invalidates old snapshots *safely*: every entry
//!   misses and the daemon starts cold, which is always correct.
//!
//! The observational contract — `persist + reload ≡ never-cached` — is
//! pinned by `crates/core/tests/cache_semantics.rs` alongside the other
//! cache-invisibility proofs.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use webqa_dsl::{NodeKind, PageTree, PageTreeBuilder};
use webqa_synth::PageBaseFeatures;

use crate::store::content_digest;

/// Version tag of the snapshot directory layout and file formats.
const SNAPSHOT_DIR: &str = "snapshot-v1";
const PAGE_MAGIC: &str = "webqa-page-v1";
const BASE_MAGIC: &str = "webqa-base-v1";

/// Counters of one sink's disk traffic, snapshotted by
/// [`PersistSink::stats`] and served through `webqa_server`'s `stats`
/// op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct PersistStats {
    /// Pages loaded from the snapshot into a store.
    pub pages_loaded: u64,
    /// Base-feature tables loaded from the snapshot.
    pub base_loaded: u64,
    /// Pages spilled to the snapshot.
    pub pages_spilled: u64,
    /// Base-feature tables spilled to the snapshot.
    pub base_spilled: u64,
    /// Snapshot entries skipped on load (truncated, malformed, failed
    /// digest/checksum verification, or orphaned base tables) — each one
    /// degrades to a cold miss.
    pub corrupt_skipped: u64,
    /// Wall-clock milliseconds spent loading snapshots through this
    /// sink (summed across shards when several engines share it).
    pub load_ms: u64,
}

/// A handle on one snapshot directory: the spill/load surface plus its
/// traffic counters. Shared (`Arc`) by every engine shard of a daemon,
/// so the counters aggregate fleet-wide.
#[derive(Debug)]
pub struct PersistSink {
    root: PathBuf,
    pages_loaded: AtomicU64,
    base_loaded: AtomicU64,
    pages_spilled: AtomicU64,
    base_spilled: AtomicU64,
    corrupt_skipped: AtomicU64,
    load_ms: AtomicU64,
}

impl PersistSink {
    /// Opens (creating if needed) the versioned snapshot directory under
    /// `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures (permissions, a file in
    /// the way).
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Arc<PersistSink>> {
        let root = dir.as_ref().join(SNAPSHOT_DIR);
        fs::create_dir_all(root.join("pages"))?;
        fs::create_dir_all(root.join("base"))?;
        Ok(Arc::new(PersistSink {
            root,
            pages_loaded: AtomicU64::new(0),
            base_loaded: AtomicU64::new(0),
            pages_spilled: AtomicU64::new(0),
            base_spilled: AtomicU64::new(0),
            corrupt_skipped: AtomicU64::new(0),
            load_ms: AtomicU64::new(0),
        }))
    }

    /// A point-in-time snapshot of the sink's counters.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            pages_loaded: self.pages_loaded.load(Ordering::Relaxed),
            base_loaded: self.base_loaded.load(Ordering::Relaxed),
            pages_spilled: self.pages_spilled.load(Ordering::Relaxed),
            base_spilled: self.base_spilled.load(Ordering::Relaxed),
            corrupt_skipped: self.corrupt_skipped.load(Ordering::Relaxed),
            load_ms: self.load_ms.load(Ordering::Relaxed),
        }
    }

    fn page_path(&self, digest: u64) -> PathBuf {
        self.root.join("pages").join(format!("{digest:016x}.page"))
    }

    fn base_path(&self, digest: u64) -> PathBuf {
        self.root.join("base").join(format!("{digest:016x}.feat"))
    }

    /// Spills one page tree under its content digest. Idempotent; a
    /// file already present under the digest is left alone (its bytes
    /// are identical by content-addressing). IO failures are swallowed —
    /// spilling is an optimization, never a correctness requirement.
    pub fn spill_page(&self, digest: u64, tree: &PageTree) {
        let path = self.page_path(digest);
        if path.exists() {
            return;
        }
        if write_atomic(&path, &encode_page(digest, tree)).is_ok() {
            self.pages_spilled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spills one base-feature table under its page's content digest.
    /// Same idempotence/IO discipline as [`PersistSink::spill_page`].
    pub fn spill_base(&self, digest: u64, base: &PageBaseFeatures) {
        let path = self.base_path(digest);
        if path.exists() {
            return;
        }
        if write_atomic(&path, &encode_base(digest, base)).is_ok() {
            self.base_spilled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Loads every snapshot entry whose digest satisfies `keep` (a shard
    /// loads only the digests it owns), handing each verified page —
    /// and, where present, its verified base table — to `sink`. Entries
    /// that fail any verification step are counted and skipped.
    ///
    /// The digest filter runs on the *filename* digest, before any file
    /// is read, so an N-shard warm start reads each entry exactly once
    /// fleet-wide.
    pub fn load_filtered(
        &self,
        keep: impl Fn(u64) -> bool,
        mut sink: impl FnMut(u64, PageTree, Option<PageBaseFeatures>),
    ) {
        let started = std::time::Instant::now();
        for (digest, path) in self.entries("pages", "page") {
            if !keep(digest) {
                continue;
            }
            let Some(tree) = self.read_page(digest, &path) else {
                continue;
            };
            let base = self.read_base(digest, tree.len());
            sink(digest, tree, base);
        }
        // Base tables whose page entry is missing or unreadable are
        // orphans: unusable (there is no page to attach them to), so
        // count them as skipped rather than silently ignoring them.
        for (digest, _) in self.entries("base", "feat") {
            if keep(digest) && !self.page_path(digest).exists() {
                self.corrupt_skipped.fetch_add(1, Ordering::Relaxed);
            }
        }
        let ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
        self.load_ms.fetch_add(ms, Ordering::Relaxed);
    }

    /// The `(digest, path)` of every well-named entry in a snapshot
    /// subdirectory, sorted by digest for deterministic load order.
    fn entries(&self, sub: &str, ext: &str) -> Vec<(u64, PathBuf)> {
        let Ok(dir) = fs::read_dir(self.root.join(sub)) else {
            return Vec::new();
        };
        let mut out: Vec<(u64, PathBuf)> = dir
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                let stem = path.file_stem()?.to_str()?;
                if path.extension()?.to_str()? != ext {
                    return None;
                }
                Some((u64::from_str_radix(stem, 16).ok()?, path))
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Reads and fully verifies one page entry; `None` (plus a counter
    /// bump) on any defect.
    fn read_page(&self, digest: u64, path: &Path) -> Option<PageTree> {
        let verified = fs::read_to_string(path)
            .ok()
            .and_then(|text| decode_page(digest, &text));
        if verified.is_none() {
            self.corrupt_skipped.fetch_add(1, Ordering::Relaxed);
        }
        verified
    }

    /// Reads and fully verifies the base entry of page `digest`, if one
    /// exists; `None` (plus a counter bump when the file exists but is
    /// defective) otherwise. `nodes` is the verified page's node count —
    /// a table of any other shape cannot belong to this page.
    fn read_base(&self, digest: u64, nodes: usize) -> Option<PageBaseFeatures> {
        let path = self.base_path(digest);
        if !path.exists() {
            return None;
        }
        let verified = fs::read_to_string(&path)
            .ok()
            .and_then(|text| decode_base(digest, nodes, &text));
        if verified.is_none() {
            self.corrupt_skipped.fetch_add(1, Ordering::Relaxed);
        }
        verified
    }

    /// Counts `n` base tables as loaded (called by the engine once the
    /// tables are actually seeded into its cache).
    pub(crate) fn note_base_loaded(&self, n: u64) {
        self.base_loaded.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` pages as loaded.
    pub(crate) fn note_pages_loaded(&self, n: u64) {
        self.pages_loaded.fetch_add(n, Ordering::Relaxed);
    }
}

/// Writes `contents` to `path` via a temp file + rename, so a crash
/// mid-write leaves either the old file or a stray `.tmp` — never a
/// truncated file at the final name. (A truncated file would be skipped
/// on load anyway; the rename just keeps the common case clean.)
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// FNV-1a over the payload — the per-file corruption check. Not a
/// security boundary: it catches truncation and accidental bit flips,
/// while the digest re-verification catches everything content-level.
fn fnv(payload: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in payload.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(text: &str) -> Option<String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn kind_code(kind: NodeKind) -> char {
    match kind {
        NodeKind::None => 'n',
        NodeKind::List => 'l',
        NodeKind::Table => 't',
    }
}

fn kind_of(code: &str) -> Option<NodeKind> {
    match code {
        "n" => Some(NodeKind::None),
        "l" => Some(NodeKind::List),
        "t" => Some(NodeKind::Table),
        _ => None,
    }
}

/// Serializes one page: nodes in id order (dense pre-order), each line
/// `parent kind text` with `-` for the root's missing parent.
fn encode_page(digest: u64, tree: &PageTree) -> String {
    let mut payload = String::new();
    for id in tree.iter() {
        let node = tree.node(id);
        match node.parent {
            Some(p) => {
                let _ = write!(payload, "{}", p.index());
            }
            None => payload.push('-'),
        }
        let _ = writeln!(payload, " {} {}", kind_code(node.kind), escape(&node.text));
    }
    format!(
        "{PAGE_MAGIC}\n{digest:016x}\n{n}\n{payload}end {check:016x}\n",
        n = tree.len(),
        check = fnv(&payload),
    )
}

/// Parses and verifies one page file: magic, embedded digest, node
/// count, payload checksum, structural validity (root first, parents
/// before children), and — decisively — that the rebuilt tree's
/// recomputed content digest equals `expect`. Any failure is `None`.
fn decode_page(expect: u64, text: &str) -> Option<PageTree> {
    let (n, payload_lines, _) = decode_common(PAGE_MAGIC, expect, text)?;
    if n == 0 {
        return None;
    }
    let mut nodes = Vec::with_capacity(n);
    for line in payload_lines {
        let (parent, rest) = line.split_once(' ')?;
        let (kind, text) = rest.split_once(' ')?;
        nodes.push((parent.to_string(), kind_of(kind)?, unescape(text)?));
    }
    if nodes.len() != n || nodes[0].0 != "-" {
        return None;
    }
    let mut builder = PageTreeBuilder::new(&nodes[0].2);
    let mut ids = vec![builder.root()];
    builder.set_kind(ids[0], nodes[0].1);
    for (i, (parent, kind, text)) in nodes.iter().enumerate().skip(1) {
        let p: usize = parent.parse().ok()?;
        // Ids are dense pre-order: every parent precedes its children.
        if p >= i {
            return None;
        }
        let id = builder.add_child(ids[p], text);
        builder.set_kind(id, *kind);
        ids.push(id);
    }
    let tree = builder.finish();
    // The decisive check: the rebuilt tree must digest to its filename.
    (tree.len() == n && content_digest(&tree) == expect).then_some(tree)
}

/// Serializes one base table: one `own sub leaf elem` line per node.
fn encode_base(digest: u64, base: &PageBaseFeatures) -> String {
    let (own, sub, leaf, elem) = base.parts();
    let mut payload = String::new();
    for i in 0..base.nodes() {
        let _ = writeln!(
            payload,
            "{} {} {} {}",
            own[i],
            sub[i],
            u8::from(leaf[i]),
            u8::from(elem[i]),
        );
    }
    format!(
        "{BASE_MAGIC}\n{digest:016x}\n{n}\n{payload}end {check:016x}\n",
        n = base.nodes(),
        check = fnv(&payload),
    )
}

/// Parses and verifies one base file; `nodes` is the owning page's
/// verified node count, so a table of any other shape is rejected.
fn decode_base(expect: u64, nodes: usize, text: &str) -> Option<PageBaseFeatures> {
    let (n, payload_lines, _) = decode_common(BASE_MAGIC, expect, text)?;
    if n != nodes {
        return None;
    }
    let (mut own, mut sub) = (Vec::with_capacity(n), Vec::with_capacity(n));
    let (mut leaf, mut elem) = (Vec::with_capacity(n), Vec::with_capacity(n));
    for line in payload_lines {
        let mut cols = line.split(' ');
        own.push(cols.next()?.parse::<u8>().ok()?);
        sub.push(cols.next()?.parse::<u8>().ok()?);
        leaf.push(parse_bool(cols.next()?)?);
        elem.push(parse_bool(cols.next()?)?);
        if cols.next().is_some() {
            return None;
        }
    }
    if own.len() != n {
        return None;
    }
    PageBaseFeatures::from_parts(own, sub, leaf, elem)
}

fn parse_bool(s: &str) -> Option<bool> {
    match s {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// The shared header/trailer verification of both file formats: magic
/// line, embedded digest equal to the filename digest, declared payload
/// line count, and the `end <fnv>` trailer checksumming exactly those
/// lines. Returns the declared count and the payload lines.
fn decode_common<'t>(magic: &str, expect: u64, text: &'t str) -> Option<(usize, Vec<&'t str>, ())> {
    let mut lines = text.lines();
    if lines.next()? != magic {
        return None;
    }
    if u64::from_str_radix(lines.next()?, 16).ok()? != expect {
        return None;
    }
    let n: usize = lines.next()?.parse().ok()?;
    let rest: Vec<&str> = lines.collect();
    // Exactly n payload lines then the end marker, nothing after.
    if rest.len() != n + 1 {
        return None;
    }
    let (payload_lines, end) = rest.split_at(n);
    let check = end[0].strip_prefix("end ")?;
    let mut payload = String::new();
    for line in payload_lines {
        payload.push_str(line);
        payload.push('\n');
    }
    if u64::from_str_radix(check, 16).ok()? != fnv(&payload) {
        return None;
    }
    Some((n, payload_lines.to_vec(), ()))
}

/// A fresh per-test scratch directory under the target-adjacent temp
/// root (no external tempdir crate; the caller removes it).
#[cfg(test)]
pub(crate) fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webqa-persist-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_dsl::QueryContext;

    fn tree(html: &str) -> PageTree {
        PageTree::parse(html)
    }

    #[test]
    fn page_round_trips_through_the_snapshot_format() {
        let t = tree(
            "<h1>A &amp; B</h1><h2>Students</h2><ul><li>Jane \\ Doe</li>\
             <li>Bob</li></ul><table><tr><td>x</td></tr></table>",
        );
        let digest = content_digest(&t);
        let encoded = encode_page(digest, &t);
        let back = decode_page(digest, &encoded).expect("round trip");
        assert_eq!(back, t);
        assert_eq!(content_digest(&back), digest);
    }

    #[test]
    fn base_round_trips_through_the_snapshot_format() {
        let t = tree("<h1>Jane Doe</h1><ul><li>reading on 2021-01-01</li></ul>");
        let ctx = QueryContext::keywords_only(["x"]);
        let base = PageBaseFeatures::compute(&ctx, &t);
        let digest = content_digest(&t);
        let encoded = encode_base(digest, &base);
        let back = decode_base(digest, t.len(), &encoded).expect("round trip");
        assert_eq!(back, base);
    }

    #[test]
    fn truncated_and_tampered_entries_are_rejected() {
        let t = tree("<h1>A</h1><p>body text</p>");
        let digest = content_digest(&t);
        let encoded = encode_page(digest, &t);
        // Any strict prefix fails (truncation at every byte boundary —
        // except dropping only the final newline, which leaves the
        // payload complete and correctly still decodes).
        for cut in 0..encoded.len() - 1 {
            assert!(
                decode_page(digest, &encoded[..cut]).is_none(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // A flipped payload byte fails the checksum.
        let tampered = encoded.replacen("body", "bodY", 1);
        assert!(decode_page(digest, &tampered).is_none());
        // A wrong filename digest fails even with a self-consistent file.
        assert!(decode_page(digest ^ 1, &encoded).is_none());
        // Same for base files.
        let ctx = QueryContext::keywords_only(["x"]);
        let base = PageBaseFeatures::compute(&ctx, &t);
        let eb = encode_base(digest, &base);
        for cut in 0..eb.len() - 1 {
            assert!(decode_base(digest, t.len(), &eb[..cut]).is_none());
        }
        assert!(decode_base(digest, t.len() + 1, &eb).is_none(), "shape");
    }

    #[test]
    fn sink_spills_and_reloads_with_counters() {
        let dir = crate::persist::test_dir("sink_spills_and_reloads");
        let sink = PersistSink::open(&dir).expect("open sink");
        let t = tree("<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>");
        let digest = content_digest(&t);
        let ctx = QueryContext::keywords_only(["Students"]);
        let base = PageBaseFeatures::compute(&ctx, &t);
        sink.spill_page(digest, &t);
        sink.spill_base(digest, &base);
        // Idempotent: re-spilling does not double-count.
        sink.spill_page(digest, &t);
        sink.spill_base(digest, &base);
        assert_eq!(sink.stats().pages_spilled, 1);
        assert_eq!(sink.stats().base_spilled, 1);

        let reopened = PersistSink::open(&dir).expect("reopen");
        let mut seen = Vec::new();
        reopened.load_filtered(|_| true, |d, tree, b| seen.push((d, tree, b)));
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, digest);
        assert_eq!(seen[0].1, t);
        assert_eq!(seen[0].2.as_ref(), Some(&base));
        assert_eq!(reopened.stats().corrupt_skipped, 0);

        // The digest filter skips without reading.
        let filtered = PersistSink::open(&dir).expect("reopen");
        let mut none = 0;
        filtered.load_filtered(|_| false, |_, _, _| none += 1);
        assert_eq!(none, 0);

        // A truncated page file (crash mid-write) degrades to a miss,
        // and its now-orphaned base table is counted as skipped.
        let page_path = reopened.page_path(digest);
        let full = fs::read_to_string(&page_path).expect("read back");
        fs::write(&page_path, &full[..full.len() / 2]).expect("truncate");
        let corrupt = PersistSink::open(&dir).expect("reopen");
        let mut loaded = 0;
        corrupt.load_filtered(|_| true, |_, _, _| loaded += 1);
        assert_eq!(loaded, 0, "truncated entry must be a miss");
        assert!(corrupt.stats().corrupt_skipped >= 1);

        fs::remove_dir_all(&dir).ok();
    }
}
