//! Cross-request memoization: the engine-owned [`FeatureStore`] and the
//! completed-run LRU.
//!
//! PR 4 made everything *inside* one `synthesize` call cheap; what was
//! left on the table is cross-*task* reuse — every `Engine::prepare →
//! synthesize` rebuilt its per-page neural-feature / `[filter][node]`
//! mask tables even over the same interned pages, and a repeat of an
//! identical query re-ran the whole search. Both artifacts are pure
//! functions of their keys:
//!
//! * a [`webqa_synth::PageFeatures`] table is determined by
//!   `(page, question+keywords, synth config)` — cached in the sharded
//!   [`FeatureStore`], keyed by the page's [`PageId`] (which embeds the
//!   content digest) plus a pool digest of the context and config;
//! * a [`RunResult`] is determined by `(task, engine config)` — cached in
//!   the [`ResultCache`], keyed by the task's canonical form (exact, not
//!   a digest: a hash collision must not serve the wrong programs). The
//!   canonical form ([`normalize_task`]) folds together only input
//!   reorderings the pipeline is provably invariant to — sorted/deduped
//!   keywords, sorted gold per example — so semantically equivalent
//!   requests share one entry while example and target order (which the
//!   pipeline *does* observe) stay significant.
//!
//! Because both values are pure, a cache hit is observationally
//! invisible: reuse, eviction, and re-insertion change latency, never
//! bytes. `tests/serve_api.rs` and the cache-invalidation proptest
//! (`crates/core/tests/cache_semantics.rs`) pin that — every cached
//! engine response is compared against a cold, never-cached reference
//! engine, the same discipline `tests/synth_parity.rs` applies one level
//! down.
//!
//! Eviction is LRU via a monotonic clock stamp per entry; capacities are
//! set by [`CacheConfig`] (0 disables a cache entirely). Counters are
//! atomics, snapshotted by [`Engine::cache_stats`](crate::Engine::cache_stats)
//! and served over the wire by `webqa_server`'s `stats` op.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::engine::Task;
use crate::pipeline::{Config, RunResult};
use crate::store::PageId;
use webqa_dsl::QueryContext;
use webqa_synth::{PageFeatures, SynthConfig};

/// Capacities of the engine's cross-request caches (entries, not bytes).
/// `0` disables the respective cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Max feature tables resident in the engine's feature store (one
    /// table per distinct `(page, question+keywords, synth config)`).
    ///
    /// Rounded up to the store's shard granularity: capacity is split
    /// evenly across 8 independently locked shards, so the actual
    /// resident maximum is `8 × ceil(feature_capacity / 8)` (a nonzero
    /// capacity always admits at least one table per shard).
    pub feature_capacity: usize,
    /// Max completed [`RunResult`]s resident in the result LRU.
    pub result_capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            feature_capacity: 512,
            result_capacity: 128,
        }
    }
}

impl CacheConfig {
    /// Both caches off — every request recomputes from scratch (the
    /// "never-cached reference path" the cache-semantics tests compare
    /// against).
    pub fn disabled() -> Self {
        CacheConfig {
            feature_capacity: 0,
            result_capacity: 0,
        }
    }
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Feature tables served from the store.
    pub feature_hits: u64,
    /// Feature tables computed (cache cold, evicted, or disabled).
    pub feature_misses: u64,
    /// Feature tables evicted (LRU, over capacity).
    pub feature_evictions: u64,
    /// Completed runs served from the result LRU.
    pub result_hits: u64,
    /// Completed runs computed.
    pub result_misses: u64,
    /// Completed runs evicted (LRU, over capacity).
    pub result_evictions: u64,
}

impl CacheStats {
    /// Field-wise sum of two snapshots — how a front end holding several
    /// independent engines (e.g. `webqa_server`'s per-shard engines)
    /// aggregates their counters into one fleet-wide view.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            feature_hits: self.feature_hits + other.feature_hits,
            feature_misses: self.feature_misses + other.feature_misses,
            feature_evictions: self.feature_evictions + other.feature_evictions,
            result_hits: self.result_hits + other.result_hits,
            result_misses: self.result_misses + other.result_misses,
            result_evictions: self.result_evictions + other.result_evictions,
        }
    }
}

/// Number of independently locked shards in the [`FeatureStore`]:
/// concurrent requests over different pages take different locks.
const FEATURE_SHARDS: usize = 8;

/// Key of one feature table: the page handle (whose embedded content
/// digest makes the key content-addressed) plus the pool digest of the
/// query context and synthesis config it was built under.
type FeatKey = (PageId, u64);

#[derive(Debug)]
struct FeatEntry {
    table: Arc<PageFeatures>,
    stamp: u64,
}

/// Sharded, content-keyed store of [`PageFeatures`] tables.
#[derive(Debug)]
pub(crate) struct FeatureStore {
    /// Per-shard capacity (total capacity split across shards); 0 = off.
    shard_capacity: usize,
    enabled: bool,
    shards: Vec<Mutex<HashMap<FeatKey, FeatEntry>>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl FeatureStore {
    fn new(capacity: usize) -> Self {
        FeatureStore {
            shard_capacity: capacity.div_ceil(FEATURE_SHARDS),
            enabled: capacity > 0,
            shards: (0..FEATURE_SHARDS).map(|_| Mutex::default()).collect(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &FeatKey) -> &Mutex<HashMap<FeatKey, FeatEntry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % FEATURE_SHARDS]
    }

    /// The table for `key`, computing (and caching) it on a miss. The
    /// compute runs *outside* the shard lock, so a slow table build never
    /// blocks hits on other pages; two concurrent misses on the same key
    /// may both compute, and the first insert wins (the values are
    /// identical by purity, so which one survives is unobservable).
    pub fn get_or_compute(
        &self,
        key: FeatKey,
        compute: impl FnOnce() -> PageFeatures,
    ) -> Arc<PageFeatures> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(compute());
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = self.shard_of(&key).lock().expect("feature shard");
            if let Some(entry) = shard.get_mut(&key) {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.table);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(compute());
        let mut shard = self.shard_of(&key).lock().expect("feature shard");
        if let Some(entry) = shard.get(&key) {
            // Lost the race to a concurrent miss: share its table.
            return Arc::clone(&entry.table);
        }
        if shard.len() >= self.shard_capacity {
            let victim = shard.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k);
            if let Some(victim) = victim {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(
            key,
            FeatEntry {
                table: Arc::clone(&table),
                stamp,
            },
        );
        table
    }
}

#[derive(Debug)]
struct ResultEntry {
    /// The canonical form ([`normalize_task`]) of the task this entry
    /// was computed for — verified on lookup, so a digest collision can
    /// never serve another task's programs.
    task: Task,
    result: RunResult,
    stamp: u64,
}

/// LRU of completed `(task, config)` runs, bucketed by digest with exact
/// task equality inside a bucket.
///
/// Eviction scans all resident entries for the minimum stamp — O(capacity)
/// per at-capacity insert. That is deliberate: capacities are small (a
/// few hundred entries of whole `RunResult`s), inserts are rare next to
/// the synthesis they follow, and the scan keeps the structure a plain
/// map instead of a linked LRU. Revisit if `--result-cache` is ever
/// sized in the tens of thousands.
#[derive(Debug)]
pub(crate) struct ResultCache {
    capacity: usize,
    buckets: Mutex<HashMap<u64, Vec<ResultEntry>>>,
    len: AtomicU64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

fn result_key(cfg: u64, task: &Task) -> u64 {
    let mut h = DefaultHasher::new();
    cfg.hash(&mut h);
    task.hash(&mut h);
    h.finish()
}

/// The canonical form of a task for result-cache keying, folding
/// together exactly the input reorderings the pipeline is invariant to:
///
/// * **keywords** are sorted and deduplicated — keyword evidence is
///   accumulated by order-insensitive folds (max-similarity per node),
///   so permuting or repeating keywords never changes a result;
/// * **gold strings within one labeled example** are sorted — gold sets
///   are compared as bags by the F₁ kernels, never positionally.
///
/// The *order of labeled examples* and the *order of targets* are kept
/// exactly as given: example order steers enumeration tie-breaks (a
/// reordering can legitimately select a different optimal program), and
/// answers align positionally with targets. Normalizing either would
/// break the byte-identical-to-a-cold-engine contract; the invariances
/// above are pinned (against a never-cached reference engine) by
/// `crates/core/tests/cache_semantics.rs`.
fn normalize_task(task: &Task) -> Task {
    let mut t = task.clone();
    t.keywords.sort();
    t.keywords.dedup();
    for (_, gold) in &mut t.labeled {
        gold.sort();
    }
    t
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            buckets: Mutex::default(),
            len: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cached run for the task under config digest `cfg`, if resident.
    /// Lookup is by the task's canonical form ([`normalize_task`]), so a
    /// request that merely reorders keywords or gold strings hits the
    /// entry its equivalent predecessor filled.
    pub fn get(&self, cfg: u64, task: &Task) -> Option<RunResult> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let task = normalize_task(task);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut buckets = self.buckets.lock().expect("result cache");
        let found = buckets
            .get_mut(&result_key(cfg, &task))
            .and_then(|bucket| bucket.iter_mut().find(|e| e.task == task))
            .map(|e| {
                e.stamp = stamp;
                e.result.clone()
            });
        match found {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a completed run under the task's canonical form
    /// ([`normalize_task`]), evicting the least-recently-used entry when
    /// over capacity.
    pub fn insert(&self, cfg: u64, task: &Task, result: RunResult) {
        if self.capacity == 0 {
            return;
        }
        let task = normalize_task(task);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let key = result_key(cfg, &task);
        let mut buckets = self.buckets.lock().expect("result cache");
        let resident = buckets
            .get(&key)
            .is_some_and(|b| b.iter().any(|e| e.task == task));
        if !resident && self.len.load(Ordering::Relaxed) as usize >= self.capacity {
            // Evict the globally least-recently-used entry.
            if let Some(victim_key) = buckets
                .iter()
                .filter_map(|(k, b)| b.iter().map(|e| e.stamp).min().map(|s| (s, *k)))
                .min()
                .map(|(_, k)| k)
            {
                let bucket = buckets.get_mut(&victim_key).expect("victim bucket");
                let oldest = bucket
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
                    .expect("non-empty bucket");
                bucket.swap_remove(oldest);
                if bucket.is_empty() {
                    buckets.remove(&victim_key);
                }
                self.len.fetch_sub(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let bucket = buckets.entry(key).or_default();
        match bucket.iter_mut().find(|e| e.task == task) {
            Some(existing) => {
                existing.result = result;
                existing.stamp = stamp;
            }
            None => {
                bucket.push(ResultEntry {
                    task,
                    result,
                    stamp,
                });
                self.len.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The caches an [`Engine`](crate::Engine) owns; clones of an engine
/// share them through an `Arc`, so a server handing out per-request
/// engine views accumulates hits in one place.
#[derive(Debug)]
pub(crate) struct EngineCaches {
    pub features: FeatureStore,
    pub results: ResultCache,
}

impl EngineCaches {
    pub fn new(config: CacheConfig) -> Self {
        EngineCaches {
            features: FeatureStore::new(config.feature_capacity),
            results: ResultCache::new(config.result_capacity),
        }
    }

    /// A point-in-time snapshot of all counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            feature_hits: self.features.hits.load(Ordering::Relaxed),
            feature_misses: self.features.misses.load(Ordering::Relaxed),
            feature_evictions: self.features.evictions.load(Ordering::Relaxed),
            result_hits: self.results.hits.load(Ordering::Relaxed),
            result_misses: self.results.misses.load(Ordering::Relaxed),
            result_evictions: self.results.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Digest of the feature-table pool: the query context plus the synth
/// config *with the worker count normalized out* — `jobs` parallelizes
/// the search but never changes a table, so a batch run with a capped
/// worker count still hits tables built by a single-threaded run.
pub(crate) fn pool_digest(cfg: &SynthConfig, ctx: &QueryContext) -> u64 {
    let mut h = DefaultHasher::new();
    ctx.question().hash(&mut h);
    ctx.keywords().hash(&mut h);
    let mut normalized = cfg.clone();
    normalized.jobs = 1;
    // SynthConfig has no Hash (f64 fields); its derived Debug output is
    // injective enough for an in-process cache key (floats round-trip).
    format!("{normalized:?}").hash(&mut h);
    h.finish()
}

/// Digest of the full engine config for result-cache keying. `jobs` is
/// *kept*: branch-parallel runs can legitimately differ from sequential
/// ones in their speculative `SynthStats` counters, and a cached result
/// must be byte-identical to what the live config would compute.
pub(crate) fn config_digest(config: &Config) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{config:?}").hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_dsl::PageTree;

    fn table(nodes: &str) -> PageFeatures {
        let cfg = SynthConfig::fast();
        let ctx = QueryContext::new("Who?", ["Students"]);
        PageFeatures::compute(&cfg, &ctx, &PageTree::parse(nodes))
    }

    fn key(n: u32) -> FeatKey {
        (crate::store::PageId::forged(n), 7)
    }

    #[test]
    fn feature_store_hits_after_insert() {
        let store = FeatureStore::new(16);
        let a1 = store.get_or_compute(key(1), || table("<p>a</p>"));
        let a2 = store.get_or_compute(key(1), || panic!("must hit"));
        assert!(Arc::ptr_eq(&a1, &a2));
        let s = |a: &AtomicU64| a.load(Ordering::Relaxed);
        assert_eq!((s(&store.hits), s(&store.misses)), (1, 1));
    }

    #[test]
    fn feature_store_evicts_least_recently_used() {
        // Capacity 8 over 8 shards = 1 entry per shard; two keys in the
        // same shard force an eviction of the older one.
        let store = FeatureStore::new(8);
        let mut in_shard = (0u32..).filter(|&n| {
            std::ptr::eq(
                store.shard_of(&key(n)) as *const _,
                store.shard_of(&key(0)) as *const _,
            )
        });
        let a = in_shard.next().unwrap();
        let b = in_shard.next().unwrap();
        store.get_or_compute(key(a), || table("<p>a</p>"));
        store.get_or_compute(key(b), || table("<p>b</p>"));
        assert_eq!(store.evictions.load(Ordering::Relaxed), 1);
        // `a` was evicted: asking again recomputes.
        store.get_or_compute(key(a), || table("<p>a</p>"));
        assert_eq!(store.hits.load(Ordering::Relaxed), 0);
        assert_eq!(store.misses.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn disabled_feature_store_is_a_pass_through() {
        let store = FeatureStore::new(0);
        store.get_or_compute(key(1), || table("<p>a</p>"));
        store.get_or_compute(key(1), || table("<p>a</p>"));
        assert_eq!(store.hits.load(Ordering::Relaxed), 0);
        assert_eq!(store.misses.load(Ordering::Relaxed), 2);
        assert!(store.shards.iter().all(|s| s.lock().unwrap().is_empty()));
    }

    #[test]
    fn pool_digest_ignores_jobs_but_not_search_knobs() {
        let ctx = QueryContext::new("Who?", ["Students"]);
        let base = SynthConfig::fast();
        assert_eq!(
            pool_digest(&base, &ctx),
            pool_digest(&base.clone().with_jobs(4), &ctx)
        );
        let mut deeper = base.clone();
        deeper.guard_depth += 1;
        assert_ne!(pool_digest(&base, &ctx), pool_digest(&deeper, &ctx));
        let other_ctx = QueryContext::new("Who?", ["Faculty"]);
        assert_ne!(pool_digest(&base, &ctx), pool_digest(&base, &other_ctx));
    }

    #[test]
    fn config_digest_keeps_jobs() {
        let base = Config::default();
        let mut jobs4 = base.clone();
        jobs4.synth.jobs = 4;
        assert_ne!(config_digest(&base), config_digest(&jobs4));
    }
}
