//! Cross-request memoization: the engine-owned [`FeatureStore`] and the
//! completed-run LRU.
//!
//! PR 4 made everything *inside* one `synthesize` call cheap; what was
//! left on the table is cross-*task* reuse — every `Engine::prepare →
//! synthesize` rebuilt its per-page neural-feature / `[filter][node]`
//! mask tables even over the same interned pages, and a repeat of an
//! identical query re-ran the whole search. Both artifacts are pure
//! functions of their keys:
//!
//! * a [`webqa_synth::PageFeatures`] table is determined by
//!   `(page, question+keywords, synth config)` — cached in the sharded,
//!   **two-tier** [`FeatureStore`]: the query tier keyed by the page's
//!   [`PageId`] (which embeds the content digest) plus a pool digest of
//!   the context and config, and a query-independent **base tier**
//!   ([`webqa_synth::PageBaseFeatures`]: NER entity bits, leaf/elem
//!   masks — the expensive half) keyed by the page alone, so different
//!   questions over the same page share it. The base tier is what
//!   [`crate::Engine::spill_snapshot`] persists to disk;
//! * a [`RunResult`] is determined by `(task, engine config)` — cached in
//!   the [`ResultCache`], keyed by the task's canonical form (exact, not
//!   a digest: a hash collision must not serve the wrong programs). The
//!   canonical form ([`normalize_task`]) folds together only input
//!   reorderings the pipeline is provably invariant to — sorted/deduped
//!   keywords, sorted gold per example — so semantically equivalent
//!   requests share one entry while example and target order (which the
//!   pipeline *does* observe) stay significant.
//!
//! Because both values are pure, a cache hit is observationally
//! invisible: reuse, eviction, and re-insertion change latency, never
//! bytes. `tests/serve_api.rs` and the cache-invalidation proptest
//! (`crates/core/tests/cache_semantics.rs`) pin that — every cached
//! engine response is compared against a cold, never-cached reference
//! engine, the same discipline `tests/synth_parity.rs` applies one level
//! down.
//!
//! Eviction is LRU via a monotonic clock stamp per entry; capacities are
//! set by [`CacheConfig`] (0 disables a cache entirely). Counters are
//! atomics, snapshotted by [`Engine::cache_stats`](crate::Engine::cache_stats)
//! and served over the wire by `webqa_server`'s `stats` op.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::engine::Task;
use crate::pipeline::{Config, RunResult};
use crate::store::PageId;
use webqa_dsl::QueryContext;
use webqa_synth::{PageBaseFeatures, PageFeatures, SynthConfig};

/// Capacities of the engine's cross-request caches (entries, not bytes).
/// `0` disables the respective cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Max feature tables resident in the engine's feature store (one
    /// table per distinct `(page, question+keywords, synth config)`).
    ///
    /// Rounded up to the store's shard granularity: capacity is split
    /// evenly across 8 independently locked shards, so the actual
    /// resident maximum is `8 × ceil(feature_capacity / 8)` (a nonzero
    /// capacity always admits at least one table per shard).
    pub feature_capacity: usize,
    /// Max completed [`RunResult`]s resident in the result LRU.
    pub result_capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            feature_capacity: 512,
            result_capacity: 128,
        }
    }
}

impl CacheConfig {
    /// Both caches off — every request recomputes from scratch (the
    /// "never-cached reference path" the cache-semantics tests compare
    /// against).
    pub fn disabled() -> Self {
        CacheConfig {
            feature_capacity: 0,
            result_capacity: 0,
        }
    }
}

/// A point-in-time snapshot of the cache counters.
///
/// A *disabled* tier (capacity 0) counts nothing — its counters stay
/// zero and its `*_enabled` flag is `false`, so consumers can render
/// "cache off" instead of a misleading 0% hit rate. The
/// `*_hit_rate` helpers fold both concerns: `None` means "no rate to
/// report" (tier disabled or no lookups yet), never a division by zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Full feature tables served from the query tier.
    pub feature_hits: u64,
    /// Full feature tables computed (query tier cold or evicted).
    pub feature_misses: u64,
    /// Full feature tables evicted (LRU, over capacity).
    pub feature_evictions: u64,
    /// Query-independent base tables served from the base tier —
    /// including to *different* questions than the one that filled them.
    pub base_hits: u64,
    /// Base tables computed (base tier cold or evicted).
    pub base_misses: u64,
    /// Base tables evicted (LRU, over capacity).
    pub base_evictions: u64,
    /// Completed runs served from the result LRU.
    pub result_hits: u64,
    /// Completed runs computed.
    pub result_misses: u64,
    /// Completed runs evicted (LRU, over capacity).
    pub result_evictions: u64,
    /// Whether the feature store (both tiers) is enabled (capacity > 0).
    pub features_enabled: bool,
    /// Whether the result LRU is enabled (capacity > 0).
    pub results_enabled: bool,
}

impl CacheStats {
    /// Field-wise sum of two snapshots — how a front end holding several
    /// independent engines (e.g. `webqa_server`'s per-shard engines)
    /// aggregates their counters into one fleet-wide view. The enabled
    /// flags OR: a tier counts as on if any engine has it on.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            feature_hits: self.feature_hits + other.feature_hits,
            feature_misses: self.feature_misses + other.feature_misses,
            feature_evictions: self.feature_evictions + other.feature_evictions,
            base_hits: self.base_hits + other.base_hits,
            base_misses: self.base_misses + other.base_misses,
            base_evictions: self.base_evictions + other.base_evictions,
            result_hits: self.result_hits + other.result_hits,
            result_misses: self.result_misses + other.result_misses,
            result_evictions: self.result_evictions + other.result_evictions,
            features_enabled: self.features_enabled || other.features_enabled,
            results_enabled: self.results_enabled || other.results_enabled,
        }
    }

    fn rate(enabled: bool, hits: u64, misses: u64) -> Option<f64> {
        let total = hits + misses;
        if !enabled || total == 0 {
            return None;
        }
        Some(hits as f64 / total as f64)
    }

    /// Query-tier hit rate; `None` when the feature store is disabled or
    /// has seen no lookups.
    pub fn feature_hit_rate(&self) -> Option<f64> {
        Self::rate(
            self.features_enabled,
            self.feature_hits,
            self.feature_misses,
        )
    }

    /// Base-tier hit rate; `None` when the feature store is disabled or
    /// the base tier has seen no lookups.
    pub fn base_hit_rate(&self) -> Option<f64> {
        Self::rate(self.features_enabled, self.base_hits, self.base_misses)
    }

    /// Result-LRU hit rate; `None` when the LRU is disabled or has seen
    /// no lookups.
    pub fn result_hit_rate(&self) -> Option<f64> {
        Self::rate(self.results_enabled, self.result_hits, self.result_misses)
    }
}

/// Number of independently locked shards in the [`FeatureStore`]:
/// concurrent requests over different pages take different locks.
const FEATURE_SHARDS: usize = 8;

/// Key of one feature table: the page handle (whose embedded content
/// digest makes the key content-addressed) plus the pool digest of the
/// query context and synthesis config it was built under.
type FeatKey = (PageId, u64);

#[derive(Debug)]
struct FeatEntry {
    table: Arc<PageFeatures>,
    stamp: u64,
}

#[derive(Debug)]
struct BaseEntry {
    table: Arc<PageBaseFeatures>,
    stamp: u64,
}

/// Sharded, content-keyed, **two-tier** store of feature tables.
///
/// * The **query tier** holds full [`PageFeatures`] tables keyed by
///   `(page, pool digest)` — exact reuse for repeats of the same
///   question/config over the same page.
/// * The **base tier** holds [`PageBaseFeatures`] tables keyed by the
///   page alone: NER entity bits and leaf/elem masks are pure functions
///   of page content (under the pretrained modules), so *different*
///   questions over the same page share the expensive half and only the
///   thin keyword/answerability layer is recomputed. This tier is also
///   what `crate::persist` spills to disk, making a restarted engine
///   warm.
///
/// Both tiers are LRU with per-shard capacity; capacity 0 disables the
/// whole store (pass-through computes, no counter traffic — see
/// [`CacheStats`]).
#[derive(Debug)]
pub(crate) struct FeatureStore {
    /// Per-shard capacity (total capacity split across shards); 0 = off.
    shard_capacity: usize,
    enabled: bool,
    shards: Vec<Mutex<HashMap<FeatKey, FeatEntry>>>,
    /// The query-independent base tier, keyed by page handle (content
    /// digest included — the key is content-addressed like `FeatKey`).
    base_shards: Vec<Mutex<HashMap<PageId, BaseEntry>>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    base_hits: AtomicU64,
    base_misses: AtomicU64,
    base_evictions: AtomicU64,
}

impl FeatureStore {
    fn new(capacity: usize) -> Self {
        FeatureStore {
            shard_capacity: capacity.div_ceil(FEATURE_SHARDS),
            enabled: capacity > 0,
            shards: (0..FEATURE_SHARDS).map(|_| Mutex::default()).collect(),
            base_shards: (0..FEATURE_SHARDS).map(|_| Mutex::default()).collect(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            base_hits: AtomicU64::new(0),
            base_misses: AtomicU64::new(0),
            base_evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &FeatKey) -> &Mutex<HashMap<FeatKey, FeatEntry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % FEATURE_SHARDS]
    }

    fn base_shard_of(&self, id: &PageId) -> &Mutex<HashMap<PageId, BaseEntry>> {
        let mut h = DefaultHasher::new();
        id.hash(&mut h);
        &self.base_shards[(h.finish() as usize) % FEATURE_SHARDS]
    }

    /// The base table for page `id`, computing (and caching) it on a
    /// miss. Same discipline as the query tier: compute outside the
    /// lock, first insert wins, min-stamp eviction.
    pub fn base_for(
        &self,
        id: PageId,
        compute: impl FnOnce() -> PageBaseFeatures,
    ) -> Arc<PageBaseFeatures> {
        if !self.enabled {
            return Arc::new(compute());
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = self.base_shard_of(&id).lock().expect("base shard");
            if let Some(entry) = shard.get_mut(&id) {
                entry.stamp = stamp;
                self.base_hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.table);
            }
        }
        self.base_misses.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(compute());
        self.seed_base_entry(id, Arc::clone(&table), stamp);
        table
    }

    /// Inserts a base table computed (or loaded) elsewhere — the warm-
    /// start path of [`crate::Engine::load_snapshot`]. No counter
    /// traffic: seeding is not a lookup. A no-op when disabled or when
    /// the page already has a resident entry.
    pub fn seed_base(&self, id: PageId, table: Arc<PageBaseFeatures>) {
        if !self.enabled {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        self.seed_base_entry(id, table, stamp);
    }

    fn seed_base_entry(&self, id: PageId, table: Arc<PageBaseFeatures>, stamp: u64) {
        let mut shard = self.base_shard_of(&id).lock().expect("base shard");
        if shard.contains_key(&id) {
            // Lost the race to a concurrent miss (or an earlier seed):
            // the resident table is identical by purity.
            return;
        }
        if shard.len() >= self.shard_capacity {
            let victim = shard.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k);
            if let Some(victim) = victim {
                shard.remove(&victim);
                self.base_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(id, BaseEntry { table, stamp });
    }

    /// Snapshot of the resident base tier: every `(page, base table)`
    /// pair, in unspecified order — the spill surface of
    /// [`crate::Engine::spill_snapshot`].
    pub fn resident_base(&self) -> Vec<(PageId, Arc<PageBaseFeatures>)> {
        self.base_shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("base shard")
                    .iter()
                    .map(|(id, e)| (*id, Arc::clone(&e.table)))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// The table for `key`, computing (and caching) it on a miss. The
    /// compute runs *outside* the shard lock, so a slow table build never
    /// blocks hits on other pages; two concurrent misses on the same key
    /// may both compute, and the first insert wins (the values are
    /// identical by purity, so which one survives is unobservable).
    ///
    /// When the store is disabled, this is a pure pass-through: the
    /// compute runs and **no** counters move (a disabled cache has no
    /// hit rate — see [`CacheStats`]).
    pub fn get_or_compute(
        &self,
        key: FeatKey,
        compute: impl FnOnce() -> PageFeatures,
    ) -> Arc<PageFeatures> {
        if !self.enabled {
            return Arc::new(compute());
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = self.shard_of(&key).lock().expect("feature shard");
            if let Some(entry) = shard.get_mut(&key) {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.table);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(compute());
        let mut shard = self.shard_of(&key).lock().expect("feature shard");
        if let Some(entry) = shard.get(&key) {
            // Lost the race to a concurrent miss: share its table.
            return Arc::clone(&entry.table);
        }
        if shard.len() >= self.shard_capacity {
            let victim = shard.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k);
            if let Some(victim) = victim {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(
            key,
            FeatEntry {
                table: Arc::clone(&table),
                stamp,
            },
        );
        table
    }
}

#[derive(Debug)]
struct ResultEntry {
    /// The canonical form ([`normalize_task`]) of the task this entry
    /// was computed for — verified on lookup, so a digest collision can
    /// never serve another task's programs.
    task: Task,
    result: RunResult,
    stamp: u64,
}

/// LRU of completed `(task, config)` runs, bucketed by digest with exact
/// task equality inside a bucket.
///
/// Eviction scans all resident entries for the minimum stamp — O(capacity)
/// per at-capacity insert. That is deliberate: capacities are small (a
/// few hundred entries of whole `RunResult`s), inserts are rare next to
/// the synthesis they follow, and the scan keeps the structure a plain
/// map instead of a linked LRU. Revisit if `--result-cache` is ever
/// sized in the tens of thousands.
#[derive(Debug)]
pub(crate) struct ResultCache {
    capacity: usize,
    buckets: Mutex<HashMap<u64, Vec<ResultEntry>>>,
    len: AtomicU64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

fn result_key(cfg: u64, task: &Task) -> u64 {
    let mut h = DefaultHasher::new();
    cfg.hash(&mut h);
    task.hash(&mut h);
    h.finish()
}

/// The canonical form of a task for result-cache keying, folding
/// together exactly the input reorderings the pipeline is invariant to:
///
/// * **keywords** are sorted and deduplicated — keyword evidence is
///   accumulated by order-insensitive folds (max-similarity per node),
///   so permuting or repeating keywords never changes a result;
/// * **gold strings within one labeled example** are sorted — gold sets
///   are compared as bags by the F₁ kernels, never positionally.
///
/// The *order of labeled examples* and the *order of targets* are kept
/// exactly as given: example order steers enumeration tie-breaks (a
/// reordering can legitimately select a different optimal program), and
/// answers align positionally with targets. Normalizing either would
/// break the byte-identical-to-a-cold-engine contract; the invariances
/// above are pinned (against a never-cached reference engine) by
/// `crates/core/tests/cache_semantics.rs`.
fn normalize_task(task: &Task) -> Task {
    let mut t = task.clone();
    t.keywords.sort();
    t.keywords.dedup();
    for (_, gold) in &mut t.labeled {
        gold.sort();
    }
    t
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            buckets: Mutex::default(),
            len: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cached run for the task under config digest `cfg`, if resident.
    /// Lookup is by the task's canonical form ([`normalize_task`]), so a
    /// request that merely reorders keywords or gold strings hits the
    /// entry its equivalent predecessor filled.
    pub fn get(&self, cfg: u64, task: &Task) -> Option<RunResult> {
        if self.capacity == 0 {
            // Disabled: no lookup happened, so no miss is counted — a
            // cache that is off has no hit rate (see [`CacheStats`]).
            return None;
        }
        let task = normalize_task(task);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut buckets = self.buckets.lock().expect("result cache");
        let found = buckets
            .get_mut(&result_key(cfg, &task))
            .and_then(|bucket| bucket.iter_mut().find(|e| e.task == task))
            .map(|e| {
                e.stamp = stamp;
                e.result.clone()
            });
        match found {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a completed run under the task's canonical form
    /// ([`normalize_task`]), evicting the least-recently-used entry when
    /// over capacity.
    pub fn insert(&self, cfg: u64, task: &Task, result: RunResult) {
        if self.capacity == 0 {
            return;
        }
        let task = normalize_task(task);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let key = result_key(cfg, &task);
        let mut buckets = self.buckets.lock().expect("result cache");
        let resident = buckets
            .get(&key)
            .is_some_and(|b| b.iter().any(|e| e.task == task));
        if !resident && self.len.load(Ordering::Relaxed) as usize >= self.capacity {
            // Evict the globally least-recently-used entry.
            if let Some(victim_key) = buckets
                .iter()
                .filter_map(|(k, b)| b.iter().map(|e| e.stamp).min().map(|s| (s, *k)))
                .min()
                .map(|(_, k)| k)
            {
                let bucket = buckets.get_mut(&victim_key).expect("victim bucket");
                let oldest = bucket
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
                    .expect("non-empty bucket");
                bucket.swap_remove(oldest);
                if bucket.is_empty() {
                    buckets.remove(&victim_key);
                }
                self.len.fetch_sub(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let bucket = buckets.entry(key).or_default();
        match bucket.iter_mut().find(|e| e.task == task) {
            Some(existing) => {
                existing.result = result;
                existing.stamp = stamp;
            }
            None => {
                bucket.push(ResultEntry {
                    task,
                    result,
                    stamp,
                });
                self.len.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The caches an [`Engine`](crate::Engine) owns; clones of an engine
/// share them through an `Arc`, so a server handing out per-request
/// engine views accumulates hits in one place.
#[derive(Debug)]
pub(crate) struct EngineCaches {
    pub features: FeatureStore,
    pub results: ResultCache,
}

impl EngineCaches {
    pub fn new(config: CacheConfig) -> Self {
        EngineCaches {
            features: FeatureStore::new(config.feature_capacity),
            results: ResultCache::new(config.result_capacity),
        }
    }

    /// A point-in-time snapshot of all counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            feature_hits: self.features.hits.load(Ordering::Relaxed),
            feature_misses: self.features.misses.load(Ordering::Relaxed),
            feature_evictions: self.features.evictions.load(Ordering::Relaxed),
            base_hits: self.features.base_hits.load(Ordering::Relaxed),
            base_misses: self.features.base_misses.load(Ordering::Relaxed),
            base_evictions: self.features.base_evictions.load(Ordering::Relaxed),
            result_hits: self.results.hits.load(Ordering::Relaxed),
            result_misses: self.results.misses.load(Ordering::Relaxed),
            result_evictions: self.results.evictions.load(Ordering::Relaxed),
            features_enabled: self.features.enabled,
            results_enabled: self.results.capacity > 0,
        }
    }
}

/// Digest of the feature-table pool: the query context plus the synth
/// config *with the worker count normalized out* — `jobs` parallelizes
/// the search but never changes a table, so a batch run with a capped
/// worker count still hits tables built by a single-threaded run.
pub(crate) fn pool_digest(cfg: &SynthConfig, ctx: &QueryContext) -> u64 {
    let mut h = DefaultHasher::new();
    ctx.question().hash(&mut h);
    ctx.keywords().hash(&mut h);
    let mut normalized = cfg.clone();
    normalized.jobs = 1;
    // SynthConfig has no Hash (f64 fields); its derived Debug output is
    // injective enough for an in-process cache key (floats round-trip).
    format!("{normalized:?}").hash(&mut h);
    h.finish()
}

/// Digest of the full engine config for result-cache keying. `jobs` is
/// *kept*: branch-parallel runs can legitimately differ from sequential
/// ones in their speculative `SynthStats` counters, and a cached result
/// must be byte-identical to what the live config would compute.
pub(crate) fn config_digest(config: &Config) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{config:?}").hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_dsl::PageTree;

    fn table(nodes: &str) -> PageFeatures {
        let cfg = SynthConfig::fast();
        let ctx = QueryContext::new("Who?", ["Students"]);
        PageFeatures::compute(&cfg, &ctx, &PageTree::parse(nodes))
    }

    fn base(nodes: &str) -> PageBaseFeatures {
        let ctx = QueryContext::new("Who?", ["Students"]);
        PageBaseFeatures::compute(&ctx, &PageTree::parse(nodes))
    }

    fn key(n: u32) -> FeatKey {
        (crate::store::PageId::forged(n), 7)
    }

    #[test]
    fn feature_store_hits_after_insert() {
        let store = FeatureStore::new(16);
        let a1 = store.get_or_compute(key(1), || table("<p>a</p>"));
        let a2 = store.get_or_compute(key(1), || panic!("must hit"));
        assert!(Arc::ptr_eq(&a1, &a2));
        let s = |a: &AtomicU64| a.load(Ordering::Relaxed);
        assert_eq!((s(&store.hits), s(&store.misses)), (1, 1));
    }

    #[test]
    fn feature_store_evicts_least_recently_used() {
        // Capacity 8 over 8 shards = 1 entry per shard; two keys in the
        // same shard force an eviction of the older one.
        let store = FeatureStore::new(8);
        let mut in_shard = (0u32..).filter(|&n| {
            std::ptr::eq(
                store.shard_of(&key(n)) as *const _,
                store.shard_of(&key(0)) as *const _,
            )
        });
        let a = in_shard.next().unwrap();
        let b = in_shard.next().unwrap();
        store.get_or_compute(key(a), || table("<p>a</p>"));
        store.get_or_compute(key(b), || table("<p>b</p>"));
        assert_eq!(store.evictions.load(Ordering::Relaxed), 1);
        // `a` was evicted: asking again recomputes.
        store.get_or_compute(key(a), || table("<p>a</p>"));
        assert_eq!(store.hits.load(Ordering::Relaxed), 0);
        assert_eq!(store.misses.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn disabled_feature_store_is_a_pass_through() {
        // A disabled store computes every request — and counts *nothing*:
        // a cache that is off has no hit rate (the PR 9 bugfix; it used
        // to count every lookup as a miss, rendering as "0% hit rate").
        let store = FeatureStore::new(0);
        assert!(!store.enabled);
        store.get_or_compute(key(1), || table("<p>a</p>"));
        store.get_or_compute(key(1), || table("<p>a</p>"));
        store.base_for(PageId::forged(1), || base("<p>a</p>"));
        store.seed_base(PageId::forged(1), Arc::new(base("<p>a</p>")));
        assert_eq!(store.hits.load(Ordering::Relaxed), 0);
        assert_eq!(store.misses.load(Ordering::Relaxed), 0);
        assert_eq!(store.base_hits.load(Ordering::Relaxed), 0);
        assert_eq!(store.base_misses.load(Ordering::Relaxed), 0);
        assert!(store.shards.iter().all(|s| s.lock().unwrap().is_empty()));
        assert!(store
            .base_shards
            .iter()
            .all(|s| s.lock().unwrap().is_empty()));
        assert!(store.resident_base().is_empty());
    }

    #[test]
    fn base_tier_shares_across_queries_and_evicts_lru() {
        let store = FeatureStore::new(16);
        let id = PageId::forged(1);
        let b1 = store.base_for(id, || base("<p>a</p>"));
        let b2 = store.base_for(id, || panic!("must hit"));
        assert!(Arc::ptr_eq(&b1, &b2));
        let s = |a: &AtomicU64| a.load(Ordering::Relaxed);
        assert_eq!((s(&store.base_hits), s(&store.base_misses)), (1, 1));
        // The base tier never touches the query-tier counters.
        assert_eq!((s(&store.hits), s(&store.misses)), (0, 0));
        assert_eq!(store.resident_base().len(), 1);
    }

    #[test]
    fn base_tier_eviction_is_least_recently_used() {
        // Capacity 8 over 8 shards = 1 entry per base shard; two pages
        // in the same shard force an eviction of the older one.
        let store = FeatureStore::new(8);
        let mut in_shard = (0u32..).filter(|&n| {
            std::ptr::eq(
                store.base_shard_of(&PageId::forged(n)) as *const _,
                store.base_shard_of(&PageId::forged(0)) as *const _,
            )
        });
        let a = PageId::forged(in_shard.next().unwrap());
        let b = PageId::forged(in_shard.next().unwrap());
        store.base_for(a, || base("<p>a</p>"));
        store.base_for(b, || base("<p>b</p>"));
        assert_eq!(store.base_evictions.load(Ordering::Relaxed), 1);
        store.base_for(a, || base("<p>a</p>"));
        assert_eq!(store.base_hits.load(Ordering::Relaxed), 0);
        assert_eq!(store.base_misses.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn seeded_base_tables_hit_without_counting_a_lookup() {
        let store = FeatureStore::new(16);
        let id = PageId::forged(9);
        let seeded = Arc::new(base("<p>a</p>"));
        store.seed_base(id, Arc::clone(&seeded));
        assert_eq!(store.base_misses.load(Ordering::Relaxed), 0);
        let got = store.base_for(id, || panic!("must hit the seeded table"));
        assert!(Arc::ptr_eq(&got, &seeded));
        assert_eq!(store.base_hits.load(Ordering::Relaxed), 1);
        // Seeding an already-resident page is a no-op, not a replace.
        store.seed_base(id, Arc::new(base("<p>a</p>")));
        let again = store.base_for(id, || panic!("must hit"));
        assert!(Arc::ptr_eq(&again, &seeded));
    }

    #[test]
    fn pool_digest_ignores_jobs_but_not_search_knobs() {
        let ctx = QueryContext::new("Who?", ["Students"]);
        let base = SynthConfig::fast();
        assert_eq!(
            pool_digest(&base, &ctx),
            pool_digest(&base.clone().with_jobs(4), &ctx)
        );
        let mut deeper = base.clone();
        deeper.guard_depth += 1;
        assert_ne!(pool_digest(&base, &ctx), pool_digest(&deeper, &ctx));
        let other_ctx = QueryContext::new("Who?", ["Faculty"]);
        assert_ne!(pool_digest(&base, &ctx), pool_digest(&base, &other_ctx));
    }

    #[test]
    fn config_digest_keeps_jobs() {
        let base = Config::default();
        let mut jobs4 = base.clone();
        jobs4.synth.jobs = 4;
        assert_ne!(config_digest(&base), config_digest(&jobs4));
    }
}
