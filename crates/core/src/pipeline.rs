//! The end-to-end WebQA pipeline (Figure 1 of the paper):
//! query + labeled pages → optimal programs → transductive selection →
//! answers for every unlabeled page.

use webqa_dsl::{PageTree, Program, QueryContext};
use webqa_metrics::{Counts, Score};
use webqa_select::{select_random, select_shortest, select_transductive, SelectionConfig};
use webqa_synth::{synthesize, Example, SynthConfig, SynthesisOutcome};

/// Which query modalities the pipeline uses (the WebQA-NL / WebQA-KW
/// ablations of Appendix C.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Modality {
    /// Question and keywords (full WebQA).
    #[default]
    Both,
    /// Question only (`WebQA-NL`).
    QuestionOnly,
    /// Keywords only (`WebQA-KW`).
    KeywordsOnly,
}

/// Program-selection strategy (Section 8.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// Transductive ensemble selection (Section 6).
    #[default]
    Transductive,
    /// Uniformly random optimal program.
    Random,
    /// Random among the smallest optimal programs.
    Shortest,
}

/// End-to-end pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Synthesizer settings.
    pub synth: SynthConfig,
    /// Transductive-selection settings.
    pub selection: SelectionConfig,
    /// Which selection strategy to use.
    pub strategy: Selection,
    /// Which query modalities to use.
    pub modality: Modality,
}

/// The WebQA system.
#[derive(Debug, Clone, Default)]
pub struct WebQa {
    config: Config,
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The selected program, `None` when synthesis found nothing.
    pub program: Option<Program>,
    /// The full synthesis outcome (all optimal programs, stats).
    pub synthesis: SynthesisOutcome,
    /// Answers per unlabeled page, aligned with the input order.
    pub answers: Vec<Vec<String>>,
}

impl WebQa {
    /// Creates the system with the given configuration.
    pub fn new(config: Config) -> Self {
        WebQa { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Builds the query context for the configured modality.
    pub fn context<S: AsRef<str>>(&self, question: &str, keywords: &[S]) -> QueryContext {
        let kws: Vec<String> = keywords.iter().map(|k| k.as_ref().to_string()).collect();
        match self.config.modality {
            Modality::Both => QueryContext::new(question, kws),
            Modality::QuestionOnly => QueryContext::question_only(question),
            Modality::KeywordsOnly => QueryContext::keywords_only(kws),
        }
    }

    /// Runs the full pipeline: synthesize all optimal programs from the
    /// labeled pages, select one (transductively, against the unlabeled
    /// pages), and extract answers from every unlabeled page.
    pub fn run<S: AsRef<str>>(
        &self,
        question: &str,
        keywords: &[S],
        labeled: &[(PageTree, Vec<String>)],
        unlabeled: &[PageTree],
    ) -> RunResult {
        let ctx = self.context(question, keywords);
        let examples: Vec<Example> = labeled
            .iter()
            .map(|(p, g)| Example::new(p.clone(), g.clone()))
            .collect();
        let synthesis = synthesize(&self.config.synth, &ctx, &examples);
        let program = match self.config.strategy {
            Selection::Transductive => {
                select_transductive(&self.config.selection, &ctx, &synthesis.programs, unlabeled)
            }
            Selection::Random => select_random(&synthesis.programs, self.config.selection.seed),
            Selection::Shortest => select_shortest(&synthesis.programs, self.config.selection.seed),
        };
        let answers = match &program {
            Some(p) => unlabeled.iter().map(|page| p.eval(&ctx, page)).collect(),
            None => vec![Vec::new(); unlabeled.len()],
        };
        RunResult {
            program,
            synthesis,
            answers,
        }
    }
}

/// Scores per-page answers against per-page gold labels (micro-averaged
/// token P/R/F₁ — the paper's evaluation metric).
pub fn score_answers(answers: &[Vec<String>], gold: &[Vec<String>]) -> Score {
    assert_eq!(
        answers.len(),
        gold.len(),
        "answers and gold must be aligned"
    );
    let counts: Counts = answers
        .iter()
        .zip(gold)
        .map(|(a, g)| Counts::from_strings(a, g))
        .sum();
    Score::from_counts(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled() -> Vec<(PageTree, Vec<String>)> {
        vec![
            (
                PageTree::parse(
                    "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>\
                     <h2>News</h2><p>Two papers accepted.</p>",
                ),
                vec!["Jane Doe".into(), "Bob Smith".into()],
            ),
            (
                PageTree::parse(
                    "<h1>B</h1><h2>Teaching</h2><p>CS 101</p>\
                     <h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>",
                ),
                vec!["Mary Anderson".into()],
            ),
        ]
    }

    fn unlabeled() -> Vec<PageTree> {
        vec![PageTree::parse(
            "<h1>C</h1><h2>Advisees</h2><ul><li>Wei Chen</li><li>Elena Petrov</li></ul>",
        )]
    }

    #[test]
    fn end_to_end_extracts_from_unseen_page() {
        let system = WebQa::new(Config::default());
        let result = system.run(
            "Who are the current PhD students?",
            &["Students", "PhD"],
            &labeled(),
            &unlabeled(),
        );
        assert!(result.program.is_some());
        assert!(result.synthesis.f1 > 0.99);
        let answers = &result.answers[0];
        assert!(
            answers.iter().any(|a| a.contains("Wei Chen")),
            "generalization to a differently-titled section, got {answers:?}"
        );
    }

    #[test]
    fn score_answers_micro_averages() {
        let answers = vec![vec!["Jane Doe".to_string()], vec![]];
        let gold = vec![vec!["Jane Doe".to_string()], vec!["Bob Smith".to_string()]];
        let s = score_answers(&answers, &gold);
        assert!((s.precision - 1.0).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn modality_contexts() {
        let cfg = Config {
            modality: Modality::QuestionOnly,
            ..Config::default()
        };
        let system = WebQa::new(cfg);
        let ctx = system.context("Who?", &["K"]);
        assert!(ctx.keywords().is_empty());
        assert_eq!(ctx.question(), "Who?");

        let cfg = Config {
            modality: Modality::KeywordsOnly,
            ..Config::default()
        };
        let ctx = WebQa::new(cfg).context("Who?", &["K"]);
        assert!(ctx.question().is_empty());
        assert_eq!(ctx.keywords(), ["K".to_string()]);
    }

    #[test]
    fn no_labels_no_program() {
        let system = WebQa::new(Config::default());
        let result = system.run("Who?", &["K"], &[], &unlabeled());
        assert!(result.program.is_none());
        assert_eq!(result.answers, vec![Vec::<String>::new()]);
    }

    #[test]
    fn selection_strategies_all_produce_programs() {
        for strategy in [
            Selection::Transductive,
            Selection::Random,
            Selection::Shortest,
        ] {
            let cfg = Config {
                strategy,
                ..Config::default()
            };
            let system = WebQa::new(cfg);
            let result = system.run(
                "Who are the current PhD students?",
                &["Students", "PhD"],
                &labeled(),
                &unlabeled(),
            );
            assert!(result.program.is_some(), "strategy {strategy:?}");
        }
    }
}
