//! The one-shot WebQA pipeline facade (Figure 1 of the paper):
//! query + labeled pages → optimal programs → transductive selection →
//! answers for every unlabeled page.
//!
//! [`WebQa`] is a thin compatibility wrapper over the staged
//! [`Engine`](crate::Engine): it builds a throwaway engine, interns the
//! caller's pages, and runs the stages back to back. Callers that run
//! more than one query over the same pages, need intermediate stages, or
//! want typed errors should use the engine directly.

use crate::engine::{Engine, Task};
use crate::error::Error;
use webqa_dsl::{PageTree, Program, QueryContext};
use webqa_metrics::{Counts, Score};
use webqa_select::SelectionConfig;
use webqa_synth::{SynthConfig, SynthesisOutcome};

/// Which query modalities the pipeline uses (the WebQA-NL / WebQA-KW
/// ablations of Appendix C.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Modality {
    /// Question and keywords (full WebQA).
    #[default]
    Both,
    /// Question only (`WebQA-NL`).
    QuestionOnly,
    /// Keywords only (`WebQA-KW`).
    KeywordsOnly,
}

/// Program-selection strategy (Section 8.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// Transductive ensemble selection (Section 6).
    #[default]
    Transductive,
    /// Uniformly random optimal program.
    Random,
    /// Random among the smallest optimal programs.
    Shortest,
}

/// End-to-end pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Synthesizer settings.
    pub synth: SynthConfig,
    /// Transductive-selection settings.
    pub selection: SelectionConfig,
    /// Which selection strategy to use.
    pub strategy: Selection,
    /// Which query modalities to use.
    pub modality: Modality,
    /// Capacities of the engine's cross-request caches (the feature
    /// store and the completed-run LRU — see [`crate::CacheConfig`]).
    /// Caching never changes results, only latency.
    pub cache: crate::CacheConfig,
}

/// The WebQA system.
#[derive(Debug, Clone, Default)]
pub struct WebQa {
    config: Config,
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The selected program, `None` when synthesis found nothing.
    pub program: Option<Program>,
    /// The full synthesis outcome (all optimal programs, stats).
    pub synthesis: SynthesisOutcome,
    /// Answers per unlabeled page, aligned with the input order.
    pub answers: Vec<Vec<String>>,
}

impl WebQa {
    /// Creates the system with the given configuration.
    pub fn new(config: Config) -> Self {
        WebQa { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Builds the query context for the configured modality.
    pub fn context<S: AsRef<str>>(&self, question: &str, keywords: &[S]) -> QueryContext {
        context_for(self.config.modality, question, keywords)
    }

    /// Runs the full pipeline: synthesize all optimal programs from the
    /// labeled pages, select one (transductively, against the unlabeled
    /// pages), and extract answers from every unlabeled page.
    ///
    /// Compatibility shim: interns the given pages into a throwaway
    /// [`Engine`] (this is where the one deep copy per page happens) and
    /// runs the staged pipeline. Engine callers skip that copy entirely.
    pub fn run<S: AsRef<str>>(
        &self,
        question: &str,
        keywords: &[S],
        labeled: &[(PageTree, Vec<String>)],
        unlabeled: &[PageTree],
    ) -> RunResult {
        let mut engine = Engine::new(self.config.clone());
        let mut task = Task::new(question, keywords.iter().map(|k| k.as_ref().to_string()));
        for (page, gold) in labeled {
            let id = engine.store_mut().insert_tree(page.clone());
            task.labeled.push((id, gold.clone()));
        }
        for page in unlabeled {
            let id = engine.store_mut().insert_tree(page.clone());
            task.unlabeled.push(id);
        }
        engine
            .run(&task)
            .expect("ids interned in this engine always resolve")
    }
}

/// Builds a [`QueryContext`] for a modality (the WebQA-NL / WebQA-KW
/// ablations drop one input channel).
pub(crate) fn context_for<S: AsRef<str>>(
    modality: Modality,
    question: &str,
    keywords: &[S],
) -> QueryContext {
    let kws: Vec<String> = keywords.iter().map(|k| k.as_ref().to_string()).collect();
    match modality {
        Modality::Both => QueryContext::new(question, kws),
        Modality::QuestionOnly => QueryContext::question_only(question),
        Modality::KeywordsOnly => QueryContext::keywords_only(kws),
    }
}

/// Scores per-page answers against per-page gold labels (micro-averaged
/// token P/R/F₁ — the paper's evaluation metric).
///
/// # Errors
///
/// [`Error::AnswerGoldMismatch`] when the two lists have different
/// lengths (they must be aligned page-for-page).
pub fn score_answers(answers: &[Vec<String>], gold: &[Vec<String>]) -> Result<Score, Error> {
    if answers.len() != gold.len() {
        return Err(Error::AnswerGoldMismatch {
            answers: answers.len(),
            gold: gold.len(),
        });
    }
    let counts: Counts = answers
        .iter()
        .zip(gold)
        .map(|(a, g)| Counts::from_strings(a, g))
        .sum();
    Ok(Score::from_counts(counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled() -> Vec<(PageTree, Vec<String>)> {
        vec![
            (
                PageTree::parse(
                    "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>\
                     <h2>News</h2><p>Two papers accepted.</p>",
                ),
                vec!["Jane Doe".into(), "Bob Smith".into()],
            ),
            (
                PageTree::parse(
                    "<h1>B</h1><h2>Teaching</h2><p>CS 101</p>\
                     <h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>",
                ),
                vec!["Mary Anderson".into()],
            ),
        ]
    }

    fn unlabeled() -> Vec<PageTree> {
        vec![PageTree::parse(
            "<h1>C</h1><h2>Advisees</h2><ul><li>Wei Chen</li><li>Elena Petrov</li></ul>",
        )]
    }

    #[test]
    fn end_to_end_extracts_from_unseen_page() {
        let system = WebQa::new(Config::default());
        let result = system.run(
            "Who are the current PhD students?",
            &["Students", "PhD"],
            &labeled(),
            &unlabeled(),
        );
        assert!(result.program.is_some());
        assert!(result.synthesis.f1 > 0.99);
        let answers = &result.answers[0];
        assert!(
            answers.iter().any(|a| a.contains("Wei Chen")),
            "generalization to a differently-titled section, got {answers:?}"
        );
    }

    #[test]
    fn score_answers_micro_averages() {
        let answers = vec![vec!["Jane Doe".to_string()], vec![]];
        let gold = vec![vec!["Jane Doe".to_string()], vec!["Bob Smith".to_string()]];
        let s = score_answers(&answers, &gold).unwrap();
        assert!((s.precision - 1.0).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn score_answers_rejects_misaligned_lists() {
        let answers = vec![vec!["Jane Doe".to_string()]];
        let gold: Vec<Vec<String>> = vec![vec![], vec![]];
        assert_eq!(
            score_answers(&answers, &gold).unwrap_err(),
            Error::AnswerGoldMismatch {
                answers: 1,
                gold: 2
            }
        );
    }

    #[test]
    fn modality_contexts() {
        let cfg = Config {
            modality: Modality::QuestionOnly,
            ..Config::default()
        };
        let system = WebQa::new(cfg);
        let ctx = system.context("Who?", &["K"]);
        assert!(ctx.keywords().is_empty());
        assert_eq!(ctx.question(), "Who?");

        let cfg = Config {
            modality: Modality::KeywordsOnly,
            ..Config::default()
        };
        let ctx = WebQa::new(cfg).context("Who?", &["K"]);
        assert!(ctx.question().is_empty());
        assert_eq!(ctx.keywords(), ["K".to_string()]);
    }

    #[test]
    fn no_labels_no_program() {
        let system = WebQa::new(Config::default());
        let result = system.run("Who?", &["K"], &[], &unlabeled());
        assert!(result.program.is_none());
        assert_eq!(result.answers, vec![Vec::<String>::new()]);
    }

    #[test]
    fn selection_strategies_all_produce_programs() {
        for strategy in [
            Selection::Transductive,
            Selection::Random,
            Selection::Shortest,
        ] {
            let cfg = Config {
                strategy,
                ..Config::default()
            };
            let system = WebQa::new(cfg);
            let result = system.run(
                "Who are the current PhD students?",
                &["Students", "PhD"],
                &labeled(),
                &unlabeled(),
            );
            assert!(result.program.is_some(), "strategy {strategy:?}");
        }
    }
}
