//! Shared, interned page storage.
//!
//! Every stage of the pipeline — synthesis examples, the transductive
//! ensemble, answer extraction — reads pages. Before the engine API, each
//! `WebQa::run` call deep-cloned every [`PageTree`] it was handed; the
//! [`PageStore`] instead parses/interns a page once and hands out cheap
//! [`PageId`] handles backed by `Arc<PageTree>`, so concurrent batch
//! tasks and repeated interactive-labeling rounds share one copy.
//!
//! Insertion is content-addressed: inserting the same HTML (or a
//! structurally identical tree) twice returns the *same* `PageId` and the
//! same `Arc`. Two different HTML sources that parse to identical trees
//! also intern to one page — the pipeline only ever observes the tree.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::error::Error;
use webqa_dsl::PageTree;

/// Issues a distinct token to every independently-created store, so a
/// handle can prove which store issued it. Clones of a store keep its
/// token — their ids are interchangeable by construction (see
/// [`crate::Engine::with_store`]).
static NEXT_STORE_TOKEN: AtomicU32 = AtomicU32::new(1);

/// Handle to an interned page in a [`PageStore`].
///
/// An id carries the issuing store's token and the page's content digest
/// alongside its dense index, so resolving it against an unrelated store
/// — or against a clone that diverged and interned a *different* page at
/// the same index — yields [`Error::UnknownPage`] instead of silently
/// reading the wrong page. Ids are interchangeable between a store and
/// its clones wherever the named page actually exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Token of the issuing store (`0` is never issued — tests use it to
    /// forge foreign ids).
    pub(crate) store: u32,
    /// Dense index within the issuing store.
    pub(crate) index: u32,
    /// Content digest of the named page; checked on resolution.
    pub(crate) digest: u64,
}

impl PageId {
    /// The raw index of this page within its store.
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The content digest of the page this id names — the same value
    /// [`content_digest`] computes for the page's tree. A pure function
    /// of page *content*: two ids for structurally identical pages carry
    /// equal digests even across unrelated stores, which is what lets a
    /// front end (e.g. `webqa_server`'s shard router) partition pages
    /// deterministically without consulting any store.
    pub fn digest(self) -> u64 {
        self.digest
    }

    /// An id no store ever issued (token `0`), for exercising the
    /// foreign-handle error paths.
    #[cfg(test)]
    pub(crate) fn forged(index: u32) -> PageId {
        PageId {
            store: 0,
            index,
            digest: 0,
        }
    }
}

/// Interned storage of parsed pages. See the module docs.
#[derive(Debug, Clone)]
pub struct PageStore {
    /// This store's identity; embedded in every id it issues.
    token: u32,
    pages: Vec<Arc<PageTree>>,
    /// Content digest of each page, aligned with `pages`; checked when a
    /// handle is resolved.
    digests: Vec<u64>,
    /// Content digest → candidate ids (collision list).
    by_digest: HashMap<u64, Vec<PageId>>,
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore {
    /// An empty store (with a fresh identity — ids from other stores do
    /// not resolve against it).
    pub fn new() -> Self {
        PageStore {
            token: NEXT_STORE_TOKEN.fetch_add(1, Ordering::Relaxed),
            pages: Vec::new(),
            digests: Vec::new(),
            by_digest: HashMap::new(),
        }
    }

    /// Number of distinct pages interned.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the store holds no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Parses HTML through the fallible path ([`PageTree::try_parse`])
    /// and interns the result.
    ///
    /// # Errors
    ///
    /// [`Error::Html`] when the HTML is damaged (runaway unclosed-tag
    /// nesting, undecodable character references).
    pub fn insert_html(&mut self, html: &str) -> Result<PageId, Error> {
        Ok(self.insert_tree(PageTree::try_parse(html)?))
    }

    /// Parses HTML leniently ([`PageTree::parse`], never fails) and
    /// interns the result. For trusted or already-vetted sources.
    pub fn insert_html_lenient(&mut self, html: &str) -> PageId {
        self.insert_tree(PageTree::parse(html))
    }

    /// Interns an already-parsed tree, deduplicating against every page
    /// inserted so far: a structurally identical tree returns the
    /// existing [`PageId`] and the tree is dropped.
    pub fn insert_tree(&mut self, tree: PageTree) -> PageId {
        self.insert_shared(Arc::new(tree))
    }

    /// Interns a tree that is already behind an `Arc` (shares the handle
    /// instead of re-wrapping when the tree is new to the store).
    pub fn insert_shared(&mut self, tree: Arc<PageTree>) -> PageId {
        let digest = content_digest(&tree);
        let bucket = self.by_digest.entry(digest).or_default();
        for &id in bucket.iter() {
            if self.pages[id.index()] == tree {
                return id;
            }
        }
        let id = PageId {
            store: self.token,
            index: u32::try_from(self.pages.len()).expect("under 2^32 pages"),
            digest,
        };
        self.pages.push(tree);
        self.digests.push(digest);
        bucket.push(id);
        id
    }

    /// Resolves a handle to its shared tree.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownPage`] when `id` was not issued by this store (or
    /// by a clone that still agrees with it about the named page — a
    /// clone that diverged and interned a different page at the same
    /// index fails the digest check instead of resolving wrongly).
    pub fn get(&self, id: PageId) -> Result<&Arc<PageTree>, Error> {
        if id.store != self.token {
            return Err(Error::UnknownPage(id));
        }
        let tree = self.pages.get(id.index()).ok_or(Error::UnknownPage(id))?;
        if self.digests[id.index()] != id.digest {
            return Err(Error::UnknownPage(id));
        }
        Ok(tree)
    }

    /// The shared trees of every interned page, in insertion order.
    pub fn pages(&self) -> &[Arc<PageTree>] {
        &self.pages
    }

    /// The handle of the page at dense index `index`, if one is interned
    /// there — how a front end holding raw indices (e.g. `webqa_server`'s
    /// wire-level page handles) recovers full, digest-checked [`PageId`]s.
    pub fn id_at(&self, index: usize) -> Option<PageId> {
        let digest = *self.digests.get(index)?;
        Some(PageId {
            store: self.token,
            index: u32::try_from(index).ok()?,
            digest,
        })
    }

    /// The handle of an already-interned tree, without inserting — the
    /// read-only half of [`PageStore::insert_shared`]'s dedup. Lets a
    /// caller that only holds a shared reference (e.g. a server resolving
    /// a request under a read lock) discover whether a page is resident
    /// before committing to a write lock.
    pub fn lookup(&self, tree: &PageTree) -> Option<PageId> {
        let bucket = self.by_digest.get(&content_digest(tree))?;
        bucket
            .iter()
            .copied()
            .find(|&id| *self.pages[id.index()] == *tree)
    }
}

/// Content digest of a page tree — the value embedded in every
/// [`PageId`] and the key of the store's content-addressed dedup. A pure
/// function of tree structure: structurally identical pages digest
/// equally whatever bytes they were parsed from. Not a stable on-disk
/// format — in-process addressing (interning, shard routing) only.
pub fn content_digest(tree: &PageTree) -> u64 {
    let mut h = DefaultHasher::new();
    tree.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_html_interns_to_same_id_and_arc() {
        let mut store = PageStore::new();
        let html = "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>";
        let a = store.insert_html(html).unwrap();
        let b = store.insert_html(html).unwrap();
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
        let (pa, pb) = (store.get(a).unwrap(), store.get(b).unwrap());
        assert!(Arc::ptr_eq(pa, pb));
    }

    #[test]
    fn distinct_pages_get_distinct_ids() {
        let mut store = PageStore::new();
        let a = store.insert_html("<h1>A</h1>").unwrap();
        let b = store.insert_html("<h1>B</h1>").unwrap();
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        assert_eq!(
            store.get(a).unwrap().text(store.get(a).unwrap().root()),
            "A"
        );
    }

    #[test]
    fn structurally_identical_sources_share_a_page() {
        // Different byte strings, same tree after lenient whitespace
        // normalization.
        let mut store = PageStore::new();
        let a = store.insert_html("<h1>A</h1><p>x</p>").unwrap();
        let b = store.insert_html("<h1>A</h1>\n  <p>x</p>\n").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn damaged_html_is_rejected_not_interned() {
        let mut store = PageStore::new();
        let err = store.insert_html("<p>50&bogus;mg</p>").unwrap_err();
        assert!(matches!(err, Error::Html(_)));
        assert!(store.is_empty());
        // The lenient path still accepts it.
        let id = store.insert_html_lenient("<p>50&bogus;mg</p>");
        assert_eq!(store.get(id).unwrap().len(), 2);
    }

    #[test]
    fn in_range_id_from_another_store_is_rejected() {
        let mut a = PageStore::new();
        let mut b = PageStore::new();
        let id_a = a.insert_html("<h1>A</h1>").unwrap();
        let id_b = b.insert_html("<h1>B</h1>").unwrap();
        // Same dense index, different stores: resolving across must fail
        // rather than silently returning the other store's page.
        assert_eq!(id_a.index(), id_b.index());
        assert_eq!(b.get(id_a).unwrap_err(), Error::UnknownPage(id_a));
        assert_eq!(a.get(id_b).unwrap_err(), Error::UnknownPage(id_b));
        // A clone shares identity: its ids remain valid both ways.
        let c = a.clone();
        assert!(c.get(id_a).is_ok());
    }

    #[test]
    fn diverged_clones_reject_each_others_new_ids() {
        let mut base = PageStore::new();
        let shared = base.insert_html("<h1>Shared</h1>").unwrap();
        let (mut a, mut b) = (base.clone(), base.clone());
        let id_x = a.insert_html("<h1>X</h1>").unwrap();
        let id_y = b.insert_html("<h1>Y</h1>").unwrap();
        // Same token, same index, different page: the digest check must
        // refuse cross-resolution rather than hand back the wrong tree.
        assert_eq!(id_x.index(), id_y.index());
        assert_eq!(b.get(id_x).unwrap_err(), Error::UnknownPage(id_x));
        assert_eq!(a.get(id_y).unwrap_err(), Error::UnknownPage(id_y));
        // Pre-fork ids stay valid everywhere.
        assert!(a.get(shared).is_ok());
        assert!(b.get(shared).is_ok());
    }

    #[test]
    fn foreign_ids_are_unknown() {
        let store = PageStore::new();
        assert_eq!(
            store.get(PageId::forged(3)).unwrap_err(),
            Error::UnknownPage(PageId::forged(3))
        );
    }

    #[test]
    fn lookup_finds_resident_pages_without_inserting() {
        let mut store = PageStore::new();
        let id = store.insert_html("<h1>A</h1>").unwrap();
        let same = PageTree::parse("<h1>A</h1>");
        let other = PageTree::parse("<h1>B</h1>");
        assert_eq!(store.lookup(&same), Some(id));
        assert_eq!(store.lookup(&other), None);
        assert_eq!(store.len(), 1, "lookup never inserts");
        // The digest a lookup routes by is the one the id carries.
        assert_eq!(id.digest(), content_digest(&same));
    }

    #[test]
    fn insert_shared_reuses_the_handle() {
        let mut store = PageStore::new();
        let tree = Arc::new(PageTree::parse("<h1>A</h1>"));
        let id = store.insert_shared(Arc::clone(&tree));
        assert!(Arc::ptr_eq(store.get(id).unwrap(), &tree));
        // Interning an equal owned tree dedups onto the same id.
        assert_eq!(store.insert_tree(PageTree::parse("<h1>A</h1>")), id);
    }
}
