//! The session-oriented engine: shared page storage plus the staged
//! pipeline.
//!
//! [`WebQa::run`](crate::WebQa::run) is one-shot: it re-parses and clones
//! every page per call and exposes nothing between "question in" and
//! "answers out". The paper's workflow is not one-shot — Figure 1 runs
//! synthesis over a few labeled pages and selection over many unlabeled
//! ones, and the Section 7 interactive-labeling loop re-runs synthesis
//! after each new label. The [`Engine`] serves that workflow:
//!
//! * pages are interned once in a [`PageStore`] and referenced by
//!   [`PageId`] — no `PageTree` is deep-cloned on the run path;
//! * the pipeline is staged — [`Engine::prepare`] →
//!   [`Prepared::synthesize`] → [`Synthesized::select`] →
//!   [`Selected::answers`] — so callers can inspect or loop on any stage
//!   (add a label and re-synthesize without re-doing anything else);
//! * errors are values ([`Error`]), not panics;
//! * independent tasks batch through
//!   [`Engine::run_batch`](crate::Engine::run_batch) (see
//!   [`crate::batch`]).

use std::sync::Arc;

use crate::cache::{self, CacheStats, EngineCaches};
use crate::error::Error;
use crate::persist::{PersistSink, PersistStats};
use crate::pipeline::{Config, RunResult, Selection};
use crate::store::{PageId, PageStore};
use webqa_dsl::{PageTree, Program, QueryContext};
use webqa_select::{select_from_ensemble, select_random, select_shortest, Ensemble};
use webqa_synth::{
    synthesize_cancellable, synthesize_with_features, CancelToken, Example, PageBaseFeatures,
    PageFeatures, SynthesisOutcome,
};

/// One extraction task over pages interned in an engine's store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Task {
    /// The natural-language question.
    pub question: String,
    /// The keyword list.
    pub keywords: Vec<String>,
    /// Labeled pages: the page handle plus its gold extraction strings.
    pub labeled: Vec<(PageId, Vec<String>)>,
    /// Unlabeled target pages, in the order answers are wanted.
    pub unlabeled: Vec<PageId>,
}

impl Task {
    /// A task with no pages yet; push into
    /// [`labeled`](Task::labeled) / [`unlabeled`](Task::unlabeled) or use
    /// [`with_label`](Task::with_label) / [`with_target`](Task::with_target).
    pub fn new(
        question: impl Into<String>,
        keywords: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Task {
            question: question.into(),
            keywords: keywords.into_iter().map(Into::into).collect(),
            labeled: Vec::new(),
            unlabeled: Vec::new(),
        }
    }

    /// Builds a task from a train/test split of parsed trees, interning
    /// every page into `store` — the canonical way to turn a dataset
    /// split into a task without hand-rolling the interning loop.
    /// Content-addressing applies: trees already in the store (from an
    /// earlier task over the same pages) reuse their existing handles.
    pub fn from_split(
        question: impl Into<String>,
        keywords: impl IntoIterator<Item = impl Into<String>>,
        store: &mut PageStore,
        labeled: impl IntoIterator<Item = (PageTree, Vec<String>)>,
        unlabeled: impl IntoIterator<Item = PageTree>,
    ) -> Self {
        let mut task = Task::new(question, keywords);
        for (tree, gold) in labeled {
            task.labeled.push((store.insert_tree(tree), gold));
        }
        task.unlabeled
            .extend(unlabeled.into_iter().map(|tree| store.insert_tree(tree)));
        task
    }

    /// Builds a task over pages already interned in a store, applying the
    /// standard corpus split rule in one place: the first `n_train`
    /// handles become labeled examples (gold supplied per index into
    /// `pages`), the rest become unlabeled targets.
    pub fn from_id_split(
        question: impl Into<String>,
        keywords: impl IntoIterator<Item = impl Into<String>>,
        pages: &[PageId],
        n_train: usize,
        mut gold_of: impl FnMut(usize) -> Vec<String>,
    ) -> Self {
        let boundary = n_train.min(pages.len());
        let mut task = Task::new(question, keywords);
        for (i, &id) in pages[..boundary].iter().enumerate() {
            task.labeled.push((id, gold_of(i)));
        }
        task.unlabeled.extend(&pages[boundary..]);
        task
    }

    /// Adds a labeled page (builder style).
    pub fn with_label(mut self, page: PageId, gold: Vec<String>) -> Self {
        self.labeled.push((page, gold));
        self
    }

    /// Adds an unlabeled target page (builder style).
    pub fn with_target(mut self, page: PageId) -> Self {
        self.unlabeled.push(page);
        self
    }
}

/// The session-oriented WebQA engine: a [`Config`] plus an owned
/// [`PageStore`]. See the module docs for the staged workflow.
///
/// ```
/// use webqa::{Config, Engine, Task};
///
/// let mut engine = Engine::new(Config::default());
/// let labeled = engine
///     .store_mut()
///     .insert_html("<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>")?;
/// let target = engine
///     .store_mut()
///     .insert_html("<h1>B</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>")?;
///
/// let task = Task::new("Who are the PhD students?", ["Students"])
///     .with_label(labeled, vec!["Jane Doe".into()])
///     .with_target(target);
///
/// // Staged: prepare → synthesize → select → answers.
/// let selected = engine.prepare(&task)?.synthesize().select();
/// assert!(selected.program().is_some());
/// assert_eq!(selected.answers(), vec![vec!["Wei Chen".to_string()]]);
/// # Ok::<(), webqa::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    config: Config,
    store: PageStore,
    /// Cross-request caches ([`crate::cache`]); shared by clones of this
    /// engine, so per-request engine views accumulate hits in one place.
    caches: Arc<EngineCaches>,
    /// Digest of `config` for result-cache keying, fixed at construction
    /// (the config is immutable afterwards).
    config_digest: u64,
    /// Optional on-disk snapshot sink ([`crate::persist`]). Deliberately
    /// *not* part of [`Config`]: persistence is observationally invisible
    /// (`persist + reload ≡ never-cached`), so it must not perturb
    /// `config_digest` or any cache key.
    persist: Option<Arc<PersistSink>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(Config::default())
    }
}

impl Engine {
    /// An engine with an empty page store.
    pub fn new(config: Config) -> Self {
        Self::with_store(config, PageStore::new())
    }

    /// An engine over an existing (possibly shared-by-clone) store —
    /// interning is content-addressed, so a store built once can be
    /// cloned cheaply into engines with different configs and the ids
    /// stay valid. The caches start empty (they are per-engine, not
    /// per-store).
    pub fn with_store(config: Config, store: PageStore) -> Self {
        let caches = Arc::new(EngineCaches::new(config.cache));
        let config_digest = cache::config_digest(&config);
        Engine {
            config,
            store,
            caches,
            config_digest,
            persist: None,
        }
    }

    /// Attaches an on-disk snapshot sink: [`Engine::spill_snapshot`]
    /// writes through it and [`Engine::load_snapshot`] reads from it.
    /// Attaching a sink changes no observable behavior — it only lets a
    /// later process start warm instead of cold.
    #[must_use]
    pub fn with_persist(mut self, sink: Arc<PersistSink>) -> Engine {
        self.persist = Some(sink);
        self
    }

    /// Counters of the attached sink's disk traffic (zeros when no sink
    /// is attached).
    pub fn persist_stats(&self) -> PersistStats {
        self.persist
            .as_deref()
            .map(PersistSink::stats)
            .unwrap_or_default()
    }

    /// Loads every snapshot entry from the attached sink: pages are
    /// re-interned into this engine's store (content-addressing dedups
    /// against anything already present) and verified base-feature
    /// tables are seeded into the cache's base tier. No-op without a
    /// sink. See [`Engine::load_snapshot_filtered`] for sharded loads.
    pub fn load_snapshot(&mut self) {
        self.load_snapshot_filtered(|_| true);
    }

    /// [`Engine::load_snapshot`] restricted to content digests
    /// satisfying `keep` — a digest-routed shard passes its ownership
    /// predicate so an N-shard warm start reads each entry exactly once
    /// fleet-wide. Entries failing verification are skipped (counted in
    /// [`PersistStats::corrupt_skipped`]): recovery degrades to a cold
    /// miss, never a wrong answer.
    pub fn load_snapshot_filtered(&mut self, keep: impl Fn(u64) -> bool) {
        let Some(sink) = self.persist.clone() else {
            return;
        };
        let (mut pages, mut bases) = (0u64, 0u64);
        sink.load_filtered(keep, |_, tree, base| {
            let id = self.store.insert_tree(tree);
            pages += 1;
            if let Some(table) = base {
                self.caches.features.seed_base(id, Arc::new(table));
                bases += 1;
            }
        });
        sink.note_pages_loaded(pages);
        sink.note_base_loaded(bases);
    }

    /// Spills the warm state — every interned page and every resident
    /// base-feature table — to the attached sink. Content-addressed and
    /// idempotent: re-spilling an unchanged state rewrites nothing.
    /// No-op without a sink; IO failures are swallowed (spilling is an
    /// optimization, never a correctness requirement).
    pub fn spill_snapshot(&self) {
        let Some(sink) = &self.persist else {
            return;
        };
        for index in 0..self.store.len() {
            let Some(id) = self.store.id_at(index) else {
                continue;
            };
            let Ok(tree) = self.store.get(id) else {
                continue;
            };
            sink.spill_page(id.digest(), tree);
        }
        for (id, table) in self.caches.features.resident_base() {
            // Guard against a forged/foreign id: only spill a base table
            // whose page is resolvable here, under its *content* digest.
            if self.store.get(id).is_ok() {
                sink.spill_base(id.digest(), &table);
            }
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// A snapshot of the cross-request cache counters (feature-store and
    /// result-LRU hits / misses / evictions). Counters accumulate across
    /// every `prepare`/`run` of this engine and its clones.
    pub fn cache_stats(&self) -> CacheStats {
        self.caches.stats()
    }

    /// The page store (read access).
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// The page store (for interning pages).
    pub fn store_mut(&mut self) -> &mut PageStore {
        &mut self.store
    }

    /// Stage 1: resolves a task's page handles against the store and
    /// precomputes the synthesis examples and query context.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownPage`] when the task references a handle this
    /// store never issued.
    pub fn prepare(&self, task: &Task) -> Result<Prepared<'_>, Error> {
        let ctx =
            crate::pipeline::context_for(self.config.modality, &task.question, &task.keywords);
        let examples = task
            .labeled
            .iter()
            .map(|(id, gold)| Ok(Example::new(Arc::clone(self.store.get(*id)?), gold.clone())))
            .collect::<Result<Vec<_>, Error>>()?;
        let unlabeled = task
            .unlabeled
            .iter()
            .map(|id| Ok(Arc::clone(self.store.get(*id)?)))
            .collect::<Result<Vec<_>, Error>>()?;
        let pool_digest = cache::pool_digest(&self.config.synth, &ctx);
        let mut prepared = Prepared {
            engine: self,
            ctx,
            examples,
            unlabeled,
            unlabeled_ids: task.unlabeled.clone(),
            features: Vec::new(),
            pool_digest,
        };
        // Feature/mask tables for the labeled pages, through the engine's
        // cross-request store (pure per-(page, query, config), so a hit
        // is byte-identical to a rebuild). Reference-kernel mode computes
        // everything definitionally inside the search instead.
        if !self.config.synth.reference_kernels {
            prepared.features = task
                .labeled
                .iter()
                .zip(&prepared.examples)
                .map(|((id, _), ex)| prepared.fetch_features(*id, &ex.page))
                .collect();
        }
        Ok(prepared)
    }

    /// Runs the full staged pipeline on one task, through the engine's
    /// completed-run LRU: a repeat of an identical task under an
    /// identical config is a cache hit, returning the stored result —
    /// byte-identical to recomputation because the pipeline is
    /// deterministic in (task, config).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownPage`] — see [`Engine::prepare`].
    pub fn run(&self, task: &Task) -> Result<RunResult, Error> {
        self.run_with_cancel(task, &CancelToken::never())
    }

    /// [`Engine::run`] under a cooperative [`CancelToken`] — the
    /// serving layer's per-request deadline path.
    ///
    /// The token is checked before the run starts (a pre-tripped token —
    /// e.g. a request whose deadline expired while queued — returns
    /// [`Error::Cancelled`] without touching the engine) and once per
    /// guard step inside synthesis, so a trip aborts within one
    /// enumerator step per in-flight branch worker. Cancellation never
    /// poisons the caches: a cancelled run inserts nothing, and a run
    /// that completes is byte-identical to one without a token.
    ///
    /// # Errors
    ///
    /// [`Error::Cancelled`] when the token trips mid-run;
    /// [`Error::UnknownPage`] as for [`Engine::run`].
    pub fn run_with_cancel(&self, task: &Task, cancel: &CancelToken) -> Result<RunResult, Error> {
        if cancel.is_cancelled() {
            return Err(Error::Cancelled);
        }
        if let Some(cached) = self.caches.results.get(self.config_digest, task) {
            return Ok(cached);
        }
        let result = self
            .prepare(task)?
            .synthesize_cancellable(cancel)?
            .select()
            .finish();
        self.caches
            .results
            .insert(self.config_digest, task, result.clone());
        Ok(result)
    }

    /// [`Engine::run`] with a wall-clock latency budget measured from
    /// now: sugar for [`Engine::run_with_cancel`] over
    /// [`CancelToken::after`].
    ///
    /// # Errors
    ///
    /// [`Error::Cancelled`] when the budget is exhausted mid-run;
    /// [`Error::UnknownPage`] as for [`Engine::run`].
    pub fn run_with_deadline(
        &self,
        task: &Task,
        budget: std::time::Duration,
    ) -> Result<RunResult, Error> {
        self.run_with_cancel(task, &CancelToken::after(budget))
    }

    /// A clone of this engine sharing the page store (cheap: `Arc`
    /// refcounts) and the caches, with the branch-level synthesis worker
    /// count replaced — the batch runner uses it to cap combined
    /// batch × branch parallelism (see [`Engine::run_batch`]).
    pub(crate) fn with_synth_jobs(&self, jobs: usize) -> Engine {
        let mut config = self.config.clone();
        config.synth.jobs = jobs;
        let config_digest = cache::config_digest(&config);
        Engine {
            config,
            store: self.store.clone(),
            caches: Arc::clone(&self.caches),
            config_digest,
            persist: self.persist.clone(),
        }
    }
}

/// Stage 1 output: resolved pages, precomputed examples, query context.
///
/// This is where the interactive-labeling loop lives: call
/// [`suggest_labels`](Prepared::suggest_labels), move the chosen pages
/// into the labeled set with [`label`](Prepared::label), then
/// [`synthesize`](Prepared::synthesize); [`Synthesized::refine`] returns
/// here for the next round.
#[derive(Debug)]
pub struct Prepared<'e> {
    engine: &'e Engine,
    ctx: QueryContext,
    examples: Vec<Example>,
    unlabeled: Vec<Arc<PageTree>>,
    /// Store handles of `unlabeled`, aligned — kept so a page moved into
    /// the labeled set by [`Prepared::label`] stays feature-cacheable.
    unlabeled_ids: Vec<PageId>,
    /// Feature/mask tables aligned with `examples` (empty in
    /// reference-kernel mode, where the search computes definitionally).
    features: Vec<Arc<PageFeatures>>,
    /// Cache key half identifying the (query context, synth config) pool
    /// the feature tables were built under.
    pool_digest: u64,
}

impl<'e> Prepared<'e> {
    /// One page's feature table, through the engine's two-tier
    /// cross-request store: a query-tier miss rebuilds the full table
    /// *over* the base tier, so the expensive query-independent half
    /// (NER spans, structural masks) is shared by every question that
    /// touches the page and only the thin keyword/QA layer is recomputed
    /// per query.
    fn fetch_features(&self, id: PageId, page: &Arc<PageTree>) -> Arc<PageFeatures> {
        let (cfg, ctx) = (&self.engine.config.synth, &self.ctx);
        let features = &self.engine.caches.features;
        let page = Arc::clone(page);
        features.get_or_compute((id, self.pool_digest), move || {
            let base = features.base_for(id, || PageBaseFeatures::compute(ctx, &page));
            PageFeatures::compute_with_base(cfg, ctx, &page, &base)
        })
    }
    /// The query context (modality already applied).
    pub fn context(&self) -> &QueryContext {
        &self.ctx
    }

    /// The synthesis examples (labeled pages, pre-tokenized).
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// The unlabeled target pages (shared handles).
    pub fn unlabeled(&self) -> &[Arc<PageTree>] {
        &self.unlabeled
    }

    /// Section 7: suggests up to `k` (≤ 5) diverse *unlabeled* pages to
    /// label next, returning indices into [`unlabeled`](Prepared::unlabeled).
    pub fn suggest_labels(&self, k: usize) -> Vec<usize> {
        crate::labeling::suggest_labels(&self.ctx, &self.unlabeled, k)
    }

    /// Moves unlabeled page `index` into the labeled set with the given
    /// gold strings (the "user answers a label request" step of the
    /// interactive loop). Later unlabeled indices shift down by one.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range — indices come from
    /// [`suggest_labels`](Prepared::suggest_labels) against the current
    /// unlabeled set.
    pub fn label(&mut self, index: usize, gold: Vec<String>) {
        let page = self.unlabeled.remove(index);
        let id = self.unlabeled_ids.remove(index);
        if !self.engine.config.synth.reference_kernels {
            self.features.push(self.fetch_features(id, &page));
        }
        self.examples.push(Example::new(page, gold));
    }

    /// Adds a labeled page by store handle without touching the
    /// unlabeled set.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownPage`] when the handle is foreign to the engine's
    /// store.
    pub fn add_label(&mut self, page: PageId, gold: Vec<String>) -> Result<(), Error> {
        let tree = Arc::clone(self.engine.store.get(page)?);
        if !self.engine.config.synth.reference_kernels {
            self.features.push(self.fetch_features(page, &tree));
        }
        self.examples.push(Example::new(tree, gold));
        Ok(())
    }

    /// Stage 2: synthesizes **all** optimal programs on the current
    /// labeled set (Section 5), reusing the prepared (possibly
    /// cache-borrowed) feature tables.
    pub fn synthesize(self) -> Synthesized<'e> {
        let outcome = synthesize_with_features(
            &self.engine.config.synth,
            &self.ctx,
            &self.examples,
            &self.features,
        );
        Synthesized {
            prepared: self,
            outcome,
        }
    }

    /// [`Prepared::synthesize`] under a cooperative [`CancelToken`]
    /// (checked once per guard step of the enumerative search).
    ///
    /// # Errors
    ///
    /// [`Error::Cancelled`] when the token trips mid-search; no partial
    /// outcome is exposed.
    pub fn synthesize_cancellable(self, cancel: &CancelToken) -> Result<Synthesized<'e>, Error> {
        let outcome = synthesize_cancellable(
            &self.engine.config.synth,
            &self.ctx,
            &self.examples,
            &self.features,
            cancel,
        )
        .map_err(|_| Error::Cancelled)?;
        Ok(Synthesized {
            prepared: self,
            outcome,
        })
    }
}

/// Stage 2 output: the full synthesis outcome over the prepared task.
#[derive(Debug)]
pub struct Synthesized<'e> {
    prepared: Prepared<'e>,
    outcome: SynthesisOutcome,
}

impl<'e> Synthesized<'e> {
    /// All optimal programs plus search statistics.
    pub fn outcome(&self) -> &SynthesisOutcome {
        &self.outcome
    }

    /// The optimal training F₁.
    pub fn train_f1(&self) -> f64 {
        self.outcome.f1
    }

    /// The query context of the prepared task (modality already applied).
    pub fn context(&self) -> &QueryContext {
        self.prepared.context()
    }

    /// The unlabeled target pages of the prepared task (shared handles).
    pub fn unlabeled(&self) -> &[Arc<PageTree>] {
        self.prepared.unlabeled()
    }

    /// Back to stage 1 with the synthesis result discarded — the
    /// re-labeling step of the interactive loop (label more pages, then
    /// synthesize again).
    pub fn refine(self) -> Prepared<'e> {
        self.prepared
    }

    /// Stage 3: selects one program per the engine's
    /// [`Selection`] strategy — transductively against the unlabeled
    /// pages (Section 6) by default — keeping the ensemble for
    /// diagnostics.
    pub fn select(self) -> Selected<'e> {
        let cfg = &self.prepared.engine.config;
        let (program, ensemble) = match cfg.strategy {
            Selection::Transductive => {
                let ensemble = Ensemble::sample(
                    &self.prepared.ctx,
                    &self.outcome.programs,
                    &self.prepared.unlabeled,
                    cfg.selection.ensemble_size,
                    cfg.selection.seed,
                );
                let program = ensemble.as_ref().and_then(|e| {
                    select_from_ensemble(e, cfg.selection.loss)
                        .map(|i| self.outcome.programs[i].clone())
                });
                (program, ensemble)
            }
            Selection::Random => (
                select_random(&self.outcome.programs, cfg.selection.seed),
                None,
            ),
            Selection::Shortest => (
                select_shortest(&self.outcome.programs, cfg.selection.seed),
                None,
            ),
        };
        Selected {
            prepared: self.prepared,
            outcome: self.outcome,
            program,
            ensemble,
        }
    }
}

/// Stage 3 output: the selected program plus ensemble diagnostics.
#[derive(Debug)]
pub struct Selected<'e> {
    prepared: Prepared<'e>,
    outcome: SynthesisOutcome,
    program: Option<Program>,
    ensemble: Option<Ensemble>,
}

impl Selected<'_> {
    /// The selected program (`None` when synthesis found nothing).
    pub fn program(&self) -> Option<&Program> {
        self.program.as_ref()
    }

    /// The synthesis outcome this selection drew from.
    pub fn outcome(&self) -> &SynthesisOutcome {
        &self.outcome
    }

    /// The transductive ensemble, for diagnostics
    /// ([`Ensemble::agreement`], soft labels, majority vote). `None`
    /// under the `Random`/`Shortest` strategies or when synthesis found
    /// nothing.
    pub fn ensemble(&self) -> Option<&Ensemble> {
        self.ensemble.as_ref()
    }

    /// Stage 4: runs the selected program on every unlabeled page,
    /// aligned with the task's `unlabeled` order. Empty answer lists
    /// when no program was selected.
    pub fn answers(&self) -> Vec<Vec<String>> {
        match &self.program {
            Some(p) => self
                .prepared
                .unlabeled
                .iter()
                .map(|page| p.eval(&self.prepared.ctx, page))
                .collect(),
            None => vec![Vec::new(); self.prepared.unlabeled.len()],
        }
    }

    /// Collapses the staged run into the one-shot [`RunResult`].
    pub fn finish(self) -> RunResult {
        let answers = self.answers();
        RunResult {
            program: self.program,
            synthesis: self.outcome,
            answers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_synth::SynthConfig;

    fn engine_with_pages() -> (Engine, PageId, PageId, PageId) {
        let mut engine = Engine::new(Config {
            synth: SynthConfig::fast(),
            ..Config::default()
        });
        let a = engine
            .store_mut()
            .insert_html("<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>")
            .unwrap();
        let b = engine
            .store_mut()
            .insert_html("<h1>B</h1><h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>")
            .unwrap();
        let c = engine
            .store_mut()
            .insert_html("<h1>C</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>")
            .unwrap();
        (engine, a, b, c)
    }

    fn task(a: PageId, b: PageId, c: PageId) -> Task {
        Task::new("Who are the current PhD students?", ["Students", "PhD"])
            .with_label(a, vec!["Jane Doe".into(), "Bob Smith".into()])
            .with_label(b, vec!["Mary Anderson".into()])
            .with_target(c)
    }

    #[test]
    fn staged_run_matches_one_shot_run() {
        let (engine, a, b, c) = engine_with_pages();
        let t = task(a, b, c);
        let staged = engine.prepare(&t).unwrap().synthesize().select().finish();
        let one_shot = engine.run(&t).unwrap();
        assert_eq!(staged.program, one_shot.program);
        assert_eq!(staged.answers, one_shot.answers);
        assert!(staged.answers[0].iter().any(|s| s.contains("Wei Chen")));
    }

    #[test]
    fn prepared_examples_share_the_store_arcs() {
        let (engine, a, b, c) = engine_with_pages();
        let prepared = engine.prepare(&task(a, b, c)).unwrap();
        // Zero deep clones: the example page *is* the interned page.
        assert!(Arc::ptr_eq(
            &prepared.examples()[0].page,
            engine.store().get(a).unwrap()
        ));
        assert!(Arc::ptr_eq(
            &prepared.unlabeled()[0],
            engine.store().get(c).unwrap()
        ));
    }

    #[test]
    fn foreign_page_id_is_a_typed_error() {
        let (engine, a, _, _) = engine_with_pages();
        let bad = Task::new("Who?", ["K"])
            .with_label(a, vec!["Jane Doe".into()])
            .with_target(PageId::forged(99));
        assert_eq!(
            engine.run(&bad).unwrap_err(),
            Error::UnknownPage(PageId::forged(99))
        );
    }

    #[test]
    fn labeling_loop_moves_pages_between_sets() {
        let (engine, a, b, c) = engine_with_pages();
        // Start with one label; b and c are targets.
        let t = Task::new("Who are the current PhD students?", ["Students", "PhD"])
            .with_label(a, vec!["Jane Doe".into(), "Bob Smith".into()])
            .with_target(b)
            .with_target(c);
        let first = engine.prepare(&t).unwrap().synthesize();
        let f1_before = first.train_f1();

        let mut prepared = first.refine();
        let suggestions = prepared.suggest_labels(1);
        assert_eq!(suggestions.len(), 1);
        let idx = suggestions[0];
        let gold = if idx == 0 {
            vec!["Mary Anderson".to_string()]
        } else {
            vec!["Wei Chen".to_string()]
        };
        prepared.label(idx, gold);
        assert_eq!(prepared.examples().len(), 2);
        assert_eq!(prepared.unlabeled().len(), 1);

        let second = prepared.synthesize();
        assert!(
            second.train_f1() + 1e-9 >= f1_before,
            "train F1 regressed: {} -> {}",
            f1_before,
            second.train_f1()
        );
    }

    #[test]
    fn ensemble_diagnostics_only_for_transductive() {
        let (engine, a, b, c) = engine_with_pages();
        let t = task(a, b, c);
        let selected = engine.prepare(&t).unwrap().synthesize().select();
        assert!(selected.ensemble().is_some());
        assert!(selected.ensemble().unwrap().agreement() > 0.0);

        // Cloning the store into an engine with another config keeps the
        // ids valid.
        let random = Engine::with_store(
            Config {
                strategy: Selection::Random,
                ..engine.config().clone()
            },
            engine.store().clone(),
        );
        let selected = random.prepare(&t).unwrap().synthesize().select();
        assert!(selected.ensemble().is_none());
        assert!(selected.program().is_some());
    }

    #[test]
    fn repeat_queries_hit_the_cross_request_caches() {
        let (engine, a, b, c) = engine_with_pages();
        let t = task(a, b, c);
        let first = engine.run(&t).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.feature_hits, 0);
        assert_eq!(stats.feature_misses, 2, "two labeled pages, two tables");
        assert_eq!(stats.result_hits, 0);
        assert_eq!(stats.result_misses, 1);

        // The identical repeat is a result-cache hit with an identical
        // payload.
        let second = engine.run(&t).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.result_hits, 1);
        assert_eq!(second.program, first.program);
        assert_eq!(second.answers, first.answers);
        assert_eq!(second.synthesis.stats, first.synthesis.stats);

        // A *different* task over the same labeled pages misses the
        // result cache but reuses both feature tables.
        let variant = task(a, b, c).with_target(b);
        let _ = engine.run(&variant).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.result_hits, 1);
        assert_eq!(stats.result_misses, 2);
        assert_eq!(stats.feature_hits, 2);
        assert_eq!(stats.feature_misses, 2);
    }

    #[test]
    fn disabled_caches_still_compute_identical_results() {
        let (cached, a, b, c) = engine_with_pages();
        let cold = Engine::with_store(
            Config {
                cache: crate::CacheConfig::disabled(),
                ..cached.config().clone()
            },
            cached.store().clone(),
        );
        // Reuse the same engine twice vs a cache-disabled twin.
        let t = task(a, b, c);
        let warm = {
            let _ = cached.run(&t).unwrap();
            cached.run(&t).unwrap()
        };
        let reference = cold.run(&t).unwrap();
        assert_eq!(warm.program, reference.program);
        assert_eq!(warm.answers, reference.answers);
        assert_eq!(warm.synthesis.f1, reference.synthesis.f1);
        assert_eq!(warm.synthesis.counts, reference.synthesis.counts);
        assert_eq!(warm.synthesis.stats, reference.synthesis.stats);
        assert_eq!(cold.cache_stats().result_hits, 0);
        assert_eq!(cold.cache_stats().feature_hits, 0);
    }

    #[test]
    fn engine_clones_share_the_caches() {
        let (engine, a, b, c) = engine_with_pages();
        let t = task(a, b, c);
        let clone = engine.clone();
        let _ = clone.run(&t).unwrap();
        assert_eq!(engine.cache_stats().result_misses, 1);
        let _ = engine.run(&t).unwrap();
        assert_eq!(engine.cache_stats().result_hits, 1);
    }

    #[test]
    fn cancelled_runs_are_typed_errors_and_never_poison_the_caches() {
        let (engine, a, b, c) = engine_with_pages();
        let t = task(a, b, c);

        // Pre-tripped token: no work, no cache traffic.
        let pre = CancelToken::never();
        pre.cancel();
        assert_eq!(
            engine.run_with_cancel(&t, &pre).unwrap_err(),
            Error::Cancelled
        );
        assert_eq!(engine.cache_stats().result_misses, 0);

        // Mid-run trip (deterministic step budget): typed error, and the
        // aborted run cached nothing — the later full run still misses.
        let mid = CancelToken::with_step_budget(3);
        assert_eq!(
            engine.run_with_cancel(&t, &mid).unwrap_err(),
            Error::Cancelled
        );
        let full = engine.run(&t).unwrap();
        assert_eq!(engine.cache_stats().result_hits, 0);

        // The post-cancel result is byte-identical to a cold engine's.
        let cold = Engine::with_store(engine.config().clone(), engine.store().clone());
        let reference = cold.run(&t).unwrap();
        assert_eq!(full.program, reference.program);
        assert_eq!(full.answers, reference.answers);
        assert_eq!(full.synthesis.stats, reference.synthesis.stats);

        // A generous deadline never trips: identical to the plain run.
        let relaxed = engine
            .run_with_deadline(&t, std::time::Duration::from_secs(3600))
            .unwrap();
        assert_eq!(relaxed.program, full.program);
        assert_eq!(relaxed.answers, full.answers);
    }

    #[test]
    fn empty_labels_yield_no_program_not_a_panic() {
        let (engine, _, _, c) = engine_with_pages();
        let t = Task::new("Who?", ["K"]).with_target(c);
        let result = engine.run(&t).unwrap();
        assert!(result.program.is_none());
        assert_eq!(result.answers, vec![Vec::<String>::new()]);
    }
}
