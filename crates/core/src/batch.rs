//! Batch execution: many independent tasks over one shared page store.
//!
//! The first concurrent serving surface of the engine. Tasks are
//! embarrassingly parallel — synthesis and selection touch only the
//! task's own examples plus the immutable interned pages — so the batch
//! runner is a scoped threadpool pulling task indices off an atomic
//! counter. Results come back **in input order** and are byte-identical
//! to running each task alone: worker scheduling cannot leak into
//! output (every source of randomness in the pipeline is seeded from the
//! config, not from thread state).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::{Engine, Task};
use crate::error::Error;
use crate::pipeline::RunResult;
use webqa_synth::CancelToken;

impl Engine {
    /// Runs every task, using up to `jobs` worker threads (`0` and `1`
    /// both mean sequential). Results are aligned with `tasks` and
    /// deterministic: the same inputs produce the same outputs regardless
    /// of `jobs`.
    ///
    /// This is *across*-task parallelism; it composes with the
    /// branch-level parallelism *inside* one task
    /// (`SynthConfig::jobs` in [`Config::synth`](crate::Config)) —
    /// e.g. few big tasks with many synth jobs each, or many tasks with
    /// sequential synthesis. Both levels are deterministic, so any
    /// combination produces identical results.
    ///
    /// The two levels multiply: `jobs` batch workers each spawning
    /// `synth.jobs` branch workers would oversubscribe the machine
    /// (`jobs × synth.jobs` live threads for `available_parallelism`
    /// cores). The batch runner therefore caps the *effective* per-task
    /// branch worker count so the product stays within the hardware
    /// budget. The cap is invisible in the output — programs, counts,
    /// F₁, and answers are identical for every worker-count combination
    /// (`tests/staged_api.rs` pins batch × branch determinism).
    ///
    /// # Errors
    ///
    /// The first failing task's error, by input order (tasks after a
    /// failure may or may not have been executed).
    ///
    /// # Examples
    ///
    /// ```
    /// use webqa::{Config, Engine, Task};
    ///
    /// let mut engine = Engine::new(Config::default());
    /// let a = engine.store_mut().insert_html("<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>")?;
    /// let b = engine.store_mut().insert_html("<h1>B</h1><h2>Students</h2><ul><li>Wei Chen</li></ul>")?;
    /// let task = |target| {
    ///     Task::new("Who are the students?", ["Students"])
    ///         .with_label(a, vec!["Jane Doe".into()])
    ///         .with_target(target)
    /// };
    /// let results = engine.run_batch(&[task(b), task(a)], 2)?;
    /// assert_eq!(results.len(), 2);
    /// assert_eq!(results[0].answers[0], vec!["Wei Chen".to_string()]);
    /// # Ok::<(), webqa::Error>(())
    /// ```
    pub fn run_batch(&self, tasks: &[Task], jobs: usize) -> Result<Vec<RunResult>, Error> {
        self.run_batch_with_cancel(tasks, jobs, &CancelToken::never())
    }

    /// [`Engine::run_batch`] under a cooperative
    /// [`CancelToken`] shared by every task in the batch — the serving
    /// layer's `run_batch` wire op runs the whole batch under one
    /// deadline. A trip aborts the in-flight tasks within one guard step
    /// each, skips the unstarted ones, and the batch returns
    /// [`Error::Cancelled`]; completed per-task results are discarded,
    /// but anything already inserted into the shared result cache stays
    /// (it is complete and byte-identical to an uncancelled run).
    ///
    /// # Errors
    ///
    /// As [`Engine::run_batch`], plus [`Error::Cancelled`] when the
    /// token trips before every task finished.
    pub fn run_batch_with_cancel(
        &self,
        tasks: &[Task],
        jobs: usize,
        cancel: &CancelToken,
    ) -> Result<Vec<RunResult>, Error> {
        let jobs = jobs.clamp(1, tasks.len().max(1));
        if jobs == 1 {
            return tasks
                .iter()
                .map(|t| self.run_with_cancel(t, cancel))
                .collect();
        }

        // Cap combined batch × branch parallelism: `jobs` workers share
        // the machine, so each task gets at most its fair share of cores
        // for branch-level synthesis (never more than configured, never
        // less than 1). Purely a scheduling change — results are
        // identical for any effective worker count.
        let synth_jobs = self.config().synth.jobs.max(1);
        let budget = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let effective = synth_jobs.min((budget / jobs).max(1));
        // Compare against the *normalized* count: jobs 0 and 1 are the
        // same sequential config, and a needless worker-engine clone
        // would carry a different config digest — splitting the shared
        // result cache between `run` and `run_batch` entries.
        let worker_engine = if effective == synth_jobs {
            None
        } else {
            Some(self.with_synth_jobs(effective))
        };
        let engine: &Engine = worker_engine.as_ref().unwrap_or(self);

        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<RunResult, Error>>>> =
            Mutex::new((0..tasks.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    // A tripped token drains the remaining tasks without
                    // running them; the collect below reports Cancelled
                    // for the unstarted slots.
                    if cancel.is_cancelled() {
                        break;
                    }
                    let result = engine.run_with_cancel(task, cancel);
                    slots.lock().expect("no poisoned workers")[i] = Some(result);
                });
            }
        });

        slots
            .into_inner()
            .expect("workers joined")
            .into_iter()
            .map(|slot| slot.unwrap_or(Err(Error::Cancelled)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Config;

    fn engine_and_tasks() -> (Engine, Vec<Task>) {
        let mut engine = Engine::new(Config::default());
        let pages = [
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>",
            "<h1>B</h1><h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>",
            "<h1>C</h1><h2>Advisees</h2><ul><li>Wei Chen</li></ul>",
            "<h1>D</h1><h2>Students</h2><ul><li>Elena Petrov</li></ul>",
        ];
        let ids: Vec<_> = pages
            .iter()
            .map(|html| engine.store_mut().insert_html(html).unwrap())
            .collect();
        let golds = [
            vec!["Jane Doe".to_string(), "Bob Smith".to_string()],
            vec!["Mary Anderson".to_string()],
            vec!["Wei Chen".to_string()],
            vec!["Elena Petrov".to_string()],
        ];
        // Four tasks, each labeling one page and targeting the others.
        let tasks: Vec<Task> = (0..4)
            .map(|k| {
                let mut t = Task::new("Who are the current PhD students?", ["Students", "PhD"])
                    .with_label(ids[k], golds[k].clone());
                for (j, &id) in ids.iter().enumerate() {
                    if j != k {
                        t = t.with_target(id);
                    }
                }
                t
            })
            .collect();
        (engine, tasks)
    }

    #[test]
    fn batch_equals_sequential_for_any_job_count() {
        let (engine, tasks) = engine_and_tasks();
        let sequential = engine.run_batch(&tasks, 1).unwrap();
        for jobs in [2, 4, 16] {
            let batched = engine.run_batch(&tasks, jobs).unwrap();
            assert_eq!(batched.len(), sequential.len());
            for (b, s) in batched.iter().zip(&sequential) {
                assert_eq!(b.program, s.program, "jobs={jobs}");
                assert_eq!(b.answers, s.answers, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn batch_propagates_the_first_error_by_input_order() {
        let (engine, mut tasks) = engine_and_tasks();
        tasks[1].unlabeled.push(crate::store::PageId::forged(1000));
        tasks[3].unlabeled.push(crate::store::PageId::forged(2000));
        let err = engine.run_batch(&tasks, 4).unwrap_err();
        assert_eq!(err, Error::UnknownPage(crate::store::PageId::forged(1000)));
    }

    #[test]
    fn empty_batch_is_fine() {
        let (engine, _) = engine_and_tasks();
        assert!(engine.run_batch(&[], 8).unwrap().is_empty());
    }
}
