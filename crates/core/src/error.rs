//! The typed error surface of the engine API.
//!
//! Everything fallible in `webqa` funnels into [`Error`]: page ingestion
//! (`PageStore::insert_html` → [`Error::Html`]), task preparation
//! (`Engine::prepare` → [`Error::UnknownPage`]), and scoring
//! ([`crate::score_answers`] → [`Error::AnswerGoldMismatch`]). The
//! pre-engine API panicked on all three.

use std::fmt;

use crate::store::PageId;
use webqa_dsl::HtmlError;

/// An error from the engine API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Page ingestion failed: the HTML was damaged in a way lenient
    /// recovery would silently paper over (see [`HtmlError`]).
    Html(HtmlError),
    /// A task referenced a [`PageId`] that is not in the engine's page
    /// store (it belongs to a different store, or was never inserted).
    UnknownPage(PageId),
    /// [`crate::score_answers`] was given per-page answers and gold
    /// labels of different lengths — the two lists are not aligned.
    AnswerGoldMismatch {
        /// Number of answer lists.
        answers: usize,
        /// Number of gold lists.
        gold: usize,
    },
    /// The run was abandoned cooperatively — its
    /// [`CancelToken`](crate::CancelToken) tripped (explicit cancel,
    /// deadline, or step budget) before the pipeline finished. No
    /// partial result is exposed and nothing was cached.
    Cancelled,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Html(e) => write!(f, "page ingestion failed: {e}"),
            Error::UnknownPage(id) => {
                write!(f, "task references {id:?}, which is not in the page store")
            }
            Error::AnswerGoldMismatch { answers, gold } => write!(
                f,
                "answers ({answers} pages) and gold ({gold} pages) are not aligned"
            ),
            Error::Cancelled => {
                f.write_str("run cancelled (deadline exceeded or cancellation requested)")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Html(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HtmlError> for Error {
    fn from(e: HtmlError) -> Self {
        Error::Html(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = Error::AnswerGoldMismatch {
            answers: 3,
            gold: 5,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("5"));
        let e = Error::from(HtmlError::TooDeep {
            depth: 300,
            limit: 256,
            offset: 1495,
        });
        assert!(e.to_string().contains("depth 300"));
        assert!(e.to_string().contains("byte 1495"));
    }

    #[test]
    fn html_errors_keep_their_source() {
        use std::error::Error as _;
        let e = Error::from(HtmlError::MalformedEntity {
            entity: "&x;".into(),
            offset: 0,
        });
        assert!(e.source().is_some());
        assert!(Error::UnknownPage(PageId::forged(7)).source().is_none());
    }
}
