//! Interactive labeling by page clustering (Section 7 of the paper).
//!
//! Rather than labeling arbitrary pages, WebQA suggests which pages to
//! label: it featurizes every page (structure counts, entity types, which
//! DSL locator prototypes select anything) and greedily picks a maximally
//! diverse subset (k-center), so that a handful of labels covers the
//! distinct schemas in the target set. The paper caps user queries at
//! five.

use webqa_dsl::{PageTree, QueryContext};
use webqa_nlp::EntityKind;

/// Maximum number of label requests (Section 7: "we restrict the number
/// of user queries to at most five").
pub const MAX_LABEL_REQUESTS: usize = 5;

/// A page's feature vector for clustering.
fn featurize(ctx: &QueryContext, page: &PageTree) -> Vec<f64> {
    let mut node_count = 0.0f64;
    let mut list_nodes = 0.0f64;
    let mut table_nodes = 0.0f64;
    let mut leaves = 0.0f64;
    let mut max_depth = 0.0f64;
    let mut kw_sections = 0.0;
    let mut entity_flags = [0.0f64; 6];
    for id in page.iter() {
        node_count += 1.0;
        match page.kind(id) {
            webqa_dsl::NodeKind::List => list_nodes += 1.0,
            webqa_dsl::NodeKind::Table => table_nodes += 1.0,
            webqa_dsl::NodeKind::None => {}
        }
        if page.is_leaf(id) {
            leaves += 1.0;
        }
        max_depth = max_depth.max(page.depth(id) as f64);
        let text = page.text(id);
        if !ctx.keywords().is_empty() && ctx.keyword_score(text) >= 0.8 {
            kw_sections += 1.0;
        }
        for (i, kind) in [
            EntityKind::Person,
            EntityKind::Organization,
            EntityKind::Date,
            EntityKind::Time,
            EntityKind::Location,
            EntityKind::Money,
        ]
        .into_iter()
        .enumerate()
        {
            if entity_flags[i] == 0.0 && ctx.has_entity(text, kind) {
                entity_flags[i] = 1.0;
            }
        }
    }
    let mut v = vec![
        (node_count / 10.0).min(10.0),
        list_nodes,
        table_nodes,
        leaves / 5.0,
        max_depth,
        kw_sections,
    ];
    v.extend_from_slice(&entity_flags);
    v
}

fn distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

/// Suggests up to `k` (≤ [`MAX_LABEL_REQUESTS`]) diverse pages to label,
/// returning their indices: greedy k-center over the feature space,
/// seeded with the page closest to the centroid (a "typical" page first,
/// then maximally different ones).
///
/// `pages` is any slice viewable as `&PageTree` — plain trees or the
/// shared `Arc<PageTree>` handles a [`crate::PageStore`] hands out.
pub fn suggest_labels<P: std::borrow::Borrow<PageTree>>(
    ctx: &QueryContext,
    pages: &[P],
    k: usize,
) -> Vec<usize> {
    let k = k.min(MAX_LABEL_REQUESTS).min(pages.len());
    if k == 0 {
        return Vec::new();
    }
    let features: Vec<Vec<f64>> = pages.iter().map(|p| featurize(ctx, p.borrow())).collect();
    let dim = features[0].len();
    let mut centroid = vec![0.0; dim];
    for f in &features {
        for (c, x) in centroid.iter_mut().zip(f) {
            *c += x;
        }
    }
    for c in centroid.iter_mut() {
        *c /= pages.len() as f64;
    }
    // Seed: most typical page.
    let seed = (0..pages.len())
        .min_by(|&a, &b| {
            distance(&features[a], &centroid)
                .partial_cmp(&distance(&features[b], &centroid))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty");
    let mut chosen = vec![seed];
    while chosen.len() < k {
        // Farthest-point heuristic.
        let next = (0..pages.len())
            .filter(|i| !chosen.contains(i))
            .max_by(|&a, &b| {
                let da = chosen
                    .iter()
                    .map(|&c| distance(&features[a], &features[c]))
                    .fold(f64::INFINITY, f64::min);
                let db = chosen
                    .iter()
                    .map(|&c| distance(&features[b], &features[c]))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            });
        match next {
            Some(i) => chosen.push(i),
            None => break,
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages() -> Vec<PageTree> {
        vec![
            PageTree::parse(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>",
            ),
            PageTree::parse("<h1>B</h1><h2>Students</h2><ul><li>Mary Anderson</li></ul>"),
            PageTree::parse("<h1>C</h1><p>just a paragraph page</p>"),
            PageTree::parse(
                "<h1>D</h1><h2>Logistics</h2><table><tr><td>a</td><td>b</td></tr>\
                 <tr><td>c</td><td>d</td></tr></table>",
            ),
        ]
    }

    fn ctx() -> QueryContext {
        QueryContext::new("Who are the students?", ["Students"])
    }

    #[test]
    fn suggests_requested_count() {
        let s = suggest_labels(&ctx(), &pages(), 3);
        assert_eq!(s.len(), 3);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "indices must be distinct");
    }

    #[test]
    fn caps_at_five() {
        let many: Vec<PageTree> = (0..10)
            .map(|i| PageTree::parse(&format!("<h1>P{i}</h1><p>t{i}</p>")))
            .collect();
        assert_eq!(suggest_labels(&ctx(), &many, 9).len(), MAX_LABEL_REQUESTS);
    }

    #[test]
    fn caps_at_page_count() {
        let two = &pages()[..2];
        assert_eq!(suggest_labels(&ctx(), two, 5).len(), 2);
    }

    #[test]
    fn diverse_schemas_are_covered() {
        // With k=2 the picks should span different layouts: not both of
        // the two near-identical student pages.
        let s = suggest_labels(&ctx(), &pages(), 2);
        assert!(
            !(s.contains(&0) && s.contains(&1)),
            "picked two near-duplicates: {s:?}"
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(suggest_labels::<PageTree>(&ctx(), &[], 3).is_empty());
        assert!(suggest_labels(&ctx(), &pages(), 0).is_empty());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            suggest_labels(&ctx(), &pages(), 3),
            suggest_labels(&ctx(), &pages(), 3)
        );
    }
}
