//! Task-level caches and interned scoring kernels for the synthesis hot
//! path.
//!
//! Everything in this module is *semantics-free* acceleration: the same
//! scores, masks, and classifications the definitional code paths
//! compute, produced from precomputed tables instead of repeated string
//! work. `SynthConfig::reference()` disables all of it
//! (`reference_kernels = true`) and routes every decision through the
//! original definitional evaluation — `tests/synth_parity.rs` proves the
//! two paths observationally identical on the whole corpus.
//!
//! Three layers:
//!
//! * [`TaskCtx`] — one per [`crate::synthesize`] call: the filter /
//!   predicate / production pools, plus (optimized mode only) per-node
//!   [`TextFeatures`] and the `[example][filter][node]` mask table every
//!   guard enumeration reads instead of re-evaluating `NodeFilter`s.
//! * [`Scorer`] — one per branch problem: a [`TokenInterner`] plus a
//!   string → token-id cache, so scoring a candidate extractor is a
//!   multiset-overlap run over small integer bags rather than
//!   re-tokenizing every output string.
//! * [`FxHasher`] — a fast non-cryptographic hasher for the behavioral
//!   signatures and string-keyed caches on the hot path.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::{Arc, Mutex};

use webqa_dsl::{Analyzer, EntityKind, NlpPred, NodeFilter, QueryContext, Truth};
use webqa_metrics::{BagOverlap, Counts, IdBag, IdVec, TokenInterner};

use crate::cancel::CancelToken;
use crate::config::SynthConfig;
use crate::example::Example;
use crate::pool::{nlp_preds, node_filters};

/// FxHash (the rustc hash): fast, deterministic, non-cryptographic.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ u64::from(b)).wrapping_mul(FX_SEED);
        }
    }
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;

/// Per-string neural-module outcomes, precomputed once per node text so
/// every predicate in the pool evaluates against them without touching
/// the (mutex-guarded) context caches.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TextFeatures {
    kw: f64,
    has_answer: bool,
    entities: u8,
}

fn kind_bit(kind: EntityKind) -> u8 {
    match kind {
        EntityKind::Person => 1 << 0,
        EntityKind::Organization => 1 << 1,
        EntityKind::Date => 1 << 2,
        EntityKind::Time => 1 << 3,
        EntityKind::Location => 1 << 4,
        EntityKind::Money => 1 << 5,
    }
}

/// Computes the features of one string. `want_answer` mirrors
/// `QueryContext::has_answer`'s empty-question short-circuit. The
/// production path builds rows via [`PageFeatures::compute_over_base`]
/// (query layer over a [`PageBaseFeatures`] base); this definitional
/// one-shot form remains as the test oracle for feature↔pred agreement.
#[cfg(test)]
pub(crate) fn features_of(ctx: &QueryContext, text: &str, want_answer: bool) -> TextFeatures {
    let kw = ctx.keyword_score(text);
    let has_answer = want_answer && ctx.has_answer(text);
    let mut entities = 0u8;
    for e in ctx.entities(text) {
        entities |= kind_bit(e.kind);
    }
    TextFeatures {
        kw,
        has_answer,
        entities,
    }
}

/// `NlpPred::eval` against precomputed features — must agree with
/// `pred.eval(ctx, text)` for the features of `text` (tested in this
/// module and by the parity suite).
pub(crate) fn pred_holds(pred: &NlpPred, f: &TextFeatures) -> bool {
    match pred {
        NlpPred::MatchKeyword(t) => f.kw >= t.value(),
        NlpPred::HasAnswer => f.has_answer,
        NlpPred::HasEntity(kind) => f.entities & kind_bit(*kind) != 0,
        NlpPred::True => true,
        NlpPred::And(a, b) => pred_holds(a, f) && pred_holds(b, f),
        NlpPred::Or(a, b) => pred_holds(a, f) || pred_holds(b, f),
        NlpPred::Not(a) => !pred_holds(a, f),
    }
}

/// `NodeFilter::eval` against precomputed own/subtree features.
fn filter_holds(
    filter: &NodeFilter,
    own: &TextFeatures,
    subtree: &TextFeatures,
    is_leaf: bool,
    is_elem: bool,
) -> bool {
    match filter {
        NodeFilter::IsLeaf => is_leaf,
        NodeFilter::IsElem => is_elem,
        NodeFilter::MatchText { pred, subtree: s } => {
            pred_holds(pred, if *s { subtree } else { own })
        }
        NodeFilter::True => true,
        NodeFilter::And(a, b) => {
            filter_holds(a, own, subtree, is_leaf, is_elem)
                && filter_holds(b, own, subtree, is_leaf, is_elem)
        }
        NodeFilter::Or(a, b) => {
            filter_holds(a, own, subtree, is_leaf, is_elem)
                || filter_holds(b, own, subtree, is_leaf, is_elem)
        }
        NodeFilter::Not(a) => !filter_holds(a, own, subtree, is_leaf, is_elem),
    }
}

/// One shard of the task-level production-output cache: input string
/// content → the step's outputs.
type StepShard = Mutex<HashMap<Box<str>, Vec<OutStr>, FxBuild>>;

/// The per-page half of the task-level caches: one node's worth of
/// neural-module outcomes per tree node plus the `[filter][node]` mask
/// table over the synthesis pool — everything the search context needs
/// about a page that does not depend on the other examples of the task.
///
/// A table is a pure function of `(config, query context, page)`:
/// computing it once and reusing it across `synthesize` calls (what
/// `webqa::Engine`'s cross-request feature store does) is observationally
/// invisible — the search reads identical bytes either way. Tables are
/// *shape*-checked on use ([`PageFeatures::fits`]): a table whose node or
/// filter counts don't match falls back to a fresh computation. The
/// shape check cannot detect a table built for a *different page of the
/// same size* under the same config — callers are responsible for keying
/// stored tables by page content and query/config identity, as
/// `webqa::Engine`'s feature store does.
#[derive(Debug)]
pub struct PageFeatures {
    /// Per-node own-text features (guard classification reads these).
    pub(crate) own: Vec<TextFeatures>,
    /// `[filter][node]` masks over the node-filter pool.
    pub(crate) masks: Vec<Vec<bool>>,
}

impl PageFeatures {
    /// Computes the table for one page under one `(config, context)`
    /// pool. The pool is derived internally exactly as the search
    /// derives it, so a stored table can be handed back to any later
    /// `synthesize` call with the same config and context.
    pub fn compute(
        cfg: &crate::config::SynthConfig,
        ctx: &QueryContext,
        page: &webqa_dsl::PageTree,
    ) -> PageFeatures {
        Self::compute_over(&node_filters(cfg, ctx), ctx, page)
    }

    /// [`PageFeatures::compute`] reusing a precomputed query-independent
    /// [`PageBaseFeatures`] table — only the keyword/answerability layer
    /// is recomputed; the NER entity bits and leaf/elem masks come from
    /// `base`. Byte-identical to [`PageFeatures::compute`] whenever
    /// `base` was computed for the same page under the same neural
    /// modules ([`PageBaseFeatures::compute`] documents that contract);
    /// a `base` whose node count doesn't match the page falls back to a
    /// fresh computation.
    pub fn compute_with_base(
        cfg: &crate::config::SynthConfig,
        ctx: &QueryContext,
        page: &webqa_dsl::PageTree,
        base: &PageBaseFeatures,
    ) -> PageFeatures {
        Self::compute_over_base(&node_filters(cfg, ctx), ctx, page, base)
    }

    /// [`PageFeatures::compute`] against an already-built filter pool
    /// (the internal path — avoids re-deriving the pool per example).
    pub(crate) fn compute_over(
        filters: &[NodeFilter],
        ctx: &QueryContext,
        page: &webqa_dsl::PageTree,
    ) -> PageFeatures {
        Self::compute_over_base(filters, ctx, page, &PageBaseFeatures::compute(ctx, page))
    }

    /// The shared lower half of `compute_over` / `compute_with_base`:
    /// layers the query-dependent features (keyword scores, QA
    /// answerability) over a query-independent base, then evaluates the
    /// filter pool against the combined per-node features.
    pub(crate) fn compute_over_base(
        filters: &[NodeFilter],
        ctx: &QueryContext,
        page: &webqa_dsl::PageTree,
        base: &PageBaseFeatures,
    ) -> PageFeatures {
        if !base.fits(page.len()) {
            // A stale/foreign base table: recompute rather than risk
            // mismatched rows (mirrors the `fits` guard on full tables).
            let fresh = PageBaseFeatures::compute(ctx, page);
            return Self::compute_over_base(filters, ctx, page, &fresh);
        }
        let want_answer = !ctx.question().is_empty();
        let own: Vec<TextFeatures> = page
            .iter()
            .map(|n| {
                let text = page.text(n);
                TextFeatures {
                    kw: ctx.keyword_score(text),
                    has_answer: want_answer && ctx.has_answer(text),
                    entities: base.own_entities[n.index()],
                }
            })
            .collect();
        let sub: Vec<TextFeatures> = page
            .iter()
            .map(|n| {
                let text = page.subtree_text(n);
                TextFeatures {
                    kw: ctx.keyword_score(&text),
                    has_answer: want_answer && ctx.has_answer(&text),
                    entities: base.sub_entities[n.index()],
                }
            })
            .collect();
        let masks: Vec<Vec<bool>> = filters
            .iter()
            .map(|f| {
                page.iter()
                    .map(|n| {
                        filter_holds(
                            f,
                            &own[n.index()],
                            &sub[n.index()],
                            base.leaf[n.index()],
                            base.elem[n.index()],
                        )
                    })
                    .collect()
            })
            .collect();
        PageFeatures { own, masks }
    }

    /// Whether this table was built over a pool of `filters` filters and
    /// a page of `nodes` nodes — the shape check guarding reuse.
    pub fn fits(&self, filters: usize, nodes: usize) -> bool {
        self.own.len() == nodes
            && self.masks.len() == filters
            && self.masks.iter().all(|m| m.len() == nodes)
    }
}

/// The query-independent half of a page's feature table: NER entity
/// bits for every node's own and subtree text, plus the structural
/// leaf/elem masks. Everything here is a pure function of *page
/// content* under the pretrained neural modules — no question, keyword,
/// or synthesis-config input — which is what lets `webqa::Engine`'s
/// feature store share one base table across *different* questions over
/// the same page, and persist it to disk keyed by content digest alone.
///
/// Contract: [`PageBaseFeatures::compute`] reads only
/// [`QueryContext::entities`] (the NER module) and the page's structure.
/// A context built with custom models
/// (`QueryContext::with_models`) may recognize different entities;
/// callers caching base tables across contexts are responsible for only
/// doing so under the pretrained defaults (as `webqa::Engine` does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageBaseFeatures {
    /// Per-node entity-kind bitmask of the node's own text.
    own_entities: Vec<u8>,
    /// Per-node entity-kind bitmask of the node's subtree text.
    sub_entities: Vec<u8>,
    /// Per-node `is_leaf`.
    leaf: Vec<bool>,
    /// Per-node `is_elem`.
    elem: Vec<bool>,
}

impl PageBaseFeatures {
    /// Computes the query-independent table for one page. Only the NER
    /// module of `ctx` is consulted (see the type docs for the
    /// pretrained-models contract).
    pub fn compute(ctx: &QueryContext, page: &webqa_dsl::PageTree) -> PageBaseFeatures {
        let entity_bits = |text: &str| {
            let mut bits = 0u8;
            for e in ctx.entities(text) {
                bits |= kind_bit(e.kind);
            }
            bits
        };
        PageBaseFeatures {
            own_entities: page.iter().map(|n| entity_bits(page.text(n))).collect(),
            sub_entities: page
                .iter()
                .map(|n| entity_bits(&page.subtree_text(n)))
                .collect(),
            leaf: page.iter().map(|n| page.is_leaf(n)).collect(),
            elem: page.iter().map(|n| page.is_elem(n)).collect(),
        }
    }

    /// Number of nodes this table covers.
    pub fn nodes(&self) -> usize {
        self.own_entities.len()
    }

    /// Whether this table was built over a page of `nodes` nodes.
    pub fn fits(&self, nodes: usize) -> bool {
        self.own_entities.len() == nodes
            && self.sub_entities.len() == nodes
            && self.leaf.len() == nodes
            && self.elem.len() == nodes
    }

    /// The raw per-node columns `(own_entities, sub_entities, leaf,
    /// elem)` — the serialization surface for `webqa`'s on-disk
    /// snapshot.
    pub fn parts(&self) -> (&[u8], &[u8], &[bool], &[bool]) {
        (
            &self.own_entities,
            &self.sub_entities,
            &self.leaf,
            &self.elem,
        )
    }

    /// Rebuilds a table from its [`parts`](PageBaseFeatures::parts)
    /// columns (the deserialization surface). `None` unless all four
    /// columns have equal length.
    pub fn from_parts(
        own_entities: Vec<u8>,
        sub_entities: Vec<u8>,
        leaf: Vec<bool>,
        elem: Vec<bool>,
    ) -> Option<PageBaseFeatures> {
        let n = own_entities.len();
        if sub_entities.len() != n || leaf.len() != n || elem.len() != n {
            return None;
        }
        Some(PageBaseFeatures {
            own_entities,
            sub_entities,
            leaf,
            elem,
        })
    }
}

/// One extractor production step, applied to parent outputs without
/// materializing the child AST (the AST is built only for candidates that
/// survive pruning and behavioral dedup).
#[derive(Debug, Clone)]
pub(crate) enum StepOp {
    /// `Filter(e, φ)`.
    Filter(NlpPred),
    /// `Substring(e, φ, k)`.
    Substring(NlpPred, usize),
    /// `Split(e, c)`.
    Split(char),
}

/// Page-independent facts the abstract interpreter
/// ([`webqa_dsl::analysis`]) derives about the synthesis pools, computed
/// once per task. Every fact is a theorem about the definitional
/// semantics under this task's `QueryContext`, so prunes keyed on them
/// are *sound*: they only skip candidates that provably cannot classify
/// or produce output. Crucially the facts depend only on `(cfg, ctx)` —
/// never on the kernel mode — so reference and optimized runs make
/// identical prune decisions (`tests/synth_parity.rs`).
pub(crate) struct AnalysisFacts {
    /// `SynthConfig::analysis` — when false, no fact is consulted.
    pub enabled: bool,
    /// Abstract truth of each guard predicate, aligned with
    /// [`TaskCtx::guard_preds`]. `False` entries can never hold on a
    /// positive example; `True` entries hold on every non-empty node set.
    pub guard_pred_truth: Vec<Truth>,
    /// Production steps proven to map *every* input string to `∅`
    /// (a `Filter` whose predicate is `⊥`, a `Substring` whose predicate
    /// extracts nothing), aligned with [`TaskCtx::steps`].
    pub step_dead: Vec<bool>,
    /// For each filter `fi` of [`TaskCtx::filters`], the earlier (weaker)
    /// filters `fj < fi` with `filters[fi] ⇒ filters[fj]`: whenever `fj`
    /// selects no nodes from a frontier, `fi` cannot either.
    pub filter_implied: Vec<Vec<usize>>,
}

impl AnalysisFacts {
    fn compute(
        cfg: &SynthConfig,
        ctx: &QueryContext,
        filters: &[NodeFilter],
        guard_preds: &[NlpPred],
        steps: &[StepOp],
    ) -> Self {
        let analyzer = Analyzer::new(ctx);
        AnalysisFacts {
            enabled: cfg.analysis,
            guard_pred_truth: guard_preds.iter().map(|p| analyzer.pred_truth(p)).collect(),
            step_dead: steps
                .iter()
                .map(|s| match s {
                    StepOp::Filter(p) => analyzer.pred_truth(p) == Truth::False,
                    StepOp::Substring(p, k) => *k == 0 || analyzer.pred_extract_empty(p),
                    StepOp::Split(_) => false,
                })
                .collect(),
            filter_implied: (0..filters.len())
                .map(|fi| {
                    (0..fi)
                        .filter(|&fj| analyzer.filter_implies(&filters[fi], &filters[fj]))
                        .collect()
                })
                .collect(),
        }
    }
}

/// Per-`synthesize`-call context: pools plus the optimized-mode caches.
pub(crate) struct TaskCtx<'a> {
    pub cfg: &'a SynthConfig,
    pub ctx: &'a QueryContext,
    pub examples: &'a [Example],
    /// The node-filter pool (`GetChildren`/`GetDescendants` filters).
    pub filters: Vec<NodeFilter>,
    /// The guard predicate pool, in `gen_guards` order: `⊤` first, then
    /// the NLP predicates.
    pub guard_preds: Vec<NlpPred>,
    /// The extractor production pool, in `extend_extractor` order.
    pub steps: Vec<StepOp>,
    /// Sound page-independent verdicts about the pools (see
    /// [`AnalysisFacts`]); consulted by the analysis prune when
    /// `cfg.analysis` is set.
    pub analysis: AnalysisFacts,
    /// Cooperative cancellation handle, checkpointed once per guard step
    /// by the branch synthesizer (shared by the branch-parallel workers).
    pub cancel: CancelToken,
    /// Optimized mode: one feature/mask table per example, either
    /// borrowed from the caller (the engine's cross-request store) or
    /// computed here. Empty in reference mode.
    tables: Vec<Arc<PageFeatures>>,
    /// Task-level production-step output cache, content-keyed and shared
    /// across branch problems (and branch-parallel workers, hence the
    /// mutexes). `Substring`'s span search is by far the most expensive
    /// string operation in the search and the same strings recur in every
    /// branch over the same pages, so its results are computed once per
    /// distinct (step, content) for the whole task. `Filter` entries stay
    /// `None`: their output aliases the *input* allocation and the
    /// context-cached predicate lookup is already cheap. All `None` in
    /// reference mode.
    step_results: Vec<Option<StepShard>>,
}

impl<'a> TaskCtx<'a> {
    #[allow(dead_code)] // the no-borrowed-tables convenience, used by tests
    pub fn new(cfg: &'a SynthConfig, ctx: &'a QueryContext, examples: &'a [Example]) -> Self {
        Self::with_features(cfg, ctx, examples, &[])
    }

    /// [`TaskCtx::new`] with caller-supplied feature tables, aligned with
    /// `examples` (missing or shape-mismatched entries are computed
    /// fresh). Reused tables are observationally invisible: the table is
    /// a pure function of `(cfg, ctx, page)`, so the search reads the
    /// same bytes whether the table was borrowed or rebuilt.
    pub fn with_features(
        cfg: &'a SynthConfig,
        ctx: &'a QueryContext,
        examples: &'a [Example],
        features: &[Arc<PageFeatures>],
    ) -> Self {
        Self::with_features_cancel(cfg, ctx, examples, features, CancelToken::never())
    }

    /// [`TaskCtx::with_features`] carrying a caller-supplied
    /// [`CancelToken`]. The branch synthesizer checkpoints the token once
    /// per guard step; a never-token makes those checkpoints free-ish
    /// atomic increments.
    pub fn with_features_cancel(
        cfg: &'a SynthConfig,
        ctx: &'a QueryContext,
        examples: &'a [Example],
        features: &[Arc<PageFeatures>],
        cancel: CancelToken,
    ) -> Self {
        let filters = node_filters(cfg, ctx);
        let preds = nlp_preds(cfg, ctx);
        let mut guard_preds = vec![NlpPred::True];
        guard_preds.extend(preds.iter().cloned());
        let mut steps = Vec::new();
        for pred in &preds {
            steps.push(StepOp::Filter(pred.clone()));
            for &k in &cfg.substring_ks {
                steps.push(StepOp::Substring(pred.clone(), k));
            }
        }
        for &c in &cfg.delimiters {
            steps.push(StepOp::Split(c));
        }
        let step_results = steps
            .iter()
            .map(|s| {
                (!cfg.reference_kernels && !matches!(s, StepOp::Filter(_)))
                    .then(|| Mutex::new(HashMap::default()))
            })
            .collect();
        let analysis = AnalysisFacts::compute(cfg, ctx, &filters, &guard_preds, &steps);

        let tables = if cfg.reference_kernels {
            Vec::new()
        } else {
            examples
                .iter()
                .enumerate()
                .map(|(i, ex)| {
                    match features.get(i) {
                        Some(t) if t.fits(filters.len(), ex.page.len()) => Arc::clone(t),
                        // Absent or built under a different pool/page:
                        // compute fresh rather than read wrong masks.
                        _ => Arc::new(PageFeatures::compute_over(&filters, ctx, &ex.page)),
                    }
                })
                .collect()
        };
        TaskCtx {
            cfg,
            ctx,
            examples,
            filters,
            guard_preds,
            steps,
            analysis,
            cancel,
            tables,
            step_results,
        }
    }

    /// The precomputed mask of `filter` over `example`'s nodes
    /// (optimized mode only).
    pub fn mask(&self, example: usize, filter: usize) -> &[bool] {
        &self.tables[example].masks[filter]
    }

    /// The own-text features of `example`'s nodes (optimized mode only).
    pub fn feats(&self, example: usize) -> &[TextFeatures] {
        &self.tables[example].own
    }
}

/// Internal output representation of the extractor search: shared string
/// slices, so `Filter` steps and dedup clone a pointer, not the bytes.
/// Atomically counted so the task-level extraction cache can be shared
/// by the branch-parallel workers.
pub(crate) type OutStr = Arc<str>;

/// Everything the scorer knows about one distinct string allocation:
/// its interned token ids and its content hash. Keyed by the `Arc`
/// allocation address; the stored handle keeps the allocation alive so
/// the address can never be reused while the entry exists.
struct StrInfo {
    /// Never read — exists to pin the allocation so the address key
    /// stays valid for the scorer's lifetime.
    _keepalive: OutStr,
    ids: IdVec,
    content_hash: u64,
}

/// Per-branch scoring state: the positive examples with their gold bags
/// interned into one id space, plus pointer-keyed caches for string
/// token-ids, content hashes, and production-step outputs.
pub(crate) struct Scorer<'a> {
    reference: bool,
    /// The branch's positive examples (scoring targets), in order.
    pub pos: Vec<&'a Example>,
    interner: TokenInterner,
    gold: Vec<IdBag>,
    strings: HashMap<usize, StrInfo, FxBuild>,
    /// `(string allocation, step index)` → the step's outputs on that
    /// string. Production steps are pure string functions, so the result
    /// is computed once per distinct input allocation and the output
    /// `Rc`s are shared by every candidate that reaches it.
    step_cache: HashMap<(usize, u32), Vec<OutStr>, FxBuild>,
    overlap: BagOverlap,
}

fn addr(s: &OutStr) -> usize {
    Arc::as_ptr(s) as *const u8 as usize
}

fn fx_content_hash(s: &str) -> u64 {
    let mut h = FxHasher::default();
    s.hash(&mut h);
    h.finish()
}

impl<'a> Scorer<'a> {
    pub fn new(task: &TaskCtx<'a>, pos: &[usize]) -> Self {
        let pos: Vec<&Example> = pos.iter().map(|&i| &task.examples[i]).collect();
        let mut interner = TokenInterner::new();
        let gold = pos
            .iter()
            .map(|ex| {
                IdBag::from_ids(
                    ex.gold_tokens()
                        .iter()
                        .map(|t| interner.intern(t))
                        .collect(),
                )
            })
            .collect();
        Scorer {
            reference: task.cfg.reference_kernels,
            pos,
            interner,
            gold,
            strings: HashMap::default(),
            step_cache: HashMap::default(),
            overlap: BagOverlap::default(),
        }
    }

    /// Total gold tokens across the branch's positive examples. The
    /// emptiness prune is gated on this being positive: with no gold
    /// tokens an empty output scores a (vacuous) perfect F₁ and must stay
    /// enumerable.
    pub fn gold_total(&self) -> usize {
        self.gold.iter().map(webqa_metrics::IdBag::total).sum()
    }

    fn info<'m>(
        strings: &'m mut HashMap<usize, StrInfo, FxBuild>,
        interner: &mut TokenInterner,
        s: &OutStr,
    ) -> &'m StrInfo {
        strings.entry(addr(s)).or_insert_with(|| StrInfo {
            _keepalive: Arc::clone(s),
            ids: interner.tokenize_ids(s),
            content_hash: fx_content_hash(s),
        })
    }

    /// Micro-averaged counts of the raw per-example output multisets —
    /// the `UB` input of Eq. 3.
    pub fn counts_raw(&mut self, outputs: &[Vec<OutStr>]) -> Counts {
        if self.reference {
            return crate::example::counts_of_outputs_ref(&self.pos, outputs, false);
        }
        let mut total = Counts::default();
        for (i, strings) in outputs.iter().enumerate() {
            let gold = &self.gold[i];
            self.overlap.begin(gold);
            let mut matched = 0usize;
            let mut predicted = 0usize;
            for s in strings {
                let info = Self::info(&mut self.strings, &mut self.interner, s);
                predicted += info.ids.len();
                matched += info
                    .ids
                    .iter()
                    .filter(|&&id| self.overlap.consume(gold, id))
                    .count();
            }
            total += Counts {
                matched,
                predicted,
                gold: gold.total(),
            };
        }
        total
    }

    /// Micro-averaged counts under the program-level set semantics:
    /// per-example duplicate strings are counted once (Figure 6).
    pub fn counts_dedup(&mut self, outputs: &[Vec<OutStr>]) -> Counts {
        if self.reference {
            return crate::example::counts_of_outputs_ref(&self.pos, outputs, true);
        }
        let mut total = Counts::default();
        for (i, strings) in outputs.iter().enumerate() {
            // Order-preserving first-occurrence filter, content equality
            // (pointer equality as the fast path — shared `Rc`s make it
            // hit almost always). Inline buffer for the common small
            // case; spills only for outputs with many distinct strings.
            let mut inline: [&str; 16] = [""; 16];
            let mut inline_len = 0usize;
            let mut spill: Vec<&str> = Vec::new();
            let gold = &self.gold[i];
            self.overlap.begin(gold);
            let mut matched = 0usize;
            let mut predicted = 0usize;
            'strings: for s in strings {
                let str_ref: &str = s;
                for seen in inline[..inline_len].iter().chain(spill.iter()) {
                    if std::ptr::eq(*seen as *const str, str_ref as *const str) || *seen == str_ref
                    {
                        continue 'strings;
                    }
                }
                if inline_len < inline.len() {
                    inline[inline_len] = str_ref;
                    inline_len += 1;
                } else {
                    spill.push(str_ref);
                }
                let info = Self::info(&mut self.strings, &mut self.interner, s);
                predicted += info.ids.len();
                matched += info
                    .ids
                    .iter()
                    .filter(|&&id| self.overlap.consume(gold, id))
                    .count();
            }
            total += Counts {
                matched,
                predicted,
                gold: gold.total(),
            };
        }
        total
    }

    /// Applies production step `si` of the task's pool to the parent's
    /// outputs. In optimized mode the per-string results are memoized by
    /// input allocation — `Substring`'s span search and `Split`'s
    /// re-allocation happen once per distinct string, and their output
    /// `Rc`s are shared across all candidates. Reference mode computes
    /// every application definitionally.
    pub fn apply_step(
        &mut self,
        task: &TaskCtx,
        si: usize,
        parent_outputs: &[Vec<OutStr>],
    ) -> Vec<Vec<OutStr>> {
        let step = &task.steps[si];
        parent_outputs
            .iter()
            .map(|strings| {
                let mut out: Vec<OutStr> = Vec::with_capacity(strings.len());
                for s in strings {
                    if self.reference {
                        apply_step_one(task.ctx, step, s, &mut out);
                        continue;
                    }
                    match self.step_cache.get(&(addr(s), si as u32)) {
                        Some(cached) => out.extend(cached.iter().cloned()),
                        None => {
                            let one = match &task.step_results[si] {
                                // Expensive step: go through the
                                // task-level content-keyed cache shared
                                // by all branches.
                                Some(shared) => {
                                    let mut map = shared.lock().expect("step cache lock");
                                    match map.get(&**s) {
                                        Some(v) => v.clone(),
                                        None => {
                                            let mut v = Vec::new();
                                            apply_step_one(task.ctx, step, s, &mut v);
                                            map.insert(Box::from(&**s), v.clone());
                                            v
                                        }
                                    }
                                }
                                None => {
                                    let mut v = Vec::new();
                                    apply_step_one(task.ctx, step, s, &mut v);
                                    v
                                }
                            };
                            out.extend(one.iter().cloned());
                            // Retain the input `Arc` in the strings
                            // table so its address key stays valid for
                            // the scorer's lifetime.
                            Self::info(&mut self.strings, &mut self.interner, s);
                            self.step_cache.insert((addr(s), si as u32), one);
                        }
                    }
                }
                out
            })
            .collect()
    }

    /// Order-sensitive behavioral signature of per-example outputs. The
    /// optimized path combines per-string content hashes (cached per
    /// allocation) with [`FxHasher`]; the reference path hashes the whole
    /// nested structure with the standard library's SipHash, exactly as
    /// the pre-overhaul code did.
    pub fn signature(&mut self, outputs: &[Vec<OutStr>]) -> u64 {
        if self.reference {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            outputs.hash(&mut h);
            return h.finish();
        }
        let mut h = FxHasher::default();
        for strings in outputs {
            h.write_u64(strings.len() as u64);
            for s in strings {
                let info = Self::info(&mut self.strings, &mut self.interner, s);
                h.write_u64(info.content_hash);
            }
        }
        h.finish()
    }
}

/// One production step on one string, definitionally.
fn apply_step_one(ctx: &QueryContext, step: &StepOp, s: &OutStr, out: &mut Vec<OutStr>) {
    match step {
        StepOp::Filter(pred) => {
            if pred.eval(ctx, s) {
                out.push(Arc::clone(s));
            }
        }
        StepOp::Substring(pred, k) => {
            out.extend(pred.extract(ctx, s).into_iter().take(*k).map(Arc::from));
        }
        StepOp::Split(c) => {
            out.extend(
                s.split(*c)
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(Arc::from),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_dsl::{PageTree, Threshold};

    fn ctx() -> QueryContext {
        QueryContext::new("Who are the students?", ["Students", "PhD"])
    }

    fn example(html: &str, gold: &[&str]) -> Example {
        Example::new(
            PageTree::parse(html),
            gold.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn features_agree_with_pred_eval() {
        let c = ctx();
        let texts = [
            "PhD Students",
            "Jane Doe",
            "reading group, hiking",
            "Robert Smith since 2019",
            "",
        ];
        let preds = [
            NlpPred::True,
            NlpPred::MatchKeyword(Threshold::new(0.5)),
            NlpPred::MatchKeyword(Threshold::new(0.95)),
            NlpPred::HasAnswer,
            NlpPred::HasEntity(EntityKind::Person),
            NlpPred::HasEntity(EntityKind::Date),
            NlpPred::Not(Box::new(NlpPred::HasEntity(EntityKind::Money))),
            NlpPred::And(
                Box::new(NlpPred::MatchKeyword(Threshold::new(0.5))),
                Box::new(NlpPred::True),
            ),
        ];
        for text in texts {
            let f = features_of(&c, text, !c.question().is_empty());
            for p in &preds {
                assert_eq!(
                    pred_holds(p, &f),
                    p.eval(&c, text),
                    "pred {p:?} on {text:?}"
                );
            }
        }
    }

    #[test]
    fn base_split_reproduces_the_full_table() {
        let cfg = SynthConfig::fast();
        let page = PageTree::parse(
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>\
             <h2>Contact</h2><p>a@x.edu</p>",
        );
        let assert_tables_equal = |a: &PageFeatures, b: &PageFeatures| {
            assert_eq!(a.masks, b.masks);
            assert_eq!(a.own.len(), b.own.len());
            for (x, y) in a.own.iter().zip(&b.own) {
                assert_eq!(x.kw, y.kw);
                assert_eq!(x.has_answer, y.has_answer);
                assert_eq!(x.entities, y.entities);
            }
        };

        let c = ctx();
        let base = PageBaseFeatures::compute(&c, &page);
        assert!(base.fits(page.len()));
        assert_tables_equal(
            &PageFeatures::compute(&cfg, &c, &page),
            &PageFeatures::compute_with_base(&cfg, &c, &page, &base),
        );

        // The same base serves a *different* question over the page —
        // the whole point of the query-independent split.
        let c2 = QueryContext::new("What is the contact email?", ["Contact"]);
        assert_tables_equal(
            &PageFeatures::compute(&cfg, &c2, &page),
            &PageFeatures::compute_with_base(&cfg, &c2, &page, &base),
        );

        // A base of the wrong shape falls back to a fresh computation
        // instead of producing mismatched rows.
        let stale = PageBaseFeatures::from_parts(vec![0], vec![0], vec![true], vec![true]).unwrap();
        assert!(!stale.fits(page.len()));
        assert_tables_equal(
            &PageFeatures::compute(&cfg, &c, &page),
            &PageFeatures::compute_with_base(&cfg, &c, &page, &stale),
        );

        // parts/from_parts round-trips; ragged columns are rejected.
        let (own, sub, leaf, elem) = base.parts();
        let rebuilt =
            PageBaseFeatures::from_parts(own.to_vec(), sub.to_vec(), leaf.to_vec(), elem.to_vec())
                .unwrap();
        assert_eq!(rebuilt, base);
        assert!(PageBaseFeatures::from_parts(vec![0], vec![], vec![], vec![]).is_none());
    }

    #[test]
    fn masks_agree_with_direct_filter_eval() {
        let c = ctx();
        let cfg = SynthConfig::fast();
        let examples = vec![example(
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>\
             <h2>Contact</h2><p>a@x.edu</p>",
            &["Jane Doe", "Bob Smith"],
        )];
        let task = TaskCtx::new(&cfg, &c, &examples);
        for (fi, filter) in task.filters.iter().enumerate() {
            let mask = task.mask(0, fi);
            for n in examples[0].page.iter() {
                assert_eq!(
                    mask[n.index()],
                    filter.eval(&c, &examples[0].page, n),
                    "filter {filter} node {}",
                    n.index()
                );
            }
        }
    }

    #[test]
    fn scorer_counts_match_reference_counts() {
        let c = ctx();
        let cfg_fast = SynthConfig::fast();
        let cfg_ref = SynthConfig::fast().with_reference_kernels();
        let examples = vec![
            example(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
                &["Jane Doe"],
            ),
            example(
                "<h1>B</h1><h2>PhD</h2><ul><li>Bob Smith</li></ul>",
                &["Bob Smith", "Jane Doe"],
            ),
        ];
        let task_fast = TaskCtx::new(&cfg_fast, &c, &examples);
        let task_ref = TaskCtx::new(&cfg_ref, &c, &examples);
        let outputs: Vec<Vec<OutStr>> = vec![
            vec![
                Arc::from("Jane Doe"),
                Arc::from("Jane Doe"),
                Arc::from("noise"),
            ],
            vec![Arc::from("Bob Smith"), Arc::from("")],
        ];
        let mut fast = Scorer::new(&task_fast, &[0, 1]);
        let mut slow = Scorer::new(&task_ref, &[0, 1]);
        assert_eq!(fast.counts_raw(&outputs), slow.counts_raw(&outputs));
        assert_eq!(fast.counts_dedup(&outputs), slow.counts_dedup(&outputs));
        // Dedup drops the duplicate "Jane Doe" but keeps distinct strings.
        let raw = fast.counts_raw(&outputs);
        let dedup = fast.counts_dedup(&outputs);
        assert_eq!(raw.predicted, dedup.predicted + 2);
    }

    #[test]
    fn fx_hasher_is_deterministic() {
        let hash = |s: &str| {
            let mut h = FxHasher::default();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash("abc"), hash("abc"));
        assert_ne!(hash("abc"), hash("abd"));
    }
}
