//! # webqa-synth
//!
//! Optimal neurosymbolic program synthesis — the algorithms of Section 5
//! of the paper:
//!
//! * [`synthesize`] — top-level `Synthesize` (Figure 7): enumerates
//!   ordered example partitions and returns **all** programs with optimal
//!   token-level F₁ on the labeled pages;
//! * `SynthesizeBranch` (Figure 8) with guard/extractor decomposition and
//!   per-locator memoization (footnote 6);
//! * `SynthesizeExtractors` (Figure 9): bottom-up enumeration with
//!   `UB = 2R/(1+R)` pruning (Eq. 3), sound by recall monotonicity
//!   (Theorem A.3);
//! * `GetNextGuard` (Figure 10): lazy guard enumeration whose pruning
//!   strengthens as the caller's optimum rises.
//!
//! The Section 8.2 ablations are configuration flags:
//! [`SynthConfig::without_pruning`] (`WebQA-NoPrune`) and
//! [`SynthConfig::without_decomposition`] (`WebQA-NoDecomp`).
//!
//! ```
//! use webqa_dsl::{PageTree, QueryContext};
//! use webqa_synth::{synthesize, Example, SynthConfig};
//!
//! let ctx = QueryContext::new("Who are the current PhD students?", ["Students", "PhD"]);
//! let page = PageTree::parse(
//!     "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>",
//! );
//! let examples = vec![Example::new(page, vec!["Jane Doe".into(), "Bob Smith".into()])];
//! let outcome = synthesize(&SynthConfig::fast(), &ctx, &examples);
//! assert!(outcome.f1 > 0.99);
//! assert!(!outcome.programs.is_empty());
//! ```

#![warn(missing_docs)]

mod branch;
mod config;
mod example;
mod extractors;
mod guards;
pub mod oracle;
mod pool;
mod stats;
mod top;

pub use config::SynthConfig;
pub use example::{counts_of_outputs, extractor_outputs, f1_of_outputs, program_counts, Example};
pub use stats::SynthStats;
pub use top::{synthesize, SynthesisOutcome};
