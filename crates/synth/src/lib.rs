//! # webqa-synth
//!
//! Optimal neurosymbolic program synthesis — the algorithms of Section 5
//! of the paper:
//!
//! * [`synthesize`] — top-level `Synthesize` (Figure 7): enumerates
//!   ordered example partitions and returns **all** programs with optimal
//!   token-level F₁ on the labeled pages;
//! * `SynthesizeBranch` (Figure 8) with guard/extractor decomposition and
//!   per-locator memoization (footnote 6);
//! * `SynthesizeExtractors` (Figure 9): bottom-up enumeration with
//!   `UB = 2R/(1+R)` pruning (Eq. 3), sound by recall monotonicity
//!   (Theorem A.3);
//! * `GetNextGuard` (Figure 10): lazy guard enumeration whose pruning
//!   strengthens as the caller's optimum rises.
//!
//! The Section 8.2 ablations are configuration flags:
//! [`SynthConfig::without_pruning`] (`WebQA-NoPrune`) and
//! [`SynthConfig::without_decomposition`] (`WebQA-NoDecomp`).
//!
//! ## Hot-path architecture
//!
//! The enumerative search scores hundreds of thousands of candidate
//! terms per task; the implementation keeps that affordable with four
//! semantics-free layers (each disabled by
//! [`SynthConfig::reference`], which swaps in the original definitional
//! kernels — `tests/synth_parity.rs` proves the two paths
//! observationally identical on the full corpus):
//!
//! * **Interned scoring** (`scorer` module): gold bags and candidate
//!   outputs are interned to dense `u32` token ids once per distinct
//!   string (`webqa_metrics::TokenInterner`), and F₁ counts are multiset
//!   overlaps over small integer bags — no tokenization or string
//!   hashing per candidate. The `UB = 2R/(1+R)` ceiling (Eq. 3) runs on
//!   per-node dense gold-id bags precomputed in [`Example`].
//! * **Task-level mask tables**: every `NodeFilter` in the pool is
//!   evaluated once per (example, node) — via a single neural-feature
//!   pass per node text — and the `[example][filter][node]` mask table
//!   is shared by every branch problem of the task, instead of being
//!   recomputed per `SynthesizeBranch` call.
//! * **Arena-indexed locator memo**: the guard enumerator keeps its
//!   locator entries (with their propagated node sets and recall
//!   ceilings) in an arena and yields `(guard, entry id)`; the footnote 6
//!   extractor-synthesis memo is a dense vector over those ids holding
//!   `Arc`-shared results — no locator cloning/hashing, no node
//!   re-propagation, no group deep-copies.
//! * **Step-wise extractor enumeration**: children are generated as
//!   production steps applied to the parent's shared `Arc<str>` outputs;
//!   the UB prune fires *before* the child AST is built, so dominated
//!   candidates never materialize.
//!
//! Partition blocks can additionally be solved in parallel inside one
//! task ([`SynthConfig::jobs`]) with a deterministic merge.
//!
//! The search can be abandoned cooperatively: [`synthesize_cancellable`]
//! threads a [`CancelToken`] (explicit cancel, wall-clock deadline, or
//! deterministic step budget) through the enumerator loop, checked once
//! per guard step — the serving layer's per-request deadlines ride on
//! this. A cancelled search returns [`Cancelled`] and never exposes a
//! partial outcome.
//!
//! ```
//! use webqa_dsl::{PageTree, QueryContext};
//! use webqa_synth::{synthesize, Example, SynthConfig};
//!
//! let ctx = QueryContext::new("Who are the current PhD students?", ["Students", "PhD"]);
//! let page = PageTree::parse(
//!     "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>",
//! );
//! let examples = vec![Example::new(page, vec!["Jane Doe".into(), "Bob Smith".into()])];
//! let outcome = synthesize(&SynthConfig::fast(), &ctx, &examples);
//! assert!(outcome.f1 > 0.99);
//! assert!(!outcome.programs.is_empty());
//! ```

#![warn(missing_docs)]

mod branch;
mod cancel;
mod config;
mod example;
mod extractors;
mod guards;
pub mod oracle;
mod pool;
mod scorer;
mod stats;
mod top;

pub use cancel::{CancelToken, Cancelled};
pub use config::SynthConfig;
pub use example::{counts_of_outputs, extractor_outputs, f1_of_outputs, program_counts, Example};
pub use scorer::{PageBaseFeatures, PageFeatures};
pub use stats::SynthStats;
pub use top::{synthesize, synthesize_cancellable, synthesize_with_features, SynthesisOutcome};
