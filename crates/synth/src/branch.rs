//! `SynthesizeBranch` (Figure 8 of the paper) and its `NoDecomp` ablation.

use std::sync::Arc;

use webqa_dsl::Guard;
use webqa_metrics::Counts;

use crate::extractors::{synthesize_extractors, ExtractorSynthesis, F1_EPS};
use crate::guards::{propagate_examples, GuardEnumerator};
use crate::scorer::{Scorer, TaskCtx};
use crate::stats::SynthStats;

/// Optimal extractors for one guard, grouped by the token counts they
/// achieve on the positive examples. Shared (`Arc`) across every guard
/// whose locator produced the same extractor synthesis — the footnote 6
/// memo hands out references, never clones of the groups.
pub(crate) type GuardOptions = Arc<ExtractorSynthesis>;

/// All optimal branch programs for one (E⁺, E⁻) problem, represented as
/// the paper's mapping from guards to extractor sets.
///
/// Extractors are grouped by their token-count vector (see
/// [`crate::extractors::ExtractorSynthesis`]): every group achieves the
/// branch-optimal F₁ on E⁺, but the counts — which determine the
/// micro-averaged F₁ once branches are combined — can differ between
/// groups. The top-level synthesis uses the per-group counts to keep only
/// cross-branch combinations achieving the global optimum.
#[derive(Debug, Clone)]
pub(crate) struct BranchSynthesis {
    /// `(ψ, E)` pairs: each guard with its optimal extractors, grouped by
    /// token counts.
    pub options: Vec<(Guard, GuardOptions)>,
    /// The optimal F₁ on E⁺.
    #[allow(dead_code)] // kept for diagnostics and tests
    pub f1: f64,
    /// Token counts of a representative optimal branch.
    #[allow(dead_code)] // diagnostics; the partition fold reads the
    // per-group counts via `distinct_counts` instead
    pub counts: Counts,
}

impl BranchSynthesis {
    /// Number of distinct `(guard, extractor)` branch programs.
    #[allow(dead_code)] // used by tests and diagnostics
    pub fn program_count(&self) -> usize {
        self.options
            .iter()
            .map(|(_, gs)| gs.groups.iter().map(|(_, es)| es.len()).sum::<usize>())
            .sum()
    }

    /// The distinct token-count vectors achievable by this branch's
    /// optimal programs.
    pub fn distinct_counts(&self) -> Vec<Counts> {
        let mut out: Vec<Counts> = Vec::new();
        for (_, gs) in &self.options {
            for (c, _) in &gs.groups {
                if !out.contains(c) {
                    out.push(*c);
                }
            }
        }
        out
    }
}

/// Figure 8: synthesizes all optimal branch programs, decomposing guard
/// from extractor synthesis (or jointly, for the `NoDecomp` ablation).
/// `pos` / `neg` are indices into the task's example list.
///
/// Returns `None` when no guard in the bounded space separates E⁺ from E⁻.
pub(crate) fn synthesize_branch(
    task: &TaskCtx,
    pos: &[usize],
    neg: &[usize],
    stats: &mut SynthStats,
) -> Option<BranchSynthesis> {
    stats.branch_calls += 1;
    if task.cfg.decompose {
        synthesize_branch_decomposed(task, pos, neg, stats)
    } else {
        synthesize_branch_joint(task, pos, neg, stats)
    }
}

fn synthesize_branch_decomposed(
    task: &TaskCtx,
    pos: &[usize],
    neg: &[usize],
    stats: &mut SynthStats,
) -> Option<BranchSynthesis> {
    let mut enumerator = GuardEnumerator::new(task, pos, neg);
    let mut scorer = Scorer::new(task, pos);
    // The NoLazy ablation: drain the enumerator up-front with a bound of
    // 0, so the rising optimum never strengthens locator pruning.
    let mut eager: Option<std::collections::VecDeque<(Guard, usize)>> = if task.cfg.lazy_guards {
        None
    } else {
        let mut q = std::collections::VecDeque::new();
        while let Some(g) = enumerator.next(0.0, stats) {
            if task.cancel.checkpoint() {
                // The whole search is being abandoned; the top level
                // discards this `None` and reports `Cancelled`.
                return None;
            }
            q.push_back(g);
        }
        Some(q)
    };
    let mut opt = 0.0f64;
    let mut options: Vec<(Guard, GuardOptions)> = Vec::new();
    let mut counts = Counts::default();
    // Footnote 6: branches whose guards share a section locator share the
    // optimal-extractor computation. The memo is indexed by the
    // enumerator's entry id (each entry *is* one locator), so no locator
    // is ever cloned or hashed to key it. `Some(None)` records a locator
    // whose UB was below `opt` (Figure 8 line 6) — sound to skip forever
    // since `opt` only rises.
    let mut memo: Vec<Option<Option<GuardOptions>>> = Vec::new();

    while let Some((guard, eid)) = match eager.as_mut() {
        Some(q) => q.pop_front(),
        None => enumerator.next(opt, stats),
    } {
        // One cooperative cancellation checkpoint per guard step: a
        // cancelled search bails before the next extractor synthesis, so
        // latency overrun is bounded by one step's work.
        if task.cancel.checkpoint() {
            return None;
        }
        if memo.len() <= eid {
            memo.resize_with(eid + 1, || None);
        }
        let synth: Option<GuardOptions> = match &memo[eid] {
            Some(s) => {
                stats.locator_memo_hits += 1;
                s.clone()
            }
            None => {
                let s = if task.cfg.reference_kernels {
                    // Reference path: re-propagate the locator from the
                    // root and recompute the ceiling definitionally, as
                    // the pre-overhaul code did.
                    let pos_examples = pos.iter().map(|&i| &task.examples[i]);
                    let nodes =
                        propagate_examples(task.ctx, enumerator.entry_locator(eid), pos_examples);
                    let ub: Counts = pos
                        .iter()
                        .zip(&nodes)
                        .map(|(&i, ns)| task.examples[i].ceiling_counts_reference(ns))
                        .sum();
                    if task.cfg.prune && ub.upper_bound() + F1_EPS < opt {
                        None
                    } else {
                        Some(Arc::new(synthesize_extractors(
                            task,
                            &mut scorer,
                            &nodes,
                            0.0,
                            stats,
                        )))
                    }
                } else {
                    // Optimized path: the enumerator already propagated
                    // the nodes and computed the ceiling when it created
                    // the entry (Figure 8 line 6 is a comparison, not a
                    // recomputation).
                    let ub = enumerator.entry_ub(eid);
                    if task.cfg.prune && ub.upper_bound() + F1_EPS < opt {
                        None
                    } else {
                        Some(Arc::new(synthesize_extractors(
                            task,
                            &mut scorer,
                            enumerator.entry_nodes(eid),
                            0.0,
                            stats,
                        )))
                    }
                };
                memo[eid] = Some(s.clone());
                s
            }
        };
        let Some(synth) = synth else { continue };
        if synth.is_empty() {
            continue;
        }
        if synth.f1 > opt + F1_EPS {
            opt = synth.f1;
            counts = synth.counts;
            options = vec![(guard, synth)];
        } else if (synth.f1 - opt).abs() <= F1_EPS {
            if options.is_empty() {
                counts = synth.counts;
            }
            options.push((guard, synth));
        }
    }
    if options.is_empty() {
        None
    } else {
        Some(BranchSynthesis {
            options,
            f1: opt,
            counts,
        })
    }
}

/// The `WebQA-NoDecomp` ablation (Section 8.2): guards and extractors are
/// enumerated *jointly* — no lazy `opt` feedback into the guard
/// enumerator and no extractor sharing across guards with the same
/// locator. The result set is identical; only the work differs.
fn synthesize_branch_joint(
    task: &TaskCtx,
    pos: &[usize],
    neg: &[usize],
    stats: &mut SynthStats,
) -> Option<BranchSynthesis> {
    // Eagerly enumerate every classifying guard (opt = 0: no feedback).
    let mut enumerator = GuardEnumerator::new(task, pos, neg);
    let mut guards = Vec::new();
    while let Some(g) = enumerator.next(0.0, stats) {
        if task.cancel.checkpoint() {
            return None;
        }
        guards.push(g);
    }
    let mut scorer = Scorer::new(task, pos);
    let mut opt = 0.0f64;
    let mut options: Vec<(Guard, GuardOptions)> = Vec::new();
    let mut counts = Counts::default();
    for (guard, eid) in guards {
        if task.cancel.checkpoint() {
            return None;
        }
        let synth = if task.cfg.reference_kernels {
            let pos_examples = pos.iter().map(|&i| &task.examples[i]);
            let nodes = propagate_examples(task.ctx, guard.locator(), pos_examples);
            synthesize_extractors(task, &mut scorer, &nodes, 0.0, stats)
        } else {
            synthesize_extractors(task, &mut scorer, enumerator.entry_nodes(eid), 0.0, stats)
        };
        if synth.is_empty() {
            continue;
        }
        let synth = Arc::new(synth);
        if synth.f1 > opt + F1_EPS {
            opt = synth.f1;
            counts = synth.counts;
            options = vec![(guard, synth)];
        } else if (synth.f1 - opt).abs() <= F1_EPS {
            options.push((guard, synth));
        }
    }
    if options.is_empty() {
        None
    } else {
        Some(BranchSynthesis {
            options,
            f1: opt,
            counts,
        })
    }
}

/// Convenience used by tests: solve one branch over a self-contained
/// example list.
#[cfg(test)]
pub(crate) fn synthesize_branch_over(
    cfg: &crate::config::SynthConfig,
    ctx: &webqa_dsl::QueryContext,
    pos: &[crate::example::Example],
    neg: &[crate::example::Example],
    stats: &mut SynthStats,
) -> Option<BranchSynthesis> {
    use crate::example::Example;
    let all: Vec<Example> = pos.iter().chain(neg.iter()).cloned().collect();
    let task = TaskCtx::new(cfg, ctx, &all);
    let pos_idx: Vec<usize> = (0..pos.len()).collect();
    let neg_idx: Vec<usize> = (pos.len()..all.len()).collect();
    synthesize_branch(&task, &pos_idx, &neg_idx, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use crate::example::Example;
    use webqa_dsl::{PageTree, QueryContext};

    fn example(html: &str, gold: &[&str]) -> Example {
        Example::new(
            PageTree::parse(html),
            gold.iter().map(|s| s.to_string()).collect(),
        )
    }

    fn students_examples() -> Vec<Example> {
        vec![
            example(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>\
                 <h2>Contact</h2><p>a@x.edu</p>",
                &["Jane Doe", "Bob Smith"],
            ),
            example(
                "<h1>B</h1><h2>Publications</h2><p>Some paper. PLDI 2020.</p>\
                 <h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>",
                &["Mary Anderson"],
            ),
        ]
    }

    fn ctx() -> QueryContext {
        QueryContext::new("Who are the current PhD students?", ["Students", "PhD"])
    }

    #[test]
    fn synthesizes_perfect_branch_for_students() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let pos = students_examples();
        let mut stats = SynthStats::default();
        let b = synthesize_branch_over(&cfg, &c, &pos, &[], &mut stats).expect("branch");
        assert!(b.f1 > 0.99, "expected F1≈1, got {}", b.f1);
        assert!(b.program_count() >= 1);
        // Sanity: a returned branch program really achieves that F1.
        let (g, gs) = &b.options[0];
        let prog = webqa_dsl::Program::single(g.clone(), gs.groups[0].1[0].clone());
        let counts = crate::example::program_counts(&c, &pos, &prog);
        assert!((counts.f1() - b.f1).abs() < 1e-9);
    }

    #[test]
    fn joint_and_decomposed_agree_on_optimum() {
        let c = ctx();
        let pos = students_examples();
        let mut s1 = SynthStats::default();
        let mut s2 = SynthStats::default();
        let dec = synthesize_branch_over(&SynthConfig::fast(), &c, &pos, &[], &mut s1).unwrap();
        let joint = synthesize_branch_over(
            &SynthConfig::fast().without_decomposition(),
            &c,
            &pos,
            &[],
            &mut s2,
        )
        .unwrap();
        assert!((dec.f1 - joint.f1).abs() < 1e-9);
        // Decomposition shares extractor synthesis across guards: less work.
        assert!(s1.extractors_enumerated <= s2.extractors_enumerated);
        assert!(s1.locator_memo_hits > 0);
    }

    #[test]
    fn lazy_and_eager_guard_enumeration_agree() {
        let c = ctx();
        let pos = students_examples();
        let mut s_lazy = SynthStats::default();
        let mut s_eager = SynthStats::default();
        let lazy =
            synthesize_branch_over(&SynthConfig::fast(), &c, &pos, &[], &mut s_lazy).unwrap();
        let eager = synthesize_branch_over(
            &SynthConfig::fast().without_lazy_guards(),
            &c,
            &pos,
            &[],
            &mut s_eager,
        )
        .unwrap();
        assert!(
            (lazy.f1 - eager.f1).abs() < 1e-9,
            "optimum must not depend on laziness"
        );
        assert!(
            s_lazy.work() <= s_eager.work(),
            "lazy enumeration must not do more work: {} vs {}",
            s_lazy.work(),
            s_eager.work()
        );
    }

    #[test]
    fn unseparable_examples_give_no_branch() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let page = "<h1>R</h1><p>x</p>";
        let pos = vec![example(page, &["x"])];
        let neg = vec![example(page, &[])];
        let mut stats = SynthStats::default();
        assert!(synthesize_branch_over(&cfg, &c, &pos, &neg, &mut stats).is_none());
    }

    #[test]
    fn branch_with_negatives_separates() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let pos = students_examples();
        let neg = vec![example(
            "<h1>C</h1><h2>Service</h2><p>PLDI '20 (PC)</p>",
            &[],
        )];
        let mut stats = SynthStats::default();
        let b = synthesize_branch_over(&cfg, &c, &pos, &neg, &mut stats).expect("branch");
        for (g, _) in &b.options {
            for n in &neg {
                assert!(
                    !g.eval(&c, &n.page).0,
                    "guard {g} must reject the negative page"
                );
            }
        }
    }

    #[test]
    fn reference_branch_synthesis_is_identical() {
        let c = ctx();
        let pos = students_examples();
        let neg = vec![example("<h1>C</h1><h2>Contact</h2><p>mail</p>", &[])];
        let mut s_fast = SynthStats::default();
        let mut s_ref = SynthStats::default();
        let fast =
            synthesize_branch_over(&SynthConfig::fast(), &c, &pos, &neg, &mut s_fast).unwrap();
        let slow =
            synthesize_branch_over(&SynthConfig::reference(), &c, &pos, &neg, &mut s_ref).unwrap();
        assert_eq!(fast.f1, slow.f1);
        assert_eq!(fast.counts, slow.counts);
        assert_eq!(fast.options.len(), slow.options.len());
        for ((ga, sa), (gb, sb)) in fast.options.iter().zip(&slow.options) {
            assert_eq!(ga, gb);
            assert_eq!(sa.groups, sb.groups);
        }
        assert_eq!(s_fast, s_ref, "stats must match across kernel modes");
    }
}
