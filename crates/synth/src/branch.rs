//! `SynthesizeBranch` (Figure 8 of the paper) and its `NoDecomp` ablation.

use std::collections::HashMap;

use webqa_dsl::{Extractor, Guard, Locator, QueryContext};
use webqa_metrics::Counts;

use crate::config::SynthConfig;
use crate::example::Example;
use crate::extractors::{synthesize_extractors, ExtractorSynthesis, F1_EPS};
use crate::guards::{propagate_examples, GuardEnumerator};
use crate::stats::SynthStats;

/// Optimal extractors for one guard, grouped by the token counts they
/// achieve on the positive examples.
pub(crate) type GuardOptions = Vec<(Counts, Vec<Extractor>)>;

/// All optimal branch programs for one (E⁺, E⁻) problem, represented as
/// the paper's mapping from guards to extractor sets.
///
/// Extractors are grouped by their token-count vector (see
/// [`crate::extractors::ExtractorSynthesis`]): every group achieves the
/// branch-optimal F₁ on E⁺, but the counts — which determine the
/// micro-averaged F₁ once branches are combined — can differ between
/// groups. The top-level synthesis uses the per-group counts to keep only
/// cross-branch combinations achieving the global optimum.
#[derive(Debug, Clone)]
pub(crate) struct BranchSynthesis {
    /// `(ψ, E)` pairs: each guard with its optimal extractors, grouped by
    /// token counts.
    pub options: Vec<(Guard, GuardOptions)>,
    /// The optimal F₁ on E⁺.
    #[allow(dead_code)] // kept for diagnostics and tests
    pub f1: f64,
    /// Token counts of a representative optimal branch (used to micro-
    /// average across partition blocks).
    pub counts: Counts,
}

impl BranchSynthesis {
    /// Number of distinct `(guard, extractor)` branch programs.
    #[allow(dead_code)] // used by tests and diagnostics
    pub fn program_count(&self) -> usize {
        self.options
            .iter()
            .map(|(_, gs)| gs.iter().map(|(_, es)| es.len()).sum::<usize>())
            .sum()
    }

    /// The distinct token-count vectors achievable by this branch's
    /// optimal programs.
    pub fn distinct_counts(&self) -> Vec<Counts> {
        let mut out: Vec<Counts> = Vec::new();
        for (_, gs) in &self.options {
            for (c, _) in gs {
                if !out.contains(c) {
                    out.push(*c);
                }
            }
        }
        out
    }
}

/// Figure 8: synthesizes all optimal branch programs, decomposing guard
/// from extractor synthesis (or jointly, for the `NoDecomp` ablation).
///
/// Returns `None` when no guard in the bounded space separates E⁺ from E⁻.
pub(crate) fn synthesize_branch(
    cfg: &SynthConfig,
    ctx: &QueryContext,
    pos: &[Example],
    neg: &[Example],
    stats: &mut SynthStats,
) -> Option<BranchSynthesis> {
    stats.branch_calls += 1;
    if cfg.decompose {
        synthesize_branch_decomposed(cfg, ctx, pos, neg, stats)
    } else {
        synthesize_branch_joint(cfg, ctx, pos, neg, stats)
    }
}

fn synthesize_branch_decomposed(
    cfg: &SynthConfig,
    ctx: &QueryContext,
    pos: &[Example],
    neg: &[Example],
    stats: &mut SynthStats,
) -> Option<BranchSynthesis> {
    let mut enumerator = GuardEnumerator::new(cfg, ctx, pos, neg);
    // The NoLazy ablation: drain the enumerator up-front with a bound of
    // 0, so the rising optimum never strengthens locator pruning.
    let mut eager: Option<std::collections::VecDeque<Guard>> = if cfg.lazy_guards {
        None
    } else {
        let mut q = std::collections::VecDeque::new();
        while let Some(g) = enumerator.next(0.0, stats) {
            q.push_back(g);
        }
        Some(q)
    };
    let mut opt = 0.0f64;
    let mut options: Vec<(Guard, GuardOptions)> = Vec::new();
    let mut counts = Counts::default();
    // Footnote 6: branches whose guards share a section locator share the
    // optimal-extractor computation. `None` records a locator whose UB was
    // below `opt` (Figure 8 line 6) — sound to skip forever since `opt`
    // only rises.
    let mut memo: HashMap<Locator, Option<ExtractorSynthesis>> = HashMap::new();

    while let Some(guard) = match eager.as_mut() {
        Some(q) => q.pop_front(),
        None => enumerator.next(opt, stats),
    } {
        let locator = guard.locator().clone();
        let synth = match memo.get(&locator) {
            Some(s) => {
                stats.memo_hits += 1;
                s.clone()
            }
            None => {
                let nodes = propagate_examples(ctx, &locator, pos);
                // Figure 8 line 6: UB on the guard's locator.
                let s = if cfg.prune {
                    let ub: Counts = pos
                        .iter()
                        .zip(&nodes)
                        .map(|(ex, ns)| ex.ceiling_counts(ns))
                        .sum();
                    if ub.upper_bound() + F1_EPS < opt {
                        None
                    } else {
                        Some(synthesize_extractors(cfg, ctx, pos, &nodes, 0.0, stats))
                    }
                } else {
                    Some(synthesize_extractors(cfg, ctx, pos, &nodes, 0.0, stats))
                };
                memo.insert(locator.clone(), s.clone());
                s
            }
        };
        let Some(synth) = synth else { continue };
        if synth.is_empty() {
            continue;
        }
        if synth.f1 > opt + F1_EPS {
            opt = synth.f1;
            counts = synth.counts;
            options = vec![(guard, synth.groups)];
        } else if (synth.f1 - opt).abs() <= F1_EPS {
            if options.is_empty() {
                counts = synth.counts;
            }
            options.push((guard, synth.groups));
        }
    }
    if options.is_empty() {
        None
    } else {
        Some(BranchSynthesis {
            options,
            f1: opt,
            counts,
        })
    }
}

/// The `WebQA-NoDecomp` ablation (Section 8.2): guards and extractors are
/// enumerated *jointly* — no lazy `opt` feedback into the guard
/// enumerator and no extractor sharing across guards with the same
/// locator. The result set is identical; only the work differs.
fn synthesize_branch_joint(
    cfg: &SynthConfig,
    ctx: &QueryContext,
    pos: &[Example],
    neg: &[Example],
    stats: &mut SynthStats,
) -> Option<BranchSynthesis> {
    // Eagerly enumerate every classifying guard (opt = 0: no feedback).
    let mut enumerator = GuardEnumerator::new(cfg, ctx, pos, neg);
    let mut guards = Vec::new();
    while let Some(g) = enumerator.next(0.0, stats) {
        guards.push(g);
    }
    let mut opt = 0.0f64;
    let mut options: Vec<(Guard, GuardOptions)> = Vec::new();
    let mut counts = Counts::default();
    for guard in guards {
        let nodes = propagate_examples(ctx, guard.locator(), pos);
        let synth = synthesize_extractors(cfg, ctx, pos, &nodes, 0.0, stats);
        if synth.is_empty() {
            continue;
        }
        if synth.f1 > opt + F1_EPS {
            opt = synth.f1;
            counts = synth.counts;
            options = vec![(guard, synth.groups)];
        } else if (synth.f1 - opt).abs() <= F1_EPS {
            options.push((guard, synth.groups));
        }
    }
    if options.is_empty() {
        None
    } else {
        Some(BranchSynthesis {
            options,
            f1: opt,
            counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_dsl::PageTree;

    fn example(html: &str, gold: &[&str]) -> Example {
        Example::new(
            PageTree::parse(html),
            gold.iter().map(|s| s.to_string()).collect(),
        )
    }

    fn students_examples() -> Vec<Example> {
        vec![
            example(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>\
                 <h2>Contact</h2><p>a@x.edu</p>",
                &["Jane Doe", "Bob Smith"],
            ),
            example(
                "<h1>B</h1><h2>Publications</h2><p>Some paper. PLDI 2020.</p>\
                 <h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>",
                &["Mary Anderson"],
            ),
        ]
    }

    fn ctx() -> QueryContext {
        QueryContext::new("Who are the current PhD students?", ["Students", "PhD"])
    }

    #[test]
    fn synthesizes_perfect_branch_for_students() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let pos = students_examples();
        let mut stats = SynthStats::default();
        let b = synthesize_branch(&cfg, &c, &pos, &[], &mut stats).expect("branch");
        assert!(b.f1 > 0.99, "expected F1≈1, got {}", b.f1);
        assert!(b.program_count() >= 1);
        // Sanity: a returned branch program really achieves that F1.
        let (g, gs) = &b.options[0];
        let prog = webqa_dsl::Program::single(g.clone(), gs[0].1[0].clone());
        let counts = crate::example::program_counts(&c, &pos, &prog);
        assert!((counts.f1() - b.f1).abs() < 1e-9);
    }

    #[test]
    fn joint_and_decomposed_agree_on_optimum() {
        let c = ctx();
        let pos = students_examples();
        let mut s1 = SynthStats::default();
        let mut s2 = SynthStats::default();
        let dec = synthesize_branch(&SynthConfig::fast(), &c, &pos, &[], &mut s1).unwrap();
        let joint = synthesize_branch(
            &SynthConfig::fast().without_decomposition(),
            &c,
            &pos,
            &[],
            &mut s2,
        )
        .unwrap();
        assert!((dec.f1 - joint.f1).abs() < 1e-9);
        // Decomposition shares extractor synthesis across guards: less work.
        assert!(s1.extractors_enumerated <= s2.extractors_enumerated);
        assert!(s1.memo_hits > 0);
    }

    #[test]
    fn lazy_and_eager_guard_enumeration_agree() {
        let c = ctx();
        let pos = students_examples();
        let mut s_lazy = SynthStats::default();
        let mut s_eager = SynthStats::default();
        let lazy = synthesize_branch(&SynthConfig::fast(), &c, &pos, &[], &mut s_lazy).unwrap();
        let eager = synthesize_branch(
            &SynthConfig::fast().without_lazy_guards(),
            &c,
            &pos,
            &[],
            &mut s_eager,
        )
        .unwrap();
        assert!(
            (lazy.f1 - eager.f1).abs() < 1e-9,
            "optimum must not depend on laziness"
        );
        assert!(
            s_lazy.work() <= s_eager.work(),
            "lazy enumeration must not do more work: {} vs {}",
            s_lazy.work(),
            s_eager.work()
        );
    }

    #[test]
    fn unseparable_examples_give_no_branch() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let page = "<h1>R</h1><p>x</p>";
        let pos = vec![example(page, &["x"])];
        let neg = vec![example(page, &[])];
        let mut stats = SynthStats::default();
        assert!(synthesize_branch(&cfg, &c, &pos, &neg, &mut stats).is_none());
    }

    #[test]
    fn branch_with_negatives_separates() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let pos = students_examples();
        let neg = vec![example(
            "<h1>C</h1><h2>Service</h2><p>PLDI '20 (PC)</p>",
            &[],
        )];
        let mut stats = SynthStats::default();
        let b = synthesize_branch(&cfg, &c, &pos, &neg, &mut stats).expect("branch");
        for (g, _) in &b.options {
            for n in &neg {
                assert!(
                    !g.eval(&c, &n.page).0,
                    "guard {g} must reject the negative page"
                );
            }
        }
    }
}
