//! Top-level `Synthesize` (Figure 7 of the paper): enumerate ordered
//! example partitions, synthesize optimal branch programs per block, and
//! return *all* programs achieving the optimal F₁.
//!
//! Partition blocks are independent (E⁺, E⁻) problems memoized by example
//! bitmask. With `SynthConfig::jobs > 1` the distinct block problems are
//! solved up-front on a scoped worker pool (the same pattern as
//! `webqa::Engine::run_batch`, one level down) and the partition
//! assembly then reads the finished results — the merge is performed in
//! first-encounter key order, so programs, counts, and F₁ are
//! byte-identical to the sequential run regardless of worker count.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use webqa_dsl::{Branch, Extractor, Guard, Program, QueryContext};
use webqa_metrics::Counts;

use crate::branch::{synthesize_branch, BranchSynthesis};
use crate::cancel::{CancelToken, Cancelled};
use crate::config::SynthConfig;
use crate::example::Example;
use crate::extractors::F1_EPS;
use crate::scorer::{PageFeatures, TaskCtx};
use crate::stats::SynthStats;

/// The result of [`synthesize`]: all optimal programs (capped), their
/// training F₁, and search statistics.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// Optimal programs, at most `config.max_programs` of them.
    pub programs: Vec<Program>,
    /// The optimal F₁ achieved on the training examples.
    pub f1: f64,
    /// Token counts of a representative optimal program.
    pub counts: Counts,
    /// Total number of optimal programs before capping.
    pub total_optimal: usize,
    /// Search statistics.
    pub stats: SynthStats,
}

/// Figure 7: synthesizes all WebQA programs with optimal F₁ on the
/// training examples.
///
/// Partitions of more than `config.max_blocks` blocks are not considered;
/// with `max_blocks ≥ |examples|` the search matches the paper exactly.
pub fn synthesize(cfg: &SynthConfig, ctx: &QueryContext, examples: &[Example]) -> SynthesisOutcome {
    synthesize_with_features(cfg, ctx, examples, &[])
}

/// [`synthesize`] with caller-supplied per-example feature tables
/// ([`PageFeatures`], aligned with `examples`; pass `&[]` — or tables
/// that fail the shape check — to have them computed here).
///
/// This is the table-build/search split behind cross-request
/// memoization: a long-lived `webqa::Engine` computes each page's table
/// once per `(page, query, config)` and hands it back for every repeat
/// query. The outcome is byte-identical either way — a table is a pure
/// function of its key, so borrowing one changes *work*, never results.
/// The shape check is the only internal validation: handing in a table
/// built for a different same-sized page or query is the caller's bug
/// (key stored tables by page content and query/config, as the engine
/// does).
pub fn synthesize_with_features(
    cfg: &SynthConfig,
    ctx: &QueryContext,
    examples: &[Example],
    features: &[Arc<PageFeatures>],
) -> SynthesisOutcome {
    synthesize_cancellable(cfg, ctx, examples, features, &CancelToken::never())
        .expect("a never-token cannot cancel")
}

/// [`synthesize_with_features`] under a cooperative [`CancelToken`].
///
/// The token is checkpointed once on entry and once per guard step of
/// every branch problem (including the branch-parallel workers), so a
/// trip — explicit cancel, deadline, or step budget — aborts the search
/// within one guard step per in-flight worker. A cancelled search
/// returns [`Err(Cancelled)`](Cancelled) and exposes **no** partial
/// outcome; a search that completes is byte-identical to one run without
/// a token (the token's counters are separate from [`SynthStats`]).
pub fn synthesize_cancellable(
    cfg: &SynthConfig,
    ctx: &QueryContext,
    examples: &[Example],
    features: &[Arc<PageFeatures>],
    cancel: &CancelToken,
) -> Result<SynthesisOutcome, Cancelled> {
    // Entry checkpoint: a pre-cancelled token aborts before the pools,
    // tables, or any branch problem are even built.
    if cancel.checkpoint() {
        return Err(Cancelled);
    }
    let mut stats = SynthStats::default();
    let n = examples.len();
    if n == 0 {
        return Ok(SynthesisOutcome {
            programs: Vec::new(),
            f1: 0.0,
            counts: Counts::default(),
            total_optimal: 0,
            stats,
        });
    }

    let task = TaskCtx::with_features_cancel(cfg, ctx, examples, features, cancel.clone());
    let partitions = ordered_partitions(n, cfg.max_blocks);

    // Branch problems are memoized by (positive set, negative set)
    // bitmask — different partitions share blocks heavily. Key order is
    // first encounter across the partition scan, which is what makes the
    // parallel solve's stats merge deterministic.
    let mut keys: Vec<(u32, u32)> = Vec::new();
    let mut key_index: HashMap<(u32, u32), usize> = HashMap::new();
    for partition in &partitions {
        for (i, block) in partition.iter().enumerate() {
            let pos_mask = mask_of(block);
            let mut neg_mask = 0u32;
            for later in &partition[i + 1..] {
                neg_mask |= mask_of(later);
            }
            key_index.entry((pos_mask, neg_mask)).or_insert_with(|| {
                keys.push((pos_mask, neg_mask));
                keys.len() - 1
            });
        }
    }

    let solve = |key: (u32, u32)| -> (Option<BranchSynthesis>, SynthStats) {
        let mut st = SynthStats::default();
        let pos = bits_of(key.0);
        // E⁻ = examples in later blocks of the partition (footnote 5).
        let neg = bits_of(key.1);
        let r = synthesize_branch(&task, &pos, &neg, &mut st);
        (r, st)
    };

    // `None` = not solved yet; `Some(None)` = solved, no separating guard.
    let mut solved: Vec<Option<Option<Arc<BranchSynthesis>>>> = vec![None; keys.len()];
    let jobs = cfg.jobs.clamp(1, keys.len().max(1));
    if jobs > 1 {
        // Solve every distinct block problem up-front on a scoped pool.
        // This can touch blocks the lazy sequential scan would have
        // skipped (blocks after a failing one in every containing
        // partition): their full search counters accumulate into the
        // stats, but the optimum and the program set cannot change.
        type Slot = Option<(Option<BranchSynthesis>, SynthStats)>;
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Slot>> = Mutex::new((0..keys.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&key) = keys.get(i) else { break };
                    // A tripped token drains the queue without solving:
                    // the whole search is abandoned below.
                    if cancel.is_cancelled() {
                        break;
                    }
                    let result = solve(key);
                    slots.lock().expect("no poisoned workers")[i] = Some(result);
                });
            }
        });
        // Deterministic merge: stats accumulate in key order. Unclaimed
        // slots only exist after a cancel, which discards everything.
        for (i, slot) in slots
            .into_inner()
            .expect("workers joined")
            .into_iter()
            .enumerate()
        {
            let Some((r, st)) = slot else { continue };
            stats += st;
            solved[i] = Some(r.map(Arc::new));
        }
    }

    let mut best_f1 = -1.0f64;
    let mut best_counts = Counts::default();
    // Each optimal partition contributes a list of per-block option sets.
    let mut best_partitions: Vec<Vec<Arc<BranchSynthesis>>> = Vec::new();
    // Whether a key has been looked up during assembly before (memo-hit
    // accounting identical to the lazy path).
    let mut touched = vec![false; keys.len()];

    for partition in &partitions {
        if cancel.is_cancelled() {
            return Err(Cancelled);
        }
        let mut blocks: Vec<Arc<BranchSynthesis>> = Vec::new();
        let mut ok = true;
        for (i, block) in partition.iter().enumerate() {
            let pos_mask = mask_of(block);
            let mut neg_mask = 0u32;
            for later in &partition[i + 1..] {
                neg_mask |= mask_of(later);
            }
            let ki = key_index[&(pos_mask, neg_mask)];
            let entry: Option<Arc<BranchSynthesis>> = match &solved[ki] {
                Some(cached) => {
                    if touched[ki] {
                        stats.memo_hits += 1;
                    }
                    cached.clone()
                }
                None => {
                    let (r, st) = solve((pos_mask, neg_mask));
                    stats += st;
                    let r = r.map(Arc::new);
                    solved[ki] = Some(r.clone());
                    r
                }
            };
            touched[ki] = true;
            match entry {
                Some(b) => blocks.push(b),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let (f1, part_counts) = partition_best(&blocks);
        if f1 > best_f1 + F1_EPS {
            best_f1 = f1;
            best_counts = part_counts;
            best_partitions = vec![blocks];
        } else if (f1 - best_f1).abs() <= F1_EPS {
            best_partitions.push(blocks);
        }
    }

    // A trip during the last partition's solve leaves no later loop head
    // to notice it — re-check before exposing any outcome built from
    // aborted branch problems.
    if cancel.is_cancelled() {
        return Err(Cancelled);
    }

    if best_f1 < 0.0 {
        return Ok(SynthesisOutcome {
            programs: Vec::new(),
            f1: 0.0,
            counts: Counts::default(),
            total_optimal: 0,
            stats,
        });
    }

    let (programs, total) = materialize(&best_partitions, cfg.max_programs, best_f1);
    Ok(SynthesisOutcome {
        programs,
        f1: best_f1,
        counts: best_counts,
        total_optimal: total,
        stats,
    })
}

/// The micro-averaged F₁ of a multi-branch program is a function of the
/// *sum* of per-branch token counts, and branches tied on F₁ can have
/// different counts — so a partition's achievable optimum is the best F₁
/// over all combinations of per-block count groups, computed here by
/// folding the achievable-sum set across blocks.
fn partition_best(blocks: &[Arc<BranchSynthesis>]) -> (f64, Counts) {
    let mut sums: HashSet<Counts> = HashSet::new();
    sums.insert(Counts::default());
    for b in blocks {
        let choices = b.distinct_counts();
        let mut next = HashSet::with_capacity(sums.len() * choices.len());
        for s in &sums {
            for c in &choices {
                next.insert(*s + *c);
            }
        }
        sums = next;
    }
    sums.into_iter()
        .map(|c| (c.f1(), c))
        .fold(
            (-1.0, Counts::default()),
            |acc, x| if x.0 > acc.0 { x } else { acc },
        )
}

fn mask_of(block: &[usize]) -> u32 {
    block.iter().fold(0u32, |m, &i| m | (1 << i))
}

fn bits_of(mask: u32) -> Vec<usize> {
    (0..32).filter(|i| mask & (1 << i) != 0).collect()
}

/// All ordered partitions of `{0..n}` into at most `max_blocks` non-empty
/// blocks (the `Partitions(E)` of Figure 7; order matters because guards
/// are tried in sequence).
pub(crate) fn ordered_partitions(n: usize, max_blocks: usize) -> Vec<Vec<Vec<usize>>> {
    assert!(n > 0, "need at least one example");
    // For large n the Fubini numbers explode; fall back to the single
    // partition, which the paper's tasks (≤5 labels) never hit.
    if n > 8 {
        return vec![vec![(0..n).collect()]];
    }
    let max_k = max_blocks.clamp(1, n);
    let mut out = Vec::new();
    for k in 1..=max_k {
        // Enumerate assignments f: [n] -> [k], keep surjections.
        let total = (k as u64).pow(n as u32);
        for code in 0..total {
            let mut assign = vec![0usize; n];
            let mut c = code;
            for slot in assign.iter_mut() {
                *slot = (c % k as u64) as usize;
                c /= k as u64;
            }
            let mut blocks: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (i, &b) in assign.iter().enumerate() {
                blocks[b].push(i);
            }
            if blocks.iter().all(|b| !b.is_empty()) {
                out.push(blocks);
            }
        }
    }
    out
}

/// Expands per-partition branch options into concrete programs, capped.
/// Returns the (possibly truncated) programs and the true total count of
/// optimal programs.
///
/// Branches tied on per-block F₁ can carry different token-count vectors,
/// and only cross-block combinations whose *summed* counts achieve
/// `best_f1` are optimal whole programs — all others are filtered out
/// here, and the exact total is computed by a count-vector convolution
/// rather than a plain cartesian product.
///
/// When a partition's qualifying product exceeds its share of the cap, the
/// sample is drawn *diversely*: block options are interleaved round-robin
/// across guards, and product indices are visited in a deterministic
/// hash-scattered order — so the capped set reflects the variety of the
/// optimal space rather than the first guard's extractor variants (the
/// transductive ensemble is sampled from this set, Section 6).
fn materialize(
    partitions: &[Vec<Arc<BranchSynthesis>>],
    cap: usize,
    best_f1: f64,
) -> (Vec<Program>, usize) {
    let mut programs: Vec<Program> = Vec::new();
    let mut seen: HashSet<Program> = HashSet::new();
    let mut total: usize = 0;
    let per_partition_cap = cap.div_ceil(partitions.len().max(1));
    for blocks in partitions {
        // Flatten each block's (guard, extractors) map into (guard,
        // extractor, counts) triples, round-robin across guards so a
        // prefix of the list spans many guards.
        let pairs_per_block: Vec<Vec<(&Guard, &Extractor, Counts)>> = blocks
            .iter()
            .map(|b| {
                let mut pairs = Vec::new();
                let max_len = b
                    .options
                    .iter()
                    .map(|(_, gs)| gs.groups.iter().map(|(_, es)| es.len()).max().unwrap_or(0))
                    .max()
                    .unwrap_or(0);
                for i in 0..max_len {
                    for (g, gs) in &b.options {
                        for (c, es) in &gs.groups {
                            if let Some(e) = es.get(i) {
                                pairs.push((g, e, *c));
                            }
                        }
                    }
                }
                pairs
            })
            .collect();
        let block_sizes: Vec<usize> = pairs_per_block.iter().map(Vec::len).collect();
        let product: u128 = block_sizes.iter().map(|&s| s as u128).product();

        // Exact count of optimal combinations: convolve per-block
        // multiplicity maps (counts → #pairs) across blocks, then sum the
        // multiplicities of summed counts achieving best_f1.
        let mut conv: HashMap<Counts, u128> = HashMap::new();
        conv.insert(Counts::default(), 1);
        for pairs in &pairs_per_block {
            let mut block_counts: HashMap<Counts, u128> = HashMap::new();
            for (_, _, c) in pairs {
                *block_counts.entry(*c).or_insert(0) += 1;
            }
            let mut next: HashMap<Counts, u128> = HashMap::new();
            for (s, m) in &conv {
                for (c, k) in &block_counts {
                    *next.entry(*s + *c).or_insert(0) += m.saturating_mul(*k);
                }
            }
            conv = next;
        }
        let qualifying: u128 = conv
            .iter()
            .filter(|(c, _)| (c.f1() - best_f1).abs() <= F1_EPS)
            .map(|(_, m)| *m)
            .sum();
        total = total.saturating_add(qualifying.min(usize::MAX as u128) as usize);

        let want = per_partition_cap.min(cap.saturating_sub(programs.len()));
        // Emits the combination at `code` iff its summed counts achieve
        // the global optimum; returns true when a new program was added.
        let emit = |code: u128, programs: &mut Vec<Program>, seen: &mut HashSet<Program>| -> bool {
            let mut c = code;
            let mut sum = Counts::default();
            let branches: Vec<Branch> = block_sizes
                .iter()
                .zip(&pairs_per_block)
                .map(|(&size, pairs)| {
                    let i = (c % size as u128) as usize;
                    c /= size as u128;
                    let (g, e, counts) = &pairs[i];
                    sum += *counts;
                    Branch::new((*g).clone(), (*e).clone())
                })
                .collect();
            if (sum.f1() - best_f1).abs() > F1_EPS {
                return false;
            }
            let p = Program::new(branches);
            if seen.insert(p.clone()) {
                programs.push(p);
                true
            } else {
                false
            }
        };
        if product <= (want as u128).saturating_mul(64).max(65_536) {
            // Small enough to scan exhaustively, filtering as we go.
            for code in 0..product {
                if programs.len() >= cap {
                    break;
                }
                emit(code, &mut programs, &mut seen);
            }
        } else {
            // Deterministic scattered sampling without replacement (best
            // effort: duplicates and non-qualifying combos skipped,
            // bounded attempts).
            let mut attempts = 0u64;
            let mut produced = 0usize;
            let max_attempts = (want as u64).saturating_mul(64).max(4096);
            let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
            while produced < want && attempts < max_attempts {
                state = state
                    .wrapping_mul(0xD120_0000_0000_0001u64 | 1)
                    .wrapping_add(0x2545_F491_4F6C_DD1D);
                let code = (state as u128).wrapping_mul(0x9E37_79B9u128) % product;
                if emit(code, &mut programs, &mut seen) {
                    produced += 1;
                }
                attempts += 1;
            }
            if produced == 0 {
                // Sampling can miss sparse qualifying sets; fall back to a
                // bounded sequential scan so at least one optimal program
                // is always returned.
                let scan = product.min(1 << 20);
                for code in 0..scan {
                    if emit(code, &mut programs, &mut seen) {
                        break;
                    }
                }
            }
        }
        if programs.len() >= cap {
            break;
        }
    }
    (programs, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_dsl::PageTree;

    fn example(html: &str, gold: &[&str]) -> Example {
        Example::new(
            PageTree::parse(html),
            gold.iter().map(|s| s.to_string()).collect(),
        )
    }

    fn ctx() -> QueryContext {
        QueryContext::new("Who are the current PhD students?", ["Students", "PhD"])
    }

    #[test]
    fn ordered_partition_counts_are_fubini() {
        // Fubini numbers: a(1)=1, a(2)=3, a(3)=13, a(4)=75.
        assert_eq!(ordered_partitions(1, 5).len(), 1);
        assert_eq!(ordered_partitions(2, 5).len(), 3);
        assert_eq!(ordered_partitions(3, 5).len(), 13);
        assert_eq!(ordered_partitions(4, 5).len(), 75);
        // Capped block count: partitions into at most 1 block.
        assert_eq!(ordered_partitions(4, 1).len(), 1);
    }

    #[test]
    fn partitions_cover_all_examples_exactly_once() {
        for p in ordered_partitions(4, 3) {
            let mut all: Vec<usize> = p.concat();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn synthesizes_single_branch_program() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let examples = vec![
            example(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>",
                &["Jane Doe", "Bob Smith"],
            ),
            example(
                "<h1>B</h1><h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>",
                &["Mary Anderson"],
            ),
        ];
        let out = synthesize(&cfg, &c, &examples);
        assert!(out.f1 > 0.99, "got {}", out.f1);
        assert!(!out.programs.is_empty());
        assert!(out.total_optimal >= out.programs.len());
        // Every returned program must actually achieve the reported F1.
        for p in out.programs.iter().take(20) {
            let counts = crate::example::program_counts(&c, &examples, p);
            assert!(
                (counts.f1() - out.f1).abs() < 1e-6,
                "program {p} scores {} ≠ {}",
                counts.f1(),
                out.f1
            );
        }
    }

    #[test]
    fn multi_branch_partition_handles_schema_split() {
        // Two page schemas: students under "Students" on page A, but page
        // B keeps them under "Group" with no keyword match; a two-branch
        // program can specialize.
        let mut cfg = SynthConfig::fast();
        cfg.max_blocks = 2;
        let c = ctx();
        let examples = vec![
            example(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
                &["Jane Doe"],
            ),
            example(
                "<h1>B</h1><h2>Group</h2><ul><li>Mary Anderson</li></ul><h2>Students</h2><p>none currently</p>",
                &["Mary Anderson"],
            ),
        ];
        let out = synthesize(&cfg, &c, &examples);
        assert!(out.f1 > 0.5, "got {}", out.f1);
    }

    #[test]
    fn empty_examples_yield_empty_outcome() {
        let out = synthesize(&SynthConfig::fast(), &ctx(), &[]);
        assert!(out.programs.is_empty());
        assert_eq!(out.total_optimal, 0);
    }

    #[test]
    fn program_cap_respected() {
        let mut cfg = SynthConfig::fast();
        cfg.max_programs = 3;
        let c = ctx();
        let examples = vec![example(
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
            &["Jane Doe"],
        )];
        let out = synthesize(&cfg, &c, &examples);
        assert!(out.programs.len() <= 3);
        assert!(out.total_optimal >= out.programs.len());
    }

    #[test]
    fn noprune_finds_same_optimum() {
        let c = ctx();
        let examples = vec![example(
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul><h2>News</h2><p>hi</p>",
            &["Jane Doe"],
        )];
        let with = synthesize(&SynthConfig::fast(), &c, &examples);
        let without = synthesize(&SynthConfig::fast().without_pruning(), &c, &examples);
        assert!((with.f1 - without.f1).abs() < 1e-9);
        assert!(
            with.stats.work() <= without.stats.work(),
            "pruning must not increase work: {} vs {}",
            with.stats.work(),
            without.stats.work()
        );
    }

    #[test]
    fn borrowed_feature_tables_do_not_change_the_outcome() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let examples = vec![
            example(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>",
                &["Jane Doe", "Bob Smith"],
            ),
            example(
                "<h1>B</h1><h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>",
                &["Mary Anderson"],
            ),
        ];
        let fresh = synthesize(&cfg, &c, &examples);
        let tables: Vec<Arc<PageFeatures>> = examples
            .iter()
            .map(|ex| Arc::new(PageFeatures::compute(&cfg, &c, &ex.page)))
            .collect();
        let borrowed = synthesize_with_features(&cfg, &c, &examples, &tables);
        assert_eq!(borrowed.programs, fresh.programs);
        assert_eq!(borrowed.f1, fresh.f1);
        assert_eq!(borrowed.counts, fresh.counts);
        assert_eq!(borrowed.stats, fresh.stats);

        // A table with the wrong shape is rejected and recomputed, not
        // read: same outcome even when handed garbage-shaped tables.
        let wrong = vec![Arc::new(PageFeatures::compute(
            &cfg,
            &c,
            &PageTree::parse("<p>unrelated</p>"),
        ))];
        let recovered = synthesize_with_features(&cfg, &c, &examples, &wrong);
        assert_eq!(recovered.programs, fresh.programs);
        assert_eq!(recovered.stats, fresh.stats);
    }

    #[test]
    fn parallel_block_solving_is_deterministic() {
        let c = ctx();
        let mut cfg = SynthConfig::fast();
        cfg.max_blocks = 2;
        let examples = vec![
            example(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
                &["Jane Doe"],
            ),
            example(
                "<h1>B</h1><h2>Group</h2><ul><li>Mary Anderson</li></ul>",
                &["Mary Anderson"],
            ),
            example(
                "<h1>C</h1><h2>PhD Students</h2><ul><li>Wei Chen</li></ul>",
                &["Wei Chen"],
            ),
        ];
        let sequential = synthesize(&cfg, &c, &examples);
        for jobs in [2, 4] {
            let mut pcfg = cfg.clone();
            pcfg.jobs = jobs;
            let parallel = synthesize(&pcfg, &c, &examples);
            assert_eq!(parallel.programs, sequential.programs, "jobs={jobs}");
            assert_eq!(parallel.f1, sequential.f1, "jobs={jobs}");
            assert_eq!(parallel.counts, sequential.counts, "jobs={jobs}");
            assert_eq!(
                parallel.total_optimal, sequential.total_optimal,
                "jobs={jobs}"
            );
        }
    }
}
