//! Training examples and F₁ scoring of DSL terms against them.
//!
//! An [`Example`] eagerly precomputes the gold token bag and the subtree
//! token bag of every page node, so that the `UB(ν, E)` ceiling of Eq. 3
//! is a cheap multiset intersection instead of repeated tokenization —
//! guard enumeration queries it thousands of times per task.

use std::collections::HashMap;
use std::sync::Arc;

use webqa_dsl::{Extractor, Locator, PageNodeId, PageTree, Program, QueryContext};
use webqa_metrics::{tokenize, tokenize_all, Counts, Token};

/// One labeled webpage: the parsed page plus the gold extraction strings.
///
/// The page is held behind an [`Arc`] so that examples built from a shared
/// page store (`webqa::PageStore`) alias the interned trees instead of
/// deep-cloning them — cloning an `Example` (which the partition search
/// does per memoized block) only bumps the refcount.
#[derive(Debug, Clone)]
pub struct Example {
    /// The page tree (shared, never deep-cloned by the synthesizer).
    pub page: Arc<PageTree>,
    /// Gold extraction strings.
    pub gold: Vec<String>,
    gold_tokens: Vec<Token>,
    gold_counts: HashMap<Token, usize>,
    /// Subtree token bag per node (indexed by `PageNodeId`).
    subtree_tokens: Vec<Vec<Token>>,
}

impl Example {
    /// Creates an example, pre-tokenizing the gold labels and every node's
    /// subtree text. Accepts an owned [`PageTree`] (wrapped on the spot)
    /// or an already-shared `Arc<PageTree>` handle.
    pub fn new(page: impl Into<Arc<PageTree>>, gold: Vec<String>) -> Self {
        let page = page.into();
        let gold_tokens = tokenize_all(&gold);
        let mut gold_counts: HashMap<Token, usize> = HashMap::new();
        for t in &gold_tokens {
            *gold_counts.entry(t.clone()).or_insert(0) += 1;
        }
        let subtree_tokens = page
            .iter()
            .map(|n| tokenize(&page.subtree_text(n)))
            .collect();
        Example {
            page,
            gold,
            gold_tokens,
            gold_counts,
            subtree_tokens,
        }
    }

    /// The gold token bag.
    pub fn gold_tokens(&self) -> &[Token] {
        &self.gold_tokens
    }

    /// Token-overlap counts of a predicted string set against this
    /// example's gold.
    pub fn counts_for(&self, predicted: &[String]) -> Counts {
        Counts::from_bags(&tokenize_all(predicted), &self.gold_tokens)
    }

    /// Counts with *maximal possible recall* for a set of located nodes:
    /// every token in the subtree text of the (covering) nodes is treated
    /// as predicted. This is the `Recall(ν, E)` of Eq. 3 — sound for any
    /// extractor running below the locator because extractors only ever
    /// see located-node text.
    pub fn ceiling_counts(&self, nodes: &[PageNodeId]) -> Counts {
        let cover = covering_set(&self.page, nodes);
        let mut remaining = self.gold_counts.clone();
        let mut matched = 0usize;
        let mut predicted = 0usize;
        for n in cover {
            for t in &self.subtree_tokens[n.index()] {
                predicted += 1;
                if let Some(c) = remaining.get_mut(t) {
                    if *c > 0 {
                        *c -= 1;
                        matched += 1;
                    }
                }
            }
        }
        Counts {
            matched,
            predicted,
            gold: self.gold_tokens.len(),
        }
    }

    /// [`Example::ceiling_counts`] for the nodes a locator selects.
    pub fn locator_ceiling(&self, ctx: &QueryContext, locator: &Locator) -> Counts {
        self.ceiling_counts(&locator.eval(ctx, &self.page))
    }
}

/// Removes nodes that are descendants of other nodes in the set, so
/// subtree texts are not double counted.
fn covering_set(page: &PageTree, nodes: &[PageNodeId]) -> Vec<PageNodeId> {
    let set: std::collections::HashSet<PageNodeId> = nodes.iter().copied().collect();
    nodes
        .iter()
        .copied()
        .filter(|&n| {
            let mut cur = page.node(n).parent;
            while let Some(p) = cur {
                if set.contains(&p) {
                    return false;
                }
                cur = page.node(p).parent;
            }
            true
        })
        .collect()
}

/// Micro-averaged F₁ of an extractor over propagated examples (the
/// `F1(e, E)` of Figure 9). `outputs[i]` is the extractor output on
/// example `i`.
pub fn f1_of_outputs(examples: &[Example], outputs: &[Vec<String>]) -> f64 {
    counts_of_outputs(examples, outputs).f1()
}

/// Summed token-overlap counts of per-example outputs.
pub fn counts_of_outputs(examples: &[Example], outputs: &[Vec<String>]) -> Counts {
    examples
        .iter()
        .zip(outputs)
        .map(|(ex, out)| ex.counts_for(out))
        .sum()
}

/// Evaluates a full program on a set of examples (micro-averaged counts).
pub fn program_counts(ctx: &QueryContext, examples: &[Example], program: &Program) -> Counts {
    examples
        .iter()
        .map(|ex| ex.counts_for(&program.eval(ctx, &ex.page)))
        .sum()
}

/// Evaluates an extractor on the nodes located per example.
pub fn extractor_outputs(
    ctx: &QueryContext,
    examples: &[Example],
    nodes_per_example: &[Vec<PageNodeId>],
    extractor: &Extractor,
) -> Vec<Vec<String>> {
    examples
        .iter()
        .zip(nodes_per_example)
        .map(|(ex, nodes)| extractor.eval(ctx, &ex.page, nodes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_dsl::NodeFilter;

    fn page() -> PageTree {
        PageTree::parse(
            "<h1>R</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>\
             <h2>Other</h2><p>noise text</p>",
        )
    }

    fn ctx() -> QueryContext {
        QueryContext::new("", ["Students"])
    }

    #[test]
    fn counts_against_gold() {
        let ex = Example::new(page(), vec!["Jane Doe".into(), "Bob Smith".into()]);
        let c = ex.counts_for(&["Jane Doe".to_string()]);
        assert_eq!(c.matched, 2);
        assert_eq!(c.gold, 4);
    }

    #[test]
    fn locator_ceiling_root_covers_everything() {
        let ex = Example::new(page(), vec!["Jane Doe".into()]);
        let c = ex.locator_ceiling(&ctx(), &Locator::Root);
        // All gold tokens are on the page, so recall ceiling is 1.
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn locator_ceiling_narrow_section() {
        let ex = Example::new(page(), vec!["Jane Doe".into(), "Bob Smith".into()]);
        // Locate only the "Other" section: none of the gold is under it.
        let other = Locator::Children(
            Box::new(Locator::Root),
            NodeFilter::MatchText {
                pred: webqa_dsl::NlpPred::MatchKeyword(webqa_dsl::Threshold::new(0.9)),
                subtree: false,
            },
        );
        let ctx = QueryContext::new("", ["Other"]);
        let c = ex.locator_ceiling(&ctx, &other);
        assert_eq!(c.recall(), 0.0);
    }

    #[test]
    fn covering_set_drops_nested_nodes() {
        let p = page();
        let root = p.root();
        let all: Vec<PageNodeId> = std::iter::once(root).chain(p.descendants(root)).collect();
        let cover = covering_set(&p, &all);
        assert_eq!(cover, vec![root]);
    }

    #[test]
    fn ceiling_does_not_double_count_overlapping_subtrees() {
        let ex = Example::new(page(), vec!["Jane Doe".into()]);
        let everything = Locator::Descendants(Box::new(Locator::Root), NodeFilter::True);
        let c = ex.locator_ceiling(&ctx(), &everything);
        // "jane" appears once on the page; predicted count must not blow up
        // beyond the page's own token count even though every node was
        // located.
        let page_tokens = tokenize(&ex.page.subtree_text(ex.page.root())).len();
        assert!(c.predicted <= page_tokens);
    }

    #[test]
    fn ceiling_counts_matches_slow_path() {
        let ex = Example::new(page(), vec!["Jane Doe".into(), "noise".into()]);
        let ctx = ctx();
        for loc in [
            Locator::Root,
            Locator::leaves(Locator::Root),
            Locator::Children(Box::new(Locator::Root), NodeFilter::True),
        ] {
            let nodes = loc.eval(&ctx, &ex.page);
            let fast = ex.ceiling_counts(&nodes);
            // Slow path: re-tokenize subtree text of the covering set.
            let cover = covering_set(&ex.page, &nodes);
            let mut toks = Vec::new();
            for n in cover {
                toks.extend(tokenize(&ex.page.subtree_text(n)));
            }
            let slow = Counts::from_bags(&toks, ex.gold_tokens());
            assert_eq!(fast, slow, "locator {loc}");
        }
    }

    #[test]
    fn f1_of_outputs_micro_averages() {
        let ex1 = Example::new(page(), vec!["Jane Doe".into()]);
        let ex2 = Example::new(page(), vec!["Bob Smith".into()]);
        let outs = vec![vec!["Jane Doe".to_string()], vec!["wrong".to_string()]];
        let f1 = f1_of_outputs(&[ex1, ex2], &outs);
        assert!(f1 > 0.0 && f1 < 1.0);
    }
}
