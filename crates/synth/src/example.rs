//! Training examples and F₁ scoring of DSL terms against them.
//!
//! An [`Example`] eagerly precomputes the gold token bag and the subtree
//! token bag of every page node, so that the `UB(ν, E)` ceiling of Eq. 3
//! is a cheap multiset intersection instead of repeated tokenization —
//! guard enumeration queries it thousands of times per task.
//!
//! Two ceiling kernels coexist:
//!
//! * [`Example::ceiling_counts`] — the hot path. Gold tokens get dense
//!   ids at construction; every node stores only the dense ids of its
//!   subtree tokens that occur in the gold (plus a total token count),
//!   and the pre-order subtree ranges turn covering-set computation into
//!   a single scan of the sorted node list. A ceiling is then a handful
//!   of array decrements — no hashing, no `HashMap` clone.
//! * [`Example::ceiling_counts_reference`] — the original definitional
//!   computation (explicit covering set + token-keyed `HashMap`), kept as
//!   the `SynthConfig::reference()` slow path and as the test oracle for
//!   the fast kernel.

use std::collections::HashMap;
use std::sync::Arc;

use webqa_dsl::{Extractor, Locator, PageNodeId, PageTree, Program, QueryContext};
use webqa_metrics::{tokenize, tokenize_all, Counts, SmallVec, Token};

/// One labeled webpage: the parsed page plus the gold extraction strings.
///
/// The page is held behind an [`Arc`] so that examples built from a shared
/// page store (`webqa::PageStore`) alias the interned trees instead of
/// deep-cloning them — cloning an `Example` (which the partition search
/// does per memoized block) only bumps the refcount.
#[derive(Debug, Clone)]
pub struct Example {
    /// The page tree (shared, never deep-cloned by the synthesizer).
    pub page: Arc<PageTree>,
    /// Gold extraction strings.
    pub gold: Vec<String>,
    gold_tokens: Vec<Token>,
    gold_counts: HashMap<Token, usize>,
    /// Subtree token bag per node (indexed by `PageNodeId`); reference
    /// ceiling path and diagnostics.
    subtree_tokens: Vec<Vec<Token>>,
    /// Multiplicity per dense gold-token id (fast ceiling kernel).
    gold_distinct: Vec<u32>,
    /// Per node: dense gold ids of the subtree tokens that occur in the
    /// gold bag (with multiplicity; non-gold tokens are dropped).
    node_gold_hits: Vec<Vec<u16>>,
    /// Per node: total subtree token count (gold-relevant or not).
    node_token_count: Vec<u32>,
    /// Per node: exclusive end of its pre-order subtree range — node `i`'s
    /// subtree is exactly the ids `i..subtree_end[i]`.
    subtree_end: Vec<usize>,
}

impl Example {
    /// Creates an example, pre-tokenizing the gold labels and every node's
    /// subtree text. Accepts an owned [`PageTree`] (wrapped on the spot)
    /// or an already-shared `Arc<PageTree>` handle.
    pub fn new(page: impl Into<Arc<PageTree>>, gold: Vec<String>) -> Self {
        let page = page.into();
        let gold_tokens = tokenize_all(&gold);
        let mut gold_counts: HashMap<Token, usize> = HashMap::new();
        for t in &gold_tokens {
            *gold_counts.entry(t.clone()).or_insert(0) += 1;
        }
        let subtree_tokens: Vec<Vec<Token>> = page
            .iter()
            .map(|n| tokenize(&page.subtree_text(n)))
            .collect();

        // Dense gold ids, in first-occurrence order. u16 bounds the
        // per-node hit lists; a gold bag past that is not a scoring
        // problem this kernel supports silently.
        assert!(
            gold_counts.len() <= usize::from(u16::MAX),
            "gold bag has {} distinct tokens; the dense ceiling kernel supports at most {}",
            gold_counts.len(),
            u16::MAX
        );
        let mut dense: HashMap<&Token, u16> = HashMap::new();
        let mut gold_distinct: Vec<u32> = Vec::new();
        for t in &gold_tokens {
            match dense.get(t) {
                Some(&id) => gold_distinct[id as usize] += 1,
                None => {
                    let id = gold_distinct.len() as u16;
                    dense.insert(t, id);
                    gold_distinct.push(1);
                }
            }
        }
        let node_gold_hits: Vec<Vec<u16>> = subtree_tokens
            .iter()
            .map(|toks| toks.iter().filter_map(|t| dense.get(t).copied()).collect())
            .collect();
        let node_token_count: Vec<u32> = subtree_tokens.iter().map(|t| t.len() as u32).collect();

        // Pre-order subtree ranges: children ids are contiguous after the
        // parent, so end[i] = end of the last child (or i + 1 for leaves).
        let mut subtree_end = vec![0usize; page.len()];
        for i in (0..page.len()).rev() {
            let children = page.children(PageNodeId(i));
            subtree_end[i] = match children.last() {
                Some(last) => subtree_end[last.index()],
                None => i + 1,
            };
        }

        Example {
            page,
            gold,
            gold_tokens,
            gold_counts,
            subtree_tokens,
            gold_distinct,
            node_gold_hits,
            node_token_count,
            subtree_end,
        }
    }

    /// The gold token bag.
    pub fn gold_tokens(&self) -> &[Token] {
        &self.gold_tokens
    }

    /// Token-overlap counts of a predicted string set against this
    /// example's gold.
    pub fn counts_for(&self, predicted: &[String]) -> Counts {
        Counts::from_bags(&tokenize_all(predicted), &self.gold_tokens)
    }

    /// Counts with *maximal possible recall* for a set of located nodes:
    /// every token in the subtree text of the (covering) nodes is treated
    /// as predicted. This is the `Recall(ν, E)` of Eq. 3 — sound for any
    /// extractor running below the locator because extractors only ever
    /// see located-node text.
    ///
    /// Runs on the dense-id kernel; agrees with
    /// [`ceiling_counts_reference`](Example::ceiling_counts_reference) on
    /// every input (tested, and proven end-to-end by the parity suite).
    pub fn ceiling_counts(&self, nodes: &[PageNodeId]) -> Counts {
        let mut remaining: SmallVec<u32, 32> = self.gold_distinct.iter().copied().collect();
        if nodes.windows(2).all(|w| w[0] <= w[1]) {
            // Hot path: locator evaluation always yields sorted, deduped
            // node lists; read them in place.
            self.ceiling_sorted(nodes.iter().map(|n| n.index()), remaining.as_mut_slice())
        } else {
            let mut sorted: Vec<usize> = nodes.iter().map(|n| n.index()).collect();
            sorted.sort_unstable();
            self.ceiling_sorted(sorted.into_iter(), remaining.as_mut_slice())
        }
    }

    fn ceiling_sorted(&self, nodes: impl Iterator<Item = usize>, remaining: &mut [u32]) -> Counts {
        let mut matched = 0usize;
        let mut predicted = 0usize;
        let mut cover_end = 0usize;
        let mut last_kept = usize::MAX;
        for i in nodes {
            if i < cover_end && i != last_kept {
                // Inside the subtree of an already-kept *other* node: the
                // covering-set rule drops it so its text is not counted
                // twice. A repeat of the kept node itself is NOT dropped —
                // the covering set only removes strict descendants, so
                // duplicates of a surviving node count again (matching
                // the reference kernel exactly).
                continue;
            }
            if i != last_kept {
                cover_end = self.subtree_end[i];
                last_kept = i;
            }
            predicted += self.node_token_count[i] as usize;
            for &d in &self.node_gold_hits[i] {
                let slot = d as usize;
                if remaining[slot] > 0 {
                    remaining[slot] -= 1;
                    matched += 1;
                }
            }
        }
        Counts {
            matched,
            predicted,
            gold: self.gold_tokens.len(),
        }
    }

    /// The original (pre-overhaul) ceiling computation: explicit covering
    /// set plus a cloned token-keyed `HashMap`. This is the
    /// `SynthConfig::reference()` kernel and the ground truth
    /// [`ceiling_counts`](Example::ceiling_counts) is tested against.
    pub fn ceiling_counts_reference(&self, nodes: &[PageNodeId]) -> Counts {
        let cover = covering_set(&self.page, nodes);
        let mut remaining = self.gold_counts.clone();
        let mut matched = 0usize;
        let mut predicted = 0usize;
        for n in cover {
            for t in &self.subtree_tokens[n.index()] {
                predicted += 1;
                if let Some(c) = remaining.get_mut(t) {
                    if *c > 0 {
                        *c -= 1;
                        matched += 1;
                    }
                }
            }
        }
        Counts {
            matched,
            predicted,
            gold: self.gold_tokens.len(),
        }
    }

    /// [`Example::ceiling_counts`] for the nodes a locator selects.
    pub fn locator_ceiling(&self, ctx: &QueryContext, locator: &Locator) -> Counts {
        self.ceiling_counts(&locator.eval(ctx, &self.page))
    }

    /// Exclusive end of node `n`'s pre-order subtree range: the ids
    /// `n.index() + 1 .. subtree_end_of(n)` are exactly `n`'s proper
    /// descendants, in document order.
    pub(crate) fn subtree_end_of(&self, n: PageNodeId) -> usize {
        self.subtree_end[n.index()]
    }
}

/// Removes nodes that are descendants of other nodes in the set, so
/// subtree texts are not double counted (reference kernel).
fn covering_set(page: &PageTree, nodes: &[PageNodeId]) -> Vec<PageNodeId> {
    let set: std::collections::HashSet<PageNodeId> = nodes.iter().copied().collect();
    nodes
        .iter()
        .copied()
        .filter(|&n| {
            let mut cur = page.node(n).parent;
            while let Some(p) = cur {
                if set.contains(&p) {
                    return false;
                }
                cur = page.node(p).parent;
            }
            true
        })
        .collect()
}

/// Micro-averaged F₁ of an extractor over propagated examples (the
/// `F1(e, E)` of Figure 9). `outputs[i]` is the extractor output on
/// example `i`.
pub fn f1_of_outputs(examples: &[Example], outputs: &[Vec<String>]) -> f64 {
    counts_of_outputs(examples, outputs).f1()
}

/// Summed token-overlap counts of per-example outputs.
pub fn counts_of_outputs(examples: &[Example], outputs: &[Vec<String>]) -> Counts {
    examples
        .iter()
        .zip(outputs)
        .map(|(ex, out)| ex.counts_for(out))
        .sum()
}

/// Reference-kernel scoring used by `SynthConfig::reference()`: the exact
/// pre-overhaul string path (tokenize every output, hash against the gold
/// bag), optionally applying the program-level set semantics first.
pub(crate) fn counts_of_outputs_ref<S: AsRef<str>>(
    examples: &[&Example],
    outputs: &[Vec<S>],
    dedup: bool,
) -> Counts {
    examples
        .iter()
        .zip(outputs)
        .map(|(ex, out)| {
            if dedup {
                let mut seen = std::collections::HashSet::new();
                let strings: Vec<&str> = out
                    .iter()
                    .map(AsRef::as_ref)
                    .filter(|s| seen.insert(*s))
                    .collect();
                Counts::from_bags(&tokenize_all(&strings), ex.gold_tokens())
            } else {
                let strings: Vec<&str> = out.iter().map(AsRef::as_ref).collect();
                Counts::from_bags(&tokenize_all(&strings), ex.gold_tokens())
            }
        })
        .sum()
}

/// Evaluates a full program on a set of examples (micro-averaged counts).
pub fn program_counts(ctx: &QueryContext, examples: &[Example], program: &Program) -> Counts {
    examples
        .iter()
        .map(|ex| ex.counts_for(&program.eval(ctx, &ex.page)))
        .sum()
}

/// Evaluates an extractor on the nodes located per example.
pub fn extractor_outputs(
    ctx: &QueryContext,
    examples: &[Example],
    nodes_per_example: &[Vec<PageNodeId>],
    extractor: &Extractor,
) -> Vec<Vec<String>> {
    examples
        .iter()
        .zip(nodes_per_example)
        .map(|(ex, nodes)| extractor.eval(ctx, &ex.page, nodes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_dsl::NodeFilter;

    fn page() -> PageTree {
        PageTree::parse(
            "<h1>R</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>\
             <h2>Other</h2><p>noise text</p>",
        )
    }

    fn ctx() -> QueryContext {
        QueryContext::new("", ["Students"])
    }

    #[test]
    fn counts_against_gold() {
        let ex = Example::new(page(), vec!["Jane Doe".into(), "Bob Smith".into()]);
        let c = ex.counts_for(&["Jane Doe".to_string()]);
        assert_eq!(c.matched, 2);
        assert_eq!(c.gold, 4);
    }

    #[test]
    fn locator_ceiling_root_covers_everything() {
        let ex = Example::new(page(), vec!["Jane Doe".into()]);
        let c = ex.locator_ceiling(&ctx(), &Locator::Root);
        // All gold tokens are on the page, so recall ceiling is 1.
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn locator_ceiling_narrow_section() {
        let ex = Example::new(page(), vec!["Jane Doe".into(), "Bob Smith".into()]);
        // Locate only the "Other" section: none of the gold is under it.
        let other = Locator::Children(
            Box::new(Locator::Root),
            NodeFilter::MatchText {
                pred: webqa_dsl::NlpPred::MatchKeyword(webqa_dsl::Threshold::new(0.9)),
                subtree: false,
            },
        );
        let ctx = QueryContext::new("", ["Other"]);
        let c = ex.locator_ceiling(&ctx, &other);
        assert_eq!(c.recall(), 0.0);
    }

    #[test]
    fn covering_set_drops_nested_nodes() {
        let p = page();
        let root = p.root();
        let all: Vec<PageNodeId> = std::iter::once(root).chain(p.descendants(root)).collect();
        let cover = covering_set(&p, &all);
        assert_eq!(cover, vec![root]);
    }

    #[test]
    fn ceiling_does_not_double_count_overlapping_subtrees() {
        let ex = Example::new(page(), vec!["Jane Doe".into()]);
        let everything = Locator::Descendants(Box::new(Locator::Root), NodeFilter::True);
        let c = ex.locator_ceiling(&ctx(), &everything);
        // "jane" appears once on the page; predicted count must not blow up
        // beyond the page's own token count even though every node was
        // located.
        let page_tokens = tokenize(&ex.page.subtree_text(ex.page.root())).len();
        assert!(c.predicted <= page_tokens);
    }

    #[test]
    fn ceiling_counts_matches_slow_path() {
        let ex = Example::new(page(), vec!["Jane Doe".into(), "noise".into()]);
        let ctx = ctx();
        for loc in [
            Locator::Root,
            Locator::leaves(Locator::Root),
            Locator::Children(Box::new(Locator::Root), NodeFilter::True),
        ] {
            let nodes = loc.eval(&ctx, &ex.page);
            let fast = ex.ceiling_counts(&nodes);
            // Slow path: re-tokenize subtree text of the covering set.
            let cover = covering_set(&ex.page, &nodes);
            let mut toks = Vec::new();
            for n in cover {
                toks.extend(tokenize(&ex.page.subtree_text(n)));
            }
            let slow = Counts::from_bags(&toks, ex.gold_tokens());
            assert_eq!(fast, slow, "locator {loc}");
            assert_eq!(ex.ceiling_counts_reference(&nodes), slow, "locator {loc}");
        }
    }

    #[test]
    fn fast_ceiling_matches_reference_on_arbitrary_node_sets() {
        let ex = Example::new(
            page(),
            vec!["Jane Doe".into(), "Bob Smith".into(), "noise".into()],
        );
        let n = ex.page.len();
        // Every subset of a small page — unsorted and duplicated too.
        for mask in 0u32..(1 << n) {
            let mut nodes: Vec<PageNodeId> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(PageNodeId)
                .collect();
            assert_eq!(
                ex.ceiling_counts(&nodes),
                ex.ceiling_counts_reference(&nodes),
                "sorted mask {mask:b}"
            );
            nodes.reverse();
            assert_eq!(
                ex.ceiling_counts(&nodes),
                ex.ceiling_counts_reference(&nodes),
                "reversed mask {mask:b}"
            );
            // Duplicate entries: the covering set keeps every copy of a
            // surviving node, so both kernels must double count them.
            let doubled: Vec<PageNodeId> = nodes.iter().flat_map(|&n| [n, n]).collect();
            assert_eq!(
                ex.ceiling_counts(&doubled),
                ex.ceiling_counts_reference(&doubled),
                "duplicated mask {mask:b}"
            );
        }
    }

    #[test]
    fn subtree_ranges_are_preorder() {
        let ex = Example::new(page(), vec![]);
        for id in ex.page.iter() {
            let i = id.index();
            let descendants = ex.page.descendants(id);
            assert_eq!(ex.subtree_end[i], i + 1 + descendants.len(), "node {i}");
            for d in descendants {
                assert!(d.index() > i && d.index() < ex.subtree_end[i]);
            }
        }
    }

    #[test]
    fn f1_of_outputs_micro_averages() {
        let ex1 = Example::new(page(), vec!["Jane Doe".into()]);
        let ex2 = Example::new(page(), vec!["Bob Smith".into()]);
        let outs = vec![vec!["Jane Doe".to_string()], vec!["wrong".to_string()]];
        let f1 = f1_of_outputs(&[ex1, ex2], &outs);
        assert!(f1 > 0.0 && f1 < 1.0);
    }
}
