//! Search statistics collected during synthesis (reported by the Table 3
//! ablation bench).

/// Counters describing one synthesis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SynthStats {
    /// Guards yielded by the lazy enumerator (Figure 10).
    pub guards_yielded: usize,
    /// Section locators expanded with `ApplyProduction`.
    pub locators_expanded: usize,
    /// Section locators discarded by the UB check (Figure 10 line 8).
    pub locators_pruned: usize,
    /// Extractors dequeued and scored (Figure 9).
    pub extractors_enumerated: usize,
    /// Extractor extensions discarded by the UB check (Figure 9 line 9).
    pub extractors_pruned: usize,
    /// Calls to `SynthesizeBranch` (one per distinct partition block;
    /// with `SynthConfig::jobs > 1` this can include speculatively solved
    /// blocks the lazy sequential scan would have skipped).
    pub branch_calls: usize,
    /// Partition-block synthesis results served from the top-level
    /// `(E⁺, E⁻)` memo (Figure 7).
    pub memo_hits: usize,
    /// Extractor-synthesis results shared across guards over the same
    /// section locator (the footnote 6 memo inside one branch problem).
    pub locator_memo_hits: usize,
    /// Guard candidates skipped because the abstract interpreter proved
    /// they can never classify (predicate provably `⊥` on the positives,
    /// or guard provably `⊤` while negatives exist).
    pub analysis_pruned_guards: usize,
    /// Locator extensions skipped because they provably select no nodes
    /// on any positive example (the extension's node sets are empty, or a
    /// weaker filter already produced empty sets this round).
    pub analysis_pruned_locators: usize,
    /// Extractor extensions skipped because their outputs are provably
    /// empty (a production step the analysis proves maps everything to
    /// `∅`, or concrete all-empty outputs on a branch with gold tokens).
    pub analysis_pruned_extractors: usize,
}

impl SynthStats {
    /// Total number of candidate terms the search *touched* — the quantity
    /// pruning and decomposition reduce (Table 3's speedups follow it).
    pub fn work(&self) -> usize {
        self.guards_yielded + self.locators_expanded + self.extractors_enumerated
    }
}

impl std::ops::AddAssign for SynthStats {
    fn add_assign(&mut self, rhs: SynthStats) {
        self.guards_yielded += rhs.guards_yielded;
        self.locators_expanded += rhs.locators_expanded;
        self.locators_pruned += rhs.locators_pruned;
        self.extractors_enumerated += rhs.extractors_enumerated;
        self.extractors_pruned += rhs.extractors_pruned;
        self.branch_calls += rhs.branch_calls;
        self.memo_hits += rhs.memo_hits;
        self.locator_memo_hits += rhs.locator_memo_hits;
        self.analysis_pruned_guards += rhs.analysis_pruned_guards;
        self.analysis_pruned_locators += rhs.analysis_pruned_locators;
        self.analysis_pruned_extractors += rhs.analysis_pruned_extractors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_sums_search_counters() {
        let s = SynthStats {
            guards_yielded: 2,
            locators_expanded: 3,
            extractors_enumerated: 5,
            ..Default::default()
        };
        assert_eq!(s.work(), 10);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = SynthStats {
            guards_yielded: 1,
            ..Default::default()
        };
        a += SynthStats {
            guards_yielded: 2,
            memo_hits: 4,
            locator_memo_hits: 7,
            ..Default::default()
        };
        assert_eq!(a.guards_yielded, 3);
        assert_eq!(a.memo_hits, 4);
        assert_eq!(a.locator_memo_hits, 7);
    }
}
