//! Cooperative cancellation for the enumerative search.
//!
//! A [`CancelToken`] is a cheaply clonable handle shared between the
//! caller (who cancels) and the synthesis loops (which poll). The search
//! never blocks on the token: [`synthesize_cancellable`] checks it once
//! on entry and the branch synthesizer checks it once per guard step —
//! the unit at which `SynthesizeBranch` (Figure 8) pops the next
//! `(guard, locator)` pair — so a cancelled search returns within one
//! guard step per in-flight worker, never mid-extractor-enumeration
//! with partial state observable.
//!
//! Three triggers fold into one token:
//!
//! * **explicit** — [`CancelToken::cancel`] from another thread (a
//!   server shutting down, a client disconnecting);
//! * **deadline** — [`CancelToken::with_deadline`] /
//!   [`CancelToken::after`]: the token trips once `Instant::now()`
//!   passes the deadline (per-request latency budgets);
//! * **step budget** — [`CancelToken::with_step_budget`]: the token
//!   trips after a fixed number of cooperative checks. This is a
//!   machine-independent work bound and the deterministic test hook
//!   for "a mid-run cancel returns within a bounded number of steps".
//!
//! Cancellation is observationally invisible to everything else: a run
//! that completes under a token is byte-identical to one without (the
//! token's check counter is separate from [`crate::SynthStats`]), and a
//! cancelled run returns [`Cancelled`] instead of a partial outcome —
//! callers never see half-searched program sets.
//!
//! [`synthesize_cancellable`]: crate::synthesize_cancellable

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The error returned by a cancelled synthesis: the search was abandoned
/// (deadline, explicit cancel, or step budget) and no partial result is
/// exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("synthesis cancelled (deadline, explicit cancel, or step budget)")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Cooperative checks performed so far (checkpoints, not
    /// `is_cancelled` polls).
    checks: AtomicU64,
    /// Trip after this many checkpoints, if set.
    step_budget: Option<u64>,
    /// Trip once `Instant::now() >= deadline`, if set.
    deadline: Option<Instant>,
}

/// A shared, cooperative cancellation handle (see the module docs).
///
/// Clones share state: cancelling any clone cancels them all. The
/// default token ([`CancelToken::never`]) can only be tripped by an
/// explicit [`CancelToken::cancel`].
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    fn with(step_budget: Option<u64>, deadline: Option<Instant>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                checks: AtomicU64::new(0),
                step_budget,
                deadline,
            }),
        }
    }

    /// A token with no deadline and no budget: trips only on an explicit
    /// [`CancelToken::cancel`].
    pub fn never() -> Self {
        Self::with(None, None)
    }

    /// A token that trips once `Instant::now()` reaches `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::with(None, Some(deadline))
    }

    /// A token that trips `budget` from now (see
    /// [`CancelToken::with_deadline`]).
    pub fn after(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// A token that trips after `steps` cooperative checkpoints — a
    /// deterministic, machine-independent work bound. `0` means
    /// pre-cancelled: the very first checkpoint trips.
    pub fn with_step_budget(steps: u64) -> Self {
        Self::with(Some(steps), None)
    }

    /// Trips the token explicitly. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has tripped (flag or expired deadline). Does
    /// **not** count as a cooperative checkpoint.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                self.inner.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// One cooperative checkpoint: counts the check, applies the step
    /// budget and deadline, and returns whether the caller should
    /// abandon the search. The synthesis loops call this once per guard
    /// step.
    pub fn checkpoint(&self) -> bool {
        let n = self.inner.checks.fetch_add(1, Ordering::Relaxed);
        if let Some(budget) = self.inner.step_budget {
            if n >= budget {
                self.inner.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        self.is_cancelled()
    }

    /// Number of cooperative checkpoints performed so far (all clones).
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::never()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_trips() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        for _ in 0..100 {
            assert!(!t.checkpoint());
        }
        assert_eq!(t.checks(), 100);
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::never();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        assert!(c.checkpoint());
        // `is_cancelled` polls don't count as checkpoints.
        assert_eq!(t.checks(), 1);
    }

    #[test]
    fn step_budget_trips_after_exactly_n_checkpoints() {
        let t = CancelToken::with_step_budget(3);
        assert!(!t.checkpoint());
        assert!(!t.checkpoint());
        assert!(!t.checkpoint());
        assert!(t.checkpoint());
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_budget_means_pre_cancelled_at_first_checkpoint() {
        let t = CancelToken::with_step_budget(0);
        assert!(t.checkpoint());
    }

    #[test]
    fn elapsed_deadline_trips() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::after(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(!far.checkpoint());
    }
}
