//! Enumeration pools: the finite sets of predicates, node filters, and
//! productions the bottom-up search draws from (the `ApplyProduction` and
//! `GenGuards` functions of Figures 9 and 10).

use webqa_dsl::{
    EntityKind, Extractor, Guard, Locator, NlpPred, NodeFilter, QueryContext, Threshold,
};

use crate::config::SynthConfig;

/// All entity kinds enumerable in `hasEntity`.
pub(crate) const ENTITY_KINDS: [EntityKind; 6] = [
    EntityKind::Person,
    EntityKind::Organization,
    EntityKind::Date,
    EntityKind::Time,
    EntityKind::Location,
    EntityKind::Money,
];

/// The pool of NLP predicates available to the search.
///
/// Modalities absent from the query context are omitted: without keywords
/// there is no `matchKeyword`, without a question no `hasAnswer` (this is
/// how the WebQA-NL / WebQA-KW ablations of Appendix C.1 arise).
pub(crate) fn nlp_preds(config: &SynthConfig, ctx: &QueryContext) -> Vec<NlpPred> {
    let mut pool = Vec::new();
    if !ctx.keywords().is_empty() {
        for &t in &config.thresholds {
            pool.push(NlpPred::MatchKeyword(Threshold::new(t)));
        }
    }
    if !ctx.question().is_empty() {
        pool.push(NlpPred::HasAnswer);
    }
    for kind in ENTITY_KINDS {
        pool.push(NlpPred::HasEntity(kind));
    }
    pool
}

/// The pool of node filters for `GetChildren` / `GetDescendants`.
pub(crate) fn node_filters(config: &SynthConfig, ctx: &QueryContext) -> Vec<NodeFilter> {
    let mut pool = vec![NodeFilter::True, NodeFilter::IsLeaf, NodeFilter::IsElem];
    for pred in nlp_preds(config, ctx) {
        pool.push(NodeFilter::MatchText {
            pred: pred.clone(),
            subtree: false,
        });
        pool.push(NodeFilter::MatchText {
            pred,
            subtree: true,
        });
    }
    if config.filter_conjunctions {
        // isLeaf ∧ matchText and isElem ∧ matchText — the combinations that
        // matter in practice (leaf/elem nodes with matching text).
        let texts: Vec<NodeFilter> = pool
            .iter()
            .filter(|f| matches!(f, NodeFilter::MatchText { .. }))
            .cloned()
            .collect();
        for t in texts {
            pool.push(NodeFilter::And(
                Box::new(NodeFilter::IsLeaf),
                Box::new(t.clone()),
            ));
            pool.push(NodeFilter::And(Box::new(NodeFilter::IsElem), Box::new(t)));
        }
    }
    pool
}

/// `ApplyProduction` for section locators (Figure 10, line 7): all
/// single-step extensions of `ν`. The guard enumerator applies the same
/// productions through precomputed filter masks; this reference version
/// backs the tests.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn extend_locator(
    config: &SynthConfig,
    ctx: &QueryContext,
    locator: &Locator,
) -> Vec<Locator> {
    if locator.depth() >= config.guard_depth {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in node_filters(config, ctx) {
        out.push(Locator::Children(Box::new(locator.clone()), f.clone()));
        out.push(Locator::Descendants(Box::new(locator.clone()), f));
    }
    out
}

/// `GenGuards(ν)` (Figure 10, line 5): all guards over one locator.
pub(crate) fn gen_guards(
    config: &SynthConfig,
    ctx: &QueryContext,
    locator: &Locator,
) -> Vec<Guard> {
    let mut out = vec![Guard::IsSingleton(locator.clone())];
    out.push(Guard::Sat(locator.clone(), NlpPred::True));
    for pred in nlp_preds(config, ctx) {
        out.push(Guard::Sat(locator.clone(), pred));
    }
    out
}

/// `ApplyProduction` for extractors (Figure 9, line 8): all single-step
/// extensions of `e` via `Substring`, `Filter`, and `Split`.
pub(crate) fn extend_extractor(
    config: &SynthConfig,
    ctx: &QueryContext,
    extractor: &Extractor,
) -> Vec<Extractor> {
    if extractor.depth() >= config.extractor_depth {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pred in nlp_preds(config, ctx) {
        out.push(Extractor::Filter(Box::new(extractor.clone()), pred.clone()));
        for &k in &config.substring_ks {
            out.push(Extractor::Substring(
                Box::new(extractor.clone()),
                pred.clone(),
                k,
            ));
        }
    }
    for &c in &config.delimiters {
        // Splitting twice on the same delimiter is an identity; skip it.
        if let Extractor::Split(_, prev) = extractor {
            if *prev == c {
                continue;
            }
        }
        out.push(Extractor::Split(Box::new(extractor.clone()), c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_full() -> QueryContext {
        QueryContext::new("Who are the students?", ["Students"])
    }

    #[test]
    fn pred_pool_respects_modalities() {
        let cfg = SynthConfig::fast();
        let full = nlp_preds(&cfg, &ctx_full());
        assert!(full.iter().any(|p| matches!(p, NlpPred::MatchKeyword(_))));
        assert!(full.contains(&NlpPred::HasAnswer));

        let nl_only = QueryContext::question_only("Who?");
        let pool = nlp_preds(&cfg, &nl_only);
        assert!(!pool.iter().any(|p| matches!(p, NlpPred::MatchKeyword(_))));
        assert!(pool.contains(&NlpPred::HasAnswer));

        let kw_only = QueryContext::keywords_only(["x"]);
        let pool = nlp_preds(&cfg, &kw_only);
        assert!(pool.iter().any(|p| matches!(p, NlpPred::MatchKeyword(_))));
        assert!(!pool.contains(&NlpPred::HasAnswer));
    }

    #[test]
    fn locator_extension_respects_depth() {
        let cfg = SynthConfig::fast();
        let ctx = ctx_full();
        let mut l = Locator::Root;
        for _ in 0..cfg.guard_depth - 1 {
            let ext = extend_locator(&cfg, &ctx, &l);
            assert!(!ext.is_empty());
            l = ext.into_iter().next().unwrap();
        }
        assert!(extend_locator(&cfg, &ctx, &l).is_empty());
    }

    #[test]
    fn extractor_extension_respects_depth() {
        let cfg = SynthConfig::fast();
        let ctx = ctx_full();
        let mut e = Extractor::Content;
        for _ in 0..cfg.extractor_depth - 1 {
            let ext = extend_extractor(&cfg, &ctx, &e);
            assert!(!ext.is_empty());
            e = ext.into_iter().next().unwrap();
        }
        assert!(extend_extractor(&cfg, &ctx, &e).is_empty());
    }

    #[test]
    fn no_double_split_on_same_delimiter() {
        let cfg = SynthConfig::fast();
        let ctx = ctx_full();
        let split = Extractor::Split(Box::new(Extractor::Content), ',');
        let ext = extend_extractor(&cfg, &ctx, &split);
        assert!(!ext.contains(&Extractor::Split(Box::new(split.clone()), ',')));
        assert!(ext.iter().any(|e| matches!(e, Extractor::Split(_, ';'))));
    }

    #[test]
    fn guards_include_singleton_and_sat_true() {
        let cfg = SynthConfig::fast();
        let gs = gen_guards(&cfg, &ctx_full(), &Locator::Root);
        assert!(gs.contains(&Guard::IsSingleton(Locator::Root)));
        assert!(gs.contains(&Guard::Sat(Locator::Root, NlpPred::True)));
        assert!(gs.len() > 2);
    }
}
