//! Brute-force reference synthesizer.
//!
//! [`enumerate_optimal`] enumerates **every** single-branch program in the
//! bounded DSL space (same pools and depth bounds as the real engine,
//! Figures 9–10) and scores each by direct whole-program evaluation —
//! no decomposition, no propagation, no pruning, no incremental output
//! transformation. It is exponentially slower than [`crate::synthesize`]
//! but has no moving parts, which makes it the ground truth that the
//! engine's optimality guarantee (Theorem 5.1) is tested against: on any
//! input where the oracle is feasible, the engine must report exactly the
//! oracle's optimal F₁, and every program the engine returns must be in
//! the oracle's optimal set.

use std::collections::VecDeque;

use webqa_dsl::{Extractor, Guard, Locator, Program, QueryContext};

use crate::config::SynthConfig;
use crate::example::{program_counts, Example};
use crate::extractors::F1_EPS;
use crate::pool::{extend_extractor, extend_locator, gen_guards};

/// The oracle's result: the optimal F₁ and every single-branch program
/// achieving it.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// All single-branch programs with optimal F₁, in enumeration order.
    pub programs: Vec<Program>,
    /// The optimal F₁.
    pub f1: f64,
    /// How many candidate programs were scored.
    pub enumerated: usize,
}

/// Enumerates all single-branch programs within `cfg`'s bounds and returns
/// those with optimal F₁ on `examples`, scored by whole-program
/// evaluation.
///
/// The search space is the full cartesian product of guards and
/// extractors, so this is only feasible for reduced configurations
/// (shallow depths, small threshold grids). Intended for testing and for
/// auditing the engine's output on small tasks — not for production
/// synthesis.
///
/// # Panics
///
/// Panics if `examples` is empty (an optimum over nothing is undefined).
pub fn enumerate_optimal(
    cfg: &SynthConfig,
    ctx: &QueryContext,
    examples: &[Example],
) -> OracleOutcome {
    assert!(!examples.is_empty(), "oracle needs at least one example");
    let guards = all_guards(cfg, ctx);
    let extractors = all_extractors(cfg, ctx);

    let mut best_f1 = -1.0f64;
    let mut best: Vec<Program> = Vec::new();
    let mut enumerated = 0usize;
    for g in &guards {
        for e in &extractors {
            let p = Program::single(g.clone(), e.clone());
            let f1 = program_counts(ctx, examples, &p).f1();
            enumerated += 1;
            if f1 > best_f1 + F1_EPS {
                best_f1 = f1;
                best = vec![p];
            } else if (f1 - best_f1).abs() <= F1_EPS {
                best.push(p);
            }
        }
    }
    OracleOutcome {
        programs: best,
        f1: best_f1.max(0.0),
        enumerated,
    }
}

/// Every guard within the config's locator-depth bound.
pub fn all_guards(cfg: &SynthConfig, ctx: &QueryContext) -> Vec<Guard> {
    let mut out = Vec::new();
    let mut queue: VecDeque<Locator> = VecDeque::new();
    queue.push_back(Locator::Root);
    while let Some(l) = queue.pop_front() {
        out.extend(gen_guards(cfg, ctx, &l));
        for ext in extend_locator(cfg, ctx, &l) {
            queue.push_back(ext);
        }
    }
    out
}

/// Every extractor within the config's extractor-depth bound.
pub fn all_extractors(cfg: &SynthConfig, ctx: &QueryContext) -> Vec<Extractor> {
    let mut out = Vec::new();
    let mut queue: VecDeque<Extractor> = VecDeque::new();
    queue.push_back(Extractor::Content);
    while let Some(e) = queue.pop_front() {
        out.push(e.clone());
        for ext in extend_extractor(cfg, ctx, &e) {
            queue.push_back(ext);
        }
    }
    out
}

/// A configuration small enough for the oracle's exhaustive product:
/// locator depth 2, extractor depth 2, two thresholds, one delimiter.
pub fn tiny_config() -> SynthConfig {
    SynthConfig {
        guard_depth: 2,
        extractor_depth: 2,
        thresholds: vec![0.5, 0.8],
        delimiters: vec![','],
        substring_ks: vec![1],
        max_blocks: 1,
        max_guards_per_branch: usize::MAX,
        max_programs: usize::MAX,
        prune: true,
        analysis: true,
        decompose: true,
        lazy_guards: true,
        filter_conjunctions: false,
        reference_kernels: false,
        jobs: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::top::synthesize;
    use std::collections::HashSet;
    use webqa_dsl::PageTree;

    fn example(html: &str, gold: &[&str]) -> Example {
        Example::new(
            PageTree::parse(html),
            gold.iter().map(|s| s.to_string()).collect(),
        )
    }

    fn ctx() -> QueryContext {
        QueryContext::new("Who are the current PhD students?", ["Students", "PhD"])
    }

    /// Theorem 5.1, checked against ground truth: on a space small enough
    /// to enumerate exhaustively, the engine reports exactly the oracle's
    /// optimum and returns only oracle-optimal programs.
    #[test]
    fn engine_matches_oracle_on_small_space() {
        let cfg = tiny_config();
        let c = ctx();
        let cases: Vec<Vec<Example>> = vec![
            vec![example(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>",
                &["Jane Doe", "Bob Smith"],
            )],
            vec![example(
                "<h1>B</h1><h2>News</h2><p>Welcome Sarah Brown.</p>\
                 <h2>Students</h2><p>Mary Anderson, Tom Lee</p>",
                &["Mary Anderson", "Tom Lee"],
            )],
            vec![
                example(
                    "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
                    &["Jane Doe"],
                ),
                example(
                    "<h1>B</h1><h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>",
                    &["Mary Anderson"],
                ),
            ],
        ];
        for examples in &cases {
            let oracle = enumerate_optimal(&cfg, &c, examples);
            let engine = synthesize(&cfg, &c, examples);
            assert!(
                (oracle.f1 - engine.f1).abs() < 1e-9,
                "engine {} vs oracle {}",
                engine.f1,
                oracle.f1
            );
            // Single-branch engine programs must be oracle-optimal.
            let optimal: HashSet<&Program> = oracle.programs.iter().collect();
            for p in engine.programs.iter().filter(|p| p.branches.len() == 1) {
                assert!(
                    optimal.contains(p),
                    "engine returned non-optimal program {p} (oracle opt {})",
                    oracle.f1
                );
            }
        }
    }

    /// The engine's pruning and behavioral dedup must not *lose* optima:
    /// whichever distinct output behaviours the oracle's optimal set
    /// exhibits, the engine's set must exhibit too.
    #[test]
    fn engine_covers_oracle_behaviours() {
        let cfg = tiny_config();
        let c = ctx();
        let examples = vec![example(
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe, Bob Smith</li></ul>\
             <h2>Other</h2><p>noise</p>",
            &["Jane Doe", "Bob Smith"],
        )];
        let oracle = enumerate_optimal(&cfg, &c, &examples);
        let engine = synthesize(&cfg, &c, &examples);
        let behaviours = |ps: &[Program]| -> HashSet<Vec<String>> {
            ps.iter().map(|p| p.eval(&c, &examples[0].page)).collect()
        };
        let ob = behaviours(&oracle.programs);
        let eb = behaviours(&engine.programs);
        for b in &ob {
            assert!(eb.contains(b), "engine lost optimal behaviour {b:?}");
        }
    }

    #[test]
    fn oracle_space_is_the_full_product() {
        let cfg = tiny_config();
        let c = ctx();
        let guards = all_guards(&cfg, &c);
        let extractors = all_extractors(&cfg, &c);
        let examples = vec![example("<h1>A</h1><p>x</p>", &["x"])];
        let oracle = enumerate_optimal(&cfg, &c, &examples);
        assert_eq!(oracle.enumerated, guards.len() * extractors.len());
        assert!(oracle.enumerated > 100, "space unexpectedly small");
    }

    #[test]
    fn oracle_handles_unreachable_gold() {
        // Gold not on the page: nothing scores > 0, optimum is 0 and the
        // optimal set is every program (all tie at 0).
        let cfg = tiny_config();
        let c = ctx();
        let examples = vec![example("<h1>A</h1><p>x</p>", &["unfindable tokens"])];
        let oracle = enumerate_optimal(&cfg, &c, &examples);
        assert_eq!(oracle.f1, 0.0);
        assert_eq!(oracle.programs.len(), oracle.enumerated);
    }

    #[test]
    #[should_panic(expected = "at least one example")]
    fn oracle_rejects_empty_examples() {
        enumerate_optimal(&tiny_config(), &ctx(), &[]);
    }
}
