//! `SynthesizeExtractors` (Figure 9 of the paper): bottom-up enumeration
//! of extractors with F₁-upper-bound pruning.
//!
//! The enumeration is *incremental*: each worklist entry carries the
//! extractor's outputs on every example, and applying a production
//! transforms those outputs directly instead of re-evaluating the whole
//! extractor chain. This is semantically identical (extractor productions
//! are pointwise string transformers) and is what makes the exhaustive
//! search cheap enough to run hundreds of times per task.
//!
//! Hot-path structure (all semantics-free; `SynthConfig::reference()`
//! swaps the kernels back to definitional string scoring):
//!
//! * outputs flow as shared `Arc<str>` slices, so `Filter` and dedup
//!   copy pointers, not bytes (atomically counted so the task-level
//!   production caches can be shared across branch-parallel workers);
//! * candidates are scored on interned token ids ([`crate::scorer::Scorer`])
//!   — tokenization happens once per distinct output string per branch;
//! * child candidates are generated as *production steps* applied to the
//!   parent's outputs; the `UB = 2R/(1+R)` bound (Eq. 3) is checked
//!   **before** the child AST exists, so dominated candidates never
//!   materialize an `Extractor` value at all.

use std::collections::HashSet;
use std::sync::Arc;

use webqa_dsl::{Extractor, PageNodeId};
use webqa_metrics::Counts;

use crate::scorer::{OutStr, Scorer, StepOp, TaskCtx};
use crate::stats::SynthStats;

/// Result of extractor synthesis: all extractors achieving the optimal F₁
/// (that is ≥ the incoming lower bound), plus that score and its counts.
///
/// Extractors are *grouped by their token-count vector*: two extractors can
/// have the same F₁ on a branch's examples but different `(matched,
/// predicted, gold)` counts, and those counts — not the per-branch F₁ —
/// determine the micro-averaged F₁ when branches are combined into a
/// multi-branch program. Keeping the counts per group lets the top-level
/// synthesis reject cross-branch combinations that would not achieve the
/// reported optimum.
#[derive(Debug, Clone)]
pub(crate) struct ExtractorSynthesis {
    /// Optimal extractors grouped by their counts (empty when nothing
    /// beats the lower bound). Every group's `counts.f1()` equals `f1`.
    pub groups: Vec<(Counts, Vec<Extractor>)>,
    /// The optimal F₁ achieved.
    pub f1: f64,
    /// Token counts of a representative optimal extractor (used to combine
    /// branch scores into a partition score).
    pub counts: Counts,
}

impl ExtractorSynthesis {
    /// True when no extractor met the lower bound.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// All optimal extractors, flattened across count groups.
    #[cfg(test)]
    pub fn extractors(&self) -> Vec<Extractor> {
        self.groups
            .iter()
            .flat_map(|(_, es)| es.iter().cloned())
            .collect()
    }
}

/// Inserts an extractor into the count-grouped optimal set.
fn push_group(groups: &mut Vec<(Counts, Vec<Extractor>)>, counts: Counts, e: Extractor) {
    match groups.iter_mut().find(|(c, _)| *c == counts) {
        Some((_, es)) => es.push(e),
        None => groups.push((counts, vec![e])),
    }
}

/// Floating-point slack for F₁ equality (scores are ratios of small
/// integers; 1e-9 distinguishes all genuinely different values).
pub(crate) const F1_EPS: f64 = 1e-9;

/// One worklist candidate: the extractor AST, its per-example outputs,
/// and the spine facts child generation needs.
struct Cand {
    ast: Extractor,
    outputs: Vec<Vec<OutStr>>,
    depth: usize,
    /// `Some(c)` when the top production is `Split(·, c)` (double splits
    /// on one delimiter are identities and are skipped).
    last_split: Option<char>,
}

/// Figure 9: returns all extractors (up to the configured depth) whose F₁
/// on the propagated examples is maximal and at least `opt`.
pub(crate) fn synthesize_extractors(
    task: &TaskCtx,
    scorer: &mut Scorer,
    nodes: &[Vec<PageNodeId>],
    opt: f64,
    stats: &mut SynthStats,
) -> ExtractorSynthesis {
    debug_assert_eq!(scorer.pos.len(), nodes.len());
    let mut best: Vec<(Counts, Vec<Extractor>)> = Vec::new();
    let mut best_f1 = opt;
    let mut best_counts = Counts::default();

    // Seed: ExtractContent(x) and its outputs.
    let seed_outputs: Vec<Vec<OutStr>> = scorer
        .pos
        .iter()
        .zip(nodes)
        .map(|(ex, ns)| {
            Extractor::Content
                .eval(task.ctx, &ex.page, ns)
                .into_iter()
                .map(Arc::from)
                .collect()
        })
        .collect();

    let mut worklist: std::collections::VecDeque<Cand> = std::collections::VecDeque::new();
    let seed_sig = scorer.signature(&seed_outputs);
    worklist.push_back(Cand {
        ast: Extractor::Content,
        outputs: seed_outputs,
        depth: Extractor::Content.depth(),
        last_split: None,
    });
    // Behavioral-equivalence pruning: a child whose outputs on the training
    // examples equal an already-expanded candidate's outputs is scored (it
    // may be one of the tied optimal programs) but not *expanded* — every
    // extension it could produce has an output-identical twin reachable
    // from the representative, so no distinct-behavior optimum is lost.
    let mut seen_outputs: HashSet<u64> = HashSet::new();
    seen_outputs.insert(seed_sig);

    // Analysis prune (sound, kernel-mode-invariant): with gold tokens
    // present, a candidate whose outputs are empty on every example —
    // and every extension of it, since productions are pointwise string
    // transformers — scores F₁ = 0 and can never join the optimal set
    // (ties require a positive score). Gated on `gold_total > 0`: with
    // no gold tokens the empty output scores a vacuous perfect F₁ and
    // must stay enumerable. Also gated on `opt ≥ 0` so a zero score can
    // never beat the running optimum.
    let analyze = task.analysis.enabled && opt >= 0.0 && scorer.gold_total() > 0;

    while let Some(cand) = worklist.pop_front() {
        stats.extractors_enumerated += 1;
        // Score with the *program-level* set semantics (Figure 6: programs
        // return Set<String>), while the raw multiset outputs keep flowing
        // through productions.
        let counts = scorer.counts_dedup(&cand.outputs);
        let s = counts.f1();
        if s > best_f1 + F1_EPS {
            best = vec![(counts, vec![cand.ast.clone()])];
            best_f1 = s;
            best_counts = counts;
        } else if (s - best_f1).abs() <= F1_EPS && s > 0.0 {
            if best.is_empty() {
                best_counts = counts;
            }
            push_group(&mut best, counts, cand.ast.clone());
        }
        if cand.depth >= task.cfg.extractor_depth {
            continue;
        }
        for (si, step) in task.steps.iter().enumerate() {
            if let (StepOp::Split(c), Some(prev)) = (step, cand.last_split) {
                // Splitting twice on the same delimiter is an identity.
                if *c == prev {
                    continue;
                }
            }
            // A step the analyzer proves maps every string to `∅` yields
            // an all-empty child — skip before even applying it.
            if analyze && task.analysis.step_dead[si] {
                stats.analysis_pruned_extractors += 1;
                continue;
            }
            let child_outputs = scorer.apply_step(task, si, &cand.outputs);
            if analyze && child_outputs.iter().all(Vec::is_empty) {
                stats.analysis_pruned_extractors += 1;
                continue;
            }
            // UB(e′, E) over the *raw* multiset (Eq. 3): raw recall
            // dominates the set-semantics recall of every extension, so
            // pruning on it is sound for the deduplicated score too. The
            // child AST has not been built yet — pruned candidates never
            // exist as `Extractor` values.
            let child_raw_counts = scorer.counts_raw(&child_outputs);
            if task.cfg.prune && child_raw_counts.upper_bound() + F1_EPS < best_f1 {
                stats.extractors_pruned += 1;
                continue;
            }
            if !seen_outputs.insert(scorer.signature(&child_outputs)) {
                // Score the behavioral duplicate, but do not expand it.
                let dup_counts = scorer.counts_dedup(&child_outputs);
                let s = dup_counts.f1();
                stats.extractors_enumerated += 1;
                if (s - best_f1).abs() <= F1_EPS && s > 0.0 {
                    push_group(&mut best, dup_counts, make_ast(&cand.ast, step));
                }
                continue;
            }
            let ast = make_ast(&cand.ast, step);
            worklist.push_back(Cand {
                depth: cand.depth + 1,
                last_split: match step {
                    StepOp::Split(c) => Some(*c),
                    _ => None,
                },
                ast,
                outputs: child_outputs,
            });
        }
    }

    ExtractorSynthesis {
        groups: best,
        f1: best_f1,
        counts: best_counts,
    }
}

/// Builds the child AST for a surviving candidate.
fn make_ast(parent: &Extractor, step: &StepOp) -> Extractor {
    match step {
        StepOp::Filter(pred) => Extractor::Filter(Box::new(parent.clone()), pred.clone()),
        StepOp::Substring(pred, k) => {
            Extractor::Substring(Box::new(parent.clone()), pred.clone(), *k)
        }
        StepOp::Split(c) => Extractor::Split(Box::new(parent.clone()), *c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use crate::example::{counts_of_outputs, Example};
    use webqa_dsl::{Locator, PageTree, QueryContext};

    fn setup() -> (QueryContext, Vec<Example>, Vec<Vec<PageNodeId>>) {
        let ctx = QueryContext::new(
            "Which program committees has this researcher served on?",
            ["PC", "Program Committee"],
        );
        let page = PageTree::parse(
            "<h1>R</h1><h2>Service</h2>\
             <ul><li>PLDI '21 (PC), CAV '20 (PC)</li><li>reading group, hiking club</li></ul>",
        );
        let nodes = Locator::leaves(Locator::Root).eval(&ctx, &page);
        let ex = Example::new(page, vec!["PLDI '21 (PC)".into(), "CAV '20 (PC)".into()]);
        (ctx, vec![ex], vec![nodes])
    }

    fn run(
        cfg: &SynthConfig,
        ctx: &QueryContext,
        examples: &[Example],
        nodes: &[Vec<PageNodeId>],
        opt: f64,
        stats: &mut SynthStats,
    ) -> ExtractorSynthesis {
        let task = TaskCtx::new(cfg, ctx, examples);
        let pos: Vec<usize> = (0..examples.len()).collect();
        let mut scorer = Scorer::new(&task, &pos);
        synthesize_extractors(&task, &mut scorer, nodes, opt, stats)
    }

    /// Order-preserving per-example deduplication — the set semantics a
    /// full program applies to its final output (Figure 6).
    fn dedup_outputs(outputs: &[Vec<String>]) -> Vec<Vec<String>> {
        outputs
            .iter()
            .map(|strings| {
                let mut seen = HashSet::new();
                strings
                    .iter()
                    .filter(|s| seen.insert((*s).clone()))
                    .cloned()
                    .collect()
            })
            .collect()
    }

    #[test]
    fn finds_split_filter_extractor() {
        let (ctx, examples, nodes) = setup();
        let cfg = SynthConfig::fast();
        let mut stats = SynthStats::default();
        let res = run(&cfg, &ctx, &examples, &nodes, 0.0, &mut stats);
        assert!(res.f1 > 0.99, "expected perfect extraction, got {}", res.f1);
        // The optimal set must contain a split-then-filter program.
        let extractors = res.extractors();
        assert!(
            extractors
                .iter()
                .any(|e| e.to_string().contains("filter(split(content, ',')")),
            "optimal set: {:?}",
            extractors.iter().map(|e| e.to_string()).collect::<Vec<_>>()
        );
        assert!(stats.extractors_enumerated > 1);
    }

    #[test]
    fn pruning_reduces_enumerated_terms_without_changing_result() {
        let (ctx, examples, nodes) = setup();
        let mut s_on = SynthStats::default();
        let mut s_off = SynthStats::default();
        let on = run(
            &SynthConfig::fast(),
            &ctx,
            &examples,
            &nodes,
            0.0,
            &mut s_on,
        );
        let off = run(
            &SynthConfig::fast().without_pruning(),
            &ctx,
            &examples,
            &nodes,
            0.0,
            &mut s_off,
        );
        assert!((on.f1 - off.f1).abs() < 1e-9);
        let mut a = on.extractors();
        let mut b = off.extractors();
        a.sort_by_key(|e| e.to_string());
        b.sort_by_key(|e| e.to_string());
        assert_eq!(a, b, "pruning must not change the optimal set");
        assert!(
            s_on.extractors_enumerated <= s_off.extractors_enumerated,
            "pruning should reduce work"
        );
        assert!(s_on.extractors_pruned > 0);
    }

    #[test]
    fn reference_kernels_reproduce_optimized_result_exactly() {
        let (ctx, examples, nodes) = setup();
        let mut s_fast = SynthStats::default();
        let mut s_ref = SynthStats::default();
        let fast = run(
            &SynthConfig::fast(),
            &ctx,
            &examples,
            &nodes,
            0.0,
            &mut s_fast,
        );
        let slow = run(
            &SynthConfig::reference(),
            &ctx,
            &examples,
            &nodes,
            0.0,
            &mut s_ref,
        );
        assert_eq!(fast.f1, slow.f1);
        assert_eq!(fast.counts, slow.counts);
        assert_eq!(fast.groups.len(), slow.groups.len());
        for ((ca, ea), (cb, eb)) in fast.groups.iter().zip(&slow.groups) {
            assert_eq!(ca, cb);
            assert_eq!(ea, eb);
        }
        assert_eq!(s_fast, s_ref, "search statistics must match exactly");
    }

    #[test]
    fn respects_lower_bound() {
        let (ctx, examples, nodes) = setup();
        let mut stats = SynthStats::default();
        // A lower bound of 1.1 is unbeatable: nothing is returned.
        let res = run(
            &SynthConfig::fast(),
            &ctx,
            &examples,
            &nodes,
            1.1,
            &mut stats,
        );
        assert!(res.is_empty());
    }

    #[test]
    fn incremental_outputs_match_direct_evaluation() {
        let (ctx, examples, nodes) = setup();
        let cfg = SynthConfig::fast();
        let mut stats = SynthStats::default();
        let res = run(&cfg, &ctx, &examples, &nodes, 0.0, &mut stats);
        for e in res.extractors().iter().take(10) {
            let direct: Vec<Vec<String>> = examples
                .iter()
                .zip(&nodes)
                .map(|(ex, ns)| e.eval(&ctx, &ex.page, ns))
                .collect();
            let c = counts_of_outputs(&examples, &dedup_outputs(&direct));
            assert!(
                (c.f1() - res.f1).abs() < 1e-9,
                "direct eval of {e} disagrees with incremental score"
            );
        }
    }

    #[test]
    fn empty_examples_degenerate() {
        let ctx = QueryContext::new("q?", ["k"]);
        let mut stats = SynthStats::default();
        let res = run(&SynthConfig::fast(), &ctx, &[], &[], 0.0, &mut stats);
        // No examples: Content scores F1=1.0 on the empty set (vacuous).
        assert!(res.f1 >= 0.0);
    }
}
