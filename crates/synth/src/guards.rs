//! `GetNextGuard` (Figure 10 of the paper): lazy bottom-up enumeration of
//! guards that classify the positive from the negative examples.
//!
//! Implementation notes beyond the paper's pseudocode:
//!
//! * **Laziness**: the caller's optimal F₁ (`opt`) rises while guards are
//!   consumed, and every `next(opt)` call applies the *current* bound when
//!   deciding which locator extensions stay in the worklist — exactly the
//!   interplay the paper credits for the pruning power of the combined
//!   search.
//! * **Incremental locator evaluation**: each entry carries the node sets
//!   its locator selects on every example, so extending a locator
//!   (`GetChildren`/`GetDescendants`) filters those sets directly instead
//!   of re-walking the tree from the root, and guard classification reads
//!   the precomputed sets. Semantically identical to `Locator::eval`,
//!   asymptotically much cheaper.
//! * **Entry arena**: entries live in an arena and guards are yielded as
//!   `(Guard, entry id)`, so the branch synthesizer can memoize extractor
//!   synthesis per locator by dense index — no `Locator` cloning or
//!   hashing on the hot path — and reuse the entry's already-propagated
//!   node sets and recall ceiling (Figure 8 line 6) instead of
//!   re-evaluating the locator from the root.
//! * **Mask tables**: in optimized mode the `[filter][node]` satisfaction
//!   masks come precomputed from the [`TaskCtx`] (one neural-feature pass
//!   per node for the whole task); `SynthConfig::reference()` recomputes
//!   them per branch with direct `NodeFilter::eval` calls, as the
//!   pre-overhaul code did.

use std::collections::VecDeque;

use webqa_dsl::{Guard, Locator, NlpPred, PageNodeId, QueryContext};
use webqa_metrics::Counts;

use crate::example::Example;
use crate::extractors::F1_EPS;
use crate::scorer::{pred_holds, TaskCtx};
use crate::stats::SynthStats;

/// A locator with its evaluation on every positive and negative example,
/// plus the recall ceiling of its positive node sets (Eq. 3).
struct Entry {
    locator: Locator,
    pos_nodes: Vec<Vec<PageNodeId>>,
    neg_nodes: Vec<Vec<PageNodeId>>,
    ub: Counts,
}

/// A guard over the current entry's locator, not yet materialized: the
/// locator is cloned into an owned [`Guard`] only if the guard actually
/// classifies the examples.
enum GuardSpec {
    Singleton,
    /// Index into [`TaskCtx::guard_preds`].
    Sat(usize),
}

/// Per-branch mask table in reference mode: `[filter][local example]` →
/// one bool per node.
type RefMasks = Vec<Vec<Vec<bool>>>;

/// Lazy guard enumerator for one (E⁺, E⁻) classification problem.
pub(crate) struct GuardEnumerator<'a> {
    task: &'a TaskCtx<'a>,
    pos: &'a [usize],
    neg: &'a [usize],
    /// Reference mode only: masks recomputed per branch via direct
    /// `NodeFilter::eval`, laid out `[filter][local example][node]` for
    /// positives and negatives separately.
    ref_masks: Option<(RefMasks, RefMasks)>,
    entries: Vec<Entry>,
    worklist: VecDeque<usize>,
    /// Guards generated from the current entry, not yet screened.
    pending: VecDeque<GuardSpec>,
    current: Option<usize>,
    yielded: usize,
}

impl<'a> GuardEnumerator<'a> {
    pub(crate) fn new(task: &'a TaskCtx<'a>, pos: &'a [usize], neg: &'a [usize]) -> Self {
        let root = Entry {
            locator: Locator::Root,
            pos_nodes: pos
                .iter()
                .map(|&i| vec![task.examples[i].page.root()])
                .collect(),
            neg_nodes: neg
                .iter()
                .map(|&i| vec![task.examples[i].page.root()])
                .collect(),
            // The ceiling is only ever consulted under `cfg.prune` (here
            // and in the branch synthesizer's memo gate); NoPrune runs
            // skip computing it entirely, as the pre-overhaul code did.
            ub: if task.cfg.prune {
                pos.iter()
                    .map(|&i| {
                        let ex = &task.examples[i];
                        ceiling(task, ex, &[ex.page.root()])
                    })
                    .sum()
            } else {
                Counts::default()
            },
        };
        let ref_masks = task.cfg.reference_kernels.then(|| {
            let masks = |idx: &[usize]| -> RefMasks {
                task.filters
                    .iter()
                    .map(|f| {
                        idx.iter()
                            .map(|&i| {
                                let ex = &task.examples[i];
                                ex.page
                                    .iter()
                                    .map(|n| f.eval(task.ctx, &ex.page, n))
                                    .collect()
                            })
                            .collect()
                    })
                    .collect()
            };
            (masks(pos), masks(neg))
        });
        GuardEnumerator {
            task,
            pos,
            neg,
            ref_masks,
            entries: vec![root],
            worklist: VecDeque::from([0]),
            pending: VecDeque::new(),
            current: None,
            yielded: 0,
        }
    }

    /// The propagated positive node sets of entry `eid` (the
    /// `PropagateExamples` result of Figure 8, already computed).
    pub(crate) fn entry_nodes(&self, eid: usize) -> &[Vec<PageNodeId>] {
        &self.entries[eid].pos_nodes
    }

    /// The recall ceiling of entry `eid`'s positive node sets (Figure 8
    /// line 6), computed when the entry was created.
    pub(crate) fn entry_ub(&self, eid: usize) -> Counts {
        self.entries[eid].ub
    }

    /// The locator of entry `eid` (reference path re-propagates from it).
    pub(crate) fn entry_locator(&self, eid: usize) -> &Locator {
        &self.entries[eid].locator
    }

    /// Yields the next guard that is true on every positive example and
    /// false on every negative one — plus its entry id — or `None` when
    /// the bounded search space is exhausted. `opt` is the caller's
    /// current best F₁, used to prune locator extensions (Figure 10,
    /// line 8).
    pub(crate) fn next(&mut self, opt: f64, stats: &mut SynthStats) -> Option<(Guard, usize)> {
        if self.yielded >= self.task.cfg.max_guards_per_branch {
            return None;
        }
        loop {
            if let Some(eid) = self.current {
                while let Some(spec) = self.pending.pop_front() {
                    if self.analysis_rejects(&spec, eid) {
                        stats.analysis_pruned_guards += 1;
                        continue;
                    }
                    if self.classifies(&spec, eid) {
                        self.yielded += 1;
                        stats.guards_yielded += 1;
                        return Some((self.materialize(&spec, eid), eid));
                    }
                }
                self.current = None;
            }
            let eid = self.worklist.pop_front()?;
            // `GenGuards(ν)` (Figure 10 line 5), deferred: specs only.
            self.pending.push_back(GuardSpec::Singleton);
            for pi in 0..self.task.guard_preds.len() {
                self.pending.push_back(GuardSpec::Sat(pi));
            }
            self.expand(eid, opt, stats);
            self.current = Some(eid);
        }
    }

    fn mask_pos(&self, fi: usize, k: usize) -> &[bool] {
        match &self.ref_masks {
            Some((pm, _)) => &pm[fi][k],
            None => self.task.mask(self.pos[k], fi),
        }
    }

    fn mask_neg(&self, fi: usize, k: usize) -> &[bool] {
        match &self.ref_masks {
            Some((_, nm)) => &nm[fi][k],
            None => self.task.mask(self.neg[k], fi),
        }
    }

    /// Whether the abstract interpreter proves this guard can never
    /// classify `(E⁺, E⁻)`, without evaluating it. Two sound verdicts
    /// (both page-independent, so reference and optimized runs agree):
    ///
    /// * the predicate is provably `⊥` under the query context, so
    ///   `Sat` cannot hold on any positive example (requires `E⁺ ≠ ∅` —
    ///   with no positives a false predicate trivially *rejects* every
    ///   negative and the guard may legitimately classify);
    /// * the guard is provably `⊤` (locator of cardinality exactly one —
    ///   `GetRoot` — with a provably-true predicate, or `IsSingleton`
    ///   over it), so it cannot reject any negative (requires `E⁻ ≠ ∅`).
    fn analysis_rejects(&self, spec: &GuardSpec, eid: usize) -> bool {
        let facts = &self.task.analysis;
        if !facts.enabled {
            return false;
        }
        let always_one = matches!(self.entries[eid].locator, Locator::Root);
        match spec {
            GuardSpec::Singleton => always_one && !self.neg.is_empty(),
            GuardSpec::Sat(pi) => match facts.guard_pred_truth[*pi] {
                webqa_dsl::Truth::False => !self.pos.is_empty(),
                webqa_dsl::Truth::True => always_one && !self.neg.is_empty(),
                webqa_dsl::Truth::Unknown => false,
            },
        }
    }

    /// `ApplyProduction(ν)` with incremental node evaluation and the UB
    /// check of Figure 10 line 8.
    fn expand(&mut self, eid: usize, opt: f64, stats: &mut SynthStats) {
        if self.entries[eid].locator.depth() >= self.task.cfg.guard_depth {
            return;
        }
        // Analysis prune (sound, kernel-mode-invariant): a locator whose
        // node sets are empty on every positive example can never back a
        // classifying guard — and neither can any extension of it, since
        // productions only filter the frontier. `empty_child[fi*2+di]`
        // records which extensions of *this* entry came up empty so that
        // provably-stronger filters (`filter_implied`) skip the node
        // propagation entirely. Gated on `E⁺ ≠ ∅`: with no positives the
        // "empty on all positives" condition is vacuous, not a proof.
        let analyze = self.task.analysis.enabled && !self.pos.is_empty();
        let mut empty_child = vec![false; self.task.filters.len() * 2];
        let mut created: Vec<Entry> = Vec::new();
        for fi in 0..self.task.filters.len() {
            for descend in [false, true] {
                let di = fi * 2 + usize::from(descend);
                if analyze
                    && self.task.analysis.filter_implied[fi]
                        .iter()
                        .any(|&fj| empty_child[fj * 2 + usize::from(descend)])
                {
                    empty_child[di] = true;
                    stats.analysis_pruned_locators += 1;
                    continue;
                }
                stats.locators_expanded += 1;
                let entry = &self.entries[eid];
                let pos_nodes: Vec<Vec<PageNodeId>> = self
                    .pos
                    .iter()
                    .enumerate()
                    .map(|(k, &i)| {
                        step_nodes_masked(
                            &self.task.examples[i],
                            &entry.pos_nodes[k],
                            self.mask_pos(fi, k),
                            descend,
                        )
                    })
                    .collect();
                if analyze && pos_nodes.iter().all(Vec::is_empty) {
                    empty_child[di] = true;
                    stats.analysis_pruned_locators += 1;
                    continue;
                }
                // Only computed when pruning can read it (the NoPrune
                // ablation must not pay for an unused bound).
                let ub: Counts = if self.task.cfg.prune {
                    self.pos
                        .iter()
                        .zip(&pos_nodes)
                        .map(|(&i, nodes)| ceiling(self.task, &self.task.examples[i], nodes))
                        .sum()
                } else {
                    Counts::default()
                };
                if self.task.cfg.prune && ub.upper_bound() + F1_EPS < opt {
                    stats.locators_pruned += 1;
                    continue;
                }
                let neg_nodes: Vec<Vec<PageNodeId>> = self
                    .neg
                    .iter()
                    .enumerate()
                    .map(|(k, &i)| {
                        step_nodes_masked(
                            &self.task.examples[i],
                            &entry.neg_nodes[k],
                            self.mask_neg(fi, k),
                            descend,
                        )
                    })
                    .collect();
                let filter = self.task.filters[fi].clone();
                let locator = if descend {
                    Locator::Descendants(Box::new(entry.locator.clone()), filter)
                } else {
                    Locator::Children(Box::new(entry.locator.clone()), filter)
                };
                created.push(Entry {
                    locator,
                    pos_nodes,
                    neg_nodes,
                    ub,
                });
            }
        }
        let base = self.entries.len();
        self.worklist.extend(base..base + created.len());
        self.entries.extend(created);
    }

    /// Figure 10 line 6: `∀e ∈ E⁺. ψ(e)` and `∀e ∈ E⁻. ¬ψ(e)`, evaluated
    /// against the entry's precomputed node sets.
    fn classifies(&self, spec: &GuardSpec, eid: usize) -> bool {
        let entry = &self.entries[eid];
        match spec {
            GuardSpec::Singleton => {
                entry.pos_nodes.iter().all(|nodes| nodes.len() == 1)
                    && entry.neg_nodes.iter().all(|nodes| nodes.len() != 1)
            }
            GuardSpec::Sat(pi) => {
                let pred = &self.task.guard_preds[*pi];
                let holds = |i: usize, nodes: &Vec<PageNodeId>| -> bool {
                    let ex = &self.task.examples[i];
                    if self.task.cfg.reference_kernels {
                        nodes
                            .iter()
                            .any(|&n| pred.eval(self.task.ctx, ex.page.text(n)))
                    } else {
                        let feats = self.task.feats(i);
                        nodes.iter().any(|&n| pred_holds(pred, &feats[n.index()]))
                    }
                };
                self.pos
                    .iter()
                    .zip(&entry.pos_nodes)
                    .all(|(&i, nodes)| holds(i, nodes))
                    && self
                        .neg
                        .iter()
                        .zip(&entry.neg_nodes)
                        .all(|(&i, nodes)| !holds(i, nodes))
            }
        }
    }

    fn materialize(&self, spec: &GuardSpec, eid: usize) -> Guard {
        let locator = self.entries[eid].locator.clone();
        match spec {
            GuardSpec::Singleton => Guard::IsSingleton(locator),
            GuardSpec::Sat(pi) => Guard::Sat(locator, self.task.guard_preds[*pi].clone()),
        }
    }
}

/// The ceiling kernel selected by the config's kernel mode.
fn ceiling(task: &TaskCtx, ex: &Example, nodes: &[PageNodeId]) -> Counts {
    if task.cfg.reference_kernels {
        ex.ceiling_counts_reference(nodes)
    } else {
        ex.ceiling_counts(nodes)
    }
}

/// One locator production step evaluated on a precomputed node set —
/// semantically `Locator::eval(Children/Descendants(ν, f))` given
/// `nodes = ν.eval(page)` and the filter's satisfaction mask. Descendant
/// steps read the example's pre-order subtree ranges instead of walking
/// (and allocating) the descendant list per node.
fn step_nodes_masked(
    ex: &Example,
    nodes: &[PageNodeId],
    mask: &[bool],
    descend: bool,
) -> Vec<PageNodeId> {
    let mut out = Vec::new();
    for &n in nodes {
        if descend {
            let range = n.index() + 1..ex.subtree_end_of(n);
            for (i, _) in mask[range.clone()].iter().enumerate().filter(|(_, m)| **m) {
                out.push(PageNodeId(range.start + i));
            }
        } else {
            for &c in ex.page.children(n) {
                if mask[c.index()] {
                    out.push(c);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The nodes a locator binds to `x` on each example page
/// (`PropagateExamples` of Figure 8) — the definitional evaluation used
/// by the reference kernels and the `NoDecomp` ablation tests.
pub(crate) fn propagate_examples<'e>(
    ctx: &QueryContext,
    locator: &Locator,
    examples: impl IntoIterator<Item = &'e Example>,
) -> Vec<Vec<PageNodeId>> {
    examples
        .into_iter()
        .map(|ex| locator.eval(ctx, &ex.page))
        .collect()
}

/// Convenience: the trivially-true guard `Sat(GetRoot, ⊤)` used as a
/// fallback when a branch needs no discrimination.
#[allow(dead_code)]
pub(crate) fn trivial_guard() -> Guard {
    Guard::Sat(Locator::Root, NlpPred::True)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use webqa_dsl::{NodeFilter, PageTree};

    fn example(html: &str, gold: &[&str]) -> Example {
        Example::new(
            PageTree::parse(html),
            gold.iter().map(|s| s.to_string()).collect(),
        )
    }

    fn ctx() -> QueryContext {
        QueryContext::new("Who are the students?", ["Students"])
    }

    fn guard_true(ctx: &QueryContext, guard: &Guard, ex: &Example) -> bool {
        guard.eval(ctx, &ex.page).0
    }

    fn drain(
        task: &TaskCtx,
        pos: &[usize],
        neg: &[usize],
        opt: f64,
        stats: &mut SynthStats,
        cap: usize,
    ) -> Vec<Guard> {
        let mut en = GuardEnumerator::new(task, pos, neg);
        let mut out = Vec::new();
        while let Some((g, _)) = en.next(opt, stats) {
            out.push(g);
            if out.len() >= cap {
                break;
            }
        }
        out
    }

    #[test]
    fn first_guard_is_over_root() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let examples = [example("<h1>R</h1><p>x</p>", &["x"])];
        let task = TaskCtx::new(&cfg, &c, &examples);
        let mut en = GuardEnumerator::new(&task, &[0], &[]);
        let mut stats = SynthStats::default();
        let (g, eid) = en.next(0.0, &mut stats).expect("some guard");
        assert_eq!(g.locator(), &Locator::Root);
        assert_eq!(eid, 0);
        assert_eq!(en.entry_locator(eid), &Locator::Root);
    }

    #[test]
    fn incremental_step_matches_direct_eval() {
        let c = ctx();
        let ex = example(
            "<h1>R</h1><h2>Students</h2><ul><li>Jane Doe</li></ul><h2>B</h2><p>t</p>",
            &[],
        );
        for filter in [NodeFilter::True, NodeFilter::IsLeaf, NodeFilter::IsElem] {
            for descend in [false, true] {
                let base = Locator::Root;
                let base_nodes = base.eval(&c, &ex.page);
                let mask: Vec<bool> = ex
                    .page
                    .iter()
                    .map(|n| filter.eval(&c, &ex.page, n))
                    .collect();
                let stepped = step_nodes_masked(&ex, &base_nodes, &mask, descend);
                let direct = if descend {
                    Locator::Descendants(Box::new(base.clone()), filter.clone())
                } else {
                    Locator::Children(Box::new(base.clone()), filter.clone())
                }
                .eval(&c, &ex.page);
                assert_eq!(stepped, direct, "filter {filter} descend {descend}");
            }
        }
    }

    #[test]
    fn separates_positive_from_negative() {
        for cfg in [
            SynthConfig::fast(),
            SynthConfig::fast().with_reference_kernels(),
        ] {
            let c = ctx();
            // Positive pages have a "Students" section; negatives don't.
            let examples = [
                example(
                    "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
                    &["Jane Doe"],
                ),
                example(
                    "<h1>B</h1><h2>PhD Students</h2><ul><li>Bob Smith</li></ul>",
                    &["Bob Smith"],
                ),
                example("<h1>C</h1><h2>Contact</h2><p>email</p>", &[]),
            ];
            let task = TaskCtx::new(&cfg, &c, &examples);
            let mut stats = SynthStats::default();
            let found = drain(&task, &[0, 1], &[2], 0.0, &mut stats, 5);
            assert!(!found.is_empty(), "must find a separating guard");
            for g in &found {
                assert!(guard_true(&c, g, &examples[0]));
                assert!(guard_true(&c, g, &examples[1]));
                assert!(!guard_true(&c, g, &examples[2]));
            }
        }
    }

    #[test]
    fn reference_and_optimized_yield_identical_guard_streams() {
        let c = ctx();
        let examples = [
            example(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Ann Lee</li></ul>\
                 <h2>News</h2><p>PLDI 2021</p>",
                &["Jane Doe", "Ann Lee"],
            ),
            example("<h1>C</h1><h2>Contact</h2><p>email us</p>", &[]),
        ];
        for opt in [0.0, 0.7] {
            let cfg_fast = SynthConfig::fast();
            let cfg_ref = SynthConfig::fast().with_reference_kernels();
            let task_fast = TaskCtx::new(&cfg_fast, &c, &examples);
            let task_ref = TaskCtx::new(&cfg_ref, &c, &examples);
            let mut s1 = SynthStats::default();
            let mut s2 = SynthStats::default();
            let fast = drain(&task_fast, &[0], &[1], opt, &mut s1, usize::MAX);
            let slow = drain(&task_ref, &[0], &[1], opt, &mut s2, usize::MAX);
            assert_eq!(fast, slow, "guard streams diverge at opt={opt}");
            assert_eq!(s1, s2, "stats diverge at opt={opt}");
        }
    }

    #[test]
    fn exhausts_eventually() {
        let mut cfg = SynthConfig::fast();
        cfg.guard_depth = 1; // only Root
        let c = ctx();
        let examples = [example("<h1>R</h1>", &[])];
        let task = TaskCtx::new(&cfg, &c, &examples);
        let mut en = GuardEnumerator::new(&task, &[0], &[]);
        let mut stats = SynthStats::default();
        let mut n = 0;
        while en.next(0.0, &mut stats).is_some() {
            n += 1;
            assert!(n < 1000, "enumerator must terminate");
        }
        assert!(n > 0);
    }

    #[test]
    fn high_opt_prunes_locator_extensions() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let examples = [example(
            "<h1>R</h1><h2>S</h2><p>gold here</p>",
            &["gold here"],
        )];
        let task = TaskCtx::new(&cfg, &c, &examples);
        let mut s_low = SynthStats::default();
        let mut s_high = SynthStats::default();
        drain(&task, &[0], &[], 0.0, &mut s_low, usize::MAX);
        drain(&task, &[0], &[], 0.999, &mut s_high, usize::MAX);
        assert!(
            s_high.locators_pruned >= s_low.locators_pruned,
            "a higher bound can only prune more"
        );
    }

    #[test]
    fn respects_guard_cap() {
        let mut cfg = SynthConfig::fast();
        cfg.max_guards_per_branch = 3;
        let c = ctx();
        let examples = [example("<h1>R</h1><p>x</p>", &["x"])];
        let task = TaskCtx::new(&cfg, &c, &examples);
        let mut en = GuardEnumerator::new(&task, &[0], &[]);
        let mut stats = SynthStats::default();
        let mut n = 0;
        while en.next(0.0, &mut stats).is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn impossible_classification_yields_nothing_over_root() {
        // Same page as positive and negative: no guard can separate them.
        let cfg = SynthConfig::fast();
        let c = ctx();
        let page = "<h1>R</h1><h2>S</h2><p>x</p>";
        let examples = [example(page, &["x"]), example(page, &[])];
        let task = TaskCtx::new(&cfg, &c, &examples);
        let mut en = GuardEnumerator::new(&task, &[0], &[1]);
        let mut stats = SynthStats::default();
        assert!(en.next(0.0, &mut stats).is_none());
    }

    #[test]
    fn yielded_guards_classify_via_public_eval_too() {
        // The incremental classification must agree with Guard::eval.
        let cfg = SynthConfig::fast();
        let c = ctx();
        let examples = [
            example(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
                &["Jane Doe"],
            ),
            example("<h1>C</h1><h2>Contact</h2><p>email</p>", &[]),
        ];
        let task = TaskCtx::new(&cfg, &c, &examples);
        let mut stats = SynthStats::default();
        let found = drain(&task, &[0], &[1], 0.0, &mut stats, 20);
        assert!(!found.is_empty());
        for g in &found {
            assert!(guard_true(&c, g, &examples[0]));
            assert!(!guard_true(&c, g, &examples[1]));
        }
    }

    #[test]
    fn entry_ub_matches_recomputed_ceiling() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let examples = [example(
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul><h2>B</h2><p>x</p>",
            &["Jane Doe"],
        )];
        let task = TaskCtx::new(&cfg, &c, &examples);
        let mut en = GuardEnumerator::new(&task, &[0], &[]);
        let mut stats = SynthStats::default();
        while let Some((_, eid)) = en.next(0.0, &mut stats) {
            let recomputed: Counts = en
                .entry_nodes(eid)
                .iter()
                .map(|nodes| examples[0].ceiling_counts(nodes))
                .sum();
            assert_eq!(en.entry_ub(eid), recomputed);
            // The stored nodes equal a fresh propagation of the locator.
            let direct = propagate_examples(&c, en.entry_locator(eid), [&examples[0]]);
            assert_eq!(en.entry_nodes(eid), direct.as_slice());
        }
    }
}
