//! `GetNextGuard` (Figure 10 of the paper): lazy bottom-up enumeration of
//! guards that classify the positive from the negative examples.
//!
//! Two implementation notes beyond the paper's pseudocode:
//!
//! * **Laziness**: the caller's optimal F₁ (`opt`) rises while guards are
//!   consumed, and every `next(opt)` call applies the *current* bound when
//!   deciding which locator extensions stay in the worklist — exactly the
//!   interplay the paper credits for the pruning power of the combined
//!   search.
//! * **Incremental locator evaluation**: each worklist entry carries the
//!   node sets its locator selects on every example, so extending a
//!   locator (`GetChildren`/`GetDescendants`) filters those sets directly
//!   instead of re-walking the tree from the root, and guard
//!   classification reads the precomputed sets. Semantically identical to
//!   `Locator::eval`, asymptotically much cheaper.

use std::collections::VecDeque;

use webqa_dsl::{Guard, Locator, NlpPred, NodeFilter, PageNodeId, PageTree, QueryContext};

use crate::config::SynthConfig;
use crate::example::Example;
use crate::extractors::F1_EPS;
use crate::pool::{gen_guards, node_filters};
use crate::stats::SynthStats;

/// A locator with its evaluation on every positive and negative example.
struct Entry {
    locator: Locator,
    pos_nodes: Vec<Vec<PageNodeId>>,
    neg_nodes: Vec<Vec<PageNodeId>>,
}

/// Lazy guard enumerator for one (E⁺, E⁻) classification problem.
pub(crate) struct GuardEnumerator<'a> {
    cfg: &'a SynthConfig,
    ctx: &'a QueryContext,
    pos: &'a [Example],
    neg: &'a [Example],
    /// The node-filter pool, with each filter's satisfaction mask
    /// precomputed per example node (`pos_masks[f][example][node]`). The
    /// same (filter, node) pair is queried by *every* locator extension;
    /// computing it once turns expansion into pure set filtering.
    filters: Vec<NodeFilter>,
    pos_masks: Vec<Vec<Vec<bool>>>,
    neg_masks: Vec<Vec<Vec<bool>>>,
    worklist: VecDeque<Entry>,
    /// Guards generated from the current entry, not yet screened.
    pending: VecDeque<Guard>,
    current: Option<Entry>,
    yielded: usize,
}

impl<'a> GuardEnumerator<'a> {
    pub(crate) fn new(
        cfg: &'a SynthConfig,
        ctx: &'a QueryContext,
        pos: &'a [Example],
        neg: &'a [Example],
    ) -> Self {
        let mut worklist = VecDeque::new();
        worklist.push_back(Entry {
            locator: Locator::Root,
            pos_nodes: pos.iter().map(|ex| vec![ex.page.root()]).collect(),
            neg_nodes: neg.iter().map(|ex| vec![ex.page.root()]).collect(),
        });
        let filters = node_filters(cfg, ctx);
        let masks = |examples: &[Example]| -> Vec<Vec<Vec<bool>>> {
            filters
                .iter()
                .map(|f| {
                    examples
                        .iter()
                        .map(|ex| ex.page.iter().map(|n| f.eval(ctx, &ex.page, n)).collect())
                        .collect()
                })
                .collect()
        };
        let pos_masks = masks(pos);
        let neg_masks = masks(neg);
        GuardEnumerator {
            cfg,
            ctx,
            pos,
            neg,
            filters,
            pos_masks,
            neg_masks,
            worklist,
            pending: VecDeque::new(),
            current: None,
            yielded: 0,
        }
    }

    /// Yields the next guard that is true on every positive example and
    /// false on every negative one, or `None` when the bounded search
    /// space is exhausted. `opt` is the caller's current best F₁, used to
    /// prune locator extensions (Figure 10, line 8).
    pub(crate) fn next(&mut self, opt: f64, stats: &mut SynthStats) -> Option<Guard> {
        if self.yielded >= self.cfg.max_guards_per_branch {
            return None;
        }
        loop {
            if let Some(entry) = &self.current {
                while let Some(guard) = self.pending.pop_front() {
                    if self.classifies(&guard, entry) {
                        self.yielded += 1;
                        stats.guards_yielded += 1;
                        return Some(guard);
                    }
                }
                self.current = None;
            }
            let entry = self.worklist.pop_front()?;
            self.pending
                .extend(gen_guards(self.cfg, self.ctx, &entry.locator));
            self.expand(&entry, opt, stats);
            self.current = Some(entry);
        }
    }

    /// `ApplyProduction(ν)` with incremental node evaluation and the UB
    /// check of Figure 10 line 8.
    fn expand(&mut self, entry: &Entry, opt: f64, stats: &mut SynthStats) {
        if entry.locator.depth() >= self.cfg.guard_depth {
            return;
        }
        for (fi, filter) in self.filters.iter().enumerate() {
            for descend in [false, true] {
                stats.locators_expanded += 1;
                let pos_nodes: Vec<Vec<PageNodeId>> = entry
                    .pos_nodes
                    .iter()
                    .zip(self.pos)
                    .zip(&self.pos_masks[fi])
                    .map(|((nodes, ex), mask)| step_nodes_masked(&ex.page, nodes, mask, descend))
                    .collect();
                if self.cfg.prune {
                    let ub: webqa_metrics::Counts = self
                        .pos
                        .iter()
                        .zip(&pos_nodes)
                        .map(|(ex, nodes)| ex.ceiling_counts(nodes))
                        .sum();
                    if ub.upper_bound() + F1_EPS < opt {
                        stats.locators_pruned += 1;
                        continue;
                    }
                }
                let neg_nodes: Vec<Vec<PageNodeId>> = entry
                    .neg_nodes
                    .iter()
                    .zip(self.neg)
                    .zip(&self.neg_masks[fi])
                    .map(|((nodes, ex), mask)| step_nodes_masked(&ex.page, nodes, mask, descend))
                    .collect();
                let locator = if descend {
                    Locator::Descendants(Box::new(entry.locator.clone()), filter.clone())
                } else {
                    Locator::Children(Box::new(entry.locator.clone()), filter.clone())
                };
                self.worklist.push_back(Entry {
                    locator,
                    pos_nodes,
                    neg_nodes,
                });
            }
        }
    }

    /// Figure 10 line 6: `∀e ∈ E⁺. ψ(e)` and `∀e ∈ E⁻. ¬ψ(e)`, evaluated
    /// against the entry's precomputed node sets.
    fn classifies(&self, guard: &Guard, entry: &Entry) -> bool {
        let holds = |ex: &Example, nodes: &Vec<PageNodeId>| match guard {
            Guard::Sat(_, pred) => nodes.iter().any(|&n| pred.eval(self.ctx, ex.page.text(n))),
            Guard::IsSingleton(_) => nodes.len() == 1,
        };
        self.pos
            .iter()
            .zip(&entry.pos_nodes)
            .all(|(ex, nodes)| holds(ex, nodes))
            && self
                .neg
                .iter()
                .zip(&entry.neg_nodes)
                .all(|(ex, nodes)| !holds(ex, nodes))
    }
}

/// One locator production step evaluated on a precomputed node set —
/// semantically `Locator::eval(Children/Descendants(ν, f))` given
/// `nodes = ν.eval(page)` and the filter's satisfaction mask.
fn step_nodes_masked(
    page: &PageTree,
    nodes: &[PageNodeId],
    mask: &[bool],
    descend: bool,
) -> Vec<PageNodeId> {
    let mut out = Vec::new();
    for &n in nodes {
        if descend {
            for d in page.descendants(n) {
                if mask[d.index()] {
                    out.push(d);
                }
            }
        } else {
            for &c in page.children(n) {
                if mask[c.index()] {
                    out.push(c);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The nodes a guard binds to `x` on each example page
/// (`PropagateExamples` of Figure 8).
pub(crate) fn propagate_examples(
    ctx: &QueryContext,
    locator: &Locator,
    examples: &[Example],
) -> Vec<Vec<PageNodeId>> {
    examples
        .iter()
        .map(|ex| locator.eval(ctx, &ex.page))
        .collect()
}

/// Convenience: the trivially-true guard `Sat(GetRoot, ⊤)` used as a
/// fallback when a branch needs no discrimination.
#[allow(dead_code)]
pub(crate) fn trivial_guard() -> Guard {
    Guard::Sat(Locator::Root, NlpPred::True)
}

#[cfg(test)]
mod tests {
    use super::*;
    use webqa_dsl::PageTree;

    fn example(html: &str, gold: &[&str]) -> Example {
        Example::new(
            PageTree::parse(html),
            gold.iter().map(|s| s.to_string()).collect(),
        )
    }

    fn ctx() -> QueryContext {
        QueryContext::new("Who are the students?", ["Students"])
    }

    fn guard_true(ctx: &QueryContext, guard: &Guard, ex: &Example) -> bool {
        guard.eval(ctx, &ex.page).0
    }

    #[test]
    fn first_guard_is_over_root() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let pos = [example("<h1>R</h1><p>x</p>", &["x"])];
        let mut en = GuardEnumerator::new(&cfg, &c, &pos, &[]);
        let mut stats = SynthStats::default();
        let g = en.next(0.0, &mut stats).expect("some guard");
        assert_eq!(g.locator(), &Locator::Root);
    }

    #[test]
    fn incremental_step_matches_direct_eval() {
        let c = ctx();
        let ex = example(
            "<h1>R</h1><h2>Students</h2><ul><li>Jane Doe</li></ul><h2>B</h2><p>t</p>",
            &[],
        );
        for filter in [NodeFilter::True, NodeFilter::IsLeaf, NodeFilter::IsElem] {
            for descend in [false, true] {
                let base = Locator::Root;
                let base_nodes = base.eval(&c, &ex.page);
                let mask: Vec<bool> = ex
                    .page
                    .iter()
                    .map(|n| filter.eval(&c, &ex.page, n))
                    .collect();
                let stepped = step_nodes_masked(&ex.page, &base_nodes, &mask, descend);
                let direct = if descend {
                    Locator::Descendants(Box::new(base.clone()), filter.clone())
                } else {
                    Locator::Children(Box::new(base.clone()), filter.clone())
                }
                .eval(&c, &ex.page);
                assert_eq!(stepped, direct, "filter {filter} descend {descend}");
            }
        }
    }

    #[test]
    fn separates_positive_from_negative() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        // Positive pages have a "Students" section; negatives don't.
        let pos = [
            example(
                "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
                &["Jane Doe"],
            ),
            example(
                "<h1>B</h1><h2>PhD Students</h2><ul><li>Bob Smith</li></ul>",
                &["Bob Smith"],
            ),
        ];
        let neg = [example("<h1>C</h1><h2>Contact</h2><p>email</p>", &[])];
        let mut en = GuardEnumerator::new(&cfg, &c, &pos, &neg);
        let mut stats = SynthStats::default();
        let mut found = Vec::new();
        while let Some(g) = en.next(0.0, &mut stats) {
            found.push(g);
            if found.len() >= 5 {
                break;
            }
        }
        assert!(!found.is_empty(), "must find a separating guard");
        for g in &found {
            assert!(pos.iter().all(|e| guard_true(&c, g, e)));
            assert!(neg.iter().all(|e| !guard_true(&c, g, e)));
        }
    }

    #[test]
    fn exhausts_eventually() {
        let mut cfg = SynthConfig::fast();
        cfg.guard_depth = 1; // only Root
        let c = ctx();
        let pos = [example("<h1>R</h1>", &[])];
        let mut en = GuardEnumerator::new(&cfg, &c, &pos, &[]);
        let mut stats = SynthStats::default();
        let mut n = 0;
        while en.next(0.0, &mut stats).is_some() {
            n += 1;
            assert!(n < 1000, "enumerator must terminate");
        }
        assert!(n > 0);
    }

    #[test]
    fn high_opt_prunes_locator_extensions() {
        let cfg = SynthConfig::fast();
        let c = ctx();
        let pos = [example(
            "<h1>R</h1><h2>S</h2><p>gold here</p>",
            &["gold here"],
        )];
        let mut s_low = SynthStats::default();
        let mut s_high = SynthStats::default();
        let mut lo = GuardEnumerator::new(&cfg, &c, &pos, &[]);
        while lo.next(0.0, &mut s_low).is_some() {}
        let mut hi = GuardEnumerator::new(&cfg, &c, &pos, &[]);
        while hi.next(0.999, &mut s_high).is_some() {}
        assert!(
            s_high.locators_pruned >= s_low.locators_pruned,
            "a higher bound can only prune more"
        );
    }

    #[test]
    fn respects_guard_cap() {
        let mut cfg = SynthConfig::fast();
        cfg.max_guards_per_branch = 3;
        let c = ctx();
        let pos = [example("<h1>R</h1><p>x</p>", &["x"])];
        let mut en = GuardEnumerator::new(&cfg, &c, &pos, &[]);
        let mut stats = SynthStats::default();
        let mut n = 0;
        while en.next(0.0, &mut stats).is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn impossible_classification_yields_nothing_over_root() {
        // Same page as positive and negative: no guard can separate them.
        let cfg = SynthConfig::fast();
        let c = ctx();
        let page = "<h1>R</h1><h2>S</h2><p>x</p>";
        let pos = [example(page, &["x"])];
        let neg = [example(page, &[])];
        let mut en = GuardEnumerator::new(&cfg, &c, &pos, &neg);
        let mut stats = SynthStats::default();
        assert!(en.next(0.0, &mut stats).is_none());
    }

    #[test]
    fn yielded_guards_classify_via_public_eval_too() {
        // The incremental classification must agree with Guard::eval.
        let cfg = SynthConfig::fast();
        let c = ctx();
        let pos = [example(
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li></ul>",
            &["Jane Doe"],
        )];
        let neg = [example("<h1>C</h1><h2>Contact</h2><p>email</p>", &[])];
        let mut en = GuardEnumerator::new(&cfg, &c, &pos, &neg);
        let mut stats = SynthStats::default();
        let mut n = 0;
        while let Some(g) = en.next(0.0, &mut stats) {
            assert!(guard_true(&c, &g, &pos[0]));
            assert!(!guard_true(&c, &g, &neg[0]));
            n += 1;
            if n >= 20 {
                break;
            }
        }
        assert!(n > 0);
    }
}
