//! Synthesizer configuration (the hyper-parameters of Section 7).

/// Tuning knobs for the synthesis algorithms.
///
/// The paper's defaults are guard depth 7, extractor depth 5, and a
/// keyword-threshold grid with step 0.05. [`SynthConfig::paper`] mirrors
/// those; [`SynthConfig::fast`] is a reduced grid with the same search
/// *structure* used where full depth is computationally irrelevant to the
/// reproduced result (documented per bench).
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Maximum locator-spine depth of guards (paper default: 7).
    pub guard_depth: usize,
    /// Maximum extractor-spine depth (paper default: 5).
    pub extractor_depth: usize,
    /// Keyword-similarity thresholds to enumerate (paper: step 0.05).
    pub thresholds: Vec<f64>,
    /// Split delimiters to enumerate.
    pub delimiters: Vec<char>,
    /// `k` values enumerated for `Substring(e, φ, k)`.
    pub substring_ks: Vec<usize>,
    /// Maximum number of blocks in an example partition (Figure 7
    /// enumerates all partitions; this caps their size).
    pub max_blocks: usize,
    /// Cap on guards yielded per branch before the enumerator gives up.
    pub max_guards_per_branch: usize,
    /// Cap on the number of optimal programs materialized.
    pub max_programs: usize,
    /// Whether UB-based pruning is enabled (the `WebQA-NoPrune` ablation
    /// sets this to `false`).
    pub prune: bool,
    /// Whether the abstract-interpretation prune is enabled: candidates
    /// the `webqa_dsl::analysis` verdicts prove dead (guards that can
    /// never classify, locator extensions selecting no nodes, extractor
    /// extensions with provably-empty outputs) are skipped before being
    /// built or scored. A *sound* prune alongside the UB cut — programs,
    /// counts, and F₁ are unchanged for any value (held by
    /// `tests/synth_parity.rs`); only the `analysis_pruned_*` counters
    /// and the work they save move. [`SynthConfig::without_analysis`]
    /// is the ablation.
    pub analysis: bool,
    /// Whether guard/extractor synthesis is decomposed (the
    /// `WebQA-NoDecomp` ablation sets this to `false`).
    pub decompose: bool,
    /// Whether guards are enumerated lazily, feeding the rising optimum
    /// back into locator pruning (Figure 10). The `NoLazy` ablation sets
    /// this to `false`: all classifying guards are generated up-front
    /// with a bound of 0, so locator pruning never strengthens.
    pub lazy_guards: bool,
    /// Include boolean connectives (`∧`) of leaf node-filters in the
    /// enumeration pool.
    pub filter_conjunctions: bool,
    /// Route every scoring / mask / memo decision through the original
    /// definitional string kernels instead of the interned-id hot path.
    /// The search *semantics* are identical — `tests/synth_parity.rs`
    /// proves it on the full corpus — only the work per decision differs.
    /// See [`SynthConfig::reference`].
    pub reference_kernels: bool,
    /// Worker threads for branch-level parallel synthesis *inside* one
    /// task: the distinct partition-block problems of Figure 7 fan out
    /// over a scoped pool and merge in deterministic order. `0`/`1` both
    /// mean sequential. Programs, counts, and F₁ are identical for any
    /// value; the [`SynthStats`](crate::SynthStats) counters can grow
    /// with `jobs > 1` because blocks the lazy sequential scan would have
    /// skipped (those following a failing block in every containing
    /// partition) are solved speculatively, and their search work counts.
    pub jobs: usize,
}

impl SynthConfig {
    /// The paper's hyper-parameters (Section 7).
    pub fn paper() -> Self {
        SynthConfig {
            guard_depth: 7,
            extractor_depth: 5,
            thresholds: (1..=19).map(|i| f64::from(i) * 0.05).collect(),
            delimiters: vec![',', ';', ':'],
            substring_ks: vec![1, 2, 3],
            max_blocks: 5,
            max_guards_per_branch: 512,
            max_programs: 5_000,
            prune: true,
            analysis: true,
            decompose: true,
            lazy_guards: true,
            filter_conjunctions: true,
            reference_kernels: false,
            jobs: 1,
        }
    }

    /// A reduced configuration with the same search structure: coarser
    /// threshold grid, shallower guards. Used by tests and by benches
    /// whose reproduced quantity does not depend on exhaustive depth.
    pub fn fast() -> Self {
        SynthConfig {
            guard_depth: 3,
            extractor_depth: 4,
            thresholds: vec![0.5, 0.65, 0.8, 0.95],
            delimiters: vec![',', ';'],
            substring_ks: vec![1, 2],
            max_blocks: 2,
            max_guards_per_branch: 1024,
            max_programs: 1_500,
            prune: true,
            analysis: true,
            decompose: true,
            lazy_guards: true,
            filter_conjunctions: false,
            reference_kernels: false,
            jobs: 1,
        }
    }

    /// The slow-path reference configuration: [`SynthConfig::fast`]'s
    /// search parameters with every hot-path kernel replaced by the
    /// original definitional evaluation (string tokenization per score,
    /// direct `NodeFilter::eval` masks, locator re-propagation at every
    /// memo miss). Same optimum, same programs, same counts — the parity
    /// suite (`tests/synth_parity.rs`) holds the two paths equal on the
    /// whole corpus.
    pub fn reference() -> Self {
        Self::fast().with_reference_kernels()
    }

    /// Switches any configuration onto the definitional reference
    /// kernels (see [`SynthConfig::reference`]).
    pub fn with_reference_kernels(mut self) -> Self {
        self.reference_kernels = true;
        self
    }

    /// Sets the branch-level worker-thread count (see
    /// [`SynthConfig::jobs`]).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// The `WebQA-NoPrune` ablation of Section 8.2.
    pub fn without_pruning(mut self) -> Self {
        self.prune = false;
        self
    }

    /// Disables the abstract-interpretation prune (the `NoAnalysis`
    /// ablation — this repo's extension; see [`SynthConfig::analysis`]).
    pub fn without_analysis(mut self) -> Self {
        self.analysis = false;
        self
    }

    /// The `WebQA-NoDecomp` ablation of Section 8.2.
    pub fn without_decomposition(mut self) -> Self {
        self.decompose = false;
        self
    }

    /// The `NoLazy` ablation: guards are enumerated eagerly with no
    /// optimum feedback (this repo's extension of the Section 8.2 study;
    /// the paper credits lazy enumeration for pruning power but does not
    /// ablate it separately).
    pub fn without_lazy_guards(mut self) -> Self {
        self.lazy_guards = false;
        self
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self::fast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threshold_grid_has_step_005() {
        let c = SynthConfig::paper();
        assert_eq!(c.thresholds.len(), 19);
        assert!((c.thresholds[0] - 0.05).abs() < 1e-12);
        assert!((c.thresholds[18] - 0.95).abs() < 1e-12);
        assert_eq!(c.guard_depth, 7);
        assert_eq!(c.extractor_depth, 5);
    }

    #[test]
    fn ablation_builders() {
        let c = SynthConfig::fast().without_pruning();
        assert!(!c.prune);
        assert!(c.decompose);
        let c = SynthConfig::fast().without_decomposition();
        assert!(c.prune);
        assert!(!c.decompose);
        let c = SynthConfig::fast().without_lazy_guards();
        assert!(!c.lazy_guards);
        assert!(c.prune && c.decompose);
        let c = SynthConfig::fast().without_analysis();
        assert!(!c.analysis);
        assert!(c.prune && c.decompose && c.lazy_guards);
        assert!(SynthConfig::fast().analysis && SynthConfig::paper().analysis);
    }

    #[test]
    fn reference_differs_only_in_kernels() {
        let mut r = SynthConfig::reference();
        assert!(r.reference_kernels);
        r.reference_kernels = false;
        assert_eq!(r, SynthConfig::fast());
    }

    #[test]
    fn jobs_builder() {
        let c = SynthConfig::fast().with_jobs(4);
        assert_eq!(c.jobs, 4);
        assert_eq!(SynthConfig::fast().jobs, 1);
    }
}
