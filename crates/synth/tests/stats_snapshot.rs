//! Search-statistics snapshot tests.
//!
//! The hot-path overhaul is only safe to evolve if a change that
//! silently *loses* pruning, memoization, or behavioral dedup fails a
//! test rather than a stopwatch. These tests pin the exact `SynthStats`
//! counters of two fixed fixtures; any structural change to the search
//! (an extra candidate enumerated, a memo hit lost, a prune skipped)
//! shifts a counter and trips the assertion.
//!
//! If a deliberate search change lands (new production pool, different
//! dedup rule, …), re-pin the numbers — after checking the *direction*
//! of each delta is the one the change intends.

use webqa_dsl::{PageTree, QueryContext};
use webqa_synth::{synthesize, Example, SynthConfig, SynthStats};

fn example(html: &str, gold: &[&str]) -> Example {
    Example::new(
        PageTree::parse(html),
        gold.iter().map(|s| s.to_string()).collect(),
    )
}

/// Fixture 1: the motivating "PhD students" task — two list pages, one
/// distractor section each, perfectly solvable.
fn students_fixture() -> (QueryContext, Vec<Example>) {
    let ctx = QueryContext::new("Who are the current PhD students?", ["Students", "PhD"]);
    let examples = vec![
        example(
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>\
             <h2>Contact</h2><p>a@x.edu</p>",
            &["Jane Doe", "Bob Smith"],
        ),
        example(
            "<h1>B</h1><h2>Publications</h2><p>Some paper. PLDI 2020.</p>\
             <h2>PhD Students</h2><ul><li>Mary Anderson</li></ul>",
            &["Mary Anderson"],
        ),
    ];
    (ctx, examples)
}

/// Fixture 2: the "program committees" task — comma-packed list items
/// that need split/filter chains, imperfectly solvable.
fn service_fixture() -> (QueryContext, Vec<Example>) {
    let ctx = QueryContext::new(
        "Which program committees has this researcher served on?",
        ["PC", "Program Committee", "Service"],
    );
    let examples = vec![
        example(
            "<h1>R</h1><h2>Service</h2>\
             <ul><li>PLDI '21 (PC), CAV '20 (PC)</li><li>reading group, hiking club</li></ul>",
            &["PLDI '21 (PC)", "CAV '20 (PC)"],
        ),
        example(
            "<h1>S</h1><h2>Activities</h2><b>Professional Service</b>\
             <ul><li>POPL '20 (PC)</li><li>ICFP '19 (SRC)</li></ul>\
             <h2>Teaching</h2><p>CS 101</p>",
            &["POPL '20 (PC)", "ICFP '19 (SRC)"],
        ),
    ];
    (ctx, examples)
}

fn cfg() -> SynthConfig {
    let mut c = SynthConfig::fast();
    c.max_blocks = 2;
    c
}

#[test]
fn students_fixture_stats_snapshot() {
    let (ctx, examples) = students_fixture();
    let out = synthesize(&cfg(), &ctx, &examples);
    assert!(out.f1 > 0.99, "fixture must stay perfectly solvable");
    assert_eq!(
        out.stats,
        SynthStats {
            guards_yielded: 1022,
            locators_expanded: 3724,
            locators_pruned: 192,
            extractors_enumerated: 2974,
            extractors_pruned: 897,
            branch_calls: 4,
            memo_hits: 0,
            locator_memo_hits: 544,
            analysis_pruned_guards: 4,
            analysis_pruned_locators: 4466,
            analysis_pruned_extractors: 14568,
        },
        "search-shape regression: pruning/memoization/dedup changed \
         (re-pin deliberately, checking each delta's direction)"
    );
}

#[test]
fn service_fixture_stats_snapshot() {
    let (ctx, examples) = service_fixture();
    let out = synthesize(&cfg(), &ctx, &examples);
    assert!(out.f1 > 0.5, "fixture must stay mostly solvable");
    assert_eq!(
        out.stats,
        SynthStats {
            guards_yielded: 2649,
            locators_expanded: 4224,
            locators_pruned: 27,
            extractors_enumerated: 13323,
            extractors_pruned: 19788,
            branch_calls: 4,
            memo_hits: 0,
            locator_memo_hits: 1861,
            analysis_pruned_guards: 4,
            analysis_pruned_locators: 2686,
            analysis_pruned_extractors: 35817,
        },
        "search-shape regression: pruning/memoization/dedup changed \
         (re-pin deliberately, checking each delta's direction)"
    );
}

/// The counters the snapshots pin must actually move in the direction
/// each mechanism promises — this guards the *meaning* of the counters
/// themselves, so the snapshots above stay interpretable.
#[test]
fn counters_move_with_their_mechanisms() {
    let (ctx, examples) = students_fixture();
    let base = synthesize(&cfg(), &ctx, &examples).stats;
    assert!(base.locators_pruned > 0, "pruning is live on this fixture");
    assert!(base.extractors_pruned > 0);
    assert!(base.locator_memo_hits > 0, "locator memo is live");

    let noprune = synthesize(&cfg().without_pruning(), &ctx, &examples).stats;
    assert_eq!(noprune.locators_pruned, 0);
    assert_eq!(noprune.extractors_pruned, 0);
    assert!(
        noprune.extractors_enumerated >= base.extractors_enumerated,
        "disabling pruning cannot shrink the enumeration"
    );

    let nodecomp = synthesize(&cfg().without_decomposition(), &ctx, &examples).stats;
    assert_eq!(
        nodecomp.locator_memo_hits, 0,
        "joint synthesis shares nothing"
    );
    assert!(nodecomp.extractors_enumerated >= base.extractors_enumerated);

    assert!(
        base.analysis_pruned_locators > 0 && base.analysis_pruned_extractors > 0,
        "analysis prune is live on this fixture"
    );
    let noanalysis = synthesize(&cfg().without_analysis(), &ctx, &examples).stats;
    assert_eq!(noanalysis.analysis_pruned_guards, 0);
    assert_eq!(noanalysis.analysis_pruned_locators, 0);
    assert_eq!(noanalysis.analysis_pruned_extractors, 0);
    assert!(
        noanalysis.work() >= base.work(),
        "disabling the analysis prune cannot shrink the search work"
    );
}

/// The analysis prune is *sound*: it only skips candidates the abstract
/// interpreter proves dead, so the synthesized programs, score, and
/// guard stream are identical with it on or off.
#[test]
fn analysis_prune_preserves_results() {
    for fixture in [students_fixture, service_fixture] {
        let (ctx, examples) = fixture();
        let on = synthesize(&cfg(), &ctx, &examples);
        let off = synthesize(&cfg().without_analysis(), &ctx, &examples);
        assert!((on.f1 - off.f1).abs() < 1e-9);
        assert_eq!(on.programs, off.programs);
        assert_eq!(on.stats.guards_yielded, off.stats.guards_yielded);
    }
}
