//! Cooperative-cancellation contract of `synthesize_cancellable`:
//!
//! * a pre-cancelled token aborts before any branch problem is even
//!   enumerated;
//! * a mid-run cancel returns within a bounded number of guard steps
//!   (the step-budget token makes the bound deterministic, including
//!   under branch-parallel workers);
//! * a run that completes under a token is byte-identical to a run
//!   without one — cancellation plumbing is observationally invisible.

use std::time::{Duration, Instant};

use webqa_dsl::{PageTree, QueryContext};
use webqa_synth::{
    synthesize, synthesize_cancellable, CancelToken, Cancelled, Example, SynthConfig,
};

fn example(html: &str, gold: &[&str]) -> Example {
    Example::new(
        PageTree::parse(html),
        gold.iter().map(|s| s.to_string()).collect(),
    )
}

fn ctx() -> QueryContext {
    QueryContext::new("Who are the current PhD students?", ["Students", "PhD"])
}

/// A task with enough structure to take many guard steps: three example
/// pages with differing schemas, so several partitions and many guards
/// are enumerated.
fn examples() -> Vec<Example> {
    vec![
        example(
            "<h1>A</h1><h2>Students</h2><ul><li>Jane Doe</li><li>Bob Smith</li></ul>\
             <h2>News</h2><p>PLDI 2021</p>",
            &["Jane Doe", "Bob Smith"],
        ),
        example(
            "<h1>B</h1><h2>Group</h2><ul><li>Mary Anderson</li></ul>\
             <h2>Students</h2><p>none currently</p>",
            &["Mary Anderson"],
        ),
        example(
            "<h1>C</h1><h2>PhD Students</h2><ul><li>Wei Chen</li></ul>",
            &["Wei Chen"],
        ),
    ]
}

fn cfg() -> SynthConfig {
    let mut c = SynthConfig::fast();
    c.max_blocks = 2;
    c
}

#[test]
fn pre_cancelled_token_aborts_before_any_branch() {
    let token = CancelToken::never();
    token.cancel();
    let r = synthesize_cancellable(&cfg(), &ctx(), &examples(), &[], &token);
    assert_eq!(r.unwrap_err(), Cancelled);
    // Only the entry checkpoint ran: no guard step — hence no branch
    // problem — was ever reached.
    assert_eq!(token.checks(), 1);
}

#[test]
fn zero_step_budget_is_pre_cancelled() {
    let token = CancelToken::with_step_budget(0);
    assert!(synthesize_cancellable(&cfg(), &ctx(), &examples(), &[], &token).is_err());
    assert_eq!(token.checks(), 1);
}

#[test]
fn elapsed_deadline_aborts_before_any_branch() {
    let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
    assert!(synthesize_cancellable(&cfg(), &ctx(), &examples(), &[], &token).is_err());
    assert_eq!(token.checks(), 1);
}

#[test]
fn mid_run_cancel_returns_within_a_bounded_number_of_steps() {
    // Establish that the uncancelled run takes many guard steps.
    let free = CancelToken::never();
    let out = synthesize_cancellable(&cfg(), &ctx(), &examples(), &[], &free)
        .expect("never-token run completes");
    assert!(!out.programs.is_empty());
    let total_steps = free.checks();
    let budget = 25u64;
    assert!(
        total_steps > budget + 2,
        "task too small to observe a mid-run cancel: {total_steps} steps"
    );

    // Sequential: the budget trips at checkpoint `budget + 1`, and the
    // loop that observed the trip is the last one to checkpoint.
    let token = CancelToken::with_step_budget(budget);
    assert!(synthesize_cancellable(&cfg(), &ctx(), &examples(), &[], &token).is_err());
    assert_eq!(token.checks(), budget + 1, "sequential cancel is exact");

    // Branch-parallel: each in-flight worker may take one more step
    // before observing the trip.
    for jobs in [2u64, 4] {
        let pcfg = cfg().with_jobs(jobs as usize);
        let token = CancelToken::with_step_budget(budget);
        assert!(synthesize_cancellable(&pcfg, &ctx(), &examples(), &[], &token).is_err());
        assert!(
            token.checks() <= budget + jobs + 1,
            "jobs={jobs}: {} checks for budget {budget}",
            token.checks()
        );
    }
}

#[test]
fn cancel_from_another_thread_aborts() {
    let token = CancelToken::never();
    let canceller = token.clone();
    let t = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        canceller.cancel();
    });
    // Re-run the search until the cross-thread cancel lands mid-run or
    // the budgeted attempts run out; every cancelled attempt must
    // surface as `Err`, never as a partial outcome.
    let mut cancelled = false;
    for _ in 0..200 {
        match synthesize_cancellable(&cfg(), &ctx(), &examples(), &[], &token) {
            Err(Cancelled) => {
                cancelled = true;
                break;
            }
            Ok(out) => assert!(!out.programs.is_empty()),
        }
    }
    t.join().unwrap();
    assert!(cancelled, "the explicit cancel was never observed");
}

#[test]
fn completed_run_under_a_token_is_byte_identical() {
    let plain = synthesize(&cfg(), &ctx(), &examples());
    let token = CancelToken::after(Duration::from_secs(3600));
    let under = synthesize_cancellable(&cfg(), &ctx(), &examples(), &[], &token)
        .expect("distant deadline never trips");
    assert_eq!(under.programs, plain.programs);
    assert_eq!(under.f1, plain.f1);
    assert_eq!(under.counts, plain.counts);
    assert_eq!(under.total_optimal, plain.total_optimal);
    assert_eq!(under.stats, plain.stats);
}
