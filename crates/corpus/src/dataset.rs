//! Corpus assembly and train/test splits.
//!
//! The paper's setup (Section 8): ~40 pages per domain, ~5 labeled pages
//! per task for synthesis, the remainder as the (unlabeled) test set.

use crate::gen::{generate_pages, GeneratedPage};
use crate::tasks::{Domain, Task};

/// Default pages per domain ("approximately 40", Section 8).
pub const DEFAULT_PAGES_PER_DOMAIN: usize = 40;

/// Default number of labeled training pages per task (Section 8: "around
/// 5 of them are used for training").
pub const DEFAULT_TRAIN_PAGES: usize = 5;

/// The full generated corpus: pages for every domain.
#[derive(Debug, Clone)]
pub struct Corpus {
    seed: u64,
    faculty: Vec<GeneratedPage>,
    conference: Vec<GeneratedPage>,
    class: Vec<GeneratedPage>,
    clinic: Vec<GeneratedPage>,
}

impl Corpus {
    /// Generates the standard corpus: `pages_per_domain` pages per domain
    /// from the given seed.
    pub fn generate(pages_per_domain: usize, seed: u64) -> Self {
        Corpus {
            seed,
            faculty: generate_pages(Domain::Faculty, pages_per_domain, seed),
            conference: generate_pages(Domain::Conference, pages_per_domain, seed),
            class: generate_pages(Domain::Class, pages_per_domain, seed),
            clinic: generate_pages(Domain::Clinic, pages_per_domain, seed),
        }
    }

    /// The paper-scale corpus: 40 pages × 4 domains = 160 pages.
    pub fn paper_scale(seed: u64) -> Self {
        Self::generate(DEFAULT_PAGES_PER_DOMAIN, seed)
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Pages of one domain.
    pub fn pages(&self, domain: Domain) -> &[GeneratedPage] {
        match domain {
            Domain::Faculty => &self.faculty,
            Domain::Conference => &self.conference,
            Domain::Class => &self.class,
            Domain::Clinic => &self.clinic,
        }
    }

    /// Total number of pages.
    pub fn len(&self) -> usize {
        self.faculty.len() + self.conference.len() + self.class.len() + self.clinic.len()
    }

    /// Whether the corpus has no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds the labeled/unlabeled split for one task: the first
    /// `n_train` pages of the task's domain are the labeled examples, the
    /// rest are the test set.
    pub fn dataset(&self, task: &Task, n_train: usize) -> TaskDataset {
        let pages = self.pages(task.domain);
        let n_train = n_train.min(pages.len());
        let make = |p: &GeneratedPage| LabeledPage {
            name: p.name.clone(),
            page: p.tree(),
            html: p.html.clone(),
            gold: p.gold(task.id).to_vec(),
        };
        TaskDataset {
            task: *task,
            train: pages[..n_train].iter().map(make).collect(),
            test: pages[n_train..].iter().map(make).collect(),
        }
    }
}

/// One page paired with its gold labels for a specific task.
#[derive(Debug, Clone)]
pub struct LabeledPage {
    /// Page name (e.g. `"faculty_12"`).
    pub name: String,
    /// The parsed page tree.
    pub page: webqa_html::PageTree,
    /// Raw HTML (baselines that need the DOM re-parse from this).
    pub html: String,
    /// Gold extraction strings for the dataset's task.
    pub gold: Vec<String>,
}

/// Train/test split of one task.
#[derive(Debug, Clone)]
pub struct TaskDataset {
    /// The task description.
    pub task: Task,
    /// Labeled pages used for synthesis.
    pub train: Vec<LabeledPage>,
    /// Held-out pages used for evaluation (their gold is hidden from the
    /// synthesizer; the transductive selector sees only their HTML).
    pub test: Vec<LabeledPage>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{task_by_id, TASKS};

    #[test]
    fn paper_scale_is_160_pages() {
        let c = Corpus::generate(4, 0); // keep the test fast; scale checked arithmetically
        assert_eq!(c.len(), 16);
        assert!(!c.is_empty());
        assert_eq!(DEFAULT_PAGES_PER_DOMAIN * 4, 160);
    }

    #[test]
    fn dataset_split_sizes() {
        let c = Corpus::generate(10, 1);
        let t = task_by_id("fac_t1").unwrap();
        let d = c.dataset(t, 5);
        assert_eq!(d.train.len(), 5);
        assert_eq!(d.test.len(), 5);
    }

    #[test]
    fn split_caps_at_page_count() {
        let c = Corpus::generate(3, 1);
        let t = task_by_id("clinic_t1").unwrap();
        let d = c.dataset(t, 10);
        assert_eq!(d.train.len(), 3);
        assert!(d.test.is_empty());
    }

    #[test]
    fn every_task_has_some_nonempty_gold() {
        let c = Corpus::generate(8, 2);
        for task in &TASKS {
            let d = c.dataset(task, 5);
            let total: usize = d.train.iter().chain(&d.test).map(|p| p.gold.len()).sum();
            assert!(total > 0, "task {} has no gold anywhere", task.id);
        }
    }

    #[test]
    fn determinism() {
        let a = Corpus::generate(3, 9);
        let b = Corpus::generate(3, 9);
        for d in Domain::ALL {
            for (x, y) in a.pages(d).iter().zip(b.pages(d)) {
                assert_eq!(x.html, y.html);
            }
        }
    }
}
