//! Clinic-website generator: providers, services, specialties, accepted
//! insurance plans, and locations.

use rand::rngs::StdRng;
use rand::Rng;
use webqa_nlp::lexicon;

use super::util::{person_names, pick, sample, HtmlDoc};
use super::GeneratedPage;

#[derive(Debug)]
struct ClinicFacts {
    name: String,
    doctors: Vec<String>,
    services: Vec<String>,
    treatments: Vec<String>,
    insurances: Vec<String>,
    locations: Vec<String>,
}

fn make_facts(rng: &mut StdRng) -> ClinicFacts {
    let place = pick(rng, lexicon::PLACES);
    let kind = pick(
        rng,
        &[
            "Family Clinic",
            "Medical Center",
            "Health Clinic",
            "Care Center",
        ],
    );
    let n_locations = rng.gen_range(1..4);
    let mut locations = Vec::new();
    for _ in 0..n_locations {
        let street = pick(
            rng,
            &[
                "Main Street",
                "Oak Avenue",
                "Elm Road",
                "Cedar Boulevard",
                "Lake Drive",
            ],
        );
        locations.push(format!(
            "{} {street}, {}",
            rng.gen_range(100..999),
            pick(rng, lexicon::PLACES)
        ));
    }
    let n_doctors = rng.gen_range(2..6);
    let n_services = rng.gen_range(3..7);
    let n_treatments = rng.gen_range(2..6);
    let n_insurances = rng.gen_range(3..7);
    ClinicFacts {
        name: format!("{place} {kind}"),
        doctors: person_names(rng, n_doctors),
        services: sample(rng, lexicon::MEDICAL_SERVICES, n_services)
            .into_iter()
            .map(|s| s.to_string())
            .collect(),
        treatments: sample(rng, lexicon::TREATMENTS, n_treatments)
            .into_iter()
            .map(|s| s.to_string())
            .collect(),
        insurances: sample(rng, lexicon::INSURANCES, n_insurances)
            .into_iter()
            .map(|s| s.to_string())
            .collect(),
        locations,
    }
}

fn gold_for(facts: &ClinicFacts) -> Vec<(&'static str, Vec<String>)> {
    vec![
        ("clinic_t1", facts.doctors.clone()),
        ("clinic_t2", facts.services.clone()),
        ("clinic_t3", facts.treatments.clone()),
        ("clinic_t4", facts.insurances.clone()),
        ("clinic_t5", facts.locations.clone()),
    ]
}

fn render(rng: &mut StdRng, facts: &ClinicFacts) -> String {
    let mut doc = HtmlDoc::new(&facts.name);
    doc.h1(&facts.name);
    doc.p(format!(
        "Welcome to {}. We provide compassionate care for the whole family.",
        facts.name
    ));

    let mut sections: Vec<u8> = vec![0, 1, 2, 3, 4];
    for i in (1..sections.len()).rev() {
        let j = rng.gen_range(0..=i);
        sections.swap(i, j);
    }
    let level = if rng.gen_bool(0.7) { 2 } else { 3 };
    for s in sections {
        match s {
            0 => render_doctors(rng, facts, &mut doc, level),
            1 => render_services(rng, facts, &mut doc, level),
            2 => render_treatments(rng, facts, &mut doc, level),
            3 => render_insurance(rng, facts, &mut doc, level),
            _ => render_locations(rng, facts, &mut doc, level),
        }
    }
    doc.p("Call us today to schedule an appointment.");
    doc.finish()
}

fn render_doctors(rng: &mut StdRng, facts: &ClinicFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Our Team", "Our Doctors", "Providers", "Meet Our Providers"];
    doc.heading(level, pick(rng, &titles));
    match rng.gen_range(0..3) {
        0 => {
            let lines: Vec<String> = facts
                .doctors
                .iter()
                .map(|d| format!("Dr. {d}, MD"))
                .collect();
            doc.ul(&lines);
        }
        1 => {
            doc.ul(&facts.doctors);
            doc.p("All providers are board certified.");
        }
        _ => {
            let lines: Vec<String> = facts.doctors.iter().map(|d| format!("Dr. {d}")).collect();
            doc.p(lines.join(", "));
        }
    };
}

fn render_services(rng: &mut StdRng, facts: &ClinicFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Our Services", "Services", "What We Offer"];
    doc.heading(level, pick(rng, &titles));
    if rng.gen_bool(0.7) {
        doc.ul(&facts.services);
    } else {
        doc.p(format!("We offer {}.", facts.services.join(", ")));
    }
}

fn render_treatments(rng: &mut StdRng, facts: &ClinicFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Specialties", "Treatments", "Areas of Specialization"];
    doc.heading(level, pick(rng, &titles));
    if rng.gen_bool(0.7) {
        doc.ul(&facts.treatments);
    } else {
        doc.p(format!(
            "Our team specializes in {}.",
            facts.treatments.join(", ")
        ));
    }
}

fn render_insurance(rng: &mut StdRng, facts: &ClinicFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = [
        "Insurance",
        "Plans Accepted",
        "Accepted Insurance Plans",
        "Billing and Insurance",
    ];
    doc.heading(level, pick(rng, &titles));
    if rng.gen_bool(0.6) {
        doc.ul(&facts.insurances);
    } else {
        doc.p(format!("We accept {}.", facts.insurances.join(", ")));
    }
}

fn render_locations(rng: &mut StdRng, facts: &ClinicFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Locations", "Our Locations", "Visit Us", "Directions"];
    doc.heading(level, pick(rng, &titles));
    if facts.locations.len() > 1 || rng.gen_bool(0.7) {
        doc.ul(&facts.locations);
    } else {
        doc.p(format!("Find us at {}.", facts.locations[0]));
    }
}

/// Generates one clinic page.
pub(crate) fn generate(rng: &mut StdRng, index: usize) -> GeneratedPage {
    let facts = make_facts(rng);
    let html = render(rng, &facts);
    GeneratedPage {
        name: format!("clinic_{index:02}"),
        html,
        gold: gold_for(&facts).into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use webqa_html::PageTree;
    use webqa_metrics::tokenize_all;

    fn page(seed: u64) -> GeneratedPage {
        let mut rng = StdRng::seed_from_u64(seed);
        generate(&mut rng, 0)
    }

    #[test]
    fn gold_tokens_present() {
        for seed in 0..20 {
            let p = page(seed);
            let tree = PageTree::parse(&p.html);
            let toks: std::collections::HashSet<_> = tokenize_all(
                &tree
                    .iter()
                    .map(|n| tree.text(n).to_string())
                    .collect::<Vec<_>>(),
            )
            .into_iter()
            .collect();
            for (task, golds) in &p.gold {
                for t in tokenize_all(golds) {
                    assert!(
                        toks.contains(&t),
                        "seed {seed} task {task}: token {t:?} missing"
                    );
                }
            }
        }
    }

    #[test]
    fn all_clinic_tasks_nonempty() {
        let p = page(0);
        for t in [
            "clinic_t1",
            "clinic_t2",
            "clinic_t3",
            "clinic_t4",
            "clinic_t5",
        ] {
            assert!(!p.gold[t].is_empty(), "{t} empty");
        }
    }

    #[test]
    fn locations_look_like_addresses() {
        let p = page(2);
        for l in &p.gold["clinic_t5"] {
            assert!(l.chars().next().unwrap().is_ascii_digit(), "got {l}");
        }
    }
}
