//! Faculty-homepage generator.
//!
//! Produces structurally heterogeneous researcher pages in the style of the
//! paper's Figure 2: contact blocks, publications with venues and years,
//! current/former students, teaching, and professional-service lists —
//! rendered through several layout templates with randomized section
//! titles, orderings, nesting, and formatting.

use rand::rngs::StdRng;
use rand::Rng;
use webqa_nlp::lexicon;

use super::util::{person_name, person_names, pick, university, HtmlDoc};
use super::GeneratedPage;

/// Structured facts underlying one faculty page; gold labels derive from
/// these, independent of the chosen layout.
#[derive(Debug)]
struct FacultyFacts {
    name: String,
    university: String,
    phd_students: Vec<String>,
    alumni: Vec<String>,
    publications: Vec<Publication>,
    courses: Vec<String>,
    services: Vec<ServiceEntry>,
}

#[derive(Debug)]
struct Publication {
    line: String,
    venue: &'static str,
    year: u32,
    authors: Vec<String>,
    award: bool,
}

#[derive(Debug)]
struct ServiceEntry {
    line: String,
    is_pc: bool,
}

const PUB_VENUES: [&str; 6] = ["PLDI", "POPL", "OOPSLA", "CAV", "ICSE", "ASPLOS"];
const PUB_YEARS: [u32; 8] = [2010, 2011, 2012, 2013, 2015, 2017, 2018, 2019];

fn make_title(rng: &mut StdRng) -> String {
    let shapes = [
        |a: &str, b: &str| format!("Synthesizing {a} from {b}"),
        |a: &str, b: &str| format!("Scalable {a} for {b}"),
        |a: &str, b: &str| format!("Towards {a} via {b}"),
        |a: &str, b: &str| format!("Automated {a} with {b}"),
        |a: &str, b: &str| format!("Learning {a} for {b}"),
    ];
    let a = pick(rng, lexicon::RESEARCH_TOPICS);
    let mut b = pick(rng, lexicon::RESEARCH_TOPICS);
    let mut guard = 0;
    while b == a && guard < 5 {
        b = pick(rng, lexicon::RESEARCH_TOPICS);
        guard += 1;
    }
    (pick(rng, &shapes))(a, b)
}

fn make_facts(rng: &mut StdRng) -> FacultyFacts {
    let name = person_name(rng);
    let n_students = rng.gen_range(2..6);
    let n_alumni = rng.gen_range(0..4);
    let n_pubs = rng.gen_range(4..9);
    let n_courses = rng.gen_range(1..4);
    let n_service = rng.gen_range(3..9);

    let mut publications = Vec::new();
    for _ in 0..n_pubs {
        let venue = *pick(rng, &PUB_VENUES);
        let year = *pick(rng, &PUB_YEARS);
        let mut authors = vec![name.clone()];
        let n_coauthors = rng.gen_range(1..3);
        authors.extend(person_names(rng, n_coauthors));
        let award = rng.gen_bool(0.15);
        let title = make_title(rng);
        let mut line = format!("{title}. {}. {venue} {year}.", authors.join(", "));
        if award {
            line.push_str(" Best Paper Award.");
        }
        publications.push(Publication {
            line,
            venue,
            year,
            authors,
            award,
        });
    }

    let mut services = Vec::new();
    for _ in 0..n_service {
        let conf = *pick(rng, lexicon::CONFERENCES);
        let year = rng.gen_range(15..22);
        let role = *pick(rng, lexicon::SERVICE_ROLES);
        let is_pc = role == "PC" || role == "Program Committee";
        services.push(ServiceEntry {
            line: format!("{conf} '{year} ({role})"),
            is_pc,
        });
    }

    let mut courses = Vec::new();
    for _ in 0..n_courses {
        let code = rng.gen_range(101..499);
        let topic = pick(rng, lexicon::COURSE_TOPICS);
        let term = format!(
            "{} {}",
            pick(rng, &["Spring", "Fall"]),
            rng.gen_range(2018..2022)
        );
        courses.push(format!("CS {code}: {topic}. {term}."));
    }

    FacultyFacts {
        name,
        university: university(rng),
        phd_students: person_names(rng, n_students),
        alumni: person_names(rng, n_alumni),
        publications,
        courses,
        services,
    }
}

fn gold_for(facts: &FacultyFacts) -> Vec<(&'static str, Vec<String>)> {
    let pldi_pubs: Vec<&Publication> = facts
        .publications
        .iter()
        .filter(|p| p.venue == "PLDI")
        .collect();
    vec![
        ("fac_t1", facts.phd_students.clone()),
        ("fac_t2", pldi_pubs.iter().map(|p| p.line.clone()).collect()),
        ("fac_t3", facts.courses.clone()),
        (
            "fac_t4",
            facts
                .publications
                .iter()
                .filter(|p| p.award)
                .map(|p| p.line.clone())
                .collect(),
        ),
        (
            "fac_t5",
            facts
                .services
                .iter()
                .filter(|s| s.is_pc)
                .map(|s| s.line.clone())
                .collect(),
        ),
        (
            "fac_t6",
            facts
                .publications
                .iter()
                .filter(|p| p.year == 2012)
                .map(|p| p.line.clone())
                .collect(),
        ),
        ("fac_t7", {
            let mut coauthors: Vec<String> = pldi_pubs
                .iter()
                .flat_map(|p| p.authors.iter().skip(1).cloned())
                .collect();
            coauthors.sort();
            coauthors.dedup();
            coauthors
        }),
        ("fac_t8", facts.alumni.clone()),
    ]
}

/// Renders the facts through one of four layout templates.
fn render(rng: &mut StdRng, facts: &FacultyFacts) -> String {
    let mut doc = HtmlDoc::new(&facts.name);
    doc.h1(&facts.name);
    doc.p(format!(
        "Professor, Department of Computer Science, {}. Research interests: {} and {}.",
        facts.university,
        pick(rng, lexicon::RESEARCH_TOPICS),
        pick(rng, lexicon::RESEARCH_TOPICS),
    ));

    // Section rendering order is shuffled per page.
    let mut sections: Vec<u8> = vec![0, 1, 2, 3, 4];
    for i in (1..sections.len()).rev() {
        let j = rng.gen_range(0..=i);
        sections.swap(i, j);
    }
    let level = if rng.gen_bool(0.7) { 2 } else { 3 };
    for s in sections {
        match s {
            0 => render_students(rng, facts, &mut doc, level),
            1 => render_publications(rng, facts, &mut doc, level),
            2 => render_teaching(rng, facts, &mut doc, level),
            3 => render_service(rng, facts, &mut doc, level),
            _ => render_news(rng, facts, &mut doc, level),
        }
    }
    doc.p(format!(
        "Contact: {}@{}.edu, office {}.{}.",
        facts.name.split(' ').next().unwrap_or("x").to_lowercase(),
        facts
            .university
            .split(' ')
            .next()
            .unwrap_or("u")
            .to_lowercase(),
        rng.gen_range(1..9),
        rng.gen_range(100..999),
    ));
    doc.finish()
}

fn render_students(rng: &mut StdRng, facts: &FacultyFacts, doc: &mut HtmlDoc, level: u8) {
    let current_titles = [
        "PhD Students",
        "Current PhD Students",
        "Current Students",
        "Advisees",
    ];
    let alumni_titles = [
        "Alumni",
        "Former Students",
        "Past Advisees",
        "Graduated PhD Students",
    ];
    match rng.gen_range(0..3) {
        0 => {
            // Figure 2 top: "Students" with bold sub-headers.
            doc.heading(level, "Students");
            doc.bold_header(pick(rng, &current_titles));
            doc.ul(&facts.phd_students);
            if !facts.alumni.is_empty() {
                doc.bold_header(pick(rng, &alumni_titles));
                doc.ul(&facts.alumni);
            }
        }
        1 => {
            doc.heading(level, pick(rng, &current_titles));
            doc.ul(&facts.phd_students);
            if !facts.alumni.is_empty() {
                doc.heading(level, pick(rng, &alumni_titles));
                doc.ul(&facts.alumni);
            }
        }
        _ => {
            // Comma paragraph style.
            doc.heading(level, pick(rng, &current_titles));
            doc.p(facts.phd_students.join(", "));
            if !facts.alumni.is_empty() {
                doc.heading(level, pick(rng, &alumni_titles));
                doc.p(facts.alumni.join(", "));
            }
        }
    }
}

fn render_publications(rng: &mut StdRng, facts: &FacultyFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = [
        "Publications",
        "Recent Publications",
        "Conference Publications",
        "Selected Papers",
    ];
    doc.heading(level, pick(rng, &titles));
    let lines: Vec<&str> = facts.publications.iter().map(|p| p.line.as_str()).collect();
    if rng.gen_bool(0.75) {
        doc.ul(&lines);
    } else {
        for l in &lines {
            doc.p(l);
        }
    }
}

fn render_teaching(rng: &mut StdRng, facts: &FacultyFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = ["Teaching", "Courses", "Courses Taught"];
    doc.heading(level, pick(rng, &titles));
    if rng.gen_bool(0.7) {
        doc.ul(&facts.courses);
    } else {
        for c in &facts.courses {
            doc.p(c);
        }
    }
}

fn render_service(rng: &mut StdRng, facts: &FacultyFacts, doc: &mut HtmlDoc, level: u8) {
    let titles = [
        "Professional Service",
        "Service",
        "Activities",
        "Professional Activities",
    ];
    match rng.gen_range(0..3) {
        0 => {
            // One entry per list item.
            doc.heading(level, pick(rng, &titles));
            let lines: Vec<&str> = facts.services.iter().map(|s| s.line.as_str()).collect();
            doc.ul(&lines);
        }
        1 => {
            // Figure 2 top: "Current:" / "Past:" grouped, comma-joined.
            doc.heading(level, "Activities");
            doc.bold_header(pick(rng, &titles));
            let split = facts.services.len() / 3 + 1;
            let (cur, past) = facts.services.split_at(split.min(facts.services.len()));
            let mut items = Vec::new();
            if !cur.is_empty() {
                items.push(format!(
                    "Current: {}",
                    cur.iter()
                        .map(|s| s.line.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            if !past.is_empty() {
                items.push(format!(
                    "Past: {}",
                    past.iter()
                        .map(|s| s.line.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            doc.ul(&items);
        }
        _ => {
            // Comma paragraph.
            doc.heading(level, pick(rng, &titles));
            doc.p(facts
                .services
                .iter()
                .map(|s| s.line.clone())
                .collect::<Vec<_>>()
                .join(", "));
        }
    }
}

fn render_news(rng: &mut StdRng, facts: &FacultyFacts, doc: &mut HtmlDoc, level: u8) {
    if rng.gen_bool(0.4) {
        return; // many pages have no news section
    }
    doc.heading(level, pick(rng, &["News", "Recent News"]));
    let student = facts
        .phd_students
        .first()
        .cloned()
        .unwrap_or_else(|| "our group".to_string());
    doc.ul(&[
        format!("Welcome incoming student {student}."),
        format!(
            "Two papers accepted to {} {}.",
            pick(rng, &PUB_VENUES),
            2019
        ),
    ]);
}

/// Generates one faculty page.
pub(crate) fn generate(rng: &mut StdRng, index: usize) -> GeneratedPage {
    let facts = make_facts(rng);
    let html = render(rng, &facts);
    GeneratedPage {
        name: format!("faculty_{index:02}"),
        html,
        gold: gold_for(&facts).into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use webqa_html::PageTree;
    use webqa_metrics::tokenize_all;

    fn page(seed: u64) -> GeneratedPage {
        let mut rng = StdRng::seed_from_u64(seed);
        generate(&mut rng, 0)
    }

    #[test]
    fn gold_strings_appear_on_page() {
        for seed in 0..20 {
            let p = page(seed);
            let tree = PageTree::parse(&p.html);
            let page_tokens: std::collections::HashSet<_> = tokenize_all(
                &tree
                    .iter()
                    .map(|n| tree.text(n).to_string())
                    .collect::<Vec<_>>(),
            )
            .into_iter()
            .collect();
            for (task, golds) in &p.gold {
                let gold_tokens = tokenize_all(golds);
                for t in gold_tokens {
                    assert!(
                        page_tokens.contains(&t),
                        "seed {seed}: gold token {t:?} for {task} missing from page"
                    );
                }
            }
        }
    }

    #[test]
    fn has_all_faculty_tasks() {
        let p = page(1);
        for t in [
            "fac_t1", "fac_t2", "fac_t3", "fac_t4", "fac_t5", "fac_t6", "fac_t7", "fac_t8",
        ] {
            assert!(p.gold.contains_key(t), "missing {t}");
        }
    }

    #[test]
    fn phd_students_nonempty() {
        for seed in 0..10 {
            assert!(!page(seed).gold["fac_t1"].is_empty());
        }
    }

    #[test]
    fn deterministic_generation() {
        assert_eq!(page(7).html, page(7).html);
        assert_ne!(page(7).html, page(8).html);
    }

    #[test]
    fn layouts_vary_across_seeds() {
        let htmls: Vec<String> = (0..10).map(|s| page(s).html).collect();
        // Some pages use bold pseudo-headers, some don't.
        let with_bold = htmls.iter().filter(|h| h.contains("<p><b>")).count();
        assert!(with_bold > 0 && with_bold < 10);
    }
}
